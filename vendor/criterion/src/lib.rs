//! Offline stand-in for `criterion`: the same macro/builder surface
//! (`criterion_group!`, `criterion_main!`, `Criterion`, `BenchmarkId`,
//! groups, `Bencher::iter`) backed by a simple median-of-samples
//! wall-clock harness that prints one line per benchmark.
//!
//! Statistical machinery (outlier analysis, HTML reports) is out of scope;
//! the numbers printed are median / min / max over `sample_size` samples,
//! each sample auto-scaled to run ≥ `MIN_SAMPLE_TIME`.

use std::fmt;
use std::time::{Duration, Instant};

const MIN_SAMPLE_TIME: Duration = Duration::from_millis(20);
const WARMUP_ITERS: u64 = 1;

/// Prevents the optimizer from deleting a benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier combining a function name and a parameter, e.g.
/// `BenchmarkId::new("matmul", 512)` → `matmul/512`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    fn run(sample_size: usize, f: impl FnMut(&mut Bencher)) -> Vec<Duration> {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size,
        };
        let mut f = f;
        f(&mut b);
        b.samples
    }

    /// Time the closure: auto-scale iterations per sample so each sample
    /// runs at least `MIN_SAMPLE_TIME`, collect `sample_size` samples of
    /// per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        // calibrate
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (MIN_SAMPLE_TIME.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn report(id: &str, mut samples: Vec<Duration>) {
    if samples.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    println!(
        "{id:<48} time: [{} {} {}]",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(max)
    );
}

/// Top-level benchmark manager (stand-in for `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Optional filter from `cargo bench -- <filter>` argv.
    fn filter() -> Option<String> {
        std::env::args().skip(1).find(|a| !a.starts_with('-'))
    }

    fn should_run(id: &str) -> bool {
        match Self::filter() {
            Some(f) => id.contains(&f),
            None => true,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        if Self::should_run(id) {
            report(id, Bencher::run(self.sample_size, f));
        }
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = id.to_string();
        if Self::should_run(&name) {
            report(&name, Bencher::run(self.sample_size, |b| f(b, input)));
        }
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        if Criterion::should_run(&full) {
            report(&full, Bencher::run(self.sample_size, f));
        }
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        if Criterion::should_run(&full) {
            report(&full, Bencher::run(self.sample_size, |b| f(b, input)));
        }
        self
    }

    pub fn finish(self) {}
}

/// Declares a benchmark group; both upstream forms are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                {
                    let mut c: $crate::Criterion = $config;
                    $target(&mut c);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
