//! Offline stand-in for `serde_json`: renders the vendored serde
//! [`Value`] tree to JSON text and parses it back.
//!
//! Numbers round-trip losslessly: floats are printed with Rust's shortest
//! round-trip formatting (`{:?}` on `f64`), and `f32` values pass through
//! `f64` exactly. Non-finite floats serialize as `null` (JSON has no NaN),
//! matching the upstream crate's lossy behavior.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;
use std::io::{Read, Write};

pub use serde::Value as JsonValue;

/// Error type covering serialization, deserialization, and I/O.
#[derive(Debug)]
pub enum Error {
    Io(std::io::Error),
    Syntax {
        line: usize,
        col: usize,
        msg: String,
    },
    Data(DeError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "io error: {e}"),
            Error::Syntax { line, col, msg } => {
                write!(f, "JSON syntax error at line {line} column {col}: {msg}")
            }
            Error::Data(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::Data(e)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

// ---- serialization ----

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // {:?} is Rust's shortest round-trip float formatting
                out.push_str(&format!("{f:?}"))
            } else {
                out.push_str("null")
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                render(val, out);
            }
            out.push('}');
        }
    }
}

/// Serialize to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), &mut out);
    Ok(out)
}

/// Serialize with two-space indentation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    fn pretty(v: &Value, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        match v {
            Value::Seq(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&pad);
                    pretty(item, out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Value::Map(entries) if !entries.is_empty() => {
                out.push_str("{\n");
                for (i, (k, val)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&pad);
                    write_escaped(out, k);
                    out.push_str(": ");
                    pretty(val, out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
            other => render(other, out),
        }
    }
    let mut out = String::new();
    pretty(&value.to_value(), &mut out, 0);
    Ok(out)
}

/// Serialize into a writer.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes())?;
    Ok(())
}

/// Serialize into a writer, pretty-printed.
pub fn to_writer_pretty<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let s = to_string_pretty(value)?;
    writer.write_all(s.as_bytes())?;
    Ok(())
}

// ---- parsing ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        let consumed = &self.bytes[..self.pos.min(self.bytes.len())];
        let line = consumed.iter().filter(|&&b| b == b'\n').count() + 1;
        let col = consumed.iter().rev().take_while(|&&b| b != b'\n').count() + 1;
        Err(Error::Syntax {
            line,
            col,
            msg: msg.into(),
        })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected `{}`", b as char))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            None => self.err("unexpected end of input"),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => self.err(format!("unexpected byte `{}`", b as char)),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            self.err(format!("expected `{kw}`"))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return self.err("truncated \\u escape");
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex.and_then(char::from_u32) {
                                Some(c) => out.push(c),
                                None => return self.err("invalid \\u escape"),
                            }
                            self.pos += 4;
                        }
                        _ => return self.err("invalid escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // input arrived as &str, so bytes are valid UTF-8;
                    // consume one code point
                    let rest = match std::str::from_utf8(&self.bytes[self.pos..]) {
                        Ok(s) => s,
                        Err(_) => return self.err("invalid UTF-8 in string"),
                    };
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            match text.parse::<f64>() {
                Ok(f) => Ok(Value::Float(f)),
                Err(_) => self.err(format!("bad number `{text}`")),
            }
        } else {
            match text.parse::<i128>() {
                Ok(i) => Ok(Value::Int(i)),
                Err(_) => self.err(format!("bad integer `{text}`")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return self.err("expected `,` or `]`"),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return self.err("expected `,` or `}`"),
            }
        }
    }
}

/// Parse a JSON string into a [`Value`].
pub fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters after JSON value");
    }
    Ok(v)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    Ok(T::from_value(&parse_value(s)?)?)
}

/// Deserialize a value from a reader.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_round_trips() {
        let v = Value::Map(vec![
            (
                "a".into(),
                Value::Seq(vec![Value::Int(1), Value::Float(2.5), Value::Null]),
            ),
            ("s".into(), Value::Str("he\"llo\n".into())),
            ("b".into(), Value::Bool(true)),
        ]);
        let text = to_string(&v).unwrap();
        let back = parse_value(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &f in &[0.1f64, 1.0 / 3.0, f64::MAX, 1e-300, -0.0] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(f, back, "{text}");
        }
        for &f in &[0.1f32, 1.0 / 3.0, f32::MIN_POSITIVE] {
            let text = to_string(&f).unwrap();
            let back: f32 = from_str(&text).unwrap();
            assert_eq!(f, back, "{text}");
        }
    }

    #[test]
    fn syntax_errors_carry_position() {
        let e = parse_value("{\"a\": [1, ]}").unwrap_err();
        assert!(matches!(e, Error::Syntax { .. }));
        assert!(parse_value("").is_err());
        assert!(parse_value("[1,2] junk").is_err());
    }

    #[test]
    fn nested_containers_parse() {
        let v: Vec<Vec<u32>> = from_str("[[1,2],[3]]").unwrap();
        assert_eq!(v, vec![vec![1, 2], vec![3]]);
        let opt: Option<f64> = from_str("null").unwrap();
        assert_eq!(opt, None);
    }
}
