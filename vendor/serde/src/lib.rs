//! Offline stand-in for `serde`.
//!
//! The real serde models serialization as a visitor dance between generic
//! `Serializer`/`Deserializer` pairs. This workspace only ever pairs serde
//! with `serde_json`, so the stand-in collapses the data model to a single
//! JSON-shaped [`Value`] tree: [`Serialize`] renders into a `Value`,
//! [`Deserialize`] rebuilds from one, and the vendored `serde_json` crate
//! handles text. The derive macros (re-exported from `serde_derive`)
//! generate field-by-field impls exactly like upstream.
//!
//! Supported shapes: every primitive, `String`, `Option`, `Vec`, slices,
//! arrays, tuples, `HashMap`/`BTreeMap` with string-like keys, `Rc`/`Arc`
//! (the `rc` feature is implicit), plus derived structs (named, tuple,
//! unit) and enums (unit, tuple, and struct variants).

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

pub use serde_derive::{Deserialize, Serialize};

/// The JSON-shaped data model everything serializes through.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All integers are kept as i128 internally: wide enough for u64/i64.
    Int(i128),
    Float(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered map (JSON object).
    Map(Vec<(String, Value)>),
}

impl Value {
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Deserialization failure: a human-readable path + expectation.
#[derive(Clone, Debug, PartialEq)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    pub fn expected(what: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        };
        DeError(format!("expected {what}, got {kind}"))
    }

    pub fn missing_field(field: &str) -> Self {
        DeError(format!("missing field `{field}`"))
    }
}

pub trait Serialize {
    fn to_value(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- primitives ----

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError(format!("integer {i} out of range for {}", stringify!($t)))),
                    // JSON readers may surface whole floats for ints
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(DeError::expected(stringify!($t), other)),
                }
            }
        }
    )*};
}
int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    // non-finite floats round-trip through null (JSON has no NaN)
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(DeError::expected(stringify!($t), other)),
                }
            }
        }
    )*};
}
float_impls!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-char string", other)),
        }
    }
}

// ---- containers ----

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(s) => s.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_seq().ok_or_else(|| DeError::expected("sequence", v))?;
        if s.len() != N {
            return Err(DeError(format!(
                "expected array of length {N}, got {}",
                s.len()
            )));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(s) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let s = v.as_seq().ok_or_else(|| DeError::expected("tuple sequence", v))?;
                let expect = [$($idx),+].len();
                if s.len() != expect {
                    return Err(DeError(format!("expected tuple of {expect}, got {}", s.len())));
                }
                Ok(($($name::from_value(&s[$idx])?,)+))
            }
        }
    )*};
}
tuple_impls! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
}

impl<K: ToString + std::str::FromStr + std::hash::Hash + Eq, V: Serialize> Serialize
    for HashMap<K, V>
{
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}
impl<K: std::str::FromStr + std::hash::Hash + Eq, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v.as_map().ok_or_else(|| DeError::expected("map", v))?;
        m.iter()
            .map(|(k, val)| {
                let key = k
                    .parse()
                    .map_err(|_| DeError(format!("bad map key `{k}`")))?;
                Ok((key, V::from_value(val)?))
            })
            .collect()
    }
}

impl<K: ToString + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}
impl<K: std::str::FromStr + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v.as_map().ok_or_else(|| DeError::expected("map", v))?;
        m.iter()
            .map(|(k, val)| {
                let key = k
                    .parse()
                    .map_err(|_| DeError(format!("bad map key `{k}`")))?;
                Ok((key, V::from_value(val)?))
            })
            .collect()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Rc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Rc::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Arc::new)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Vec::<u8>::from_value(&vec![1u8, 2].to_value()).unwrap(),
            vec![1, 2]
        );
        let tup = (3u32, 4.5f64);
        assert_eq!(<(u32, f64)>::from_value(&tup.to_value()).unwrap(), tup);
    }

    #[test]
    fn mismatched_shapes_error() {
        assert!(u32::from_value(&Value::Str("x".into())).is_err());
        assert!(Vec::<u8>::from_value(&Value::Int(3)).is_err());
        assert!(u8::from_value(&Value::Int(300)).is_err());
    }
}
