//! Offline stand-in for `proptest`.
//!
//! Supports the surface this workspace uses: the [`proptest!`] macro (with
//! optional `#![proptest_config(...)]` header), range strategies over
//! numeric types, tuples of strategies, `collection::vec`, `prop_map`, and
//! the `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Unlike the real crate there is **no shrinking**: a failing case panics
//! with the case number, and cases are generated from a fixed seed, so a
//! failure reproduces by re-running the test.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Runner configuration (`with_cases` is the only knob used here).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values (no shrinking).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut SmallRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut SmallRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

macro_rules! numeric_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
numeric_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategies {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
    (A:0, B:1, C:2, D:3, E:4)
}

pub mod collection {
    use super::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Length specification for [`vec()`]: exact or ranged.
    pub trait SizeRange {
        fn pick(&self, rng: &mut SmallRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut SmallRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut SmallRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut SmallRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Strategy for a `Vec` whose elements come from `element` and whose
    /// length comes from `len` (a usize or a range).
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Run one property: generate `cases` inputs and invoke the body.
/// Used by the [`proptest!`] macro; not part of the public API surface.
pub fn run_cases<F: FnMut(u32, &mut SmallRng)>(name: &str, config: &ProptestConfig, mut body: F) {
    // Deterministic per-test seed so failures reproduce on re-run.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    let mut rng = SmallRng::seed_from_u64(h);
    for case in 0..config.cases {
        body(case, &mut rng);
    }
}

/// Assert inside a proptest body (panics; no shrinking in the stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Equality assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Property-test block: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                $crate::run_cases(stringify!($name), &__config, |__case, __rng| {
                    use $crate::Strategy as _;
                    let ($($arg,)*) = ($( ($strat).generate(__rng), )*);
                    let _ = __case;
                    $body
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),*) $body
            )*
        }
    };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
    /// Upstream exposes strategies under `prop::...` in the prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -1.0f32..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_strategy_sizes(v in collection::vec(0u32..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn prop_map_applies(n in (1u32..4).prop_map(|x| x * 10)) {
            prop_assert!(n == 10 || n == 20 || n == 30);
        }
    }

    #[test]
    fn cases_are_deterministic_per_name() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        crate::run_cases("demo", &ProptestConfig::with_cases(5), |_, rng| {
            use rand::Rng;
            a.push(rng.gen_range(0..1000u32));
        });
        crate::run_cases("demo", &ProptestConfig::with_cases(5), |_, rng| {
            use rand::Rng;
            b.push(rng.gen_range(0..1000u32));
        });
        assert_eq!(a, b);
    }
}
