//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! serde stand-in.
//!
//! Implemented directly on `proc_macro::TokenStream` (the container has no
//! crates.io access, so `syn`/`quote` are unavailable). The parser handles
//! the shapes this workspace uses: non-generic named/tuple/unit structs and
//! enums with unit, tuple, or struct variants. `#[serde(...)]` attributes
//! are not supported and trip a compile error rather than being silently
//! ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skip `#[...]` attribute groups starting at `i`; error on `#[serde(...)]`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> Result<usize, String> {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                let inner = g.stream().to_string();
                if inner.starts_with("serde") {
                    return Err(
                        "#[serde(...)] attributes are not supported by the vendored serde_derive"
                            .into(),
                    );
                }
                i += 2;
            }
            _ => break,
        }
    }
    Ok(i)
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, ...) at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Split a token slice on commas at angle-bracket depth 0. Groups hide
/// their contents, so only `<`/`>` puncts need tracking.
fn split_top_level(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Field names of a named-fields body (the contents of `{ ... }`).
fn parse_named_fields(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for field in split_top_level(body) {
        let mut i = skip_attrs(&field, 0)?;
        i = skip_vis(&field, i);
        match field.get(i) {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            other => return Err(format!("expected field name, found {other:?}")),
        }
        match field.get(i + 1) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field name, found {other:?}")),
        }
    }
    Ok(names)
}

fn parse_variants(body: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    for var in split_top_level(body) {
        let i = skip_attrs(&var, 0)?;
        let name = match var.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        let kind = match var.get(i + 1) {
            None => VariantKind::Unit,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => VariantKind::Unit,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                VariantKind::Tuple(split_top_level(&inner).len())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                VariantKind::Struct(parse_named_fields(&inner)?)
            }
            other => return Err(format!("unexpected token in variant: {other:?}")),
        };
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0)?;
    i = skip_vis(&tokens, i);
    let kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "generic type `{name}` is not supported by the vendored serde_derive"
            ));
        }
    }
    match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok(Shape::NamedStruct {
                    name,
                    fields: parse_named_fields(&inner)?,
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok(Shape::TupleStruct {
                    name,
                    arity: split_top_level(&inner).len(),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Shape::UnitStruct { name }),
            other => Err(format!("unexpected struct body: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok(Shape::Enum {
                    name,
                    variants: parse_variants(&inner)?,
                })
            }
            other => Err(format!("unexpected enum body: {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let body = match &shape {
        Shape::NamedStruct { fields, .. } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct { arity: 1, .. } => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct { arity, .. } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Shape::UnitStruct { .. } => "::serde::Value::Null".to_string(),
        Shape::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(::std::string::String::from({vn:?}))"
                        ),
                        VariantKind::Tuple(arity) => {
                            let binds: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                            let payload = if *arity == 1 {
                                "::serde::Serialize::to_value(f0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(::std::vec![(::std::string::String::from({vn:?}), {payload})])",
                                binds.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(::std::vec![(::std::string::String::from({vn:?}), ::serde::Value::Map(::std::vec![{}]))])",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    let name = match &shape {
        Shape::NamedStruct { name, .. }
        | Shape::TupleStruct { name, .. }
        | Shape::UnitStruct { name }
        | Shape::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let (name, body) = match &shape {
        Shape::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(v.get({f:?}).ok_or_else(|| ::serde::DeError::missing_field({f:?}))?)?"
                    )
                })
                .collect();
            let body = format!(
                "match v {{ ::serde::Value::Map(_) => (), other => return Err(::serde::DeError::expected(\"map\", other)) }};\n\
                 Ok({name} {{ {} }})",
                inits.join(", ")
            );
            (name, body)
        }
        Shape::TupleStruct { name, arity: 1 } => (
            name,
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))"),
        ),
        Shape::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&s[{i}])?"))
                .collect();
            let body = format!(
                "let s = v.as_seq().ok_or_else(|| ::serde::DeError::expected(\"sequence\", v))?;\n\
                 if s.len() != {arity} {{ return Err(::serde::DeError(::std::format!(\"expected {arity} tuple fields, got {{}}\", s.len()))); }}\n\
                 Ok({name}({}))",
                items.join(", ")
            );
            (name, body)
        }
        Shape::UnitStruct { name } => (name, format!("Ok({name})")),
        Shape::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("{:?} => return Ok({name}::{}),", v.name, v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "{vn:?} => return Ok({name}::{vn}(::serde::Deserialize::from_value(payload)?)),"
                        )),
                        VariantKind::Tuple(arity) => {
                            let items: Vec<String> = (0..*arity)
                                .map(|i| format!("::serde::Deserialize::from_value(&s[{i}])?"))
                                .collect();
                            Some(format!(
                                "{vn:?} => {{\n\
                                     let s = payload.as_seq().ok_or_else(|| ::serde::DeError::expected(\"sequence\", payload))?;\n\
                                     if s.len() != {arity} {{ return Err(::serde::DeError(::std::format!(\"wrong arity for variant {vn}\"))); }}\n\
                                     return Ok({name}::{vn}({}));\n\
                                 }}",
                                items.join(", ")
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(payload.get({f:?}).ok_or_else(|| ::serde::DeError::missing_field({f:?}))?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "{vn:?} => return Ok({name}::{vn} {{ {} }}),",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            let body = format!(
                "if let ::serde::Value::Str(s) = v {{\n\
                     match s.as_str() {{ {} _ => return Err(::serde::DeError(::std::format!(\"unknown variant `{{s}}`\"))) }}\n\
                 }}\n\
                 if let ::serde::Value::Map(m) = v {{\n\
                     if m.len() == 1 {{\n\
                         let (tag, payload) = (&m[0].0, &m[0].1);\n\
                         match tag.as_str() {{ {} _ => return Err(::serde::DeError(::std::format!(\"unknown variant `{{tag}}`\"))) }}\n\
                     }}\n\
                 }}\n\
                 Err(::serde::DeError::expected(\"enum variant\", v))",
                unit_arms.join(" "),
                data_arms.join(" ")
            );
            (name, body)
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
    .parse()
    .unwrap()
}
