//! Offline stand-in for the `rand` crate exposing the API subset this
//! workspace uses: [`RngCore`], [`Rng`] (`gen`, `gen_range`, `gen_bool`,
//! `fill`), [`SeedableRng`], and [`rngs::SmallRng`].
//!
//! The container building this repository has no network access, so the
//! real crates.io `rand` cannot be fetched. This crate keeps the same
//! trait shapes and the same *statistical contracts* (uniformity over
//! ranges, reproducibility from a seed) while making no attempt to match
//! upstream `rand`'s exact value streams. `SmallRng` is xoshiro256++, the
//! same family upstream uses on 64-bit targets.

/// Low-level uniform bit source. Object-safe (used as `&mut dyn RngCore`).
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl RngCore for Box<dyn RngCore + '_> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from the generator's bit stream
/// (the `Standard` distribution of upstream `rand`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 24) as u8
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}
impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}
impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free-enough uniform integer in `[0, span)` (Lemire-style
/// widening multiply with rejection on the biased zone).
#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let lo = m as u64;
        if lo >= span {
            return (m >> 64) as u64;
        }
        // threshold = (2^64 - span) % span; accept when lo >= threshold
        let threshold = span.wrapping_neg() % span;
        if lo >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span as u64) as $t)
            }
        }
    )*};
}
int_range_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
float_range_impl!(f32, f64);

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`] (mirrors upstream `rand::Rng`).
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        <f64 as Standard>::sample(self) < p
    }

    #[inline]
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (mirrors upstream `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion, as upstream does.
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }

    fn from_entropy() -> Self {
        use std::time::{SystemTime, UNIX_EPOCH};
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let addr = &nanos as *const _ as u64;
        Self::seed_from_u64(nanos ^ addr.rotate_left(32))
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the small-state generator family upstream `rand`
    /// uses for `SmallRng` on 64-bit targets.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        /// Snapshot the raw xoshiro256++ state words.
        ///
        /// Not part of upstream `rand`'s API — this workspace uses it to
        /// checkpoint mid-training RNG streams so a resumed run replays
        /// the exact draw sequence (`tgae::Session::resume_from`). If the
        /// vendored crate is ever swapped for upstream, these two methods
        /// are the only surface that needs a shim.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a [`SmallRng::state`] snapshot. The
        /// all-zero state (a fixed point of xoshiro) is nudged exactly as
        /// `from_seed` does, so restoring is total.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0, 0, 0, 0] {
                return SmallRng {
                    s: [0x9E37_79B9_7F4A_7C15, 1, 2, 3],
                };
            }
            SmallRng { s }
        }

        #[inline]
        fn step(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.step().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // all-zero state is a fixed point; nudge it
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }
}

/// Upstream-compatible module path for the `Standard` distribution.
pub mod distributions {
    pub use super::Standard;
}

pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn state_snapshot_resumes_the_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        for _ in 0..13 {
            a.next_u64();
        }
        let mut b = SmallRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // all-zero state restores to a working generator, like from_seed
        let mut z = SmallRng::from_state([0, 0, 0, 0]);
        assert_ne!(z.next_u64(), z.next_u64());
    }

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&y));
            let z = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            lo |= v < 0.1;
            hi |= v > 0.9;
        }
        assert!(lo && hi, "samples did not cover the unit interval");
    }

    #[test]
    fn int_range_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }

    #[test]
    fn dyn_rng_core_is_usable() {
        let mut rng = SmallRng::seed_from_u64(1);
        let dy: &mut dyn RngCore = &mut rng;
        let _ = dy.next_u32();
        let v = dy.gen_range(0..10u32);
        assert!(v < 10);
    }
}
