//! Capacity-planning scenario: how far does each generator scale?
//!
//! Before adopting a graph simulator, an infrastructure team wants the
//! time/size curve on *their* hardware. This example sweeps the paper's
//! Fig. 6 node axis at reduced size and prints wall-clock time per method,
//! demonstrating the `tg_datasets::grid` API and the uniform generator
//! interface.
//!
//! Run with: `cargo run --release --example capacity_planning`

#![allow(clippy::field_reassign_with_default)] // config-building style

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;
use tgx::baselines::{
    BaGenerator, ErGenerator, TagGenConfig, TagGenGenerator, TemporalGraphGenerator,
};
use tgx::datasets::GridPoint;
use tgx::prelude::*;

/// TGAE behind the common generator interface, driven by a `Session`.
/// The harness hands us an RNG; one `u64` drawn from it seeds the whole
/// session (train stream + simulation stream), so the run stays
/// reproducible under the uniform interface.
struct TgaeMethod(TgaeConfig);

impl TemporalGraphGenerator for TgaeMethod {
    fn name(&self) -> &'static str {
        "TGAE"
    }

    fn fit_generate(
        &mut self,
        observed: &TemporalGraph,
        rng: &mut dyn rand::RngCore,
    ) -> TemporalGraph {
        let mut cfg = self.0.clone();
        cfg.seed = rng.next_u64();
        let mut session = Session::builder(observed)
            .config(cfg)
            .build()
            .expect("valid session");
        session.train().expect("train");
        session.simulate().expect("simulate")
    }
}

fn main() {
    let points: Vec<GridPoint> = (1..=3)
        .map(|k| GridPoint {
            nodes: k * 300,
            timestamps: 8,
            density: 0.01,
        })
        .collect();

    println!(
        "{:<14} {:>8} {:>8} | {:>9} {:>9} {:>9} {:>9}",
        "point", "nodes", "edges", "TGAE", "TagGen", "E-R", "B-A"
    );
    for p in &points {
        let g = p.generate(3);
        let mut cells = Vec::new();
        let mut methods: Vec<Box<dyn TemporalGraphGenerator>> = vec![
            Box::new(TgaeMethod({
                let mut c = TgaeConfig::default();
                c.epochs = 30;
                c
            })),
            Box::new(TagGenGenerator::new(TagGenConfig::default())),
            Box::new(ErGenerator),
            Box::new(BaGenerator),
        ];
        for m in methods.iter_mut() {
            let mut rng = SmallRng::seed_from_u64(11);
            let t0 = Instant::now();
            let out = m.fit_generate(&g, &mut rng);
            let dt = t0.elapsed();
            assert_eq!(out.n_edges(), g.n_edges());
            cells.push(format!("{:>8.2}s", dt.as_secs_f64()));
        }
        println!(
            "{:<14} {:>8} {:>8} | {} {} {} {}",
            p.label(),
            g.n_nodes(),
            g.n_edges(),
            cells[0],
            cells[1],
            cells[2],
            cells[3]
        );
    }
    println!("\nsimple models are near-instant; learned models pay training time —");
    println!(
        "the full sweep (Fig. 6 reproduction) is `cargo run -p tg-bench --release --bin exp_fig6`"
    );
}
