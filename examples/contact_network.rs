//! Epidemiology / communication scenario: simulating a bursty contact
//! network (the paper's pandemic-trajectory motivation, §I).
//!
//! Contact-tracing datasets are privacy-sensitive; synthetic contact
//! networks let epidemic models be stress-tested without the raw data —
//! *if* the simulator preserves both the contact-volume profile over time
//! and the local clustering that drives spreading. This example trains
//! TGAE on an MSG-like message network, then compares spreading behaviour
//! (a deterministic SI cascade) on the observed vs simulated graphs, also
//! exercising the ablation variants.
//!
//! Run with: `cargo run --release --example contact_network`

#![allow(clippy::field_reassign_with_default)] // config-building style

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tgx::prelude::*;

/// Deterministic SI cascade: seed node 0 at t=0; any temporal edge from an
/// infected node infects its target from that timestamp on. Returns the
/// infected count per timestamp — a functional (not just structural) probe
/// of simulation quality.
fn si_cascade(g: &TemporalGraph, seed_node: u32) -> Vec<usize> {
    let mut infected = vec![false; g.n_nodes()];
    infected[seed_node as usize] = true;
    let mut curve = Vec::with_capacity(g.n_timestamps());
    for t in 0..g.n_timestamps() as u32 {
        // within a snapshot, propagate one hop (edges are simultaneous)
        let newly: Vec<u32> = g
            .edges_at(t)
            .iter()
            .filter(|e| infected[e.u as usize] && !infected[e.v as usize])
            .map(|e| e.v)
            .collect();
        for v in newly {
            infected[v as usize] = true;
        }
        curve.push(infected.iter().filter(|&&i| i).count());
    }
    curve
}

fn main() {
    let mut config = tgx::datasets::presets::msg().config.scaled(0.12);
    config.timestamps = 40;
    let mut data_rng = SmallRng::seed_from_u64(5);
    let observed = tgx::datasets::generate(&config, &mut data_rng);
    println!(
        "contact network: {} people, {} timed contacts, {} snapshots",
        observed.n_nodes(),
        observed.n_edges(),
        observed.n_timestamps()
    );

    // seed at the highest-degree node for a robust cascade
    let seed_node = observed
        .static_degrees()
        .iter()
        .enumerate()
        .max_by_key(|&(_, d)| *d)
        .map(|(v, _)| v as u32)
        .expect("non-empty graph");
    let real_curve = si_cascade(&observed, seed_node);

    println!("\nvariant comparison (SI cascade + structure):");
    println!(
        "{:<8} {:>10} {:>14} {:>14}",
        "variant", "loss", "cascade L1", "tri. rel.err"
    );
    let t_last = observed.n_timestamps() as u32 - 1;
    let real_tri =
        GraphStats::compute(&Snapshot::accumulated(&observed, t_last, true)).triangle_count;

    for variant in [
        TgaeVariant::Full,
        TgaeVariant::RandomWalk,
        TgaeVariant::NonProbabilistic,
    ] {
        let mut cfg = TgaeConfig::default().with_variant(variant);
        cfg.epochs = 60;
        let mut session = Session::builder(&observed)
            .config(cfg)
            .seed(9)
            .build()
            .expect("valid session");
        let report = session.train().expect("train");
        let synthetic = session.simulate().expect("simulate");

        // functional fidelity: how closely does an epidemic on the twin
        // track an epidemic on the real network?
        let syn_curve = si_cascade(&synthetic, seed_node);
        let cascade_l1: f64 = real_curve
            .iter()
            .zip(&syn_curve)
            .map(|(&a, &b)| (a as f64 - b as f64).abs())
            .sum::<f64>()
            / real_curve.len() as f64;

        let syn_tri =
            GraphStats::compute(&Snapshot::accumulated(&synthetic, t_last, true)).triangle_count;
        let tri_err = (real_tri - syn_tri).abs() / real_tri.max(1.0);
        println!(
            "{:<8} {:>10.4} {:>14.2} {:>14.3}",
            variant.name(),
            report.final_loss(),
            cascade_l1,
            tri_err
        );
    }

    println!("\ncontact volume per snapshot is preserved by construction:");
    let obs_counts = observed.edge_counts_per_timestamp();
    println!(
        "  first five snapshots: {:?} (observed) — generators must match these budgets",
        &obs_counts[..5.min(obs_counts.len())]
    );
}
