//! Quickstart: train TGAE on a small temporal graph and verify the
//! simulation preserves the Table III statistics.
//!
//! Run with: `cargo run --release --example quickstart`

#![allow(clippy::field_reassign_with_default)] // config-building style

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tgx::prelude::*;

fn main() {
    // 1. An observed temporal graph: the DBLP-like preset at 20% scale.
    let observed = tgx::datasets::presets::dblp().generate_scaled(0.2, 42);
    println!(
        "observed: {} nodes, {} temporal edges, {} timestamps",
        observed.n_nodes(),
        observed.n_edges(),
        observed.n_timestamps()
    );

    // 2. Configure and train the model (Eq. 7 objective, Adam).
    let mut cfg = TgaeConfig::default();
    cfg.epochs = 80;
    let mut model = Tgae::new(observed.n_nodes(), observed.n_timestamps(), cfg);
    println!("model: {} trainable parameters", model.n_parameters());
    let report = fit(&mut model, &observed);
    println!(
        "trained {} steps in {:.2?}: loss {:.4} -> {:.4}",
        report.losses.len(),
        report.wall,
        report.losses[0],
        report.final_loss()
    );

    // 3. Simulate a synthetic temporal graph with the same edge budget.
    let mut rng = SmallRng::seed_from_u64(7);
    let synthetic = generate(&model, &observed, &mut rng);
    println!(
        "generated: {} temporal edges across {} timestamps",
        synthetic.n_edges(),
        synthetic.n_timestamps()
    );

    // 4. Evaluate with the paper's harness (Eq. 10): relative error of the
    //    seven graph statistics across accumulated snapshots.
    println!("\n{:<16} {:>10} {:>10}", "metric", "f_avg", "f_med");
    for score in evaluate(&observed, &synthetic) {
        println!(
            "{:<16} {:>10.4} {:>10.4}",
            score.kind.name(),
            score.avg,
            score.med
        );
    }

    // 5. Inspect the final accumulated snapshots side by side.
    let t_last = observed.n_timestamps() as u32 - 1;
    let real = GraphStats::compute(&Snapshot::accumulated(&observed, t_last, true));
    let fake = GraphStats::compute(&Snapshot::accumulated(&synthetic, t_last, true));
    println!("\nfinal snapshot        observed   generated");
    println!(
        "mean degree        {:>11.3} {:>11.3}",
        real.mean_degree, fake.mean_degree
    );
    println!("LCC                {:>11.0} {:>11.0}", real.lcc, fake.lcc);
    println!(
        "triangles          {:>11.0} {:>11.0}",
        real.triangle_count, fake.triangle_count
    );
    println!(
        "components         {:>11.0} {:>11.0}",
        real.n_components, fake.n_components
    );
}
