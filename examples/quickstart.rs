//! Quickstart: train TGAE on a small temporal graph through the `Session`
//! API and verify the simulation preserves the Table III statistics.
//!
//! Run with: `cargo run --release --example quickstart`

#![allow(clippy::field_reassign_with_default)] // config-building style

use tgx::prelude::*;

fn main() {
    // 1. An observed temporal graph: the DBLP-like preset at 20% scale.
    let observed = tgx::datasets::presets::dblp().generate_scaled(0.2, 42);
    println!(
        "observed: {} nodes, {} temporal edges, {} timestamps",
        observed.n_nodes(),
        observed.n_edges(),
        observed.n_timestamps()
    );

    // 2. Build a session: one master seed drives init, training, and
    //    every simulation; the observer prints coarse progress.
    let mut cfg = TgaeConfig::default();
    cfg.epochs = 80;
    let mut session = Session::builder(&observed)
        .config(cfg)
        .seed(7)
        .observer(|ev: &EpochEvent| {
            if (ev.epoch + 1).is_multiple_of(20) {
                println!(
                    "  epoch {:>3}/{}: loss {:.4}",
                    ev.epoch + 1,
                    ev.n_epochs,
                    ev.loss
                );
            }
            TrainControl::Continue
        })
        .build()
        .expect("valid graph + config");
    println!(
        "model: {} trainable parameters",
        session.model().n_parameters()
    );

    // 3. Train (Eq. 7 objective, Adam); errors are typed, not panics.
    let report = session.train().expect("training ran");
    println!(
        "trained {} steps in {:.2?}: loss {:.4} -> {:.4} (mean epoch {:.2?})",
        report.epochs_run(),
        report.wall,
        report.losses[0],
        report.final_loss(),
        report.mean_epoch_wall()
    );

    // 4. Simulate a synthetic temporal graph with the same edge budget.
    let synthetic = session.simulate().expect("simulation ran");
    println!(
        "generated: {} temporal edges across {} timestamps",
        synthetic.n_edges(),
        synthetic.n_timestamps()
    );

    // 5. Evaluate with the paper's harness (Eq. 10): relative error of the
    //    seven graph statistics across accumulated snapshots.
    println!("\n{:<16} {:>10} {:>10}", "metric", "f_avg", "f_med");
    for score in session.evaluate(&synthetic).expect("same shape") {
        println!(
            "{:<16} {:>10.4} {:>10.4}",
            score.kind.name(),
            score.avg,
            score.med
        );
    }

    // 6. Inspect the final accumulated snapshots side by side.
    let t_last = observed.n_timestamps() as u32 - 1;
    let real = GraphStats::compute(&Snapshot::accumulated(&observed, t_last, true));
    let fake = GraphStats::compute(&Snapshot::accumulated(&synthetic, t_last, true));
    println!("\nfinal snapshot        observed   generated");
    println!(
        "mean degree        {:>11.3} {:>11.3}",
        real.mean_degree, fake.mean_degree
    );
    println!("LCC                {:>11.0} {:>11.0}", real.lcc, fake.lcc);
    println!(
        "triangles          {:>11.0} {:>11.0}",
        real.triangle_count, fake.triangle_count
    );
    println!(
        "components         {:>11.0} {:>11.0}",
        real.n_components, fake.n_components
    );
}
