//! Fraud-analytics scenario: simulating a who-trusts-whom transaction
//! network (the paper's finance motivation, §I).
//!
//! Fraud teams can rarely share raw transaction graphs. This example
//! trains TGAE on a Bitcoin-OTC-like trust network and produces a
//! synthetic twin that preserves the *temporal motif* structure — the
//! patterns (e.g. rapid reciprocal edges, burst triangles) that fraud
//! detectors are trained on — which a naive anonymiser like edge
//! shuffling (≈ E-R) destroys.
//!
//! Run with: `cargo run --release --example fraud_network`

#![allow(clippy::field_reassign_with_default)] // config-building style
#![allow(clippy::type_complexity)]

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tgx::baselines::{ErGenerator, TemporalGraphGenerator};
use tgx::metrics::{census_per_chunk, mmd2_tv};
use tgx::prelude::*;

fn main() {
    // Bitcoin-OTC-like preset at reduced scale (full Table II shape: 5881
    // nodes / 35592 edges / 1904 timestamps).
    let mut config = tgx::datasets::presets::bitcoin_otc().config.scaled(0.06);
    config.timestamps = 60;
    let mut data_rng = SmallRng::seed_from_u64(1);
    let observed = tgx::datasets::generate(&config, &mut data_rng);
    println!(
        "trust network: {} accounts, {} timestamped trust edges, {} snapshots",
        observed.n_nodes(),
        observed.n_edges(),
        observed.n_timestamps()
    );

    // The fraud-relevant signal: δ-temporal motif distribution.
    let delta = 6;
    let real_census = census_per_chunk(&observed, delta, 4);
    let total: u64 = real_census.iter().map(|c| c.total()).sum();
    println!("observed delta-temporal motifs (delta={delta}): {total}");

    // Synthetic twin via TGAE (session API: one master seed, no RNG
    // threading).
    let mut cfg = TgaeConfig::default();
    cfg.epochs = 80;
    let mut session = Session::builder(&observed)
        .config(cfg)
        .seed(2)
        .build()
        .expect("valid session");
    let report = session.train().expect("train");
    println!(
        "TGAE trained in {:.2?} (final loss {:.4})",
        report.wall,
        report.final_loss()
    );
    let twin = session.simulate().expect("simulate");

    // Strawman anonymiser: edge shuffling (Erdős–Rényi per snapshot).
    let mut er_rng = SmallRng::seed_from_u64(2);
    let shuffled = ErGenerator.fit_generate(&observed, &mut er_rng);

    let real_dists: Vec<Vec<f64>> = real_census.iter().map(|c| c.distribution()).collect();
    let motif_mmd = |g: &TemporalGraph| -> f64 {
        let dists: Vec<Vec<f64>> = census_per_chunk(g, delta, 4)
            .iter()
            .map(|c| c.distribution())
            .collect();
        mmd2_tv(&real_dists, &dists, 1.0)
    };

    let twin_mmd = motif_mmd(&twin);
    let er_mmd = motif_mmd(&shuffled);
    println!("\nmotif-distribution MMD vs observed (smaller = signal preserved)");
    println!("  TGAE twin        {twin_mmd:.6}");
    println!("  edge shuffling   {er_mmd:.6}");

    // Structural fidelity of the final snapshot, the view a fraud model sees.
    println!(
        "\n{:<16} {:>12} {:>12} {:>12}",
        "metric", "observed", "TGAE", "shuffled"
    );
    let t_last = observed.n_timestamps() as u32 - 1;
    let rows: [(&str, fn(&GraphStats) -> f64); 4] = [
        ("mean degree", |s| s.mean_degree),
        ("triangles", |s| s.triangle_count),
        ("wedges", |s| s.wedge_count),
        ("PLE", |s| s.ple),
    ];
    let so = GraphStats::compute(&Snapshot::accumulated(&observed, t_last, true));
    let st = GraphStats::compute(&Snapshot::accumulated(&twin, t_last, true));
    let se = GraphStats::compute(&Snapshot::accumulated(&shuffled, t_last, true));
    for (name, f) in rows {
        println!(
            "{:<16} {:>12.2} {:>12.2} {:>12.2}",
            name,
            f(&so),
            f(&st),
            f(&se)
        );
    }

    if twin_mmd < er_mmd {
        println!("\n=> the TGAE twin preserves the temporal fraud signal better than shuffling");
    } else {
        println!("\n=> unexpected: shuffling matched motifs better on this seed — try more epochs");
    }
}
