//! End-to-end sharded streaming simulation: train a tiny preset through
//! the `Session` API, generate the synthetic graph as K independent
//! shards streamed to edge-list files, merge the shard files, and verify
//! the result is **bit-identical** to a single in-process run — plus a
//! statistics-only pass merged through `GenerationStats::merge`.
//!
//! This is both the quickstart for the session/engine API and a CI smoke
//! test for sharded-generation determinism (it exits non-zero on any
//! mismatch). The same pipeline across *processes* is `tgx-cli`:
//!
//! ```text
//! tgx-cli train    --run-dir /tmp/run --preset dblp --scale 0.04
//! tgx-cli simulate --run-dir /tmp/run --shards 2 --verify
//! ```
//!
//! Usage: `cargo run --release --example simulate [n_shards]`

use tgx::graph::io::{load_edge_list_exact, merge_edge_lists, StreamingWriterSink};
use tgx::prelude::*;

fn main() {
    let n_shards: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("n_shards must be an integer"))
        .unwrap_or(2);

    // 1. A small observed graph: the DBLP preset scaled down.
    let observed = tgx::datasets::presets::dblp().generate_scaled(0.04, 7);
    println!(
        "observed: {} nodes, {} timestamps, {} edges",
        observed.n_nodes(),
        observed.n_timestamps(),
        observed.n_edges()
    );

    // 2. Train a tiny model through a session (one master seed).
    let mut cfg = TgaeConfig::tiny();
    cfg.epochs = 8;
    let mut session = Session::builder(&observed)
        .config(cfg)
        .seed(20250730)
        .build()
        .expect("valid session");
    let report = session.train().expect("train");
    println!("trained: final loss {:.4}", report.final_loss());

    // 3. Single-process reference: simulation run 0 of the seed policy.
    let master = session.seed_policy().simulation_master(0);
    let reference = session
        .simulate_seeded(
            master,
            GraphSink::new(observed.n_nodes(), observed.n_timestamps()),
        )
        .expect("reference run");

    // 4. Sharded + streamed: split the same run into K timestamp-range
    //    shards, stream each shard to its own edge-list file (each of
    //    these could run in a separate process — a ShardSpec is a few
    //    serialisable integers; `tgx-cli simulate` does exactly that),
    //    then merge the files.
    let plan = session.simulation_plan(master);
    let specs = session.shard_specs(master, n_shards).expect("shard specs");
    println!(
        "plan: {} work units, {} edges budgeted, {} shards",
        plan.units().len(),
        plan.n_edges(),
        n_shards
    );
    let dir = std::env::temp_dir().join(format!("tgae_simulate_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let mut shard_paths = Vec::new();
    for spec in &specs {
        let path = dir.join(format!("shard_{}.edges", spec.shard));
        let n = session
            .simulate_shard_with_sink(
                spec,
                StreamingWriterSink::create(&path).expect("create shard file"),
            )
            .expect("valid shard")
            .expect("stream shard");
        println!(
            "  shard {}: t in [{}, {}), {} edges -> {}",
            spec.shard,
            spec.t_begin,
            spec.t_end,
            n,
            path.display()
        );
        shard_paths.push(path);
    }
    let merged_path = dir.join("merged.edges");
    merge_edge_lists(&shard_paths, &merged_path).expect("merge shard files");

    // 5. Verify: the merged file loads back to exactly the reference graph.
    let merged = load_edge_list_exact(&merged_path, observed.n_nodes(), observed.n_timestamps())
        .expect("parse merged file");
    assert_eq!(
        merged.edges(),
        reference.edges(),
        "sharded+streamed output differs from single-process run"
    );
    println!(
        "verified: merged {}-shard streamed output == single-process run ({} edges)",
        n_shards,
        reference.n_edges()
    );

    // 6. Statistics-only pass: per-shard StatsSink runs merged through the
    //    public GenerationStats::merge — no edges stored, same totals.
    let mut stats = GenerationStats::default();
    for spec in &specs {
        let shard_stats = session
            .simulate_shard_with_sink(spec, StatsSink::new(observed.n_timestamps()))
            .expect("stats shard");
        stats.merge(&shard_stats);
    }
    assert_eq!(
        stats,
        GenerationStats::from_graph(&reference),
        "merged StatsSink totals differ from GraphSink-derived stats"
    );
    assert_eq!(stats.edge_counts(), observed.edge_counts_per_timestamp());
    println!(
        "verified: merged StatsSink totals match ({} edges, mean out-degree at t=0: {:.2})",
        stats.n_edges(),
        stats.per_timestamp[0].mean_out_degree()
    );

    std::fs::remove_dir_all(&dir).ok();
    println!("ok");
}
