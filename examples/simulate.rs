//! End-to-end sharded streaming simulation: train a tiny preset, generate
//! the synthetic graph as K independent shards streamed to edge-list
//! files, merge the shard files, and verify the result is **bit-identical**
//! to a single-process in-memory `generate()` — plus a statistics-only
//! pass that stores no edges at all.
//!
//! This is both the quickstart for the `tgae::engine` API and the CI
//! smoke test for sharded-generation determinism (it exits non-zero on
//! any mismatch).
//!
//! Usage: `cargo run --release --example simulate [n_shards]`

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tgx::graph::io::{load_edge_list_exact, merge_edge_lists, StreamingWriterSink};
use tgx::graph::sink::GenerationStats;
use tgx::model::engine::{generate_shard_with_sink, generate_with_sink, SimulationEngine};
use tgx::model::{fit, generate, Tgae, TgaeConfig};
use tgx::prelude::*;

fn main() {
    let n_shards: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("n_shards must be an integer"))
        .unwrap_or(2);

    // 1. A small observed graph: the DBLP preset scaled down.
    let observed = tgx::datasets::presets::dblp().generate_scaled(0.04, 7);
    println!(
        "observed: {} nodes, {} timestamps, {} edges",
        observed.n_nodes(),
        observed.n_timestamps(),
        observed.n_edges()
    );

    // 2. Train a tiny model.
    let mut cfg = TgaeConfig::tiny();
    cfg.epochs = 8;
    let mut model = Tgae::new(observed.n_nodes(), observed.n_timestamps(), cfg);
    let report = fit(&mut model, &observed);
    println!("trained: final loss {:.4}", report.final_loss());

    // 3. Single-process reference: the classic in-memory generate().
    let seed = 20250730u64;
    let reference = generate(&model, &observed, &mut SmallRng::seed_from_u64(seed));
    // generate() consumes exactly one u64 from its RNG as the master seed;
    // reproduce that draw so the sharded runs plan the same manifest.
    let master: u64 = SmallRng::seed_from_u64(seed).gen();

    // 4. Sharded + streamed: plan, split into K timestamp-range shards,
    //    stream each shard to its own edge-list file (each of these could
    //    run in a separate process — a ShardSpec is a few serialisable
    //    integers), then merge the files.
    let engine = SimulationEngine::new(&model, &observed);
    let plan = engine.plan(master);
    println!(
        "plan: {} work units, {} edges budgeted, {} shards",
        plan.units().len(),
        plan.n_edges(),
        n_shards
    );
    let dir = std::env::temp_dir().join(format!("tgae_simulate_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let mut shard_paths = Vec::new();
    for spec in plan.shards(n_shards) {
        let path = dir.join(format!("shard_{}.edges", spec.shard));
        let n = generate_shard_with_sink(
            &model,
            &observed,
            &spec,
            StreamingWriterSink::create(&path).expect("create shard file"),
        )
        .expect("stream shard");
        println!(
            "  shard {}: t in [{}, {}), {} edges -> {}",
            spec.shard,
            spec.t_begin,
            spec.t_end,
            n,
            path.display()
        );
        shard_paths.push(path);
    }
    let merged_path = dir.join("merged.edges");
    merge_edge_lists(&shard_paths, &merged_path).expect("merge shard files");

    // 5. Verify: the merged file loads back to exactly the reference graph.
    let merged = load_edge_list_exact(&merged_path, observed.n_nodes(), observed.n_timestamps())
        .expect("parse merged file");
    assert_eq!(
        merged.edges(),
        reference.edges(),
        "sharded+streamed output differs from single-process generate()"
    );
    println!(
        "verified: merged {}-shard streamed output == single-process generate() ({} edges)",
        n_shards,
        reference.n_edges()
    );

    // 6. Statistics-only pass: no edges stored, same totals.
    let stats = generate_with_sink(
        &model,
        &observed,
        master,
        StatsSink::new(observed.n_timestamps()),
    );
    assert_eq!(
        stats,
        GenerationStats::from_graph(&reference),
        "StatsSink totals differ from GraphSink-derived stats"
    );
    assert_eq!(stats.edge_counts(), observed.edge_counts_per_timestamp());
    println!(
        "verified: StatsSink totals match ({} edges, mean out-degree at t=0: {:.2})",
        stats.n_edges(),
        stats.per_timestamp[0].mean_out_degree()
    );

    std::fs::remove_dir_all(&dir).ok();
    println!("ok");
}
