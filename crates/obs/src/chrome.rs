//! Merge per-process span JSONL files into Chrome `trace_event` JSON.
//!
//! Input files are the format written by [`crate::trace`]: one
//! process-header line (`{"meta":"process",…}`) followed by one
//! completed span per line. The merger:
//!
//! - normalises every process onto one time axis using the
//!   `epoch_ns` wall-clock anchor from each header (earliest anchor
//!   becomes `ts = 0`);
//! - emits one complete event (`"ph":"X"`) per span and a
//!   `process_name` metadata event per file;
//! - stitches cross-process parent links (a span whose parent id
//!   lives in another process) as flow events (`"ph":"s"` at the
//!   parent, `"ph":"f"` at the child), which trace viewers render as
//!   arrows from a driver's supervision span into the worker's root.
//!
//! The output loads directly in `chrome://tracing` / Perfetto.
//!
//! Parsing is a purpose-built field extractor, not a JSON parser: the
//! input is this crate's own fixed-key-order format, and keeping the
//! crate dependency-free matters more than tolerating foreign JSONL.

use crate::push_json_str;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// What a merge did, for CLI reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MergeSummary {
    /// Distinct processes (input files with a valid header).
    pub processes: usize,
    /// Total spans merged.
    pub spans: usize,
    /// Cross-process parent links stitched as flow events.
    pub links: usize,
}

struct ProcessHeader {
    pid: u64,
    label: String,
    epoch_ns: u64,
}

struct SpanRec {
    pid: u64,
    tid: u64,
    id: u64,
    parent: u64,
    name: String,
    /// Absolute start in ns (header epoch + relative start).
    abs_ns: u64,
    dur_ns: u64,
}

/// Extract the integer value of `"key":` from a record line.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let i = line.find(&pat)? + pat.len();
    let rest = &line[i..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extract the string value of `"key":"…"` from a record line,
/// undoing the escapes [`push_json_str`] produces.
fn field_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let i = line.find(&pat)? + pat.len();
    let rest = &line[i..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                esc => out.push(esc),
            },
            c => out.push(c),
        }
    }
    None
}

/// Merge `inputs` (trace JSONL files, one per process) into a Chrome
/// `trace_event` JSON file at `out`. Inputs that are missing or lack
/// a valid header are skipped — a crashed worker must not take the
/// rest of the timeline with it. Errors only on unwritable output or
/// when no input yields a header.
pub fn merge_traces(inputs: &[PathBuf], out: &Path) -> Result<MergeSummary, String> {
    let mut headers: Vec<ProcessHeader> = Vec::new();
    let mut spans: Vec<SpanRec> = Vec::new();

    for path in inputs {
        let Ok(text) = std::fs::read_to_string(path) else {
            continue;
        };
        let mut lines = text.lines();
        let Some(header_line) = lines.next() else {
            continue;
        };
        if field_str(header_line, "meta").as_deref() != Some("process") {
            continue;
        }
        let (Some(pid), Some(epoch_ns)) = (
            field_u64(header_line, "pid"),
            field_u64(header_line, "epoch_ns"),
        ) else {
            continue;
        };
        let label = field_str(header_line, "label").unwrap_or_else(|| format!("pid{pid}"));
        headers.push(ProcessHeader {
            pid,
            label,
            epoch_ns,
        });
        for line in lines {
            let (Some(tid), Some(id), Some(start_ns)) = (
                field_u64(line, "tid"),
                field_u64(line, "id"),
                field_u64(line, "start_ns"),
            ) else {
                continue;
            };
            spans.push(SpanRec {
                pid,
                tid,
                id,
                parent: field_u64(line, "parent").unwrap_or(0),
                name: field_str(line, "name").unwrap_or_default(),
                abs_ns: epoch_ns.saturating_add(start_ns),
                dur_ns: field_u64(line, "dur_ns").unwrap_or(0),
            });
        }
    }

    if headers.is_empty() {
        return Err("no trace input had a valid process header".to_string());
    }

    let t0 = headers.iter().map(|h| h.epoch_ns).min().unwrap_or(0);
    let us = |abs_ns: u64| (abs_ns.saturating_sub(t0)) as f64 / 1000.0;

    // id → (pid, tid, abs_ns) for flow stitching.
    let index: BTreeMap<u64, (u64, u64, u64)> = spans
        .iter()
        .map(|s| (s.id, (s.pid, s.tid, s.abs_ns)))
        .collect();

    let mut json = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut push_event = |json: &mut String, body: &str| {
        if !first {
            json.push(',');
        }
        first = false;
        json.push_str(body);
    };

    for h in &headers {
        let mut ev = format!(
            "{{\"ph\":\"M\",\"pid\":{},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":",
            h.pid
        );
        push_json_str(&mut ev, &h.label);
        ev.push_str("}}");
        push_event(&mut json, &ev);
    }

    let mut links = 0usize;
    for s in &spans {
        let mut ev = format!(
            "{{\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{},\"name\":",
            s.pid,
            s.tid,
            us(s.abs_ns),
            s.dur_ns as f64 / 1000.0,
        );
        push_json_str(&mut ev, &s.name);
        ev.push_str(&format!(
            ",\"args\":{{\"id\":{},\"parent\":{}}}}}",
            s.id, s.parent
        ));
        push_event(&mut json, &ev);

        if s.parent == 0 {
            continue;
        }
        let Some(&(ppid, ptid, pabs)) = index.get(&s.parent) else {
            continue;
        };
        if ppid == s.pid {
            continue;
        }
        links += 1;
        push_event(
            &mut json,
            &format!(
                "{{\"ph\":\"s\",\"pid\":{ppid},\"tid\":{ptid},\"ts\":{},\"id\":{},\
                 \"name\":\"shard\",\"cat\":\"link\"}}",
                us(pabs),
                s.parent
            ),
        );
        push_event(
            &mut json,
            &format!(
                "{{\"ph\":\"f\",\"bp\":\"e\",\"pid\":{},\"tid\":{},\"ts\":{},\"id\":{},\
                 \"name\":\"shard\",\"cat\":\"link\"}}",
                s.pid,
                s.tid,
                us(s.abs_ns),
                s.parent
            ),
        );
    }
    json.push_str("]}");

    std::fs::write(out, &json).map_err(|e| format!("writing {}: {e}", out.display()))?;
    Ok(MergeSummary {
        processes: headers.len(),
        spans: spans.len(),
        links,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(dir: &Path, name: &str, body: &str) -> PathBuf {
        let p = dir.join(name);
        std::fs::write(&p, body).unwrap();
        p
    }

    #[test]
    fn merges_two_processes_and_stitches_links() {
        let dir = std::env::temp_dir().join(format!("tg_obs_chrome_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // driver: pid 1, anchor 1_000ns; one root + one supervise span
        let driver = write(
            &dir,
            "driver.jsonl",
            "{\"meta\":\"process\",\"pid\":1,\"label\":\"driver\",\"epoch_ns\":1000}\n\
             {\"pid\":1,\"tid\":1,\"id\":101,\"parent\":0,\"name\":\"root\",\"start_ns\":0,\"dur_ns\":5000}\n\
             {\"pid\":1,\"tid\":1,\"id\":102,\"parent\":101,\"name\":\"supervise\",\"start_ns\":100,\"dur_ns\":4000}\n",
        );
        // worker: pid 2, anchor 2_000ns; root adopted from driver span 102
        let worker = write(
            &dir,
            "shard.jsonl",
            "{\"meta\":\"process\",\"pid\":2,\"label\":\"shard_0\",\"epoch_ns\":2000}\n\
             {\"pid\":2,\"tid\":1,\"id\":201,\"parent\":102,\"name\":\"worker\",\"start_ns\":0,\"dur_ns\":1000}\n",
        );
        let missing = dir.join("never_written.jsonl");
        let out = dir.join("trace.json");
        let sum = merge_traces(&[driver, worker, missing], &out).unwrap();
        assert_eq!(
            sum,
            MergeSummary {
                processes: 2,
                spans: 3,
                links: 1
            }
        );
        let json = std::fs::read_to_string(&out).unwrap();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"name\":\"driver\""));
        assert!(json.contains("\"name\":\"shard_0\""));
        // worker root starts at epoch 2000 → ts = (2000-1000)/1000 = 1µs
        assert!(json.contains("\"ph\":\"X\",\"pid\":2,\"tid\":1,\"ts\":1,"));
        // one s/f flow pair tied to the supervise span id
        assert!(json.contains("\"ph\":\"s\",\"pid\":1,\"tid\":1,"));
        assert!(json.contains("\"ph\":\"f\",\"bp\":\"e\",\"pid\":2,"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn errors_when_nothing_parses() {
        let dir = std::env::temp_dir().join(format!("tg_obs_chrome_err_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let junk = write(&dir, "junk.jsonl", "not a header\n");
        assert!(merge_traces(&[junk], &dir.join("out.json")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn field_extractors_roundtrip_escapes() {
        let mut s = String::new();
        push_json_str(&mut s, "a\"b\\c\nd");
        let line = format!("{{\"name\":{s},\"id\":7}}");
        assert_eq!(field_str(&line, "name").unwrap(), "a\"b\\c\nd");
        assert_eq!(field_u64(&line, "id").unwrap(), 7);
    }
}
