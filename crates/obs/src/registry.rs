//! The metrics registry: sharded counters, gauges, fixed-boundary
//! histograms, and the two exposition formats.
//!
//! Instruments are interned per `(name, sorted label set)`: the first
//! registration allocates, every later lookup returns the same
//! [`Arc`] handle, and the recording hot path is a relaxed atomic op
//! on a held handle. Exposition walks a `BTreeMap`, so output order is
//! deterministic without a sort step.

use crate::{lock_unpoisoned, push_json_str};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

// ---------------------------------------------------------------------------
// enable gate + stopwatch
// ---------------------------------------------------------------------------

static METRICS_ON: AtomicBool = AtomicBool::new(false);

/// Install the metrics "sink": after this, [`Stopwatch::start`] reads
/// the monotonic clock. Counter/gauge/histogram updates on held
/// handles are live regardless — this gate exists so that processes
/// which never export metrics pay zero wall-clock reads.
pub fn enable_metrics() {
    METRICS_ON.store(true, Ordering::Release);
}

/// Whether [`enable_metrics`] has been called in this process.
pub fn metrics_enabled() -> bool {
    METRICS_ON.load(Ordering::Acquire)
}

/// A latency timer that is inert until [`enable_metrics`] runs: when
/// metrics are off, `start` performs no clock read and `observe` is a
/// no-op, keeping the workspace's determinism contract auditable (all
/// wall-clock reads live in this crate).
pub struct Stopwatch {
    start: Option<std::time::Instant>,
}

impl Stopwatch {
    /// Start timing if metrics are enabled; otherwise return an inert
    /// stopwatch without touching the clock.
    pub fn start() -> Stopwatch {
        let start = if metrics_enabled() {
            // lint: allow(determinism) — metrics-only latency timing;
            // the reading is exported, never fed back into seeded state
            Some(std::time::Instant::now())
        } else {
            None
        };
        Stopwatch { start }
    }

    /// Seconds since `start`, or `None` for an inert stopwatch.
    pub fn elapsed_seconds(&self) -> Option<f64> {
        self.start.map(|s| s.elapsed().as_secs_f64())
    }

    /// Record the elapsed time into `h`; no-op when inert.
    pub fn observe(&self, h: &Histogram) {
        if let Some(s) = self.elapsed_seconds() {
            h.observe(s);
        }
    }
}

// ---------------------------------------------------------------------------
// instruments
// ---------------------------------------------------------------------------

/// Counter shard count; power of two so the thread slot maps with a
/// mask. Eight 64-byte lines bound the false-sharing cost without
/// bloating every counter past a page.
const SHARDS: usize = 8;

static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_SLOT: usize = NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed);
}

fn thread_slot() -> usize {
    // Threads being torn down fall back to slot 0; the sum is unaffected.
    THREAD_SLOT.try_with(|s| *s).unwrap_or(0)
}

/// One cache-line-padded counter shard.
#[repr(align(64))]
struct Shard(AtomicU64);

/// A monotonically increasing counter, sharded across cache lines so
/// concurrent writers on different threads do not bounce one line.
pub struct Counter {
    shards: [Shard; SHARDS],
}

impl Counter {
    fn new() -> Counter {
        Counter {
            shards: std::array::from_fn(|_| Shard(AtomicU64::new(0))),
        }
    }

    /// Add `n` to the counter (relaxed; lock-free).
    pub fn add(&self, n: u64) {
        self.shards[thread_slot() & (SHARDS - 1)]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total across all shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A last-write-wins floating-point gauge (f64 bits in an atomic).
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    fn new() -> Gauge {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Set the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta via CAS.
    pub fn add(&self, d: f64) {
        let _ = self
            .bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| {
                Some((f64::from_bits(b) + d).to_bits())
            });
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Default latency bucket boundaries (seconds), 250µs to 10s.
pub const LATENCY_SECONDS: &[f64] = &[
    0.000_25, 0.000_5, 0.001, 0.002_5, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
    10.0,
];

/// A fixed-boundary histogram. Buckets are stored non-cumulative
/// (bucket `i` counts observations `v <= bounds[i]`, the last bucket
/// is the `+Inf` overflow) and rendered cumulative for Prometheus.
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    sum_bits: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Histogram {
        let mut b: Vec<f64> = bounds.iter().copied().filter(|x| x.is_finite()).collect();
        b.sort_by(f64::total_cmp);
        b.dedup();
        let n = b.len() + 1;
        Histogram {
            bounds: b,
            buckets: (0..n).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Record one observation.
    pub fn observe(&self, v: f64) {
        let idx = self.bounds.partition_point(|b| *b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        let _ = self
            .sum_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| {
                Some((f64::from_bits(b) + v).to_bits())
            });
    }

    /// A point-in-time copy of the bucket counts and sum.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
        }
    }
}

/// An immutable histogram snapshot; the unit of export and merging.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Ascending `le` boundaries.
    pub bounds: Vec<f64>,
    /// Non-cumulative bucket counts, `bounds.len() + 1` entries (the
    /// last is the `+Inf` overflow bucket).
    pub counts: Vec<u64>,
    /// Sum of all observations.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Total observation count.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Merge two snapshots bucket-wise. Returns `None` when the
    /// boundary vectors differ (merging those would silently misbin).
    pub fn merge(&self, other: &HistogramSnapshot) -> Option<HistogramSnapshot> {
        if self.bounds != other.bounds || self.counts.len() != other.counts.len() {
            return None;
        }
        Some(HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .zip(&other.counts)
                .map(|(a, b)| a + b)
                .collect(),
            sum: self.sum + other.sum,
        })
    }
}

// ---------------------------------------------------------------------------
// registry
// ---------------------------------------------------------------------------

type Labels = Vec<(String, String)>;
type Key = (String, Labels);

fn intern_key(name: &str, labels: &[(&str, &str)]) -> Key {
    let mut ls: Labels = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    ls.sort();
    (name.to_string(), ls)
}

/// The value half of one exported metric.
#[derive(Clone, Debug)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram buckets + sum.
    Histogram(HistogramSnapshot),
}

/// One exported metric: name, sorted labels, value.
#[derive(Clone, Debug)]
pub struct MetricSnapshot {
    /// Dotted metric name as registered (e.g. `serve.requests`).
    pub name: String,
    /// Sorted `(key, value)` label pairs.
    pub labels: Vec<(String, String)>,
    /// The recorded value.
    pub value: MetricValue,
}

/// An instrument registry. Most callers use the process-wide
/// [`Registry::global`]; tests construct private instances so their
/// assertions cannot race other tests' counters.
pub struct Registry {
    counters: Mutex<BTreeMap<Key, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<Key, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<Key, Arc<Histogram>>>,
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }

    /// The process-wide registry.
    pub fn global() -> &'static Registry {
        GLOBAL.get_or_init(Registry::new)
    }

    /// Intern (or fetch) the counter `name{labels}`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = intern_key(name, labels);
        let mut map = lock_unpoisoned(&self.counters);
        Arc::clone(map.entry(key).or_insert_with(|| Arc::new(Counter::new())))
    }

    /// Intern (or fetch) the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key = intern_key(name, labels);
        let mut map = lock_unpoisoned(&self.gauges);
        Arc::clone(map.entry(key).or_insert_with(|| Arc::new(Gauge::new())))
    }

    /// Intern (or fetch) the histogram `name{labels}` with the given
    /// `le` boundaries. If the histogram already exists its original
    /// boundaries win — boundaries are part of the instrument's
    /// identity, not of any one call site.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], bounds: &[f64]) -> Arc<Histogram> {
        let key = intern_key(name, labels);
        let mut map = lock_unpoisoned(&self.histograms);
        Arc::clone(
            map.entry(key)
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// A typed snapshot of every instrument, sorted by
    /// `(name, labels)`. This is what the serve `status` frame
    /// and both renderers are built from.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let mut out = Vec::new();
        for ((name, labels), c) in lock_unpoisoned(&self.counters).iter() {
            out.push(MetricSnapshot {
                name: name.clone(),
                labels: labels.clone(),
                value: MetricValue::Counter(c.get()),
            });
        }
        for ((name, labels), g) in lock_unpoisoned(&self.gauges).iter() {
            out.push(MetricSnapshot {
                name: name.clone(),
                labels: labels.clone(),
                value: MetricValue::Gauge(g.get()),
            });
        }
        for ((name, labels), h) in lock_unpoisoned(&self.histograms).iter() {
            out.push(MetricSnapshot {
                name: name.clone(),
                labels: labels.clone(),
                value: MetricValue::Histogram(h.snapshot()),
            });
        }
        out.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        out
    }

    /// Render the registry in Prometheus text exposition format.
    /// Dotted names are sanitised to underscore form; instruments are
    /// emitted in sorted order with one `# TYPE` line per family.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family = String::new();
        for m in self.snapshot() {
            let fam = sanitize(&m.name);
            match &m.value {
                MetricValue::Counter(v) => {
                    type_line(&mut out, &mut last_family, &fam, "counter");
                    out.push_str(&fam);
                    label_block(&mut out, &m.labels, None);
                    out.push_str(&format!(" {v}\n"));
                }
                MetricValue::Gauge(v) => {
                    type_line(&mut out, &mut last_family, &fam, "gauge");
                    out.push_str(&fam);
                    label_block(&mut out, &m.labels, None);
                    out.push_str(&format!(" {v}\n"));
                }
                MetricValue::Histogram(h) => {
                    type_line(&mut out, &mut last_family, &fam, "histogram");
                    let mut cum = 0u64;
                    for (i, c) in h.counts.iter().enumerate() {
                        cum += c;
                        let le = match h.bounds.get(i) {
                            Some(b) => format!("{b}"),
                            None => "+Inf".to_string(),
                        };
                        out.push_str(&format!("{fam}_bucket"));
                        label_block(&mut out, &m.labels, Some(&le));
                        out.push_str(&format!(" {cum}\n"));
                    }
                    out.push_str(&format!("{fam}_sum"));
                    label_block(&mut out, &m.labels, None);
                    out.push_str(&format!(" {}\n", h.sum));
                    out.push_str(&format!("{fam}_count"));
                    label_block(&mut out, &m.labels, None);
                    out.push_str(&format!(" {cum}\n"));
                }
            }
        }
        out
    }

    /// Render the registry as a JSON array (hand-rolled; this crate
    /// has no serde). One object per instrument, sorted as
    /// [`Registry::snapshot`].
    pub fn render_json(&self) -> String {
        let mut out = String::from("[");
        for (i, m) in self.snapshot().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            push_json_str(&mut out, &m.name);
            out.push_str(",\"labels\":{");
            for (j, (k, v)) in m.labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                push_json_str(&mut out, k);
                out.push(':');
                push_json_str(&mut out, v);
            }
            out.push_str("},");
            match &m.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("\"type\":\"counter\",\"value\":{v}"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("\"type\":\"gauge\",\"value\":{v}"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str("\"type\":\"histogram\",\"bounds\":[");
                    for (j, b) in h.bounds.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str(&format!("{b}"));
                    }
                    out.push_str("],\"counts\":[");
                    for (j, c) in h.counts.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str(&format!("{c}"));
                    }
                    out.push_str(&format!("],\"sum\":{}", h.sum));
                }
            }
            out.push('}');
        }
        out.push(']');
        out
    }
}

/// Map a dotted metric name onto the Prometheus charset.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn type_line(out: &mut String, last: &mut String, fam: &str, kind: &str) {
    if last != fam {
        out.push_str(&format!("# TYPE {fam} {kind}\n"));
        *last = fam.to_string();
    }
}

/// Append `{k="v",…}` (plus an optional `le`) to `out`; nothing when
/// there are no labels and no `le`.
fn label_block(out: &mut String, labels: &[(String, String)], le: Option<&str>) {
    if labels.is_empty() && le.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&sanitize(k));
        out.push('=');
        push_json_str(out, v);
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str("le=");
        push_json_str(out, le);
    }
    out.push('}');
}

/// Intern (or fetch) a counter in the global registry:
/// `counter!("serve.requests")` or
/// `counter!("serve.requests", run = run_id)`.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {
        $crate::Registry::global().counter($name, &[])
    };
    ($name:expr, $($k:ident = $v:expr),+ $(,)?) => {
        $crate::Registry::global().counter($name, &[$((stringify!($k), $v)),+])
    };
}

/// Intern (or fetch) a gauge in the global registry; same shapes as
/// [`counter!`].
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {
        $crate::Registry::global().gauge($name, &[])
    };
    ($name:expr, $($k:ident = $v:expr),+ $(,)?) => {
        $crate::Registry::global().gauge($name, &[$((stringify!($k), $v)),+])
    };
}

/// Intern (or fetch) a histogram in the global registry. The bounds
/// slice follows the name: `histogram!("serve.request.seconds",
/// tg_obs::LATENCY_SECONDS, cache = "hit")`.
#[macro_export]
macro_rules! histogram {
    ($name:expr, $bounds:expr) => {
        $crate::Registry::global().histogram($name, &[], $bounds)
    };
    ($name:expr, $bounds:expr, $($k:ident = $v:expr),+ $(,)?) => {
        $crate::Registry::global().histogram($name, &[$((stringify!($k), $v)),+], $bounds)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_shards() {
        let r = Registry::new();
        let c = r.counter("t.c", &[]);
        c.add(3);
        c.inc();
        assert_eq!(c.get(), 4);
    }

    #[test]
    fn labels_are_interned_sorted() {
        let r = Registry::new();
        let a = r.counter("t.c", &[("b", "2"), ("a", "1")]);
        let b = r.counter("t.c", &[("a", "1"), ("b", "2")]);
        a.inc();
        assert_eq!(b.get(), 1, "same label set must intern to one handle");
    }

    #[test]
    fn gauge_set_add_get() {
        let r = Registry::new();
        let g = r.gauge("t.g", &[]);
        g.set(2.5);
        g.add(-1.0);
        assert_eq!(g.get(), 1.5);
    }

    #[test]
    fn histogram_bucket_boundaries_are_le() {
        let r = Registry::new();
        let h = r.histogram("t.h", &[], &[1.0, 2.0]);
        h.observe(0.5); // <= 1.0
        h.observe(1.0); // <= 1.0 (le is inclusive)
        h.observe(1.5); // <= 2.0
        h.observe(9.0); // +Inf
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 1, 1]);
        assert_eq!(s.count(), 4);
        assert_eq!(s.sum, 12.0);
    }

    #[test]
    fn histogram_merge_requires_same_bounds() {
        let r = Registry::new();
        let a = r.histogram("t.a", &[], &[1.0]).snapshot();
        let b = r.histogram("t.b", &[], &[2.0]).snapshot();
        assert!(a.merge(&b).is_none());
        assert!(a.merge(&a).is_some());
    }

    #[test]
    fn prometheus_rendering_is_sorted_and_typed() {
        let r = Registry::new();
        r.counter("serve.requests", &[("run", "r1")]).add(2);
        r.counter("serve.requests", &[("run", "r2")]).inc();
        r.gauge("serve.inflight.cost", &[]).set(7.0);
        let h = r.histogram("lat.seconds", &[], &[0.3]);
        h.observe(0.25);
        h.observe(0.5);
        let text = r.render_prometheus();
        let expected = "# TYPE lat_seconds histogram\n\
                        lat_seconds_bucket{le=\"0.3\"} 1\n\
                        lat_seconds_bucket{le=\"+Inf\"} 2\n\
                        lat_seconds_sum 0.75\n\
                        lat_seconds_count 2\n\
                        # TYPE serve_inflight_cost gauge\n\
                        serve_inflight_cost 7\n\
                        # TYPE serve_requests counter\n\
                        serve_requests{run=\"r1\"} 2\n\
                        serve_requests{run=\"r2\"} 1\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn json_rendering_is_parseable_shape() {
        let r = Registry::new();
        r.counter("a.b", &[("k", "v\"q")]).inc();
        let json = r.render_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"name\":\"a.b\""));
        assert!(json.contains("\\\"q")); // escaped quote survives
    }

    #[test]
    fn stopwatch_is_inert_until_enabled() {
        // Runs before any test in this process calls enable_metrics():
        // relies on test ordering being irrelevant — we only check the
        // inert path when the flag is genuinely off.
        if !metrics_enabled() {
            let sw = Stopwatch::start();
            assert!(sw.elapsed_seconds().is_none());
        }
    }
}
