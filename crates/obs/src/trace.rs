//! RAII trace spans, buffered per-thread and flushed as JSONL.
//!
//! A process that wants a trace calls [`install`] once with an output
//! path; until then every [`span`] call returns an inert guard that
//! reads no clock and allocates nothing. Span records carry explicit
//! ids and parent ids so the [`crate::chrome`] merger can stitch a
//! driver process and its fork/exec'd shard workers into one timeline:
//! the driver exports each supervision span's id to the child via
//! [`ENV_TRACE_PARENT`] and names the child's output file via
//! [`ENV_TRACE_FILE`]; the worker adopts that id as the parent of its
//! root span.
//!
//! ## File format
//!
//! One JSON object per line. The first line is a process header:
//!
//! ```text
//! {"meta":"process","pid":1234,"label":"driver","epoch_ns":1699…}
//! ```
//!
//! `epoch_ns` is the wall-clock UNIX time captured at the same moment
//! as the monotonic anchor, so merged timelines from different
//! processes share an axis. Every other line is a completed span:
//!
//! ```text
//! {"pid":1234,"tid":1,"id":5299989643265,"parent":5299989643264,
//!  "name":"engine.generate","start_ns":8121,"dur_ns":52100}
//! ```
//!
//! `start_ns` is relative to the process anchor; `parent` is `0` for
//! roots. Span ids are `(pid << 32) | seq`, unique across the
//! processes of one run.

use crate::{lock_unpoisoned, push_json_str};
use std::cell::RefCell;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Env var naming the trace output file for a spawned worker.
pub const ENV_TRACE_FILE: &str = "TG_TRACE";
/// Env var carrying the parent span id across fork/exec (decimal).
pub const ENV_TRACE_PARENT: &str = "TG_TRACE_PARENT";

/// Flush a thread buffer into the sink once it grows past this.
const FLUSH_BYTES: usize = 32 * 1024;

static TRACE_ON: AtomicBool = AtomicBool::new(false);
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

struct Anchor {
    start: std::time::Instant,
    epoch_ns: u64,
    pid: u32,
}

struct SinkState {
    writer: BufWriter<File>,
    /// Every thread's pending-span buffer, registered on first use so
    /// [`flush`] can drain threads that never exit (pool workers).
    buffers: Vec<Arc<Mutex<String>>>,
}

static ANCHOR: OnceLock<Anchor> = OnceLock::new();
static SINK: OnceLock<Mutex<SinkState>> = OnceLock::new();

thread_local! {
    static THREAD: RefCell<ThreadTrace> = RefCell::new(ThreadTrace {
        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
        stack: Vec::new(),
        buf: None,
    });
}

struct ThreadTrace {
    tid: u64,
    stack: Vec<u64>,
    buf: Option<Arc<Mutex<String>>>,
}

impl ThreadTrace {
    fn buffer(&mut self) -> Arc<Mutex<String>> {
        if let Some(b) = &self.buf {
            return Arc::clone(b);
        }
        let b = Arc::new(Mutex::new(String::new()));
        if let Some(sink) = SINK.get() {
            lock_unpoisoned(sink).buffers.push(Arc::clone(&b));
        }
        self.buf = Some(Arc::clone(&b));
        b
    }
}

/// Install the span sink: record the monotonic/wall anchor, write the
/// process header line to `path`, and arm span recording. Errors if a
/// sink is already installed (one trace file per process).
pub fn install(path: &Path, label: &str) -> std::io::Result<()> {
    if SINK.get().is_some() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::AlreadyExists,
            "trace sink already installed",
        ));
    }
    let anchor = ANCHOR.get_or_init(|| Anchor {
        // lint: allow(determinism) — trace anchoring: the monotonic
        // start and its wall-clock twin are exported to the trace file
        // only, never fed back into seeded state
        start: std::time::Instant::now(),
        epoch_ns: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0),
        pid: std::process::id(),
    });
    let mut writer = BufWriter::new(File::create(path)?);
    let mut header = String::from("{\"meta\":\"process\",\"pid\":");
    header.push_str(&anchor.pid.to_string());
    header.push_str(",\"label\":");
    push_json_str(&mut header, label);
    header.push_str(",\"epoch_ns\":");
    header.push_str(&anchor.epoch_ns.to_string());
    header.push('}');
    writeln!(writer, "{header}")?;
    writer.flush()?;
    let _ = SINK.set(Mutex::new(SinkState {
        writer,
        buffers: Vec::new(),
    }));
    TRACE_ON.store(true, Ordering::Release);
    Ok(())
}

/// Whether a span sink is installed in this process.
pub fn enabled() -> bool {
    TRACE_ON.load(Ordering::Acquire)
}

/// Open a span. Inert (no clock read, no allocation) until
/// [`install`] has run. The parent is the innermost open span on this
/// thread, if any.
pub fn span(name: &'static str) -> SpanGuard {
    span_inner(name, None)
}

/// Open a span with an explicit parent id — used by worker processes
/// to adopt the driver-side supervision span exported through
/// [`ENV_TRACE_PARENT`].
pub fn span_with_parent(name: &'static str, parent: u64) -> SpanGuard {
    span_inner(name, Some(parent))
}

fn span_inner(name: &'static str, explicit_parent: Option<u64>) -> SpanGuard {
    if !enabled() {
        return SpanGuard(None);
    }
    let Some(anchor) = ANCHOR.get() else {
        return SpanGuard(None);
    };
    let seq = NEXT_SPAN.fetch_add(1, Ordering::Relaxed) & 0xffff_ffff;
    let id = ((anchor.pid as u64) << 32) | seq;
    let data = THREAD.try_with(|t| {
        let mut t = t.borrow_mut();
        let parent = explicit_parent
            .or_else(|| t.stack.last().copied())
            .unwrap_or(0);
        t.stack.push(id);
        SpanData {
            name,
            id,
            parent,
            tid: t.tid,
            start_ns: anchor.start.elapsed().as_nanos() as u64,
        }
    });
    SpanGuard(data.ok())
}

struct SpanData {
    name: &'static str,
    id: u64,
    parent: u64,
    tid: u64,
    start_ns: u64,
}

/// An open span; records itself into the thread buffer on drop.
pub struct SpanGuard(Option<SpanData>);

impl SpanGuard {
    /// The span id, for handing to a child process as its root
    /// parent; `None` when tracing is off.
    pub fn id(&self) -> Option<u64> {
        self.0.as_ref().map(|d| d.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(d) = self.0.take() else { return };
        let Some(anchor) = ANCHOR.get() else { return };
        let end_ns = anchor.start.elapsed().as_nanos() as u64;
        let mut line = String::with_capacity(128);
        line.push_str("{\"pid\":");
        line.push_str(&anchor.pid.to_string());
        line.push_str(",\"tid\":");
        line.push_str(&d.tid.to_string());
        line.push_str(",\"id\":");
        line.push_str(&d.id.to_string());
        line.push_str(",\"parent\":");
        line.push_str(&d.parent.to_string());
        line.push_str(",\"name\":");
        push_json_str(&mut line, d.name);
        line.push_str(",\"start_ns\":");
        line.push_str(&d.start_ns.to_string());
        line.push_str(",\"dur_ns\":");
        line.push_str(&end_ns.saturating_sub(d.start_ns).to_string());
        line.push_str("}\n");
        let overflowing = THREAD
            .try_with(|t| {
                let mut t = t.borrow_mut();
                if t.stack.last() == Some(&d.id) {
                    t.stack.pop();
                } else {
                    t.stack.retain(|&x| x != d.id);
                }
                let buf = t.buffer();
                let len = {
                    let mut b = lock_unpoisoned(&buf);
                    b.push_str(&line);
                    b.len()
                };
                (len > FLUSH_BYTES).then_some(buf)
            })
            .ok()
            .flatten();
        if let Some(buf) = overflowing {
            drain_one(&buf);
        }
    }
}

/// Drain one thread buffer into the sink. Lock order is sink first,
/// then buffer — the same order `flush` uses.
fn drain_one(buf: &Arc<Mutex<String>>) {
    let Some(sink) = SINK.get() else { return };
    let mut st = lock_unpoisoned(sink);
    let mut b = lock_unpoisoned(buf);
    let _ = st.writer.write_all(b.as_bytes());
    b.clear();
}

/// Drain every thread's span buffer into the trace file and flush it.
/// Call before process exit (and in workers before returning): pool
/// threads never unwind their TLS, so this is the only way their
/// buffered spans reach disk. No-op when tracing is off.
pub fn flush() -> std::io::Result<()> {
    let Some(sink) = SINK.get() else {
        return Ok(());
    };
    let mut st = lock_unpoisoned(sink);
    let buffers: Vec<Arc<Mutex<String>>> = st.buffers.iter().map(Arc::clone).collect();
    for buf in &buffers {
        let mut b = lock_unpoisoned(buf);
        st.writer.write_all(b.as_bytes())?;
        b.clear();
    }
    st.writer.flush()
}

/// The parent span id exported by a driver process, if any.
pub fn env_parent() -> Option<u64> {
    std::env::var(ENV_TRACE_PARENT)
        .ok()
        .and_then(|s| s.parse().ok())
}

/// The trace output path exported by a driver process, if any.
pub fn env_trace_file() -> Option<PathBuf> {
    std::env::var_os(ENV_TRACE_FILE).map(PathBuf::from)
}

/// Open a span on the global sink (shorthand for
/// [`trace::span`](span)): `let _g = span!("engine.generate");`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::span($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // `install` is process-global, so everything that needs a live
    // sink lives in ONE test; the inert-path test only asserts when
    // the sink is genuinely absent (true under `cargo test` unless
    // another test in this binary installed it first — which is
    // exactly the live test below, hence the guard).
    #[test]
    fn inert_guard_has_no_id() {
        let g = span("t.inert");
        // Re-check after the call: the live-sink test may install the
        // global sink concurrently, but the flag never goes back off,
        // so "still off now" implies it was off when `span` ran.
        if !enabled() {
            assert!(g.id().is_none());
        }
    }

    #[test]
    fn spans_record_nesting_and_flush() {
        let dir = std::env::temp_dir().join(format!("tg_obs_trace_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        install(&path, "unit").unwrap();
        assert!(install(&path, "twice").is_err());

        let outer_id;
        {
            let outer = span("t.outer");
            outer_id = outer.id().unwrap();
            let inner = span("t.inner");
            assert_ne!(inner.id().unwrap(), outer_id);
            drop(inner);
        }
        {
            let adopted = span_with_parent("t.adopted", 42);
            assert!(adopted.id().is_some());
        }
        flush().unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("\"meta\":\"process\""));
        assert!(lines[0].contains("\"label\":\"unit\""));
        let rec = |name: &str| {
            let needle = format!("\"name\":\"{name}\"");
            lines
                .iter()
                .find(|l| l.contains(&needle))
                .copied()
                .unwrap_or_else(|| panic!("no record for {name}"))
        };
        assert!(rec("t.inner").contains(&format!("\"parent\":{outer_id},")));
        assert!(rec("t.outer").contains("\"parent\":0,"));
        assert!(rec("t.adopted").contains("\"parent\":42,"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
