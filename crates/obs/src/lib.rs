//! # tg-obs — workspace telemetry
//!
//! Dependency-free observability layer threaded through every crate in
//! the workspace:
//!
//! - [`Registry`] — a global metrics registry of sharded atomic
//!   [`Counter`]s, [`Gauge`]s, and fixed-boundary [`Histogram`]s, with
//!   Prometheus-style text exposition ([`Registry::render_prometheus`])
//!   and JSON export ([`Registry::render_json`]). Handles are interned
//!   per `(name, label-set)`; the hot path is a relaxed atomic op on an
//!   already-held handle — no locks, no allocation.
//! - [`trace`] — RAII span guards capturing monotonic start/duration
//!   and explicit parent ids, buffered per-thread and flushed as JSONL.
//!   Spans stitch across fork/exec'd worker processes via the
//!   [`trace::ENV_TRACE_FILE`]/[`trace::ENV_TRACE_PARENT`] env-var
//!   handshake.
//! - [`chrome`] — merges per-process span JSONL files into Chrome
//!   `trace_event` JSON so a whole driver + shard-worker run renders in
//!   a trace viewer.
//!
//! ## The zero-cost-when-idle contract
//!
//! Until a sink is installed ([`enable_metrics`] for timers,
//! [`trace::install`] for spans), telemetry calls read no wall clock
//! and allocate nothing: [`Stopwatch::start`] returns an empty
//! stopwatch and [`trace::span`] returns an inert guard. Counter and
//! gauge updates on held handles are single relaxed atomic ops and are
//! always live (they are cheaper than the branch that would gate
//! them). Nothing in this crate ever feeds seeded state, so outputs
//! are bit-identical with telemetry on or off; the wall-clock reads
//! themselves are confined to this crate behind argued
//! `lint: allow(determinism)` hatches.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chrome;
mod registry;
pub mod trace;

pub use registry::{
    enable_metrics, metrics_enabled, Counter, Gauge, Histogram, HistogramSnapshot, MetricSnapshot,
    MetricValue, Registry, Stopwatch, LATENCY_SECONDS,
};

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Lock a mutex, adopting the data if a holder panicked. Telemetry
/// state stays usable after a panic elsewhere: a half-updated buffer
/// is strictly better than a poisoned (and therefore silent) one.
pub(crate) fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Append `s` to `out` as a JSON string literal (with quotes),
/// escaping the characters JSON requires. Used by the hand-rolled
/// JSONL/JSON writers — this crate deliberately has no serde
/// dependency.
pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
