//! Registry correctness under concurrency and randomised inputs:
//!
//! 1. counters are exact under the workspace thread pool — no lost
//!    updates across shards;
//! 2. histogram binning matches a scalar reference for arbitrary
//!    bounds/observations (`le` semantics, duplicate/unsorted bounds
//!    sanitised);
//! 3. snapshot merge is associative and count-preserving (observations
//!    are drawn integer-valued so the f64 sums are exact).

use proptest::prelude::*;
use tg_obs::{HistogramSnapshot, Registry};

#[test]
fn concurrent_counter_is_exact_under_the_thread_pool() {
    let r = Registry::new();
    let c = r.counter("t.pool", &[]);
    let h = r.histogram("t.pool.h", &[], &[10.0, 100.0]);
    const TASKS: usize = 64;
    const PER: u64 = 10_000;
    let done: Vec<u64> = tg_tensor::parallel::par_map(TASKS, |i| {
        for k in 0..PER {
            c.add(1);
            if k % 100 == 0 {
                h.observe((i % 3) as f64 * 50.0);
            }
        }
        PER
    });
    assert_eq!(done.iter().sum::<u64>(), TASKS as u64 * PER);
    assert_eq!(c.get(), TASKS as u64 * PER);
    assert_eq!(h.snapshot().count(), TASKS as u64 * (PER / 100));
}

/// Reference binning: index of the first bound `>= v`, overflow last.
fn reference_bucket(bounds: &[f64], v: f64) -> usize {
    bounds.iter().position(|b| v <= *b).unwrap_or(bounds.len())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn histogram_binning_matches_reference(
        raw_bounds in proptest::collection::vec(-50i32..50, 1..6),
        obs in proptest::collection::vec(-60i32..60, 0..40),
    ) {
        let r = Registry::new();
        let bounds_f: Vec<f64> = raw_bounds.iter().map(|b| *b as f64).collect();
        let h = r.histogram("p.h", &[], &bounds_f);

        // The instrument sanitises: sorted, deduped.
        let mut clean = bounds_f.clone();
        clean.sort_by(f64::total_cmp);
        clean.dedup();

        let mut expect = vec![0u64; clean.len() + 1];
        let mut expect_sum = 0f64;
        for o in &obs {
            let v = *o as f64;
            h.observe(v);
            expect[reference_bucket(&clean, v)] += 1;
            expect_sum += v;
        }
        let s = h.snapshot();
        prop_assert_eq!(&s.bounds, &clean);
        prop_assert_eq!(&s.counts, &expect);
        prop_assert_eq!(s.sum, expect_sum);
        prop_assert_eq!(s.count(), obs.len() as u64);
    }

    #[test]
    fn snapshot_merge_is_associative(
        a in proptest::collection::vec(0i32..100, 0..30),
        b in proptest::collection::vec(0i32..100, 0..30),
        c in proptest::collection::vec(0i32..100, 0..30),
    ) {
        let bounds = [10.0, 25.0, 50.0];
        let snap = |obs: &[i32]| -> HistogramSnapshot {
            let r = Registry::new();
            let h = r.histogram("p.m", &[], &bounds);
            for o in obs {
                h.observe(*o as f64);
            }
            h.snapshot()
        };
        let (sa, sb, sc) = (snap(&a), snap(&b), snap(&c));
        let left = sa.merge(&sb).unwrap().merge(&sc).unwrap();
        let right = sa.merge(&sb.merge(&sc).unwrap()).unwrap();
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(
            left.count(),
            (a.len() + b.len() + c.len()) as u64,
            "merge must preserve the total observation count"
        );
    }
}
