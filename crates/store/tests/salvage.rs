//! Acceptance tests for `StoreReader::salvage` (ISSUE 6): block-by-block
//! recovery of damaged TGES files.
//!
//! The proptest is the load-bearing one: under random payload damage
//! (byte flips and truncation), salvage must (a) never emit an edge that
//! fails the structural checks, and (b) recover *every* block outside
//! the damaged byte ranges, exactly.

use proptest::prelude::*;
use tg_graph::{TemporalEdge, TemporalGraph};
use tg_store::{writer, StoreError, StoreReader};

fn tmp(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("tg_store_salvage_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn sample_graph(n_nodes: usize, t_count: usize, m: usize) -> TemporalGraph {
    let mut edges = Vec::with_capacity(m);
    for i in 0..m {
        let t = (i * t_count / m) as u32;
        let u = (i * 7 % n_nodes) as u32;
        let v = (i * 13 % n_nodes) as u32;
        edges.push(TemporalEdge::new(u, v, t));
    }
    TemporalGraph::from_edges(n_nodes, t_count, edges)
}

/// Collect everything salvage emits.
fn run_salvage(path: &std::path::Path) -> (tg_store::SalvageReport, Vec<TemporalEdge>) {
    let mut got = Vec::new();
    let report = StoreReader::salvage(path, |_h, edges| {
        got.extend_from_slice(edges);
        Ok(())
    })
    .unwrap();
    (report, got)
}

#[test]
fn salvage_of_a_clean_store_recovers_everything() {
    let dir = tmp("clean");
    let path = dir.join("clean.tgs");
    let g = sample_graph(30, 5, 200);
    writer::write_source(&mut tg_graph::source::InMemorySource::new(&g), &path, 16).unwrap();
    let (report, got) = run_salvage(&path);
    assert!(report.is_clean());
    assert!(report.index_valid);
    assert_eq!(report.recovered_edges, 200);
    assert_eq!(report.lost_edges, 0);
    assert_eq!(got, g.edges());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn salvage_skips_exactly_the_damaged_block() {
    let dir = tmp("oneblock");
    let path = dir.join("dmg.tgs");
    let g = sample_graph(30, 5, 200);
    writer::write_source(&mut tg_graph::source::InMemorySource::new(&g), &path, 16).unwrap();
    let header = *StoreReader::open(&path).unwrap().header();
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[header.block_offset(3) as usize] ^= 0xA5; // damage block 3
    std::fs::write(&path, &bytes).unwrap();

    // the damaged block is unreadable through the normal path...
    let mut reader = StoreReader::open(&path).unwrap();
    assert!(matches!(
        reader.verify_payload(),
        Err(StoreError::BlockChecksum { block: 3, .. })
    ));
    // ...but salvage recovers all the others
    let (report, got) = run_salvage(&path);
    assert_eq!(report.bad_blocks, vec![3]);
    assert_eq!(report.lost_edges, 16);
    assert_eq!(report.recovered_edges, 200 - 16);
    let expected: Vec<TemporalEdge> = g
        .edges()
        .iter()
        .enumerate()
        .filter(|(i, _)| !(48..64).contains(i))
        .map(|(_, &e)| e)
        .collect();
    assert_eq!(got, expected);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn salvage_of_a_truncated_file_recovers_the_prefix() {
    let dir = tmp("trunc");
    let path = dir.join("trunc.tgs");
    let g = sample_graph(30, 5, 200);
    writer::write_source(&mut tg_graph::source::InMemorySource::new(&g), &path, 16).unwrap();
    let header = *StoreReader::open(&path).unwrap().header();
    let bytes = std::fs::read(&path).unwrap();
    // keep the first 5 blocks plus a few bytes of block 5
    let cut = header.block_offset(5) as usize + 7;
    std::fs::write(&path, &bytes[..cut]).unwrap();

    assert!(matches!(
        StoreReader::open(&path),
        Err(StoreError::Truncated { .. })
    ));
    let (report, got) = run_salvage(&path);
    assert_eq!(report.recovered_edges, 5 * 16);
    assert_eq!(report.bad_blocks.len() as u64, report.n_blocks - 5);
    assert_eq!(got, &g.edges()[..80]);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn salvage_with_a_corrupt_index_still_walks_the_blocks() {
    let dir = tmp("index");
    let path = dir.join("idx.tgs");
    let g = sample_graph(30, 5, 200);
    writer::write_source(&mut tg_graph::source::InMemorySource::new(&g), &path, 16).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[60] ^= 0x10; // inside the timestamp index
    std::fs::write(&path, &bytes).unwrap();

    assert!(matches!(
        StoreReader::open(&path),
        Err(StoreError::HeaderChecksum { .. })
    ));
    let (report, got) = run_salvage(&path);
    assert!(!report.index_valid);
    assert!(!report.is_clean());
    assert_eq!(report.recovered_edges, 200);
    assert_eq!(got, g.edges());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn salvage_refuses_files_that_are_not_stores() {
    let dir = tmp("notastore");
    let path = dir.join("garbage.bin");
    std::fs::write(
        &path,
        b"this is not a TGES store, not even close -- padded well past the 56-byte header",
    )
    .unwrap();
    assert!(matches!(
        StoreReader::salvage(&path, |_, _| Ok(())),
        Err(StoreError::BadMagic { .. })
    ));
    std::fs::write(&path, b"shrt").unwrap();
    assert!(matches!(
        StoreReader::salvage(&path, |_, _| Ok(())),
        Err(StoreError::Truncated { .. })
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Random damage (byte flips in the payload region, optional tail
    /// truncation) never makes salvage emit a bad edge, and every block
    /// outside the damaged byte ranges is recovered exactly.
    #[test]
    fn prop_salvage_recovers_all_undamaged_blocks(
        case in (2usize..20, 1usize..5, 0usize..150, 2usize..24)
            .prop_flat_map(|shape| {
                (
                    Just(shape),
                    proptest::collection::vec((0usize..1000, 0u8..255), 0..6),
                    0usize..3,
                )
            })
    ) {
        let ((n_nodes, t_count, m, block), flips, truncate_blocks) = case;
        let dir = tmp("prop");
        let path = dir.join(format!("case_{block}_{m}.tgs"));
        let g = sample_graph(n_nodes, t_count, m);
        writer::write_source(
            &mut tg_graph::source::InMemorySource::new(&g),
            &path,
            block,
        ).unwrap();
        let header = *StoreReader::open(&path).unwrap().header();
        let mut bytes = std::fs::read(&path).unwrap();
        let payload_start = header.payload_start() as usize;

        // apply damage, tracking which blocks each flip lands in
        let mut damaged = std::collections::BTreeSet::new();
        for (pos, mask) in flips {
            if bytes.len() == payload_start { break; }
            let pos = payload_start + pos % (bytes.len() - payload_start);
            if mask == 0 { continue; } // XOR by 0 is no damage
            bytes[pos] ^= mask;
            let k = ((pos - payload_start) as u64)
                / (header.block_edges * 12 + 8);
            damaged.insert(k.min(header.n_blocks().saturating_sub(1)));
        }
        let truncate_blocks = truncate_blocks.min(header.n_blocks() as usize);
        if truncate_blocks > 0 {
            let first_cut = header.n_blocks() - truncate_blocks as u64;
            // cut into (not at) the first truncated block so it is damaged
            bytes.truncate(header.block_offset(first_cut) as usize + 1);
            for k in first_cut..header.n_blocks() {
                damaged.insert(k);
            }
        }
        std::fs::write(&path, &bytes).unwrap();

        let (report, got) = run_salvage(&path);
        // every undamaged block recovered, in order, bit-exact
        let mut expected = Vec::new();
        let mut expected_lost = 0u64;
        for k in 0..header.n_blocks() {
            let a = (k * header.block_edges) as usize;
            let b = (a as u64 + header.block_len(k)) as usize;
            if damaged.contains(&k) {
                expected_lost += header.block_len(k);
            } else {
                expected.extend_from_slice(&g.edges()[a..b]);
            }
        }
        prop_assert_eq!(&got, &expected);
        prop_assert_eq!(report.recovered_edges + report.lost_edges,
            header.n_edges);
        prop_assert_eq!(report.lost_edges, expected_lost);
        // structural soundness of everything emitted: in shape + sorted
        prop_assert!(got.iter().all(|e| (e.u as usize) < n_nodes
            && (e.v as usize) < n_nodes
            && (e.t as usize) < t_count));
        prop_assert!(got.windows(2).all(|w| w[0] <= w[1]));
        std::fs::remove_file(&path).ok();
    }
}
