//! Acceptance tests for the PR-5 edge store:
//!
//! - **round-trip fidelity** (proptest): random multigraph → store →
//!   chunked read reproduces the exact canonical edge order, across
//!   random block capacities and chunk sizes;
//! - **corruption surfaces as typed errors**: corrupt header bytes,
//!   truncated files, flipped index bytes, and flipped payload bytes each
//!   map to their own `StoreError` variant, never a panic or a silently
//!   wrong graph;
//! - **training bit-identity**: a `Session` built from a `StoreSource`
//!   trains to the same losses/parameters and generates the same edges as
//!   one borrowing the in-memory graph — the ISSUE-5 acceptance
//!   criterion.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tg_graph::sink::GraphSink;
use tg_graph::{TemporalEdge, TemporalGraph};
use tg_store::{writer, StoreError, StoreReader, StoreSource};
use tgae::{Session, TgaeConfig};

fn tmp(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("tg_store_accept_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// `u v t` text → compacted graph → store file → streamed read.
fn text_to_store_roundtrip(text: &str, dir: &std::path::Path) -> (TemporalGraph, TemporalGraph) {
    let g = tg_graph::io::read_edge_list(text.as_bytes(), None).unwrap();
    let path = dir.join("roundtrip.tgs");
    writer::write_graph(&g, &path).unwrap();
    let mut src = StoreSource::open(&path).unwrap();
    let rebuilt = src.load_graph().unwrap();
    (g, rebuilt)
}

#[test]
fn text_to_store_to_graph_preserves_order() {
    let dir = tmp("text");
    // deliberately unsorted text with comments, duplicates, sparse ids
    let text = "# header\n9 4 20\n4 9 10\n9 4 10\n9 4 10\n% more\n7 9 20\n4 7 10\n";
    let (g, rebuilt) = text_to_store_roundtrip(text, &dir);
    assert_eq!(g.edges(), rebuilt.edges());
    assert_eq!(g.n_nodes(), rebuilt.n_nodes());
    assert_eq!(g.n_timestamps(), rebuilt.n_timestamps());
    std::fs::remove_dir_all(&dir).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Random multigraphs round-trip through the store in canonical
    /// order for arbitrary (block, chunk) geometry.
    #[test]
    fn prop_store_roundtrip_preserves_canonical_order(
        case in (2usize..12, 1u32..6)
            .prop_flat_map(|(n, t)| {
                (
                    Just(n),
                    Just(t),
                    proptest::collection::vec(
                        (0u32..n as u32, 0u32..n as u32, 0u32..t),
                        0..120,
                    ),
                    1usize..40,
                    1usize..40,
                )
            })
    ) {
        let (n_nodes, t_count, edges, block, chunk) = case;
        let dir = tmp("prop");
        let path = dir.join(format!("case_{block}_{chunk}.tgs"));
        let edges: Vec<TemporalEdge> = edges
            .into_iter()
            .map(|(u, v, t)| TemporalEdge::new(u, v, t))
            .collect();
        let g = TemporalGraph::from_edges(n_nodes, t_count as usize, edges);
        writer::write_source(
            &mut tg_graph::source::InMemorySource::new(&g),
            &path,
            block,
        )
        .unwrap();
        let mut src = StoreSource::open(&path).unwrap();
        let rebuilt =
            tg_graph::source::read_graph(&mut src, chunk).unwrap();
        prop_assert_eq!(rebuilt.edges(), g.edges());
        prop_assert_eq!(
            rebuilt.edge_counts_per_timestamp(),
            g.edge_counts_per_timestamp()
        );
        // the on-disk index alone must already know the per-t counts
        prop_assert_eq!(
            StoreSource::open(&path).unwrap().edge_counts_per_timestamp(),
            g.edge_counts_per_timestamp()
        );
        src.reader_mut().verify_payload().unwrap();
        std::fs::remove_file(&path).ok();
    }
}

fn sample_store(dir: &std::path::Path) -> std::path::PathBuf {
    let mut edges = Vec::new();
    for t in 0..4u32 {
        for u in 0..20u32 {
            edges.push(TemporalEdge::new(u, (u + 1 + t) % 20, t));
        }
    }
    let g = TemporalGraph::from_edges(20, 4, edges);
    let path = dir.join("sample.tgs");
    writer::write_graph(&g, &path).unwrap();
    path
}

#[test]
fn corrupt_magic_is_a_typed_error() {
    let dir = tmp("magic");
    let path = sample_store(&dir);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[0] = b'Z';
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        StoreReader::open(&path),
        Err(StoreError::BadMagic { .. })
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_header_field_is_a_checksum_error() {
    let dir = tmp("header");
    let path = sample_store(&dir);
    let mut bytes = std::fs::read(&path).unwrap();
    // flip a bit inside n_nodes — keeps the file structurally plausible
    // (length check still passes), so only the checksum can catch it
    bytes[8] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        StoreReader::open(&path),
        Err(StoreError::HeaderChecksum { .. })
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_index_is_a_checksum_error() {
    let dir = tmp("index");
    let path = sample_store(&dir);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[60] ^= 0x10; // inside the timestamp index
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        StoreReader::open(&path),
        Err(StoreError::HeaderChecksum { .. })
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncated_file_is_a_typed_error() {
    let dir = tmp("trunc");
    let path = sample_store(&dir);
    let bytes = std::fs::read(&path).unwrap();
    // cut mid-payload
    std::fs::write(&path, &bytes[..bytes.len() - 30]).unwrap();
    match StoreReader::open(&path).err() {
        Some(StoreError::Truncated { expected, actual }) => {
            assert_eq!(expected, bytes.len() as u64);
            assert_eq!(actual, bytes.len() as u64 - 30);
        }
        other => panic!("expected Truncated, got {other:?}"),
    }
    // cut mid-header
    std::fs::write(&path, &bytes[..20]).unwrap();
    assert!(matches!(
        StoreReader::open(&path),
        Err(StoreError::Truncated { .. })
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn flipped_payload_fails_verify_and_windowed_read() {
    let dir = tmp("payload");
    let path = sample_store(&dir);
    let mut bytes = std::fs::read(&path).unwrap();
    // header (56) + index (8*5 = 40) = 96; corrupt the first u-column
    // entry — the block's trailer checksum catches it on load
    bytes[96] = 0xFF;
    bytes[97] = 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    // open succeeds: header and index are intact
    let mut reader = StoreReader::open(&path).unwrap();
    assert!(matches!(
        reader.verify_payload(),
        Err(StoreError::BlockChecksum { block: 0, .. })
    ));
    let mut cursor = reader.window(0, 4, 64);
    let mut hit_error = false;
    loop {
        match cursor.next_chunk() {
            Ok(Some(_)) => continue,
            Ok(None) => break,
            Err(e) => {
                assert!(
                    matches!(e, StoreError::BlockChecksum { block: 0, .. }),
                    "{e:?}"
                );
                hit_error = true;
                break;
            }
        }
    }
    assert!(hit_error, "windowed read silently accepted corrupt payload");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn v1_store_is_rejected_with_version_error() {
    let dir = tmp("v1");
    let path = sample_store(&dir);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[4] = 1; // rewrite the version field to v1
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        StoreReader::open(&path),
        Err(StoreError::UnsupportedVersion {
            found: 1,
            supported: 2
        })
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn session_from_store_is_bit_identical_to_in_memory() {
    // The ISSUE-5 acceptance criterion, at the store level: train from
    // the on-disk store and from the in-memory graph with the same seed;
    // losses, parameters, and generated edges must all be bit-identical.
    let dir = tmp("session");
    let cfg = tg_datasets::SyntheticConfig {
        nodes: 40,
        edges: 400,
        timestamps: 5,
        ..Default::default()
    };
    let g = tg_datasets::generate(&cfg, &mut SmallRng::seed_from_u64(3));
    let path = dir.join("observed.tgs");
    writer::write_graph(&g, &path).unwrap();

    let mut tcfg = TgaeConfig::tiny();
    tcfg.epochs = 5;
    let master = 777u64;

    let mut mem = Session::builder(&g)
        .config(tcfg.clone())
        .seed(9)
        .build()
        .unwrap();
    let report_mem = mem.train().unwrap();
    let edges_mem = mem
        .simulate_seeded(master, GraphSink::new(g.n_nodes(), g.n_timestamps()))
        .unwrap();

    let mut src = StoreSource::open(&path).unwrap();
    let mut stored = Session::builder_from_source(&mut src)
        .unwrap()
        .config(tcfg)
        .seed(9)
        .build()
        .unwrap();
    assert_eq!(stored.observed().edges(), g.edges());
    let report_store = stored.train().unwrap();
    let edges_store = stored
        .simulate_seeded(master, GraphSink::new(g.n_nodes(), g.n_timestamps()))
        .unwrap();

    assert_eq!(report_mem.losses, report_store.losses);
    assert_eq!(
        serde_json::to_string(&mem.model().store).unwrap(),
        serde_json::to_string(&stored.model().store).unwrap(),
        "trained parameters diverged between in-memory and store paths"
    );
    assert_eq!(edges_mem.edges(), edges_store.edges());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn opening_a_missing_or_damaged_store_through_session_is_typed() {
    let dir = tmp("typed");
    let path = sample_store(&dir);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes.truncate(bytes.len() - 5);
    std::fs::write(&path, &bytes).unwrap();
    // StoreSource::open already fails typed; a source that starts failing
    // mid-stream surfaces as TgxError::Ingest through the session
    assert!(matches!(
        StoreSource::open(&path),
        Err(StoreError::Truncated { .. })
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}
