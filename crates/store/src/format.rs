//! The TGES ("Temporal Graph Edge Store") v2 on-disk layout.
//!
//! A TGES file is a timestamp-sorted temporal edge list in columnar
//! (struct-of-arrays) blocks, fronted by a checksummed header and a
//! per-timestamp offset index. All integers are little-endian.
//!
//! ```text
//! offset  size            field
//! 0       4               magic  b"TGES"
//! 4       4               version (u32, = 2)
//! 8       8               n_nodes (u64)
//! 16      8               n_timestamps (u64)
//! 24      8               n_edges (u64)
//! 32      8               block_edges B (u64): SoA block capacity
//! 40      8               payload checksum (FNV-1a 64 over the edge data
//!                         bytes of all blocks, excluding the per-block
//!                         checksum trailers)
//! 48      8               header checksum (FNV-1a 64 over bytes [0, 48)
//!                         with this field zeroed, then the index bytes)
//! 56      8·(T+1)         index: cumulative edge offsets per timestamp —
//!                         edges at t live at positions [index[t], index[t+1])
//! 56+8(T+1)  12·m + 8·⌈m/B⌉   payload: ⌈m/B⌉ self-checksummed SoA blocks
//! ```
//!
//! Block `k` holds edges `[k·B, min((k+1)·B, m))` — every block except
//! the last has exactly `B` edges — followed by an 8-byte FNV-1a 64
//! checksum of that block's data bytes, so the byte offset of any block
//! (and of any *edge*, via the index) is computable without a block
//! table:
//!
//! ```text
//! block k:  u[len]  v[len]  t[len]  fnv64   (u32 columns + u64 trailer)
//! offset  = payload_start + k·(B·12 + 8)
//! ```
//!
//! Edges are sorted by `(t, u, v)` — [`TemporalGraph`]'s canonical order —
//! which is what makes the timestamp index a pair of binary-search-free
//! bounds per snapshot and lets a reader serve any timestamp window by
//! touching only the blocks that overlap it.
//!
//! Integrity is layered by access cost: the header checksum (covering
//! header + index) and an exact file-length check are verified on every
//! [`open`](crate::StoreReader::open) at `O(T)` cost; each block's
//! trailer checksum is verified when the block is loaded by a windowed
//! read, so damage is caught at block granularity before any edge is
//! decoded; the payload checksum plus every block trailer are verified by
//! the optional [`verify_payload`](crate::StoreReader::verify_payload)
//! full scan; and decoded edges are cross-checked against the index
//! (timestamp match, endpoints in range) as they stream. The per-block
//! trailers are also what makes [`salvage`](crate::StoreReader::salvage)
//! possible: a damaged file can be walked block by block and every block
//! whose checksummed region still validates is recoverable.
//!
//! Version history: v1 had no per-block trailers (payload was a bare
//! 12·m-byte run, damage only detectable by a full-file scan). This
//! build reads and writes v2 only.
//!
//! [`TemporalGraph`]: tg_graph::TemporalGraph

use crate::error::StoreError;

/// File magic: the first four bytes of every TGES store.
pub const MAGIC: [u8; 4] = *b"TGES";

/// Format version this build writes and reads.
pub const VERSION: u32 = 2;

/// Serialized header size in bytes.
pub const HEADER_BYTES: u64 = 56;

/// Bytes per edge in the payload (three u32 columns).
pub const EDGE_BYTES: u64 = 12;

/// Bytes of the FNV-1a 64 trailer appended to every SoA block.
pub const BLOCK_CHECKSUM_BYTES: u64 = 8;

/// Default SoA block capacity in edges (8192 edges = 96 KiB payload per
/// block): large enough to amortise syscalls, small enough that a
/// reader's resident block stays cache-friendly and streaming ingest
/// memory stays negligible.
pub const DEFAULT_BLOCK_EDGES: usize = 8192;

/// FNV-1a 64-bit running hash (the checksum primitive of the format —
/// not cryptographic, just cheap bit-rot detection).
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv1a {
    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold `bytes` into the hash.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Decoded TGES header fields.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Header {
    /// Number of nodes of the stored graph.
    pub n_nodes: u64,
    /// Number of timestamps `T`.
    pub n_timestamps: u64,
    /// Total temporal edges.
    pub n_edges: u64,
    /// SoA block capacity `B`.
    pub block_edges: u64,
    /// FNV-1a 64 over the payload bytes.
    pub payload_checksum: u64,
    /// FNV-1a 64 over the zero-checksum header bytes plus the index bytes.
    pub header_checksum: u64,
}

impl Header {
    /// Serialize, with `header_checksum` as stored (pass 0 while
    /// computing the checksum itself).
    pub fn encode(&self) -> [u8; HEADER_BYTES as usize] {
        let mut out = [0u8; HEADER_BYTES as usize];
        out[0..4].copy_from_slice(&MAGIC);
        out[4..8].copy_from_slice(&VERSION.to_le_bytes());
        out[8..16].copy_from_slice(&self.n_nodes.to_le_bytes());
        out[16..24].copy_from_slice(&self.n_timestamps.to_le_bytes());
        out[24..32].copy_from_slice(&self.n_edges.to_le_bytes());
        out[32..40].copy_from_slice(&self.block_edges.to_le_bytes());
        out[40..48].copy_from_slice(&self.payload_checksum.to_le_bytes());
        out[48..56].copy_from_slice(&self.header_checksum.to_le_bytes());
        out
    }

    /// Parse and structurally validate a header block (magic, version,
    /// non-degenerate shape). Checksum and length validation need the
    /// index and file size and happen in the reader.
    pub fn decode(bytes: &[u8; HEADER_BYTES as usize]) -> Result<Header, StoreError> {
        let magic: [u8; 4] = bytes[0..4].try_into().expect("4 bytes");
        if magic != MAGIC {
            return Err(StoreError::BadMagic { found: magic });
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(StoreError::UnsupportedVersion {
                found: version,
                supported: VERSION,
            });
        }
        let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().expect("8 bytes"));
        let h = Header {
            n_nodes: u64_at(8),
            n_timestamps: u64_at(16),
            n_edges: u64_at(24),
            block_edges: u64_at(32),
            payload_checksum: u64_at(40),
            header_checksum: u64_at(48),
        };
        if h.n_timestamps == 0 {
            return Err(StoreError::Corrupt {
                what: "zero timestamps".into(),
            });
        }
        if h.block_edges == 0 {
            return Err(StoreError::Corrupt {
                what: "zero block capacity".into(),
            });
        }
        if h.n_nodes > u32::MAX as u64 || h.n_timestamps > u32::MAX as u64 {
            return Err(StoreError::Corrupt {
                what: format!(
                    "shape {}x{} exceeds the dense u32 id space",
                    h.n_nodes, h.n_timestamps
                ),
            });
        }
        Ok(h)
    }

    /// Byte offset where the payload begins.
    pub fn payload_start(&self) -> u64 {
        HEADER_BYTES + 8 * (self.n_timestamps + 1)
    }

    /// Exact file size this header implies (edge data plus one checksum
    /// trailer per block).
    pub fn expected_file_len(&self) -> u64 {
        self.payload_start() + EDGE_BYTES * self.n_edges + BLOCK_CHECKSUM_BYTES * self.n_blocks()
    }

    /// Number of payload blocks.
    pub fn n_blocks(&self) -> u64 {
        self.n_edges.div_ceil(self.block_edges)
    }

    /// Edge count of block `k` (all blocks are full except the last).
    pub fn block_len(&self, k: u64) -> u64 {
        debug_assert!(k < self.n_blocks());
        (self.n_edges - k * self.block_edges).min(self.block_edges)
    }

    /// Byte offset of block `k`. Every block before `k` is full, so the
    /// stride is constant: `B·12` data bytes plus the checksum trailer.
    pub fn block_offset(&self, k: u64) -> u64 {
        self.payload_start() + k * (self.block_edges * EDGE_BYTES + BLOCK_CHECKSUM_BYTES)
    }

    /// Checksum over the header (with a zeroed checksum field) plus the
    /// serialized index — the value stored in `header_checksum`.
    pub fn compute_header_checksum(&self, index_bytes: &[u8]) -> u64 {
        let zeroed = Header {
            header_checksum: 0,
            ..*self
        };
        let mut fnv = Fnv1a::new();
        fnv.update(&zeroed.encode());
        fnv.update(index_bytes);
        fnv.finish()
    }
}

/// Serialize the timestamp index (cumulative offsets) to bytes.
pub fn encode_index(index: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(index.len() * 8);
    for &v in index {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        let mut f = Fnv1a::new();
        assert_eq!(f.finish(), 0xcbf2_9ce4_8422_2325);
        f.update(b"a");
        assert_eq!(f.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut f = Fnv1a::new();
        f.update(b"foobar");
        assert_eq!(f.finish(), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn header_round_trips() {
        let h = Header {
            n_nodes: 100,
            n_timestamps: 12,
            n_edges: 5000,
            block_edges: 512,
            payload_checksum: 0xdead_beef,
            header_checksum: 0x1234,
        };
        let decoded = Header::decode(&h.encode()).unwrap();
        assert_eq!(decoded, h);
        assert_eq!(h.payload_start(), 56 + 8 * 13);
        assert_eq!(h.n_blocks(), 5000u64.div_ceil(512));
        assert_eq!(
            h.expected_file_len(),
            h.payload_start() + 12 * 5000 + 8 * h.n_blocks()
        );
        assert_eq!(h.block_len(0), 512);
        assert_eq!(h.block_len(h.n_blocks() - 1), 5000 % 512);
        assert_eq!(h.block_offset(1), h.payload_start() + 512 * 12 + 8);
    }

    #[test]
    fn decode_rejects_bad_magic_and_version() {
        let h = Header {
            n_nodes: 1,
            n_timestamps: 1,
            n_edges: 0,
            block_edges: 1,
            payload_checksum: 0,
            header_checksum: 0,
        };
        let mut bytes = h.encode();
        bytes[0] = b'X';
        assert!(matches!(
            Header::decode(&bytes),
            Err(StoreError::BadMagic { .. })
        ));
        let mut bytes = h.encode();
        bytes[4] = 99;
        assert!(matches!(
            Header::decode(&bytes),
            Err(StoreError::UnsupportedVersion { found: 99, .. })
        ));
    }

    #[test]
    fn decode_rejects_degenerate_shapes() {
        let mut h = Header {
            n_nodes: 1,
            n_timestamps: 0,
            n_edges: 0,
            block_edges: 8,
            payload_checksum: 0,
            header_checksum: 0,
        };
        assert!(matches!(
            Header::decode(&h.encode()),
            Err(StoreError::Corrupt { .. })
        ));
        h.n_timestamps = 1;
        h.block_edges = 0;
        assert!(matches!(
            Header::decode(&h.encode()),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn header_checksum_covers_index() {
        let h = Header {
            n_nodes: 3,
            n_timestamps: 2,
            n_edges: 4,
            block_edges: 8,
            payload_checksum: 7,
            header_checksum: 0,
        };
        let a = h.compute_header_checksum(&encode_index(&[0, 2, 4]));
        let b = h.compute_header_checksum(&encode_index(&[0, 3, 4]));
        assert_ne!(a, b);
        // independent of what the stored checksum field currently holds
        let h2 = Header {
            header_checksum: 999,
            ..h
        };
        assert_eq!(a, h2.compute_header_checksum(&encode_index(&[0, 2, 4])));
    }
}
