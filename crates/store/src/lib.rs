#![warn(missing_docs)]
//! `tg-store`: an out-of-core columnar store for temporal edge lists.
//!
//! PR 3 lifted the *output*-side memory ceiling (the simulation engine
//! streams generated edges through an
//! [`EdgeSink`](tg_graph::sink::EdgeSink) with bounded in-flight memory);
//! this crate lifts the *input* side. Observed graphs land once in a
//! compact on-disk format — the **TGES** layout of [`mod@format`]: a
//! checksummed header, a per-timestamp offset index, and timestamp-sorted
//! struct-of-arrays `u/v/t` blocks — and every downstream consumer reads
//! them back as bounded per-timestamp chunks through the
//! [`EdgeSource`](tg_graph::source::EdgeSource) trait:
//!
//! ```text
//!  text edge list ──ingest──▶ ┌───────────────────────────────┐
//!  (24+ B/edge staged in RAM) │ store.tgs                     │
//!                             │  header ─ checksummed, 56 B   │
//!                             │  index  ─ 8·(T+1) B           │
//!  TemporalGraph ──write_graph│  blocks ─ 12 B/edge SoA u,v,t │
//!                             └──────────────┬────────────────┘
//!                                StoreSource │ O(block) resident
//!                                            ▼
//!                  GraphAssembler / InitialNodeSampler::from_source /
//!                  Session::builder_from_source / write_source (copy)
//! ```
//!
//! The key properties, in the order the acceptance tests check them:
//!
//! - **Round-trip fidelity**: text → store → read reproduces the exact
//!   edge sequence (the canonical `(t, u, v)` order), proptested across
//!   random multigraphs, chunk sizes, and block capacities.
//! - **Bit-identical training**: a `Session` built from a
//!   [`StoreSource`] trains to the same losses/parameters and generates
//!   the same edges as one built from the in-memory graph.
//! - **Bounded ingest memory**: reading a store holds one SoA block and
//!   one chunk buffer, so peak heap above the final structure is a
//!   function of the block/window size, not the edge count (measured in
//!   `BENCH_PR5.json`).
//! - **Typed failure**: corrupt headers, truncated files, checksum
//!   mismatches, and in-window payload damage each surface as their own
//!   [`StoreError`] variant.

pub mod error;
pub mod format;
pub mod reader;
pub mod source;
pub mod writer;

pub use error::StoreError;
pub use format::{Header, DEFAULT_BLOCK_EDGES};
pub use reader::{SalvageReport, StoreReader, WindowCursor};
pub use source::StoreSource;
pub use writer::{write_graph, write_source, StoreStats, StoreWriter};

#[cfg(test)]
mod tests {
    use super::*;
    use tg_graph::source::{EdgeSource, InMemorySource};
    use tg_graph::{TemporalEdge, TemporalGraph, Time};

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("tg_store_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn toy() -> TemporalGraph {
        TemporalGraph::from_edges(
            5,
            4,
            vec![
                TemporalEdge::new(0, 1, 0),
                TemporalEdge::new(0, 1, 0), // multiplicity
                TemporalEdge::new(3, 2, 0),
                TemporalEdge::new(2, 4, 1),
                // t=2 empty
                TemporalEdge::new(4, 0, 3),
                TemporalEdge::new(4, 1, 3),
            ],
        )
    }

    #[test]
    fn write_read_round_trip() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("toy.tgs");
        let g = toy();
        let stats = write_graph(&g, &path).unwrap();
        assert_eq!(stats.n_edges, 6);
        assert_eq!(stats.file_bytes, std::fs::metadata(&path).unwrap().len());

        let mut src = StoreSource::open(&path).unwrap();
        assert_eq!(src.n_nodes(), 5);
        assert_eq!(src.n_timestamps(), 4);
        assert_eq!(src.n_edges(), 6);
        assert_eq!(
            src.edge_counts_per_timestamp(),
            g.edge_counts_per_timestamp()
        );
        let rebuilt = src.load_graph().unwrap();
        assert_eq!(rebuilt.edges(), g.edges());
        src.reader_mut().verify_payload().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tiny_blocks_split_chunks_but_preserve_the_stream() {
        let dir = tmpdir("tinyblocks");
        let path = dir.join("toy.tgs");
        let g = toy();
        let stats = writer::write_source(&mut InMemorySource::new(&g), &path, 2).unwrap();
        assert_eq!(stats.n_blocks, 3);
        let mut src = StoreSource::open(&path).unwrap();
        // stream with a max_chunk larger than the block: chunks still cap
        // at block boundaries, order and content are unchanged
        let mut flat = Vec::new();
        let mut last_key = None;
        src.for_each_chunk(100, &mut |t, c, edges| {
            assert!(edges.len() <= 2);
            assert!(edges.iter().all(|e| e.t == t));
            let key = (t, c);
            if let Some(prev) = last_key {
                assert!(key > prev, "{key:?} after {prev:?}");
            }
            last_key = Some(key);
            flat.extend_from_slice(edges);
        })
        .unwrap();
        assert_eq!(flat, g.edges());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn timestamp_windows_slice_the_stream() {
        let dir = tmpdir("window");
        let path = dir.join("toy.tgs");
        let g = toy();
        write_graph(&g, &path).unwrap();
        let mut reader = StoreReader::open(&path).unwrap();
        for (t0, t1) in [(0u32, 1u32), (1, 4), (0, 4), (2, 3), (3, 4)] {
            let mut got = Vec::new();
            let mut cur = reader.window(t0 as Time, t1 as Time, 3);
            while let Some((t, _c, edges)) = cur.next_chunk().unwrap() {
                assert!((t0..t1).contains(&t));
                got.extend_from_slice(edges);
            }
            let want: Vec<TemporalEdge> = g
                .edges()
                .iter()
                .copied()
                .filter(|e| (t0..t1).contains(&e.t))
                .collect();
            assert_eq!(got, want, "window [{t0}, {t1})");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_graph_store_round_trips() {
        let dir = tmpdir("empty");
        let path = dir.join("empty.tgs");
        let g = TemporalGraph::from_edges(3, 2, Vec::new());
        write_graph(&g, &path).unwrap();
        let mut src = StoreSource::open(&path).unwrap();
        assert_eq!(src.n_edges(), 0);
        let rebuilt = src.load_graph().unwrap();
        assert_eq!(rebuilt.n_edges(), 0);
        assert_eq!(rebuilt.n_timestamps(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn writer_rejects_disorder_and_out_of_shape() {
        let dir = tmpdir("badwrite");
        let path = dir.join("bad.tgs");
        let mut w = StoreWriter::create(&path, 3, 2).unwrap();
        w.push(TemporalEdge::new(1, 2, 1)).unwrap();
        assert!(matches!(
            w.push(TemporalEdge::new(0, 1, 0)),
            Err(StoreError::BadWrite { .. })
        ));
        assert!(matches!(
            w.push(TemporalEdge::new(0, 9, 1)),
            Err(StoreError::BadWrite { .. })
        ));
        assert!(matches!(
            w.push(TemporalEdge::new(0, 1, 7)),
            Err(StoreError::BadWrite { .. })
        ));
        assert!(matches!(
            StoreWriter::create(dir.join("z.tgs"), 3, 0),
            Err(StoreError::BadWrite { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn store_copy_is_byte_identical() {
        // store -> StoreSource -> write_source -> identical bytes (same
        // block size): the format is canonical for a given input.
        let dir = tmpdir("copy");
        let a = dir.join("a.tgs");
        let b = dir.join("b.tgs");
        let g = toy();
        write_graph(&g, &a).unwrap();
        let mut src = StoreSource::open(&a).unwrap();
        writer::write_source(&mut src, &b, DEFAULT_BLOCK_EDGES).unwrap();
        assert_eq!(std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
