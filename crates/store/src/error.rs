//! Typed errors for the TGES store.
//!
//! Every way a store file can be unusable gets its own variant, so
//! callers (the `tgx-cli ingest`/`train --store` paths in particular) can
//! print "this file is truncated" instead of a generic parse failure —
//! and tests can assert the *kind* of corruption detected.

/// Everything that can go wrong writing or reading a TGES store.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// The file does not start with the TGES magic — not a store at all.
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The file is a TGES store of a format version this build can't read.
    UnsupportedVersion {
        /// Version recorded in the file.
        found: u32,
        /// Version this build reads.
        supported: u32,
    },
    /// The file is shorter (or longer) than the header says it must be —
    /// an interrupted write or a truncated copy.
    Truncated {
        /// Byte length the header implies.
        expected: u64,
        /// Byte length actually on disk.
        actual: u64,
    },
    /// The header/index checksum does not match: the metadata block was
    /// corrupted (bit rot, partial overwrite).
    HeaderChecksum {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum recomputed from the bytes on disk.
        actual: u64,
    },
    /// The payload checksum does not match (only detected by
    /// [`StoreReader::verify_payload`](crate::StoreReader::verify_payload),
    /// which streams the whole file).
    PayloadChecksum {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum recomputed from the payload bytes.
        actual: u64,
    },
    /// One SoA block's trailer checksum does not match its data bytes —
    /// detected the moment the block is loaded (windowed read,
    /// [`verify_payload`](crate::StoreReader::verify_payload), or
    /// [`salvage`](crate::StoreReader::salvage)).
    BlockChecksum {
        /// Which block is damaged.
        block: u64,
        /// Checksum recorded in the block trailer.
        expected: u64,
        /// Checksum recomputed from the block's data bytes.
        actual: u64,
    },
    /// Header or timestamp index is internally inconsistent (offsets not
    /// monotone, totals disagreeing, zero-sized blocks, …).
    Corrupt {
        /// What was inconsistent.
        what: String,
    },
    /// A payload record contradicts the index (edge carrying the wrong
    /// timestamp, endpoint out of range) — detected lazily while reading
    /// the affected window.
    CorruptPayload {
        /// What was inconsistent.
        what: String,
    },
    /// The writer was fed edges out of `(t, u, v)` order or out of the
    /// declared shape — the input, not the file, is at fault.
    BadWrite {
        /// What the caller did wrong.
        what: String,
    },
    /// The [`EdgeSource`](tg_graph::source::EdgeSource) feeding
    /// [`write_source`](crate::write_source) failed mid-stream (its own
    /// I/O or corruption error) — a read-side failure, distinct from
    /// [`StoreError::BadWrite`]'s caller-input faults. The message
    /// carries the source's own diagnosis.
    Source {
        /// The source's error, rendered.
        what: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::BadMagic { found } => {
                write!(f, "not a TGES store (magic bytes {found:?})")
            }
            StoreError::UnsupportedVersion { found, supported } => {
                write!(f, "TGES format v{found} (this build reads v{supported})")
            }
            StoreError::Truncated { expected, actual } => write!(
                f,
                "store file truncated or padded: header implies {expected} bytes, file has {actual}"
            ),
            StoreError::HeaderChecksum { expected, actual } => write!(
                f,
                "header/index checksum mismatch: recorded {expected:#018x}, computed {actual:#018x}"
            ),
            StoreError::PayloadChecksum { expected, actual } => write!(
                f,
                "payload checksum mismatch: recorded {expected:#018x}, computed {actual:#018x}"
            ),
            StoreError::BlockChecksum {
                block,
                expected,
                actual,
            } => write!(
                f,
                "block {block} checksum mismatch: recorded {expected:#018x}, computed {actual:#018x}"
            ),
            StoreError::Corrupt { what } => write!(f, "corrupt store metadata: {what}"),
            StoreError::CorruptPayload { what } => write!(f, "corrupt store payload: {what}"),
            StoreError::BadWrite { what } => write!(f, "invalid write: {what}"),
            StoreError::Source { what } => write!(f, "edge source failed mid-stream: {what}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<tg_faults::FaultError> for StoreError {
    fn from(e: tg_faults::FaultError) -> Self {
        StoreError::Io(e.into())
    }
}
