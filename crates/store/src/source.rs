//! [`EdgeSource`] over a TGES store — the out-of-core twin of
//! [`InMemorySource`](tg_graph::source::InMemorySource).
//!
//! Everything downstream of the [`EdgeSource`] trait (graph assembly,
//! sampler-population construction, `Session::builder_from_source`,
//! store-to-store copies) runs unchanged whether the observed graph
//! lives in RAM or on disk; the two paths are regression-tested to be
//! bit-identical.

use crate::error::StoreError;
use crate::reader::StoreReader;
use std::path::Path;
use tg_graph::source::EdgeSource;
use tg_graph::{TemporalEdge, TemporalGraph, Time};

/// Streams a TGES store file as per-timestamp edge chunks. Resident
/// memory while streaming is `O(block + max_chunk)`, independent of the
/// stored edge count.
pub struct StoreSource {
    reader: StoreReader,
}

impl StoreSource {
    /// Open a store file (header/index validation happens here; see
    /// [`StoreReader::open`]).
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Ok(StoreSource {
            reader: StoreReader::open(path)?,
        })
    }

    /// Wrap an already-open reader.
    pub fn from_reader(reader: StoreReader) -> Self {
        StoreSource { reader }
    }

    /// The underlying reader (timestamp windows, payload verification).
    pub fn reader_mut(&mut self) -> &mut StoreReader {
        &mut self.reader
    }

    /// Edges at each timestamp, from the index alone.
    pub fn edge_counts_per_timestamp(&self) -> Vec<usize> {
        self.reader.edge_counts_per_timestamp()
    }

    /// Materialise the full graph by streaming chunks through a
    /// [`GraphAssembler`](tg_graph::source::GraphAssembler) — peak
    /// memory above the finished graph is `O(block)`.
    pub fn load_graph(&mut self) -> Result<TemporalGraph, StoreError> {
        tg_graph::source::read_graph(self, tg_graph::source::DEFAULT_CHUNK_EDGES).map_err(|e| {
            match e {
                tg_graph::source::SourceError::Source(e) => e,
                tg_graph::source::SourceError::Assemble(e) => StoreError::CorruptPayload {
                    what: format!("stream violated the chunk contract: {e}"),
                },
            }
        })
    }
}

impl EdgeSource for StoreSource {
    type Error = StoreError;

    fn n_nodes(&self) -> usize {
        self.reader.n_nodes()
    }

    fn n_timestamps(&self) -> usize {
        self.reader.n_timestamps()
    }

    fn n_edges(&self) -> u64 {
        self.reader.n_edges()
    }

    fn for_each_chunk(
        &mut self,
        max_chunk: usize,
        f: &mut dyn FnMut(Time, u32, &[TemporalEdge]),
    ) -> Result<(), Self::Error> {
        let t_count = self.reader.n_timestamps() as Time;
        let mut cursor = self.reader.window(0, t_count, max_chunk);
        while let Some((t, chunk, edges)) = cursor.next_chunk()? {
            f(t, chunk, edges);
        }
        Ok(())
    }
}
