//! Streaming TGES writer.
//!
//! [`StoreWriter`] consumes a `(t, u, v)`-sorted edge stream in any chunk
//! granularity (single edges, per-timestamp chunks, whole graphs) and
//! writes the columnar payload incrementally: edges accumulate in one
//! SoA block buffer that is flushed to disk as it fills, so resident
//! memory is `O(block + T)` regardless of edge count. The header and
//! timestamp index are back-patched on [`StoreWriter::finish`] (their
//! sizes are known up front, so placeholder bytes reserve the space).

use crate::error::StoreError;
use crate::format::{encode_index, Fnv1a, Header, DEFAULT_BLOCK_EDGES, HEADER_BYTES};
use std::io::{Seek, SeekFrom, Write};
use std::path::Path;
use tg_graph::source::EdgeSource;
use tg_graph::{TemporalEdge, TemporalGraph};

/// Summary returned by [`StoreWriter::finish`].
#[derive(Clone, Copy, Debug)]
pub struct StoreStats {
    /// Nodes declared for the stored graph.
    pub n_nodes: usize,
    /// Timestamps declared for the stored graph.
    pub n_timestamps: usize,
    /// Edges written.
    pub n_edges: u64,
    /// SoA payload blocks written.
    pub n_blocks: u64,
    /// Total file size in bytes.
    pub file_bytes: u64,
}

impl StoreStats {
    /// Bytes per stored edge including header/index overhead.
    pub fn bytes_per_edge(&self) -> f64 {
        if self.n_edges == 0 {
            return 0.0;
        }
        self.file_bytes as f64 / self.n_edges as f64
    }
}

/// Incremental TGES writer over any `Write + Seek` target.
pub struct StoreWriter<W: Write + Seek> {
    w: W,
    n_nodes: usize,
    n_timestamps: usize,
    block_edges: usize,
    /// Edges per timestamp (turned into cumulative offsets at finish).
    counts: Vec<u64>,
    /// Current (unflushed) SoA block columns.
    block_u: Vec<u32>,
    block_v: Vec<u32>,
    block_t: Vec<u32>,
    n_edges: u64,
    n_blocks: u64,
    payload_hash: Fnv1a,
    last: Option<TemporalEdge>,
}

impl StoreWriter<std::io::BufWriter<std::fs::File>> {
    /// Create (truncating) a store file for a graph of the given shape
    /// with the default block capacity.
    pub fn create(
        path: impl AsRef<Path>,
        n_nodes: usize,
        n_timestamps: usize,
    ) -> Result<Self, StoreError> {
        Self::create_with_block(path, n_nodes, n_timestamps, DEFAULT_BLOCK_EDGES)
    }

    /// [`StoreWriter::create`] with an explicit SoA block capacity.
    pub fn create_with_block(
        path: impl AsRef<Path>,
        n_nodes: usize,
        n_timestamps: usize,
        block_edges: usize,
    ) -> Result<Self, StoreError> {
        let file = std::fs::File::create(path)?;
        Self::new(
            std::io::BufWriter::new(file),
            n_nodes,
            n_timestamps,
            block_edges,
        )
    }
}

impl<W: Write + Seek> StoreWriter<W> {
    /// Start a store over any seekable writer. Reserves the header+index
    /// region with placeholder bytes immediately.
    pub fn new(
        mut w: W,
        n_nodes: usize,
        n_timestamps: usize,
        block_edges: usize,
    ) -> Result<Self, StoreError> {
        if n_timestamps == 0 {
            return Err(StoreError::BadWrite {
                what: "a store needs at least one timestamp".into(),
            });
        }
        if block_edges == 0 {
            return Err(StoreError::BadWrite {
                what: "block capacity must be > 0 edges".into(),
            });
        }
        if n_nodes > u32::MAX as usize || n_timestamps > u32::MAX as usize {
            return Err(StoreError::BadWrite {
                what: format!("shape {n_nodes}x{n_timestamps} exceeds the dense u32 id space"),
            });
        }
        // Placeholder header + index; finish() seeks back and fills them.
        let reserve = HEADER_BYTES as usize + 8 * (n_timestamps + 1);
        w.write_all(&vec![0u8; reserve])?;
        Ok(StoreWriter {
            w,
            n_nodes,
            n_timestamps,
            block_edges,
            counts: vec![0; n_timestamps],
            block_u: Vec::with_capacity(block_edges),
            block_v: Vec::with_capacity(block_edges),
            block_t: Vec::with_capacity(block_edges),
            n_edges: 0,
            n_blocks: 0,
            payload_hash: Fnv1a::new(),
            last: None,
        })
    }

    /// Append one edge. Edges must arrive in `(t, u, v)` order with
    /// endpoints and timestamps inside the declared shape.
    pub fn push(&mut self, e: TemporalEdge) -> Result<(), StoreError> {
        if (e.u as usize) >= self.n_nodes || (e.v as usize) >= self.n_nodes {
            return Err(StoreError::BadWrite {
                what: format!("edge {e:?} endpoint out of range (< {})", self.n_nodes),
            });
        }
        if (e.t as usize) >= self.n_timestamps {
            return Err(StoreError::BadWrite {
                what: format!(
                    "edge {e:?} timestamp out of range (< {})",
                    self.n_timestamps
                ),
            });
        }
        if let Some(last) = self.last {
            if last > e {
                return Err(StoreError::BadWrite {
                    what: format!("edge {e:?} after {last:?} breaks (t, u, v) order"),
                });
            }
        }
        self.last = Some(e);
        self.counts[e.t as usize] += 1;
        self.block_u.push(e.u);
        self.block_v.push(e.v);
        self.block_t.push(e.t);
        self.n_edges += 1;
        if self.block_u.len() == self.block_edges {
            self.flush_block()?;
        }
        Ok(())
    }

    /// Append a slice of edges (same contract as [`StoreWriter::push`]).
    pub fn push_chunk(&mut self, edges: &[TemporalEdge]) -> Result<(), StoreError> {
        for &e in edges {
            self.push(e)?;
        }
        Ok(())
    }

    /// Edges written so far.
    pub fn n_edges(&self) -> u64 {
        self.n_edges
    }

    fn flush_block(&mut self) -> Result<(), StoreError> {
        if self.block_u.is_empty() {
            return Ok(());
        }
        tg_faults::fail_point!("store.write.block", format!("block:{}", self.n_blocks));
        let mut bytes: Vec<u8> = Vec::with_capacity(self.block_u.len() * 12);
        for col in [&self.block_u, &self.block_v, &self.block_t] {
            for &x in col.iter() {
                bytes.extend_from_slice(&x.to_le_bytes());
            }
        }
        self.payload_hash.update(&bytes);
        // per-block trailer: FNV over this block's data bytes, so damage
        // is localizable (and salvageable) without a full-file scan
        let mut block_hash = Fnv1a::new();
        block_hash.update(&bytes);
        bytes.extend_from_slice(&block_hash.finish().to_le_bytes());
        self.w.write_all(&bytes)?;
        self.block_u.clear();
        self.block_v.clear();
        self.block_t.clear();
        self.n_blocks += 1;
        Ok(())
    }

    /// Flush the trailing block, back-patch the header and index, and
    /// sync the stream. Returns the final file statistics.
    pub fn finish(mut self) -> Result<StoreStats, StoreError> {
        self.flush_block()?;
        let mut index: Vec<u64> = Vec::with_capacity(self.n_timestamps + 1);
        let mut acc = 0u64;
        index.push(0);
        for &c in &self.counts {
            acc += c;
            index.push(acc);
        }
        debug_assert_eq!(acc, self.n_edges);
        let index_bytes = encode_index(&index);
        let mut header = Header {
            n_nodes: self.n_nodes as u64,
            n_timestamps: self.n_timestamps as u64,
            n_edges: self.n_edges,
            block_edges: self.block_edges as u64,
            payload_checksum: self.payload_hash.finish(),
            header_checksum: 0,
        };
        header.header_checksum = header.compute_header_checksum(&index_bytes);
        self.w.seek(SeekFrom::Start(0))?;
        self.w.write_all(&header.encode())?;
        self.w.write_all(&index_bytes)?;
        self.w.flush()?;
        Ok(StoreStats {
            n_nodes: self.n_nodes,
            n_timestamps: self.n_timestamps,
            n_edges: self.n_edges,
            n_blocks: header.n_blocks(),
            file_bytes: header.expected_file_len(),
        })
    }
}

/// Build a store at a tmp sibling, fsync it, and atomically rename it
/// into place — a crash at any point leaves either the old file or no
/// file at `path`, never a half-written store.
fn commit_atomic<F>(path: &Path, build: F) -> Result<StoreStats, StoreError>
where
    F: FnOnce(&Path) -> Result<StoreStats, StoreError>,
{
    let tmp = tg_graph::io::tmp_sibling(path);
    let stats = match build(&tmp) {
        Ok(s) => s,
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
    };
    let f = std::fs::File::open(&tmp)?;
    f.sync_all()?;
    drop(f);
    tg_faults::fail_point!("store.commit", path.display().to_string());
    std::fs::rename(&tmp, path)?;
    Ok(stats)
}

/// Write an in-memory graph to a store file (edges are already in the
/// canonical order, so this is one sequential pass). The store is built
/// at a tmp sibling and renamed into place on success.
pub fn write_graph(g: &TemporalGraph, path: impl AsRef<Path>) -> Result<StoreStats, StoreError> {
    commit_atomic(path.as_ref(), |tmp| {
        let mut w = StoreWriter::create(tmp, g.n_nodes(), g.n_timestamps())?;
        w.push_chunk(g.edges())?;
        w.finish()
    })
}

/// Stream any [`EdgeSource`] into a store file with `O(chunk)` resident
/// memory — store-to-store copies and text-to-store conversion both land
/// here. The store is built at a tmp sibling and renamed into place on
/// success.
pub fn write_source<S: EdgeSource>(
    source: &mut S,
    path: impl AsRef<Path>,
    block_edges: usize,
) -> Result<StoreStats, StoreError> {
    commit_atomic(path.as_ref(), |tmp| {
        let mut w = StoreWriter::create_with_block(
            tmp,
            source.n_nodes(),
            source.n_timestamps(),
            block_edges,
        )?;
        let mut failed: Option<StoreError> = None;
        source
            .for_each_chunk(block_edges.max(1), &mut |_t, _c, edges| {
                if failed.is_none() {
                    if let Err(e) = w.push_chunk(edges) {
                        failed = Some(e);
                    }
                }
            })
            .map_err(|e| StoreError::Source {
                what: e.to_string(),
            })?;
        if let Some(e) = failed {
            return Err(e);
        }
        w.finish()
    })
}
