//! Chunked, timestamp-windowed TGES reads.
//!
//! [`StoreReader::open`] validates the header/index (magic, version,
//! exact file length, header checksum, index monotonicity) in `O(T)` and
//! holds only the index resident. [`StoreReader::window`] then serves any
//! timestamp range as a stream of per-timestamp edge chunks through a
//! [`WindowCursor`]: one SoA block and one decoded batch buffer are
//! allocated on the first chunk and reused for every subsequent one, so
//! steady-state reading allocates nothing and resident memory is
//! `O(block + max_chunk)` however many edges the window covers.

use crate::error::StoreError;
use crate::format::{encode_index, Fnv1a, Header, BLOCK_CHECKSUM_BYTES, EDGE_BYTES, HEADER_BYTES};
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;
use tg_graph::{TemporalEdge, Time};

/// Read block `k`'s data bytes (checksum-verified against its trailer)
/// into `buf`. Shared by windowed reads and `verify_payload`.
fn read_block_verified(
    file: &mut std::fs::File,
    header: &Header,
    k: u64,
    buf: &mut Vec<u8>,
) -> Result<(), StoreError> {
    tg_faults::fail_point!("store.read.block", format!("block:{k}"));
    let data_len = header.block_len(k) as usize * EDGE_BYTES as usize;
    buf.resize(data_len + BLOCK_CHECKSUM_BYTES as usize, 0);
    file.seek(SeekFrom::Start(header.block_offset(k)))?;
    file.read_exact(buf)?;
    let expected = u64::from_le_bytes(buf[data_len..].try_into().expect("8 bytes"));
    let mut fnv = Fnv1a::new();
    fnv.update(&buf[..data_len]);
    let actual = fnv.finish();
    if actual != expected {
        return Err(StoreError::BlockChecksum {
            block: k,
            expected,
            actual,
        });
    }
    buf.truncate(data_len);
    Ok(())
}

/// One yielded unit of a [`WindowCursor`]: `(timestamp, chunk index
/// within the timestamp, edges)` — the same coordinates
/// [`EdgeSink::accept`](tg_graph::sink::EdgeSink::accept) speaks on the
/// emit side. The edge slice borrows the cursor's reused batch buffer.
pub type Chunk<'a> = (Time, u32, &'a [TemporalEdge]);

/// An open, header-validated TGES store file.
pub struct StoreReader {
    file: std::fs::File,
    header: Header,
    /// Cumulative edge offsets: edges at `t` occupy `[index[t], index[t+1])`.
    index: Vec<u64>,
}

impl StoreReader {
    /// Open a store file, validating magic, version, shape, exact file
    /// length, and the header/index checksum. Fails with the precise
    /// [`StoreError`] variant for each kind of damage.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let mut file = std::fs::File::open(path)?;
        let mut header_bytes = [0u8; HEADER_BYTES as usize];
        let actual_len = file.metadata()?.len();
        if actual_len < HEADER_BYTES {
            return Err(StoreError::Truncated {
                expected: HEADER_BYTES,
                actual: actual_len,
            });
        }
        file.read_exact(&mut header_bytes)?;
        let header = Header::decode(&header_bytes)?;
        let expected_len = header.expected_file_len();
        if actual_len != expected_len {
            return Err(StoreError::Truncated {
                expected: expected_len,
                actual: actual_len,
            });
        }
        let mut index_bytes = vec![0u8; 8 * (header.n_timestamps as usize + 1)];
        file.read_exact(&mut index_bytes)?;
        let computed = header.compute_header_checksum(&index_bytes);
        if computed != header.header_checksum {
            return Err(StoreError::HeaderChecksum {
                expected: header.header_checksum,
                actual: computed,
            });
        }
        let index: Vec<u64> = index_bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect();
        if index[0] != 0 || *index.last().expect("non-empty") != header.n_edges {
            return Err(StoreError::Corrupt {
                what: format!(
                    "index bounds [{}, {}] disagree with edge count {}",
                    index[0],
                    index.last().expect("non-empty"),
                    header.n_edges
                ),
            });
        }
        if index.windows(2).any(|w| w[0] > w[1]) {
            return Err(StoreError::Corrupt {
                what: "index offsets are not monotone".into(),
            });
        }
        Ok(StoreReader {
            file,
            header,
            index,
        })
    }

    /// Number of nodes of the stored graph.
    pub fn n_nodes(&self) -> usize {
        self.header.n_nodes as usize
    }

    /// Number of timestamps `T`.
    pub fn n_timestamps(&self) -> usize {
        self.header.n_timestamps as usize
    }

    /// Total stored edges.
    pub fn n_edges(&self) -> u64 {
        self.header.n_edges
    }

    /// Edges at each timestamp, straight from the index — the generation
    /// budgets [`SimulationPlan`] needs, available without touching the
    /// payload.
    ///
    /// [`SimulationPlan`]: https://docs.rs/tgae
    pub fn edge_counts_per_timestamp(&self) -> Vec<usize> {
        self.index
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .collect()
    }

    /// The decoded header (shape, block capacity, checksums).
    pub fn header(&self) -> &Header {
        &self.header
    }

    /// Stream edges with `t` in `[t_begin, t_end)` as per-timestamp
    /// chunks of at most `max_chunk` edges. The cursor borrows the
    /// reader; buffers are reused across chunks.
    pub fn window(&mut self, t_begin: Time, t_end: Time, max_chunk: usize) -> WindowCursor<'_> {
        let t_end = (t_end as usize).min(self.n_timestamps()) as Time;
        let t_begin = t_begin.min(t_end);
        let pos = self.index[t_begin as usize];
        let end = self.index[t_end as usize];
        WindowCursor {
            reader: self,
            pos,
            end,
            max_chunk: max_chunk.max(1),
            cur_t: t_begin,
            chunk_in_t: 0,
            loaded_block: None,
            block_bytes: Vec::new(),
            batch: Vec::new(),
        }
    }

    /// Walk every block, verifying each block's trailer checksum, and
    /// compare the accumulated data hash against the header's payload
    /// checksum — the full-scan integrity check (windowed reads only
    /// verify the blocks they touch). Block damage surfaces as
    /// [`StoreError::BlockChecksum`] naming the block; a payload-hash
    /// mismatch with every block intact means the header itself lies.
    pub fn verify_payload(&mut self) -> Result<(), StoreError> {
        let header = self.header;
        let mut fnv = Fnv1a::new();
        let mut buf = Vec::new();
        for k in 0..header.n_blocks() {
            read_block_verified(&mut self.file, &header, k, &mut buf)?;
            fnv.update(&buf);
        }
        let actual = fnv.finish();
        if actual != header.payload_checksum {
            return Err(StoreError::PayloadChecksum {
                expected: header.payload_checksum,
                actual,
            });
        }
        Ok(())
    }

    /// The serialized index bytes (test/tooling hook).
    pub fn index_bytes(&self) -> Vec<u8> {
        encode_index(&self.index)
    }

    /// Best-effort recovery of a damaged store file.
    ///
    /// Unlike [`open`](StoreReader::open), which refuses a file with any
    /// invalid region, `salvage` walks the payload block by block and
    /// hands every block whose trailer checksum validates (and whose
    /// decoded edges pass the structural checks: endpoints and
    /// timestamps in shape, `(t, u, v)` order preserved across emitted
    /// blocks) to `emit`, in file order. Damaged, truncated, or
    /// out-of-order blocks are skipped and reported. Only an unreadable
    /// header (bad magic, wrong version, nonsense shape) or an I/O /
    /// emit failure is fatal — a corrupt index or payload never is.
    pub fn salvage(
        path: impl AsRef<Path>,
        mut emit: impl FnMut(&Header, &[TemporalEdge]) -> Result<(), StoreError>,
    ) -> Result<SalvageReport, StoreError> {
        let mut file = std::fs::File::open(path)?;
        let file_len = file.metadata()?.len();
        if file_len < HEADER_BYTES {
            return Err(StoreError::Truncated {
                expected: HEADER_BYTES,
                actual: file_len,
            });
        }
        let mut header_bytes = [0u8; HEADER_BYTES as usize];
        file.read_exact(&mut header_bytes)?;
        let header = Header::decode(&header_bytes)?;

        // The index is advisory for salvage (block offsets are pure
        // arithmetic); just record whether it survived.
        let index_len = 8 * (header.n_timestamps as usize + 1);
        let index_valid = if file_len >= HEADER_BYTES + index_len as u64 {
            let mut index_bytes = vec![0u8; index_len];
            file.read_exact(&mut index_bytes)?;
            header.compute_header_checksum(&index_bytes) == header.header_checksum
        } else {
            false
        };

        let mut report = SalvageReport {
            header,
            file_len,
            n_blocks: header.n_blocks(),
            bad_blocks: Vec::new(),
            recovered_edges: 0,
            lost_edges: 0,
            index_valid,
        };
        let mut buf = Vec::new();
        let mut edges = Vec::new();
        let mut last_emitted: Option<TemporalEdge> = None;
        for k in 0..header.n_blocks() {
            let len = header.block_len(k);
            let end = header.block_offset(k) + len * EDGE_BYTES + BLOCK_CHECKSUM_BYTES;
            let intact = end <= file_len
                && match read_block_verified(&mut file, &header, k, &mut buf) {
                    Ok(()) => true,
                    Err(StoreError::BlockChecksum { .. }) => false,
                    Err(e) => return Err(e),
                }
                && decode_block_checked(&header, &buf, len, last_emitted, &mut edges);
            if !intact {
                report.bad_blocks.push(k);
                report.lost_edges += len;
                continue;
            }
            last_emitted = edges.last().copied().or(last_emitted);
            emit(&header, &edges)?;
            report.recovered_edges += len;
        }
        Ok(report)
    }
}

/// Decode one verified block's SoA bytes into `out`, checking shape and
/// `(t, u, v)` order (within the block and against the last edge emitted
/// from an earlier block). Returns false if any record is inconsistent —
/// a checksum collision over garbage, treated the same as block damage.
fn decode_block_checked(
    header: &Header,
    data: &[u8],
    len: u64,
    last_emitted: Option<TemporalEdge>,
    out: &mut Vec<TemporalEdge>,
) -> bool {
    let len = len as usize;
    let col_at =
        |col: &[u8], i: usize| u32::from_le_bytes(col[i * 4..i * 4 + 4].try_into().expect("4 B"));
    let (u_col, rest) = data.split_at(len * 4);
    let (v_col, t_col) = rest.split_at(len * 4);
    out.clear();
    out.reserve(len);
    let mut prev = last_emitted;
    for i in 0..len {
        let e = TemporalEdge::new(col_at(u_col, i), col_at(v_col, i), col_at(t_col, i));
        if e.u as u64 >= header.n_nodes
            || e.v as u64 >= header.n_nodes
            || e.t as u64 >= header.n_timestamps
            || prev.is_some_and(|p| p > e)
        {
            return false;
        }
        prev = Some(e);
        out.push(e);
    }
    true
}

/// What [`StoreReader::salvage`] recovered from a damaged store.
#[derive(Clone, Debug)]
pub struct SalvageReport {
    /// The decoded header (trusted shape — it passed its structural
    /// checks, though its checksums may not cover what's on disk).
    pub header: Header,
    /// Actual on-disk byte length.
    pub file_len: u64,
    /// Blocks the header implies.
    pub n_blocks: u64,
    /// Blocks skipped: truncated away, trailer checksum mismatch, or
    /// structurally inconsistent records.
    pub bad_blocks: Vec<u64>,
    /// Edges handed to `emit`.
    pub recovered_edges: u64,
    /// Edges in skipped blocks.
    pub lost_edges: u64,
    /// Whether the header/index checksum validated (salvage proceeds
    /// either way — block offsets are arithmetic).
    pub index_valid: bool,
}

impl SalvageReport {
    /// True when nothing was lost: every block validated and the index
    /// checksum held.
    pub fn is_clean(&self) -> bool {
        self.bad_blocks.is_empty() && self.index_valid
    }
}

/// Streaming cursor over one timestamp window of a store; see
/// [`StoreReader::window`].
///
/// Not a std `Iterator` — each yielded chunk borrows the cursor's reused
/// batch buffer (a lending iterator), which is exactly what keeps the
/// steady state allocation-free. Drive it with a `while let` loop:
///
/// ```ignore
/// let mut cur = reader.window(0, t_count, 4096);
/// while let Some((t, chunk, edges)) = cur.next_chunk()? {
///     // edges all carry timestamp t, in (u, v) order
/// }
/// ```
pub struct WindowCursor<'r> {
    reader: &'r mut StoreReader,
    /// Next global edge position to yield.
    pos: u64,
    /// One past the last edge position of the window.
    end: u64,
    max_chunk: usize,
    cur_t: Time,
    chunk_in_t: u32,
    /// Block currently decoded in `block_bytes`.
    loaded_block: Option<u64>,
    /// Raw bytes of the loaded block (SoA: u column, v column, t column).
    block_bytes: Vec<u8>,
    /// Reused output buffer; `next_chunk` returns a borrow of it.
    batch: Vec<TemporalEdge>,
}

impl WindowCursor<'_> {
    /// Yield the next per-timestamp chunk, or `None` at the end of the
    /// window. Chunks honor the `EdgeSource` contract: at most
    /// `max_chunk` edges, single timestamp, plan order, chunk indices
    /// restarting at each timestamp.
    pub fn next_chunk(&mut self) -> Result<Option<Chunk<'_>>, StoreError> {
        if self.pos >= self.end {
            return Ok(None);
        }
        let header = self.reader.header;
        // advance to the timestamp owning `pos` (skipping empty ones)
        while self.reader.index[self.cur_t as usize + 1] <= self.pos {
            self.cur_t += 1;
            self.chunk_in_t = 0;
        }
        let t = self.cur_t;
        // load (and checksum-verify) the block holding `pos` if it isn't
        // resident yet
        let block = self.pos / header.block_edges;
        if self.loaded_block != Some(block) {
            read_block_verified(&mut self.reader.file, &header, block, &mut self.block_bytes)?;
            self.loaded_block = Some(block);
        }
        let block_start = block * header.block_edges;
        let block_len = header.block_len(block);
        // chunk ends at the first of: timestamp boundary, window end,
        // block boundary, max_chunk edges
        let chunk_end = self.reader.index[t as usize + 1]
            .min(self.end)
            .min(block_start + block_len)
            .min(self.pos + self.max_chunk as u64);
        let n = (chunk_end - self.pos) as usize;
        debug_assert!(n > 0);
        let off = (self.pos - block_start) as usize;
        let u_col = &self.block_bytes[..block_len as usize * 4];
        let v_col = &self.block_bytes[block_len as usize * 4..block_len as usize * 8];
        let t_col = &self.block_bytes[block_len as usize * 8..];
        let col_at = |col: &[u8], i: usize| {
            u32::from_le_bytes(col[i * 4..i * 4 + 4].try_into().expect("4 bytes"))
        };
        self.batch.clear();
        self.batch.reserve(n);
        for i in off..off + n {
            let (u, v, et) = (col_at(u_col, i), col_at(v_col, i), col_at(t_col, i));
            // lazy integrity cross-check against the index and shape: a
            // flipped payload bit in the touched window surfaces as a
            // typed error instead of a silently wrong graph
            if et != t {
                return Err(StoreError::CorruptPayload {
                    what: format!(
                        "edge {} carries t={et} but the index places it at t={t}",
                        block_start + i as u64
                    ),
                });
            }
            if u as u64 >= header.n_nodes || v as u64 >= header.n_nodes {
                return Err(StoreError::CorruptPayload {
                    what: format!(
                        "edge {} endpoint {u}->{v} out of range (< {})",
                        block_start + i as u64,
                        header.n_nodes
                    ),
                });
            }
            self.batch.push(TemporalEdge::new(u, v, et));
        }
        self.pos = chunk_end;
        let chunk = self.chunk_in_t;
        self.chunk_in_t += 1;
        Ok(Some((t, chunk, &self.batch)))
    }
}
