//! End-to-end test of `tgx-cli simulate --retries`: a worker that fails
//! its first attempt (injected deterministically via the `worker.entry`
//! fault point, budget shared across processes through `TG_FAULTS_STATE`)
//! is re-run alone — completed shards are excluded — and the final merge
//! is still byte-identical to in-process generation (`--verify`). With no
//! retry budget the same failure aborts the driver with exit code 4.

mod common;

use common::{cli, tmp, train_run, write_ring_edges};

#[test]
fn failed_shard_is_retried_alone_and_verifies() {
    if !tg_faults::is_compiled() {
        return; // injection needs the default `faults` feature
    }
    let dir = tmp("retry_ok");
    let edges = dir.join("ring.edges");
    write_ring_edges(&edges);
    let run_dir = train_run(&dir, "run", &edges);

    let out = cli()
        .args(["simulate", "--run-dir"])
        .arg(&run_dir)
        .args(["--shards", "2", "--retries", "2", "--verify", "--quiet"])
        .args(["--backoff-base-ms", "10"])
        .env("TG_FAULTS", "worker.entry=err,arg=shard:1,max=1")
        .env("TG_FAULTS_STATE", dir.join("faults.state"))
        .output()
        .expect("run tgx-cli simulate");
    assert!(
        out.status.success(),
        "simulate with retries failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // --verify already asserted byte-identity with in-process generation;
    // the retry log must document the injected failure and the exclusion
    let log = std::fs::read_to_string(run_dir.join("retry_log.json")).expect("retry_log.json");
    let compact: String = log.chars().filter(|c| !c.is_whitespace()).collect();
    assert!(compact.contains("\"failed_per_round\":[[1]]"), "{log}");
    assert!(compact.contains("\"attempts\""), "{log}");
    assert!(compact.contains("\"completed\":true"), "{log}");
    assert!(compact.contains("\"quarantined\":[]"), "{log}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn no_retry_budget_means_the_failure_aborts_with_exit_4() {
    if !tg_faults::is_compiled() {
        return;
    }
    let dir = tmp("retry_abort");
    let edges = dir.join("ring.edges");
    write_ring_edges(&edges);
    let run_dir = train_run(&dir, "run", &edges);

    let out = cli()
        .args(["simulate", "--run-dir"])
        .arg(&run_dir)
        .args(["--shards", "2", "--retries", "0", "--quiet"])
        .env("TG_FAULTS", "worker.entry=err,arg=shard:0")
        .output()
        .expect("run tgx-cli simulate");
    assert_eq!(
        out.status.code(),
        Some(4),
        "worker failure must exit 4: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("still failing"), "{stderr}");
    // the log records the incomplete run and the quarantined shard
    let log = std::fs::read_to_string(run_dir.join("retry_log.json")).expect("retry_log.json");
    let compact: String = log.chars().filter(|c| !c.is_whitespace()).collect();
    assert!(compact.contains("\"completed\":false"), "{log}");
    assert!(compact.contains("\"quarantined\":[0]"), "{log}");
    std::fs::remove_dir_all(&dir).ok();
}
