//! End-to-end test of `tgx-cli simulate --retries`: a worker that fails
//! its first attempt (injected via the `TGX_CLI_TEST_FAIL_ONCE` hook) is
//! re-run alone — completed shards are excluded — and the final merge is
//! still byte-identical to in-process generation (`--verify`). With no
//! retry budget the same failure aborts the driver.

use std::path::{Path, PathBuf};
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tgx-cli"))
}

fn tmp(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("tgx_cli_retry_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// A small dense ring: fast to train in debug mode, every node and
/// timestamp occupied.
fn write_ring_edges(path: &Path) {
    let mut text = String::new();
    for t in 0..3u32 {
        for u in 0..24u32 {
            text.push_str(&format!("{u} {} {t}\n", (u + 1) % 24));
        }
    }
    std::fs::write(path, text).unwrap();
}

fn train_run(dir: &Path, run: &str, edges: &Path) -> PathBuf {
    let run_dir = dir.join(run);
    let status = cli()
        .args(["train", "--run-dir"])
        .arg(&run_dir)
        .arg("--edges")
        .arg(edges)
        .args(["--epochs", "2", "--seed", "5", "--quiet"])
        .stdout(std::process::Stdio::null())
        .status()
        .expect("run tgx-cli train");
    assert!(status.success(), "train failed");
    run_dir
}

#[test]
fn failed_shard_is_retried_alone_and_verifies() {
    let dir = tmp("ok");
    let edges = dir.join("ring.edges");
    write_ring_edges(&edges);
    let run_dir = train_run(&dir, "run", &edges);

    let out = cli()
        .args(["simulate", "--run-dir"])
        .arg(&run_dir)
        .args(["--shards", "2", "--retries", "2", "--verify", "--quiet"])
        .env("TGX_CLI_TEST_FAIL_ONCE", "1")
        .output()
        .expect("run tgx-cli simulate");
    assert!(
        out.status.success(),
        "simulate with retries failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // --verify already asserted byte-identity with in-process generation;
    // the retry log must document the injected failure and the exclusion
    let log = std::fs::read_to_string(run_dir.join("retry_log.json")).expect("retry_log.json");
    assert!(log.contains("\"failed_per_round\""), "{log}");
    assert!(log.contains('1'), "{log}");
    assert!(log.contains("\"completed\": true"), "{log}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn no_retry_budget_means_the_failure_aborts() {
    let dir = tmp("abort");
    let edges = dir.join("ring.edges");
    write_ring_edges(&edges);
    let run_dir = train_run(&dir, "run", &edges);

    let out = cli()
        .args(["simulate", "--run-dir"])
        .arg(&run_dir)
        .args(["--shards", "2", "--retries", "0", "--quiet"])
        .env("TGX_CLI_TEST_FAIL_ONCE", "0")
        .output()
        .expect("run tgx-cli simulate");
    assert!(!out.status.success(), "driver should fail with no retries");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("still failing"), "{stderr}");
    // the log records the incomplete run
    let log = std::fs::read_to_string(run_dir.join("retry_log.json")).expect("retry_log.json");
    assert!(log.contains("\"completed\": false"), "{log}");
    std::fs::remove_dir_all(&dir).ok();
}
