//! Process-level tests of the ISSUE-6 failure-domain hardening:
//!
//! - a **hung** worker (injected `worker.entry=sleep`) is killed at
//!   `--shard-timeout`, retried, and the run still verifies;
//! - a **persistently failing** shard under `--degrade partial` yields a
//!   merge of the completed shards, a machine-readable
//!   `partial_manifest.json`, and exit code 5 — and the partial merge is
//!   byte-identical to the healthy run's output for those shards;
//! - `ingest --salvage` rebuilds a clean, fully verifiable store from a
//!   bit-flipped one (exit 0) and exits 3 on a file that is not a store;
//! - usage errors exit 2.

mod common;

use common::{cli, compact, tmp, train_run, write_ring_edges};

#[test]
fn hung_worker_is_killed_at_timeout_and_retried() {
    if !tg_faults::is_compiled() {
        return; // injection needs the default `faults` feature
    }
    let dir = tmp("sup_hang");
    let edges = dir.join("ring.edges");
    write_ring_edges(&edges);
    let run_dir = train_run(&dir, "run", &edges);

    // shard 0's first attempt sleeps 60 s — far past the 2.5 s budget —
    // so the supervisor must SIGKILL it; the cross-process fault ledger
    // limits the hang to that one attempt, and the retry completes.
    let out = cli()
        .args(["simulate", "--run-dir"])
        .arg(&run_dir)
        .args(["--shards", "2", "--retries", "1", "--verify", "--quiet"])
        .args(["--shard-timeout", "2.5", "--backoff-base-ms", "10"])
        .env("TG_FAULTS", "worker.entry=sleep:60000,arg=shard:0,max=1")
        .env("TG_FAULTS_STATE", dir.join("faults.state"))
        .output()
        .expect("run tgx-cli simulate");
    assert!(
        out.status.success(),
        "simulate after a hung worker failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let log = std::fs::read_to_string(run_dir.join("retry_log.json")).expect("retry_log.json");
    let c = compact(&log);
    assert!(c.contains("\"timed_out\":true"), "{log}");
    assert!(c.contains("\"signal\":9"), "{log}");
    assert!(c.contains("\"completed\":true"), "{log}");
    assert!(c.contains("\"backoff_ms\""), "{log}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn degrade_partial_merges_completed_shards_and_exits_5() {
    if !tg_faults::is_compiled() {
        return;
    }
    let dir = tmp("sup_partial");
    let edges = dir.join("ring.edges");
    write_ring_edges(&edges);

    // Healthy reference run with the same training seed: its shard files
    // are what the degraded run's partial merge must reproduce exactly.
    let ref_dir = train_run(&dir, "ref", &edges);
    let status = cli()
        .args(["simulate", "--run-dir"])
        .arg(&ref_dir)
        .args(["--shards", "2", "--keep-shards", "--quiet"])
        .stdout(std::process::Stdio::null())
        .status()
        .expect("run reference simulate");
    assert!(status.success(), "reference simulate failed");
    let shard0 = std::fs::read(ref_dir.join("shard_0.edges")).expect("reference shard 0");

    // Degraded run: shard 1 fails every attempt.
    let run_dir = train_run(&dir, "run", &edges);
    let out = cli()
        .args(["simulate", "--run-dir"])
        .arg(&run_dir)
        .args(["--shards", "2", "--retries", "1", "--quiet"])
        .args(["--degrade", "partial", "--backoff-base-ms", "10"])
        .env("TG_FAULTS", "worker.entry=err,arg=shard:1")
        .output()
        .expect("run tgx-cli simulate");
    assert_eq!(
        out.status.code(),
        Some(5),
        "degraded completion must exit 5: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let manifest = std::fs::read_to_string(run_dir.join("partial_manifest.json"))
        .expect("partial_manifest.json");
    let c = compact(&manifest);
    assert!(c.contains("\"n_shards\":2"), "{manifest}");
    assert!(c.contains("\"completed\":[0]"), "{manifest}");
    assert!(c.contains("\"missing\":[1]"), "{manifest}");
    // the partial merge is exactly the completed shard's bytes
    let merged = std::fs::read(run_dir.join("simulated.edges")).expect("simulated.edges");
    assert_eq!(merged, shard0, "partial merge differs from shard 0 output");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn usage_errors_exit_2() {
    let out = cli().arg("frobnicate").output().expect("run tgx-cli");
    assert_eq!(out.status.code(), Some(2), "unknown subcommand must exit 2");

    let out = cli()
        .args([
            "simulate",
            "--run-dir",
            "/nonexistent",
            "--degrade",
            "sideways",
        ])
        .output()
        .expect("run tgx-cli");
    assert_eq!(
        out.status.code(),
        Some(2),
        "bad --degrade value must exit 2"
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--degrade"),
        "stderr should name the offending option"
    );

    let out = cli()
        .args(["ingest", "--verify"])
        .output()
        .expect("run tgx-cli");
    assert_eq!(out.status.code(), Some(2), "missing --out must exit 2");
}

#[test]
fn salvage_rebuilds_a_verifiable_store_from_a_bitflipped_one() {
    let dir = tmp("sup_salvage");
    let edges = dir.join("ring.edges");
    write_ring_edges(&edges);
    let store = dir.join("obs.tgs");
    let status = cli()
        .args(["ingest", "--out"])
        .arg(&store)
        .arg("--edges")
        .arg(&edges)
        .args(["--block-edges", "16", "--verify", "--quiet"])
        .stdout(std::process::Stdio::null())
        .status()
        .expect("run tgx-cli ingest");
    assert!(status.success(), "ingest failed");

    // flip one payload byte near the end of the file: one block dies,
    // the rest must be recovered
    let mut bytes = std::fs::read(&store).unwrap();
    let n = bytes.len();
    bytes[n - 10] ^= 0x40;
    let damaged = dir.join("damaged.tgs");
    std::fs::write(&damaged, &bytes).unwrap();

    let clean = dir.join("clean.tgs");
    let out = cli()
        .args(["ingest", "--salvage"])
        .arg(&damaged)
        .arg("--out")
        .arg(&clean)
        .output()
        .expect("run tgx-cli ingest --salvage");
    assert!(
        out.status.success(),
        "salvage failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("edges recovered"), "{stderr}");
    assert!(stderr.contains("lost"), "{stderr}");

    // the rebuilt store passes the full-scan integrity check and holds
    // strictly fewer edges than the original (one block was lost)
    let mut reader = tg_store::StoreReader::open(&clean).expect("open salvaged store");
    reader.verify_payload().expect("salvaged store verifies");
    let recovered = reader.header().n_edges;
    assert!(recovered < 72, "expected lost edges, got {recovered}");
    assert!(
        recovered >= 72 - 16,
        "lost more than one block: {recovered}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn salvage_of_a_non_store_exits_3() {
    let dir = tmp("sup_salvage3");
    let garbage = dir.join("garbage.bin");
    std::fs::write(&garbage, vec![0x5a; 200]).unwrap();
    let out = cli()
        .args(["ingest", "--salvage"])
        .arg(&garbage)
        .arg("--out")
        .arg(dir.join("never.tgs"))
        .output()
        .expect("run tgx-cli ingest --salvage");
    assert_eq!(
        out.status.code(),
        Some(3),
        "unreadable store must exit 3: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        !dir.join("never.tgs").exists(),
        "no output may be produced for an unreadable input"
    );
    std::fs::remove_dir_all(&dir).ok();
}
