//! Process-level tests of the observability surface:
//!
//! - a 2-shard `simulate --trace` produces a merged Chrome `trace.json`
//!   covering the driver and both workers, with worker root spans
//!   stitched (flow-linked) under the driver's supervision spans;
//! - **bit-identity**: the seeded pipeline's outputs are byte-identical
//!   with telemetry on and off — `simulate --trace` vs plain for
//!   `simulated.edges`, `train --telemetry` vs plain for `model.json`.
//!   Observability must observe, never perturb.

mod common;

use common::{cli, tmp, train_run, write_ring_edges};
use std::path::Path;
use std::process::Stdio;

/// Run `tgx-cli simulate` over `run_dir` and return `simulated.edges`.
fn simulate_bytes(run_dir: &Path, master: u64, extra: &[&str]) -> Vec<u8> {
    let status = cli()
        .args(["simulate", "--run-dir"])
        .arg(run_dir)
        .args(["--shards", "2", "--master", &master.to_string(), "--quiet"])
        .args(extra)
        .stdout(Stdio::null())
        .status()
        .expect("run tgx-cli simulate");
    assert!(status.success(), "simulate {extra:?} failed");
    std::fs::read(run_dir.join("simulated.edges")).expect("simulated.edges")
}

#[test]
fn traced_two_shard_run_merges_driver_and_worker_spans() {
    let dir = tmp("trace_merge");
    let edges = dir.join("ring.edges");
    write_ring_edges(&edges);
    let run_dir = train_run(&dir, "traced", &edges);

    simulate_bytes(&run_dir, 99, &["--trace"]);

    for shard_file in [
        "trace_driver.jsonl",
        "trace_shard_0.jsonl",
        "trace_shard_1.jsonl",
    ] {
        assert!(
            run_dir.join(shard_file).exists(),
            "{shard_file} missing after a traced run"
        );
    }
    let trace = std::fs::read_to_string(run_dir.join("trace.json")).expect("merged trace.json");

    // Three process-name metadata records: the driver and both workers.
    for label in ["\"driver\"", "\"shard_0\"", "\"shard_1\""] {
        assert!(
            trace.contains(&format!("{{\"name\":{label}}}")),
            "process label {label} missing from merged trace"
        );
    }
    // The spans every layer was instrumented with all made it through
    // the per-process files into the one merged view.
    for span in [
        "\"simulate.driver\"",
        "\"shard.supervise\"",
        "\"worker.shard\"",
        "\"engine.generate_shard\"",
        "\"engine.execute\"",
        "\"engine.unit\"",
    ] {
        assert!(
            trace.contains(span),
            "span {span} missing from merged trace"
        );
    }
    // Cross-process stitching: each worker adopted a driver supervision
    // span as its root parent, which the merger renders as a flow
    // (start/finish) pair per worker.
    let starts = trace.matches("\"ph\":\"s\"").count();
    let finishes = trace.matches("\"ph\":\"f\"").count();
    assert_eq!(
        (starts, finishes),
        (2, 2),
        "expected one flow link per worker"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tracing_does_not_perturb_simulation() {
    let dir = tmp("trace_identity");
    let edges = dir.join("ring.edges");
    write_ring_edges(&edges);
    let run_dir = train_run(&dir, "ident", &edges);

    let plain = simulate_bytes(&run_dir, 123, &[]);
    let traced = simulate_bytes(&run_dir, 123, &["--trace"]);
    assert!(!plain.is_empty());
    assert_eq!(
        plain, traced,
        "simulated.edges diverged between --trace and plain runs"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn telemetry_does_not_perturb_training() {
    let dir = tmp("telemetry_identity");
    let edges = dir.join("ring.edges");
    write_ring_edges(&edges);

    let train = |name: &str, extra: &[&str]| -> Vec<u8> {
        let run_dir = dir.join(name);
        let status = cli()
            .args(["train", "--run-dir"])
            .arg(&run_dir)
            .arg("--edges")
            .arg(&edges)
            .args(["--epochs", "3", "--seed", "11", "--quiet"])
            .args(extra)
            .stdout(Stdio::null())
            .status()
            .expect("run tgx-cli train");
        assert!(status.success(), "train {extra:?} failed");
        std::fs::read(run_dir.join("model.json")).expect("model.json")
    };

    let plain = train("plain", &[]);
    let telemetered = train("telemetered", &["--telemetry"]);
    assert_eq!(
        plain, telemetered,
        "model.json diverged between --telemetry and plain runs"
    );

    // The flag's observable side effect: one record per epoch, each with
    // the loss and a heap reading from the CLI's tracking allocator.
    let telemetry =
        std::fs::read_to_string(dir.join("telemetered").join("telemetry.jsonl")).unwrap();
    let lines: Vec<&str> = telemetry.lines().collect();
    assert_eq!(lines.len(), 3, "one telemetry record per epoch");
    assert!(lines[0].starts_with("{\"epoch\":0,"));
    assert!(
        !telemetry.contains("\"heap_peak_bytes\":0"),
        "heap telemetry must be live under the CLI's tracking allocator"
    );
    assert!(
        !dir.join("plain").join("telemetry.jsonl").exists(),
        "no telemetry file without the flag"
    );

    std::fs::remove_dir_all(&dir).ok();
}
