//! Process-level fault and drain tests of the `tgx-cli serve` daemon:
//!
//! - an injected `serve.request.decode` failure yields a typed `decode`
//!   error frame, the connection stays usable, and the retry on the SAME
//!   connection streams bytes identical to in-process generation;
//! - an injected `serve.generate.unit` PANIC is contained to its request
//!   (typed `internal` frame), the daemon survives, and a reconnect retry
//!   is byte-identical;
//! - SIGTERM mid-stream drains: the in-flight request completes
//!   byte-identically, new work is refused, and the daemon exits 0;
//! - an injected `serve.accept` failure drops one connection and the
//!   next connection is served normally;
//! - admission-control rejection surfaces as `tgx-cli client` exit 6.
//!
//! All injection goes through `TG_FAULTS` in the daemon's environment —
//! the shipped binary, no test-only hooks.

mod common;

use common::{cli, tmp, train_run, write_ring_edges};
use std::io::{BufRead, BufReader};
use std::path::Path;
use std::process::{Child, ChildStdout, Stdio};
use tg_serve::{Client, ClientError};

/// A spawned `tgx-cli serve` process bound to an ephemeral port.
struct Daemon {
    child: Child,
    addr: String,
    /// Kept open so the daemon never sees EPIPE on stdout.
    _stdout: BufReader<ChildStdout>,
}

impl Daemon {
    fn start(root: &Path, faults: Option<&str>, extra_args: &[&str]) -> Daemon {
        let mut cmd = cli();
        cmd.args(["serve", "--root"])
            .arg(root)
            .args(["--quiet"])
            .args(extra_args)
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        if let Some(spec) = faults {
            cmd.env("TG_FAULTS", spec);
        }
        let mut child = cmd.spawn().expect("spawn tgx-cli serve");
        let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        let mut line = String::new();
        stdout.read_line(&mut line).expect("read startup banner");
        let addr = line
            .trim()
            .rsplit(' ')
            .next()
            .expect("address in banner")
            .to_string();
        assert!(
            line.contains("listening on"),
            "unexpected startup line: {line}"
        );
        Daemon {
            child,
            addr,
            _stdout: stdout,
        }
    }

    fn connect(&self) -> Client {
        Client::connect_tcp(&self.addr).expect("connect to daemon")
    }

    fn sigterm(&self) {
        let status = std::process::Command::new("kill")
            .args(["-TERM", &self.child.id().to_string()])
            .status()
            .expect("run kill");
        assert!(status.success(), "kill -TERM failed");
    }

    fn shutdown_clean(mut self) {
        let _ = self.connect().shutdown();
        let status = self.child.wait().expect("wait for daemon");
        assert!(status.success(), "daemon exited uncleanly: {status:?}");
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        // Best-effort cleanup if an assertion bailed early.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Bytes of `tgx-cli simulate --in-process --master <master>` over the
/// same run directory — the reference every server stream must match.
fn reference_bytes(run_dir: &Path, master: u64) -> Vec<u8> {
    let status = cli()
        .args(["simulate", "--run-dir"])
        .arg(run_dir)
        .args(["--in-process", "--master", &master.to_string(), "--quiet"])
        .stdout(Stdio::null())
        .status()
        .expect("run tgx-cli simulate --in-process");
    assert!(status.success(), "in-process reference simulate failed");
    std::fs::read(run_dir.join("simulated.edges")).expect("simulated.edges")
}

/// Train one standard run under `<dir>/runs/<name>`, returning the runs
/// root and the run directory.
fn runs_root(dir: &Path, name: &str) -> (std::path::PathBuf, std::path::PathBuf) {
    let edges = dir.join("ring.edges");
    write_ring_edges(&edges);
    let root = dir.join("runs");
    std::fs::create_dir_all(&root).unwrap();
    let run_dir = train_run(&root, name, &edges);
    (root, run_dir)
}

#[test]
fn decode_fault_is_typed_and_the_same_connection_retries_byte_identically() {
    if !tg_faults::is_compiled() {
        return; // injection needs the default `faults` feature
    }
    let dir = tmp("serve_decode");
    let (root, run_dir) = runs_root(&dir, "r");
    let daemon = Daemon::start(&root, Some("serve.request.decode=err,max=1"), &[]);

    let mut client = daemon.connect();
    let mut first = Vec::new();
    match client.simulate("r", 9, &mut first) {
        Err(ClientError::Server { kind, message }) => {
            assert_eq!(kind, "decode");
            assert!(message.contains("injected fault"), "{message}");
        }
        other => panic!("expected a typed decode error, got {other:?}"),
    }
    assert!(first.is_empty(), "no edges may precede the refusal");

    // Budget exhausted (max=1): the SAME connection now succeeds, and the
    // stream is byte-identical to in-process generation.
    let mut second = Vec::new();
    client
        .simulate("r", 9, &mut second)
        .expect("retry on the same connection");
    assert_eq!(second, reference_bytes(&run_dir, 9));

    daemon.shutdown_clean();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn generate_unit_panic_is_contained_and_a_reconnect_retries_byte_identically() {
    if !tg_faults::is_compiled() {
        return;
    }
    let dir = tmp("serve_panic");
    let (root, run_dir) = runs_root(&dir, "r");
    let daemon = Daemon::start(&root, Some("serve.generate.unit=panic,max=1"), &[]);

    let mut client = daemon.connect();
    let mut first = Vec::new();
    match client.simulate("r", 9, &mut first) {
        Err(ClientError::Server { kind, message }) => {
            assert_eq!(kind, "internal", "panic must surface as a typed frame");
            // The payload text must survive the unwind: "request
            // panicked: injected fault at `serve.generate.unit` …".
            assert!(message.contains("panicked"), "{message}");
            assert!(message.contains("injected fault"), "{message}");
        }
        // The server closes the stream after an internal error; a client
        // mid-read may also observe the close as an EOF.
        Err(ClientError::Io(_)) => {}
        other => panic!("expected a contained panic, got {other:?}"),
    }

    // The daemon survived: a fresh connection serves the retry with
    // bytes identical to the in-process reference.
    let mut retry_client = daemon.connect();
    let mut second = Vec::new();
    retry_client
        .simulate("r", 9, &mut second)
        .expect("retry after the contained panic");
    assert_eq!(second, reference_bytes(&run_dir, 9));

    daemon.shutdown_clean();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sigterm_drains_the_in_flight_stream_and_refuses_new_work() {
    if !tg_faults::is_compiled() {
        return;
    }
    let dir = tmp("serve_drain");
    let (root, run_dir) = runs_root(&dir, "r");
    // The first work unit sleeps 1.2 s — long enough to SIGTERM the
    // daemon while the request is provably in flight.
    let mut daemon = Daemon::start(
        &root,
        Some("serve.generate.unit=sleep:1200,arg=chunk:0,max=1"),
        &[],
    );

    let addr = daemon.addr.clone();
    let in_flight = std::thread::spawn(move || {
        let mut client = Client::connect_tcp(&addr).expect("connect");
        let mut bytes = Vec::new();
        let outcome = client
            .simulate("r", 9, &mut bytes)
            .expect("in-flight request");
        (bytes, outcome.n_edges)
    });

    // Let the request reach the sleeping unit, then ask for termination.
    std::thread::sleep(std::time::Duration::from_millis(400));
    daemon.sigterm();
    std::thread::sleep(std::time::Duration::from_millis(100));

    // New work is refused while draining.
    match Client::connect_tcp(&daemon.addr) {
        Ok(mut fresh) => match fresh.ping() {
            Err(ClientError::Server { kind, .. }) => assert_eq!(kind, "shutdown"),
            Err(ClientError::Io(_)) => {}
            other => panic!("draining server accepted new work: {other:?}"),
        },
        Err(ClientError::Io(_)) => {}
        Err(other) => panic!("unexpected connect failure: {other:?}"),
    }

    // The in-flight stream still completes, byte-identical.
    let (bytes, n_edges) = in_flight.join().expect("in-flight client");
    assert_eq!(n_edges, 72);
    assert_eq!(bytes, reference_bytes(&run_dir, 9));

    // And the drained daemon exits 0.
    let status = daemon.child.wait().expect("wait for drained daemon");
    assert_eq!(
        status.code(),
        Some(0),
        "drain must exit cleanly: {status:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn accept_fault_drops_one_connection_and_the_next_is_served() {
    if !tg_faults::is_compiled() {
        return;
    }
    let dir = tmp("serve_accept");
    let (root, run_dir) = runs_root(&dir, "r");
    let daemon = Daemon::start(&root, Some("serve.accept=err,max=1"), &[]);

    // The first connection is accepted at the OS level but dropped by the
    // injected fault before any frame: the client sees EOF/reset.
    let mut doomed = daemon.connect();
    match doomed.ping() {
        Err(ClientError::Io(_)) => {}
        other => panic!("expected a dropped connection, got {other:?}"),
    }

    // Budget exhausted: the next connection is served normally.
    let mut client = daemon.connect();
    client.ping().expect("daemon must survive the accept fault");
    let mut bytes = Vec::new();
    client.simulate("r", 9, &mut bytes).expect("simulate");
    assert_eq!(bytes, reference_bytes(&run_dir, 9));

    daemon.shutdown_clean();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn admission_rejection_surfaces_as_client_exit_6() {
    if !tg_faults::is_compiled() {
        return;
    }
    let dir = tmp("serve_busy");
    let (root, _run_dir) = runs_root(&dir, "r");
    // --max-cost 1: anything is admitted while idle, nothing else fits.
    // The sleep keeps the first request in flight long enough for the
    // second to be rejected deterministically.
    let daemon = Daemon::start(
        &root,
        Some("serve.generate.unit=sleep:3000,arg=chunk:0,max=1"),
        &["--max-cost", "1"],
    );

    let addr = daemon.addr.clone();
    let in_flight = std::thread::spawn(move || {
        let mut client = Client::connect_tcp(&addr).expect("connect");
        let mut bytes = Vec::new();
        client
            .simulate("r", 9, &mut bytes)
            .expect("oversized-but-idle request");
    });
    std::thread::sleep(std::time::Duration::from_millis(700));

    let out = cli()
        .args(["client", "simulate", "--addr", &daemon.addr])
        .args(["--run-id", "r", "--seed", "4", "--out"])
        .arg(dir.join("rejected.edges"))
        .output()
        .expect("run tgx-cli client");
    assert_eq!(
        out.status.code(),
        Some(6),
        "busy rejection must exit 6: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("busy"),
        "stderr must say busy: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    in_flight.join().expect("first request still completes");
    daemon.shutdown_clean();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn status_fault_is_typed_and_the_daemon_survives() {
    if !tg_faults::is_compiled() {
        return;
    }
    let dir = tmp("status_fault");
    let (root, _run_dir) = runs_root(&dir, "r");
    let daemon = Daemon::start(&root, Some("serve.status=err,max=1"), &[]);

    // The faulted status answers a typed internal error — the report is
    // telemetry, so failing to assemble it must not cost the connection,
    // let alone the daemon.
    let mut client = daemon.connect();
    match client.status() {
        Err(ClientError::Server { kind, message }) => {
            assert_eq!(kind, "internal");
            assert!(
                message.contains("serve.status"),
                "error must name the fault point: {message}"
            );
        }
        Ok(_) => panic!("status must fail while the fault budget lasts"),
        Err(other) => panic!("expected a typed server error, got: {other}"),
    }

    // Same connection, fault budget spent: a real report comes back and
    // normal work is unaffected.
    let report = client.status().expect("status after the fault budget");
    assert!(!report.draining);
    let mut bytes = Vec::new();
    client
        .simulate("r", 3, &mut bytes)
        .expect("simulate still works");
    assert!(!bytes.is_empty());

    daemon.shutdown_clean();
    std::fs::remove_dir_all(&dir).ok();
}
