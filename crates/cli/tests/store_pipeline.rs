//! End-to-end test of the PR-5 store ingest pipeline at the CLI level:
//! `ingest` converts a text edge list to a TGES store, `train --store`
//! streams it back, and the resulting run is **byte-identical**
//! (model.json, observed.edges) to training from the text directly —
//! the same invariant the CI smoke step asserts with the dblp preset.

use std::path::{Path, PathBuf};
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tgx-cli"))
}

fn tmp(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("tgx_cli_store_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Unsorted text with sparse raw ids — exercises the compacting parse.
fn write_sparse_edges(path: &Path) {
    let mut text = String::from("# sparse ids, unsorted\n");
    for t in [2u32, 0, 1] {
        for u in 0..20u32 {
            text.push_str(&format!(
                "{} {} {}\n",
                u * 100,
                ((u + 1) % 20) * 100,
                t * 10
            ));
        }
    }
    std::fs::write(path, text).unwrap();
}

fn train(run_dir: &Path, input: &[&str]) {
    let mut cmd = cli();
    cmd.args(["train", "--run-dir"]).arg(run_dir);
    cmd.args(input);
    cmd.args(["--epochs", "2", "--seed", "5", "--quiet"]);
    let out = cmd
        .stdout(std::process::Stdio::null())
        .output()
        .expect("run tgx-cli train");
    assert!(
        out.status.success(),
        "train failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn train_from_store_is_byte_identical_to_text_path() {
    let dir = tmp("parity");
    let edges = dir.join("sparse.edges");
    write_sparse_edges(&edges);
    let store = dir.join("obs.tgs");

    // text -> store (compacting, verified round-trip)
    let out = cli()
        .args(["ingest", "--out"])
        .arg(&store)
        .arg("--edges")
        .arg(&edges)
        .args(["--verify", "--quiet"])
        .output()
        .expect("run tgx-cli ingest");
    assert!(
        out.status.success(),
        "ingest failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let run_text = dir.join("run_text");
    let run_store = dir.join("run_store");
    train(&run_text, &["--edges", edges.to_str().unwrap()]);
    train(&run_store, &["--store", store.to_str().unwrap()]);

    let model_a = std::fs::read(run_text.join("model.json")).unwrap();
    let model_b = std::fs::read(run_store.join("model.json")).unwrap();
    assert_eq!(
        model_a, model_b,
        "trained models differ between text and store input"
    );
    let obs_a = std::fs::read(run_text.join("observed.edges")).unwrap();
    let obs_b = std::fs::read(run_store.join("observed.edges")).unwrap();
    assert_eq!(
        obs_a, obs_b,
        "observed graphs differ between text and store input"
    );

    // the manifest records the store path for the store-fed run only
    let manifest = std::fs::read_to_string(run_store.join("run.json")).unwrap();
    assert!(manifest.contains("obs.tgs"), "{manifest}");
    let manifest_text = std::fs::read_to_string(run_text.join("run.json")).unwrap();
    assert!(manifest_text.contains("\"store\": null"), "{manifest_text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn exact_ingest_of_a_run_dir_observed_file_round_trips() {
    // observed.edges files are dense by construction; --exact must store
    // them without relabeling (shape inferred from the data here).
    let dir = tmp("exact");
    let edges = dir.join("sparse.edges");
    write_sparse_edges(&edges);
    let run_a = dir.join("run_a");
    train(&run_a, &["--edges", edges.to_str().unwrap()]);

    let store = dir.join("reingested.tgs");
    let out = cli()
        .args(["ingest", "--out"])
        .arg(&store)
        .arg("--edges")
        .arg(run_a.join("observed.edges"))
        .args(["--exact", "--verify", "--quiet"])
        .output()
        .expect("run tgx-cli ingest --exact");
    assert!(
        out.status.success(),
        "exact ingest failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let run_b = dir.join("run_b");
    train(&run_b, &["--store", store.to_str().unwrap()]);
    assert_eq!(
        std::fs::read(run_a.join("model.json")).unwrap(),
        std::fs::read(run_b.join("model.json")).unwrap(),
        "re-ingested store trained a different model"
    );
    std::fs::remove_dir_all(&dir).ok();
}
