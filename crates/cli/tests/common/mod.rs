//! Shared helpers for the `tgx-cli` process-level test suites
//! (`retry.rs`, `supervision.rs`, `serve_faults.rs`): spawning the built
//! binary, per-test temp directories, and the standard small trained run
//! every scenario starts from.
//!
//! Each test binary compiles its own copy (`mod common;`), so helpers a
//! particular suite doesn't use are expected — hence the `dead_code`
//! allowances.

use std::path::{Path, PathBuf};
use std::process::Command;

/// A `Command` for the freshly built `tgx-cli` binary.
pub fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tgx-cli"))
}

/// A fresh per-test temp directory, namespaced by suite tag and pid so
/// parallel test binaries never collide.
pub fn tmp(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("tgx_cli_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// A small dense ring (24 nodes × 3 timestamps): fast to train in debug
/// mode, every node and timestamp occupied.
pub fn write_ring_edges(path: &Path) {
    let mut text = String::new();
    for t in 0..3u32 {
        for u in 0..24u32 {
            text.push_str(&format!("{u} {} {t}\n", (u + 1) % 24));
        }
    }
    std::fs::write(path, text).unwrap();
}

/// Train the standard 2-epoch seed-5 run over `edges` into
/// `<dir>/<run>`, returning the run directory.
pub fn train_run(dir: &Path, run: &str, edges: &Path) -> PathBuf {
    let run_dir = dir.join(run);
    let status = cli()
        .args(["train", "--run-dir"])
        .arg(&run_dir)
        .arg("--edges")
        .arg(edges)
        .args(["--epochs", "2", "--seed", "5", "--quiet"])
        .stdout(std::process::Stdio::null())
        .status()
        .expect("run tgx-cli train");
    assert!(status.success(), "train failed");
    run_dir
}

/// Strip all whitespace, for JSON substring assertions that must not
/// depend on pretty-printing.
#[allow(dead_code)]
pub fn compact(text: &str) -> String {
    text.chars().filter(|c| !c.is_whitespace()).collect()
}
