//! `tgx-cli eval`: score a generated edge list against the observed graph
//! (Eq. 10 — mean/median relative error of the seven Table III
//! statistics over accumulated snapshots).
//!
//! ```text
//! tgx-cli eval --run-dir DIR [--generated FILE]
//! tgx-cli eval --observed FILE --generated FILE --n-nodes N --n-timestamps T
//! ```
//!
//! With `--run-dir` the observed graph and shape come from the run
//! manifest, and `--generated` defaults to the driver's merged
//! `simulated.edges`. Raw mode takes two dense edge-list files plus the
//! shape explicitly.

use crate::args::Args;
use crate::rundir::RunDir;
use tg_graph::io::load_edge_list_exact;
use tg_metrics::MetricScore;

/// Run the subcommand.
pub fn run(args: &Args) -> Result<(), String> {
    let scores: Vec<MetricScore> = match args.get("run-dir") {
        Some(dir) => {
            let run_dir = RunDir::open(dir.to_string());
            let (manifest, observed) = run_dir.load_all()?;
            let generated_path = args
                .get("generated")
                .map(|s| std::path::PathBuf::from(s.to_string()))
                .unwrap_or_else(|| run_dir.simulated_path());
            args.reject_unused()?;
            let generated =
                load_edge_list_exact(&generated_path, manifest.n_nodes, manifest.n_timestamps)
                    .map_err(|e| format!("load {}: {e}", generated_path.display()))?;
            // the session validates shape and runs the harness
            let session = run_dir.session(&manifest, &observed)?;
            session.evaluate(&generated).map_err(|e| e.to_string())?
        }
        None => {
            let observed_path: String = args.require("observed")?;
            let generated_path: String = args.require("generated")?;
            let n_nodes: usize = args.require("n-nodes")?;
            let n_timestamps: usize = args.require("n-timestamps")?;
            args.reject_unused()?;
            let observed = load_edge_list_exact(&observed_path, n_nodes, n_timestamps)
                .map_err(|e| format!("load {observed_path}: {e}"))?;
            let generated = load_edge_list_exact(&generated_path, n_nodes, n_timestamps)
                .map_err(|e| format!("load {generated_path}: {e}"))?;
            tg_metrics::evaluate(&observed, &generated)
        }
    };
    println!("{:<16} {:>10} {:>10}", "metric", "f_avg", "f_med");
    for score in &scores {
        println!(
            "{:<16} {:>10.4} {:>10.4}",
            score.kind.name(),
            score.avg,
            score.med
        );
    }
    Ok(())
}
