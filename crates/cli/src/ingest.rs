//! `tgx-cli ingest`: convert an observed graph into a TGES edge store —
//! or salvage a damaged one.
//!
//! ```text
//! tgx-cli ingest --out FILE (--edges FILE [--buckets T] [--exact]
//!                            [--n-nodes N] [--n-timestamps T]
//!                            | --preset NAME [--scale F] [--data-seed S]
//!                            | --salvage DAMAGED_STORE)
//!                [--block-edges N] [--verify] [--quiet]
//! ```
//!
//! Text edge lists are parsed once (id/timestamp compaction as in
//! `train --edges`, or `--exact` for already-dense files, with the shape
//! taken from `--n-nodes`/`--n-timestamps` or inferred from the data) and
//! written as the columnar, checksummed TGES format. From then on every
//! consumer — `train --store`, `Session::builder_from_source`, benchmark
//! harnesses — streams the store in bounded per-timestamp chunks instead
//! of re-parsing and re-sorting text: the one-time conversion is what
//! buys the `O(chunk)` training-ingest memory profile.
//!
//! `--verify` re-opens the finished store, checks the full payload
//! checksum, and streams it back against the in-memory graph — a
//! belt-and-braces round-trip proof before the text original is archived.
//!
//! `--salvage DAMAGED_STORE` is the disaster path: it block-scans a
//! store that `open` refuses (torn tail, flipped bits, smashed index)
//! with [`tg_store::StoreReader::salvage`], streams every checksummed-valid block
//! into a fresh clean store at `--out`, and reports exactly which blocks
//! — and how many edges — were lost. Exit code 3 when the damaged file
//! is beyond recognition (bad magic/unreadable header).

use crate::args::Args;
use crate::errors::CliError;
use std::io::BufRead;
use tg_graph::io::load_edge_list_exact;
use tg_graph::source::EdgeSource;
use tg_graph::TemporalGraph;
use tg_store::{StoreSource, StoreStats, StoreWriter, DEFAULT_BLOCK_EDGES};

/// Infer a dense file's shape (`max id + 1`, `max t + 1`) for `--exact`
/// without materialising anything: one pass over the text.
fn infer_exact_shape(path: &str) -> Result<(usize, usize), String> {
    let f = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    let mut max_node = 0u64;
    let mut max_t = 0u64;
    let mut any = false;
    for (idx, line) in std::io::BufReader::new(f).lines().enumerate() {
        let line = line.map_err(|e| format!("read {path}: {e}"))?;
        let s = line.trim();
        if s.is_empty() || s.starts_with('#') || s.starts_with('%') {
            continue;
        }
        let mut it = s.split_whitespace();
        let mut next = |what: &str| -> Result<u64, String> {
            it.next()
                .ok_or_else(|| format!("{path}:{}: missing {what}", idx + 1))?
                .parse::<u64>()
                .map_err(|e| format!("{path}:{}: bad {what}: {e}", idx + 1))
        };
        max_node = max_node.max(next("src")?).max(next("dst")?);
        max_t = max_t.max(next("timestamp")?);
        any = true;
    }
    if !any {
        return Err(format!("{path}: no edges to ingest"));
    }
    Ok((max_node as usize + 1, max_t as usize + 1))
}

/// Resolve the graph to store from `--edges`/`--preset` options.
fn load_input(args: &Args) -> Result<(TemporalGraph, String), String> {
    match (args.get("edges"), args.get("preset")) {
        (Some(path), None) => {
            let path = path.to_string();
            if args.flag("exact") {
                let n_nodes: usize = args.get_parsed("n-nodes", 0)?;
                let n_timestamps: usize = args.get_parsed("n-timestamps", 0)?;
                let (n, t) = match (n_nodes, n_timestamps) {
                    (n, t) if n > 0 && t > 0 => (n, t),
                    (0, 0) => infer_exact_shape(&path)?,
                    // Half-specified shapes must not be silently replaced
                    // by inference — the given bound would be dropped and
                    // the store written with a different shape than asked.
                    _ => {
                        return Err(
                            "--exact needs both --n-nodes and --n-timestamps (or neither, \
                             to infer the shape from the data)"
                                .into(),
                        )
                    }
                };
                let g =
                    load_edge_list_exact(&path, n, t).map_err(|e| format!("load {path}: {e}"))?;
                Ok((g, format!("file:{path} (exact)")))
            } else {
                crate::input::load_text_edges(args, &path)
            }
        }
        (None, Some(name)) => crate::input::load_preset(args, name),
        (Some(_), Some(_)) => Err("give either --edges or --preset, not both".into()),
        (None, None) => Err("need an input: --edges FILE or --preset NAME".into()),
    }
}

fn print_stats(g: &TemporalGraph, stats: &StoreStats, out: &str, source: &str) {
    let counts = g.edge_counts_per_timestamp();
    let (min, max) = counts
        .iter()
        .fold((usize::MAX, 0usize), |(lo, hi), &c| (lo.min(c), hi.max(c)));
    let mean = if counts.is_empty() {
        0.0
    } else {
        stats.n_edges as f64 / counts.len() as f64
    };
    eprintln!(
        "ingested: {} nodes, {} timestamps, {} edges ({source})",
        stats.n_nodes, stats.n_timestamps, stats.n_edges
    );
    eprintln!(
        "store: {out} — {} bytes ({:.2} B/edge), {} blocks",
        stats.file_bytes,
        stats.bytes_per_edge(),
        stats.n_blocks
    );
    eprintln!("edges per timestamp: min {min} / mean {mean:.1} / max {max}");
}

/// Run the subcommand.
pub fn run(args: &Args) -> Result<(), CliError> {
    let out: String = args.require("out").map_err(CliError::Usage)?;
    if let Some(damaged) = args.get("salvage").map(str::to_string) {
        let quiet = args.flag("quiet");
        args.reject_unused().map_err(CliError::Usage)?;
        return salvage_store(&damaged, &out, quiet);
    }
    let block_edges: usize = args
        .get_parsed("block-edges", DEFAULT_BLOCK_EDGES)
        .map_err(CliError::Usage)?;
    let verify = args.flag("verify");
    let quiet = args.flag("quiet");
    let (g, source) = load_input(args)?;
    args.reject_unused().map_err(CliError::Usage)?;

    let stats = tg_store::write_source(
        &mut tg_graph::source::InMemorySource::new(&g),
        &out,
        block_edges,
    )
    .map_err(|e| format!("write {out}: {e}"))?;
    if !quiet {
        print_stats(&g, &stats, &out, &source);
    }

    if verify {
        let mut src = StoreSource::open(&out)
            .map_err(|e| CliError::Corruption(format!("re-open {out}: {e}")))?;
        src.reader_mut()
            .verify_payload()
            .map_err(|e| CliError::Corruption(format!("verify {out}: {e}")))?;
        let mut pos = 0usize;
        let mut mismatch = false;
        src.for_each_chunk(block_edges.max(1), &mut |_t, _c, edges| {
            if !mismatch && g.edges()[pos..].starts_with(edges) {
                pos += edges.len();
            } else {
                mismatch = true;
            }
        })
        .map_err(|e| CliError::Corruption(format!("re-read {out}: {e}")))?;
        if mismatch || pos != g.n_edges() {
            return Err(CliError::Corruption(format!(
                "VERIFY FAILED: store stream diverges from the ingested graph at edge {pos}"
            )));
        }
        if !quiet {
            eprintln!(
                "verified: payload checksum ok, streamed edges identical to the ingested graph"
            );
        }
    }
    println!("{out}");
    Ok(())
}

/// `--salvage`: block-scan a damaged store and rewrite every recoverable
/// block into a fresh clean store at `out` (built at a temp sibling and
/// renamed into place, so a crash mid-salvage never leaves a half store
/// under the target name).
fn salvage_store(damaged: &str, out: &str, quiet: bool) -> Result<(), CliError> {
    let tmp = tg_graph::io::tmp_sibling(std::path::Path::new(out));
    let mut writer: Option<StoreWriter<std::io::BufWriter<std::fs::File>>> = None;
    let result = tg_store::StoreReader::salvage(damaged, |header, edges| {
        if writer.is_none() {
            writer = Some(StoreWriter::create_with_block(
                &tmp,
                header.n_nodes as usize,
                header.n_timestamps as usize,
                header.block_edges as usize,
            )?);
        }
        // the insert above makes this infallible; stay typed rather
        // than panicking on an impossible state
        let w = writer.as_mut().ok_or_else(|| {
            tg_store::StoreError::Io(std::io::Error::other(
                "salvage writer vanished after initialisation",
            ))
        })?;
        w.push_chunk(edges)
    });
    let report = match result {
        Ok(r) => r,
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            // unreadable header / I/O failure: nothing could be recovered
            return Err(CliError::Corruption(format!("salvage {damaged}: {e}")));
        }
    };
    // Every block may have been damaged; the salvage still yields a
    // valid (empty) clean store with the original shape.
    let writer = match writer {
        Some(w) => w,
        None => StoreWriter::create_with_block(
            &tmp,
            report.header.n_nodes as usize,
            report.header.n_timestamps as usize,
            report.header.block_edges as usize,
        )
        .map_err(|e| format!("create {}: {e}", tmp.display()))?,
    };
    let stats = writer
        .finish()
        .map_err(|e| format!("finalise {}: {e}", tmp.display()))?;
    let f = std::fs::File::open(&tmp).map_err(|e| format!("reopen {}: {e}", tmp.display()))?;
    f.sync_all()
        .map_err(|e| format!("sync {}: {e}", tmp.display()))?;
    drop(f);
    std::fs::rename(&tmp, out).map_err(|e| format!("rename into {out}: {e}"))?;

    if !quiet {
        let intact = report.n_blocks - report.bad_blocks.len() as u64;
        eprintln!(
            "salvaged {damaged}: {intact} of {} blocks intact, {} edges recovered, {} lost{}",
            report.n_blocks,
            report.recovered_edges,
            report.lost_edges,
            if report.index_valid {
                ""
            } else {
                " (index was damaged; rebuilt)"
            }
        );
        if !report.bad_blocks.is_empty() {
            eprintln!("  damaged blocks: {:?}", report.bad_blocks);
        }
        eprintln!(
            "clean store: {out} — {} bytes, {} edges, {} blocks",
            stats.file_bytes, stats.n_edges, stats.n_blocks
        );
    }
    println!("{out}");
    Ok(())
}
