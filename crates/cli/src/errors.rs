//! Typed process failure for `tgx-cli`: every way a run can end
//! unsuccessfully gets a distinct exit code, so schedulers and scripts
//! can react without parsing stderr.
//!
//! ```text
//! 0  success
//! 1  other failure (I/O, engine error, …)
//! 2  usage error (unknown flag/subcommand, missing/contradictory args)
//! 3  ingest/store corruption (unreadable or damaged TGES input)
//! 4  shard worker(s) still failing after the retry budget
//! 5  run completed in --degrade partial mode (output is incomplete
//!    but usable; see partial_manifest.json)
//! 6  server busy (tgx-cli client: admission control or model cache
//!    refused the request; retry later)
//! ```

/// A failed `tgx-cli` invocation, tagged with its process exit code.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line: unknown subcommand/flag, missing or
    /// contradictory arguments. Exit 2.
    Usage(String),
    /// A store/ingest input is unreadable or damaged. Exit 3.
    Corruption(String),
    /// Shard worker(s) exhausted the retry budget. Exit 4.
    WorkerFailure(String),
    /// The run finished under `--degrade partial`: some shards are
    /// missing, the merged output covers the rest. Exit 5.
    Partial(String),
    /// A `tgx-cli client` request was refused as busy by the server's
    /// admission control or saturated model cache. Exit 6.
    Busy(String),
    /// Anything else. Exit 1.
    Other(String),
}

impl CliError {
    /// The process exit code this failure maps to.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Other(_) => 1,
            CliError::Usage(_) => 2,
            CliError::Corruption(_) => 3,
            CliError::WorkerFailure(_) => 4,
            CliError::Partial(_) => 5,
            CliError::Busy(_) => 6,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m)
            | CliError::Corruption(m)
            | CliError::WorkerFailure(m)
            | CliError::Partial(m)
            | CliError::Busy(m)
            | CliError::Other(m) => write!(f, "{m}"),
        }
    }
}

impl From<String> for CliError {
    fn from(m: String) -> Self {
        CliError::Other(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_and_stable() {
        let cases = [
            (CliError::Other("x".into()), 1),
            (CliError::Usage("x".into()), 2),
            (CliError::Corruption("x".into()), 3),
            (CliError::WorkerFailure("x".into()), 4),
            (CliError::Partial("x".into()), 5),
            (CliError::Busy("x".into()), 6),
        ];
        for (e, code) in cases {
            assert_eq!(e.exit_code(), code, "{e}");
        }
    }

    #[test]
    fn string_errors_default_to_exit_1() {
        let e: CliError = String::from("boom").into();
        assert_eq!(e.exit_code(), 1);
        assert_eq!(e.to_string(), "boom");
    }
}
