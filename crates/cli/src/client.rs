//! `tgx-cli client`: talk to a running `tgx-cli serve` daemon.
//!
//! ```text
//! tgx-cli client simulate (--addr HOST:PORT | --socket PATH)
//!                 --run-id ID [--seed S] [--out FILE] [--stats] [--quiet]
//! tgx-cli client eval     (--addr ... | --socket ...) --run-id ID [--seed S]
//! tgx-cli client status   (--addr ... | --socket ...)
//! tgx-cli client metrics  (--addr ... | --socket ...)
//! tgx-cli client ping     (--addr ... | --socket ...)
//! tgx-cli client shutdown (--addr ... | --socket ...)
//! ```
//!
//! `status` prints the daemon's introspection report (resident models,
//! in-flight cost vs budget, cache and per-run counters); `metrics`
//! dumps the raw Prometheus exposition of the daemon's metrics registry
//! to stdout, ready for a scraper or `grep`.
//!
//! `simulate` streams the server's edge list into `--out` (default
//! `simulated.edges`; `-` for stdout) — byte-identical to what
//! `tgx-cli simulate --in-process --master S` writes locally for the same
//! run. A `busy` rejection from admission control exits with code 6 so
//! schedulers can back off and retry.

use crate::args::Args;
use crate::errors::CliError;
use std::io::Write;
use tg_serve::{Client, ClientError};

fn map_client_err(e: ClientError) -> CliError {
    match e {
        ClientError::Busy(m) => CliError::Busy(m),
        other => CliError::Other(other.to_string()),
    }
}

fn connect(args: &Args) -> Result<Client, CliError> {
    match (args.get("addr"), args.get("socket")) {
        (Some(addr), None) => Client::connect_tcp(addr).map_err(map_client_err),
        (None, Some(path)) => {
            Client::connect_unix(std::path::Path::new(path)).map_err(map_client_err)
        }
        (Some(_), Some(_)) => Err(CliError::Usage(
            "--addr and --socket are mutually exclusive".into(),
        )),
        (None, None) => Err(CliError::Usage("--addr or --socket is required".into())),
    }
}

/// Run the subcommand.
pub fn run(args: &Args) -> Result<(), CliError> {
    let op = args.positional().first().cloned().ok_or_else(|| {
        CliError::Usage(
            "client needs an operation: simulate|eval|status|metrics|ping|shutdown".into(),
        )
    })?;
    if args.positional().len() > 1 {
        return Err(CliError::Usage(format!(
            "unexpected operand(s) after `{op}`"
        )));
    }
    match op.as_str() {
        "simulate" => simulate(args),
        "eval" => eval(args),
        "status" => status(args),
        "metrics" => {
            let mut client = connect(args)?;
            args.reject_unused().map_err(CliError::Usage)?;
            let text = client.metrics().map_err(map_client_err)?;
            print!("{text}");
            Ok(())
        }
        "ping" => {
            let mut client = connect(args)?;
            args.reject_unused().map_err(CliError::Usage)?;
            client.ping().map_err(map_client_err)?;
            println!("pong");
            Ok(())
        }
        "shutdown" => {
            let mut client = connect(args)?;
            args.reject_unused().map_err(CliError::Usage)?;
            client.shutdown().map_err(map_client_err)?;
            println!("server is draining");
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown client operation `{other}`"
        ))),
    }
}

fn simulate(args: &Args) -> Result<(), CliError> {
    let run_id: String = args.require("run-id").map_err(CliError::Usage)?;
    let seed: u64 = args.get_parsed("seed", 0).map_err(CliError::Usage)?;
    let out = args.get("out").unwrap_or("simulated.edges").to_string();
    let stats = args.flag("stats");
    let quiet = args.flag("quiet");
    let mut client = connect(args)?;
    args.reject_unused().map_err(CliError::Usage)?;

    if stats {
        let outcome = client
            .simulate_stats(&run_id, seed)
            .map_err(map_client_err)?;
        if out == "-" {
            println!("{}", outcome.stats_json);
        } else {
            std::fs::write(&out, format!("{}\n", outcome.stats_json))
                .map_err(|e| CliError::Other(format!("write {out}: {e}")))?;
        }
        if !quiet {
            eprintln!(
                "simulated {} edges (stats only, cache {}, cost {})",
                outcome.n_edges, outcome.cache, outcome.cost.cost
            );
        }
        return Ok(());
    }

    let outcome = if out == "-" {
        let stdout = std::io::stdout();
        let mut w = std::io::BufWriter::new(stdout.lock());
        let outcome = client
            .simulate(&run_id, seed, &mut w)
            .map_err(map_client_err)?;
        w.flush()
            .map_err(|e| CliError::Other(format!("write stdout: {e}")))?;
        outcome
    } else {
        let file = std::fs::File::create(&out)
            .map_err(|e| CliError::Other(format!("create {out}: {e}")))?;
        let mut w = std::io::BufWriter::new(file);
        let outcome = client
            .simulate(&run_id, seed, &mut w)
            .map_err(map_client_err)?;
        w.flush()
            .map_err(|e| CliError::Other(format!("write {out}: {e}")))?;
        outcome
    };
    if !quiet {
        eprintln!(
            "simulated {} edges -> {} (cache {}, cost {})",
            outcome.n_edges, out, outcome.cache, outcome.cost.cost
        );
    }
    Ok(())
}

fn status(args: &Args) -> Result<(), CliError> {
    let mut client = connect(args)?;
    args.reject_unused().map_err(CliError::Usage)?;
    let report = client.status().map_err(map_client_err)?;
    println!(
        "server: {} ({} served, {} active)",
        if report.draining { "draining" } else { "up" },
        report.requests_served,
        report.active_requests
    );
    println!(
        "admission: {}/{} cost in flight ({} requests, {} rejected)",
        report.inflight_cost, report.max_cost, report.inflight_requests, report.admission_rejected
    );
    println!(
        "cache: {}/{} resident ({} hits, {} misses, {} evictions, {} saturations)",
        report.resident.len(),
        report.cache_capacity,
        report.cache.hits,
        report.cache.misses,
        report.cache.evictions,
        report.cache.saturations
    );
    for model in &report.resident {
        println!(
            "  {} ({})",
            model.run_id,
            if model.pinned { "in use" } else { "idle" }
        );
    }
    if !report.runs.is_empty() {
        println!("{:<24} {:>10} {:>14}", "run", "requests", "bytes");
        for run in &report.runs {
            println!("{:<24} {:>10} {:>14}", run.run_id, run.requests, run.bytes);
        }
    }
    Ok(())
}

fn eval(args: &Args) -> Result<(), CliError> {
    let run_id: String = args.require("run-id").map_err(CliError::Usage)?;
    let seed: u64 = args.get_parsed("seed", 0).map_err(CliError::Usage)?;
    let mut client = connect(args)?;
    args.reject_unused().map_err(CliError::Usage)?;
    let scores = client.eval(&run_id, seed).map_err(map_client_err)?;
    println!("{:<16} {:>10} {:>10}", "metric", "f_avg", "f_med");
    for score in &scores {
        println!(
            "{:<16} {:>10.4} {:>10.4}",
            score.kind.name(),
            score.avg,
            score.med
        );
    }
    Ok(())
}
