//! `tgx-cli train`: fit a TGAE on an observed graph and persist a run
//! directory that `simulate` workers can load.
//!
//! ```text
//! tgx-cli train --run-dir DIR (--preset NAME [--scale F] [--data-seed S]
//!                              | --edges FILE [--buckets T]
//!                              | --store FILE)
//!               [--epochs N] [--batch-centers N] [--seed S] [--full]
//!               [--checkpoint-every N] [--checkpoint-keep K] [--resume]
//!               [--telemetry] [--quiet]
//! ```
//!
//! Training runs through the `Session` API: a progress observer prints
//! epoch-end lines, `--checkpoint-every N` writes resumable, atomically
//! replaced checkpoints in a rotation of `--checkpoint-keep K`
//! generations (`train_ckpt.json`, `.1`, …; default 2, so a checkpoint
//! torn by a crash mid-write still leaves the previous generation for
//! `--resume` to fall back to), and `--resume` continues a previously
//! interrupted run **bit-identically** (same final parameters as an
//! uninterrupted run).
//!
//! `--store FILE` reads the observed graph from a TGES edge store
//! (written by `tgx-cli ingest`) through the streaming `EdgeSource`
//! ingest path — bounded-memory assembly instead of text re-parsing —
//! and records the store path in the run manifest. Training from the
//! store is **bit-identical** to training from the equivalent
//! `--edges`/`--preset` input (asserted by the CI smoke pipeline).

use crate::args::Args;
use crate::rundir::{RunDir, RunManifest, RUN_VERSION};
use tg_graph::io::save_edge_list_atomic;
use tg_graph::TemporalGraph;
use tg_store::StoreSource;
use tgae::{EpochEvent, RunObserver, Session, TgaeConfig, TrainControl, TrainReport};

/// The resolved observed graph plus its provenance.
struct ObservedInput {
    graph: TemporalGraph,
    /// Human-readable provenance for the manifest.
    source: String,
    /// TGES store path, when the graph came from `--store`.
    store: Option<String>,
}

/// Resolve the observed graph from `--preset`/`--edges`/`--store`.
fn load_observed(args: &Args) -> Result<ObservedInput, String> {
    match (args.get("preset"), args.get("edges"), args.get("store")) {
        (Some(name), None, None) => {
            let (graph, source) = crate::input::load_preset(args, name)?;
            Ok(ObservedInput {
                graph,
                source,
                store: None,
            })
        }
        (None, Some(path), None) => {
            let (graph, source) = crate::input::load_text_edges(args, path)?;
            Ok(ObservedInput {
                graph,
                source,
                store: None,
            })
        }
        (None, None, Some(path)) => {
            let path = path.to_string();
            let mut src = StoreSource::open(&path).map_err(|e| format!("open {path}: {e}"))?;
            let g = src
                .load_graph()
                .map_err(|e| format!("stream {path}: {e}"))?;
            Ok(ObservedInput {
                graph: g,
                source: format!("store:{path}"),
                store: Some(path),
            })
        }
        (None, None, None) => {
            Err("need an observed graph: --preset NAME, --edges FILE, or --store FILE".into())
        }
        _ => Err("give exactly one of --preset, --edges, or --store".into()),
    }
}

fn progress_observer(quiet: bool, n_epochs: usize) -> impl FnMut(&EpochEvent) -> TrainControl {
    // print ~10 lines per run regardless of epoch count
    let stride = (n_epochs / 10).max(1);
    move |ev: &EpochEvent| {
        if !quiet && ((ev.epoch + 1).is_multiple_of(stride) || ev.epoch + 1 == ev.n_epochs) {
            eprintln!(
                "  epoch {:>4}/{}: loss {:.4} ({:.1} ms)",
                ev.epoch + 1,
                ev.n_epochs,
                ev.loss,
                ev.wall.as_secs_f64() * 1e3
            );
        }
        TrainControl::Continue
    }
}

/// Run the subcommand.
pub fn run(args: &Args) -> Result<(), String> {
    let run_dir = RunDir::create(args.require::<String>("run-dir")?)?;
    let quiet = args.flag("quiet");
    let resume = args.flag("resume");
    let telemetry = args.flag("telemetry");
    let checkpoint_every: usize = args.get_parsed("checkpoint-every", 0)?;
    let checkpoint_keep: usize = args.get_parsed("checkpoint-keep", 2)?;
    if checkpoint_keep == 0 {
        return Err("--checkpoint-keep: must keep at least 1 generation".into());
    }

    let (observed, source, store, seed, cfg) = if resume {
        // Resuming: the run dir is authoritative — graph, config, and
        // seed all come from the manifest (written before training
        // started), so the session's checkpoint-config equality check
        // passes without re-passing any training flags.
        let manifest = run_dir.load_manifest()?;
        let observed = run_dir.load_observed(&manifest)?;
        (
            observed,
            manifest.source,
            manifest.store,
            manifest.seed,
            manifest.config,
        )
    } else {
        let input = load_observed(args)?;
        let seed: u64 = args.get_parsed("seed", 42)?;
        let mut cfg = if args.flag("full") {
            TgaeConfig::default()
        } else {
            TgaeConfig::tiny()
        };
        cfg.seed = seed;
        cfg.epochs = args.get_parsed("epochs", cfg.epochs)?;
        cfg.batch_centers = args.get_parsed("batch-centers", cfg.batch_centers)?;
        (input.graph, input.source, input.store, seed, cfg)
    };
    args.reject_unused()?;
    let epochs = cfg.epochs;

    if !quiet {
        eprintln!(
            "observed: {} nodes, {} timestamps, {} edges ({source})",
            observed.n_nodes(),
            observed.n_timestamps(),
            observed.n_edges()
        );
    }

    // Persist the manifest + observed graph *before* training: an
    // interrupted run then has everything `--resume` needs on disk
    // (the resumable train_ckpt.json is written by the session itself).
    if !resume {
        save_edge_list_atomic(&observed, run_dir.observed_path())
            .map_err(|e| format!("write observed.edges: {e}"))?;
        run_dir.save_manifest(&RunManifest {
            version: RUN_VERSION,
            n_nodes: observed.n_nodes(),
            n_timestamps: observed.n_timestamps(),
            n_edges: observed.n_edges(),
            seed,
            config: cfg.clone(),
            source,
            store,
        })?;
    }

    // --telemetry: record per-epoch loss/wall/heap into the global
    // metrics registry and telemetry.jsonl, composed with the progress
    // printer (the session takes one observer). The observer only
    // *reads* the epoch events, so the parameter trajectory — and
    // therefore model.json — is bit-identical with the flag on or off
    // (asserted by the CLI trace test).
    let mut obs = if telemetry {
        let run_label = run_dir
            .root()
            .file_name()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "train".to_string());
        Some(
            tg_bench::ObsObserver::with_file(&run_label, &run_dir.telemetry_path())
                .map_err(|e| format!("create telemetry.jsonl: {e}"))?,
        )
    } else {
        None
    };
    let mut progress = progress_observer(quiet, epochs);
    let observer = move |ev: &EpochEvent| {
        if let Some(o) = obs.as_mut() {
            o.on_epoch_end(ev);
        }
        progress(ev)
    };
    let mut builder = Session::builder(&observed)
        .config(cfg)
        .seed(seed)
        .observer(observer);
    if checkpoint_every > 0 || resume {
        builder = builder.checkpoint_rotating(
            run_dir.train_checkpoint_path(),
            checkpoint_every.max(1),
            checkpoint_keep,
        );
    }
    let mut session = builder.build().map_err(|e| e.to_string())?;

    let report: TrainReport = if resume {
        session
            .resume_from(run_dir.train_checkpoint_path())
            .map_err(|e| e.to_string())?
    } else {
        session.train().map_err(|e| e.to_string())?
    };
    if !quiet {
        eprintln!(
            "trained {} epochs in {:.2?}: loss {:.4} -> {:.4} ({} params)",
            report.epochs_run(),
            report.wall,
            report.losses[0],
            report.final_loss(),
            report.n_params
        );
    }

    session
        .save_model(run_dir.model_path())
        .map_err(|e| e.to_string())?;
    if !quiet {
        eprintln!("run directory ready: {}", run_dir.root().display());
    }
    println!("{}", run_dir.root().display());
    Ok(())
}
