//! `tgx-cli train`: fit a TGAE on an observed graph and persist a run
//! directory that `simulate` workers can load.
//!
//! ```text
//! tgx-cli train --run-dir DIR (--preset NAME [--scale F] [--data-seed S]
//!                              | --edges FILE [--buckets T])
//!               [--epochs N] [--batch-centers N] [--seed S] [--full]
//!               [--checkpoint-every N] [--resume] [--quiet]
//! ```
//!
//! Training runs through the `Session` API: a progress observer prints
//! epoch-end lines, `--checkpoint-every N` writes a resumable
//! `train_ckpt.json`, and `--resume` continues a previously interrupted
//! run **bit-identically** (same final parameters as an uninterrupted
//! run).

use crate::args::Args;
use crate::rundir::{RunDir, RunManifest, RUN_VERSION};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tg_graph::io::{load_edge_list, save_edge_list};
use tg_graph::TemporalGraph;
use tgae::{EpochEvent, Session, TgaeConfig, TrainControl, TrainReport};

/// Resolve the observed graph from `--preset`/`--edges` options.
fn load_observed(args: &Args) -> Result<(TemporalGraph, String), String> {
    match (args.get("preset"), args.get("edges")) {
        (Some(name), None) => {
            let name = name.to_string();
            let preset = tg_datasets::presets::by_name(&name)
                .ok_or_else(|| format!("unknown preset `{name}` (try: dblp, email, msg, …)"))?;
            let scale: f64 = args.get_parsed("scale", 1.0)?;
            let data_seed: u64 = args.get_parsed("data-seed", 7)?;
            let mut cfg = preset.config.scaled(scale);
            if let Some(t) = args.get("n-timestamps") {
                cfg.timestamps = t.parse().map_err(|_| "--n-timestamps: bad value")?;
            }
            let g = tg_datasets::generate(&cfg, &mut SmallRng::seed_from_u64(data_seed));
            Ok((g, format!("preset:{name}@{scale}x_seed{data_seed}")))
        }
        (None, Some(path)) => {
            let path = path.to_string();
            let buckets: Option<usize> = args
                .get("buckets")
                .map(|b| b.parse())
                .transpose()
                .map_err(|_| "--buckets: bad value")?;
            let g = load_edge_list(&path, buckets).map_err(|e| format!("load {path}: {e}"))?;
            Ok((g, format!("file:{path}")))
        }
        (Some(_), Some(_)) => Err("give either --preset or --edges, not both".into()),
        (None, None) => Err("need an observed graph: --preset NAME or --edges FILE".into()),
    }
}

fn progress_observer(quiet: bool, n_epochs: usize) -> impl FnMut(&EpochEvent) -> TrainControl {
    // print ~10 lines per run regardless of epoch count
    let stride = (n_epochs / 10).max(1);
    move |ev: &EpochEvent| {
        if !quiet && ((ev.epoch + 1).is_multiple_of(stride) || ev.epoch + 1 == ev.n_epochs) {
            eprintln!(
                "  epoch {:>4}/{}: loss {:.4} ({:.1} ms)",
                ev.epoch + 1,
                ev.n_epochs,
                ev.loss,
                ev.wall.as_secs_f64() * 1e3
            );
        }
        TrainControl::Continue
    }
}

/// Run the subcommand.
pub fn run(args: &Args) -> Result<(), String> {
    let run_dir = RunDir::create(args.require::<String>("run-dir")?)?;
    let quiet = args.flag("quiet");
    let resume = args.flag("resume");
    let checkpoint_every: usize = args.get_parsed("checkpoint-every", 0)?;

    let (observed, source, seed, cfg) = if resume {
        // Resuming: the run dir is authoritative — graph, config, and
        // seed all come from the manifest (written before training
        // started), so the session's checkpoint-config equality check
        // passes without re-passing any training flags.
        let manifest = run_dir.load_manifest()?;
        let observed = run_dir.load_observed(&manifest)?;
        (observed, manifest.source, manifest.seed, manifest.config)
    } else {
        let (observed, source) = load_observed(args)?;
        let seed: u64 = args.get_parsed("seed", 42)?;
        let mut cfg = if args.flag("full") {
            TgaeConfig::default()
        } else {
            TgaeConfig::tiny()
        };
        cfg.seed = seed;
        cfg.epochs = args.get_parsed("epochs", cfg.epochs)?;
        cfg.batch_centers = args.get_parsed("batch-centers", cfg.batch_centers)?;
        (observed, source, seed, cfg)
    };
    args.reject_unused()?;
    let epochs = cfg.epochs;

    if !quiet {
        eprintln!(
            "observed: {} nodes, {} timestamps, {} edges ({source})",
            observed.n_nodes(),
            observed.n_timestamps(),
            observed.n_edges()
        );
    }

    // Persist the manifest + observed graph *before* training: an
    // interrupted run then has everything `--resume` needs on disk
    // (the resumable train_ckpt.json is written by the session itself).
    if !resume {
        save_edge_list(&observed, run_dir.observed_path())
            .map_err(|e| format!("write observed.edges: {e}"))?;
        run_dir.save_manifest(&RunManifest {
            version: RUN_VERSION,
            n_nodes: observed.n_nodes(),
            n_timestamps: observed.n_timestamps(),
            n_edges: observed.n_edges(),
            seed,
            config: cfg.clone(),
            source,
        })?;
    }

    let mut builder = Session::builder(&observed)
        .config(cfg)
        .seed(seed)
        .observer(progress_observer(quiet, epochs));
    if checkpoint_every > 0 || resume {
        builder = builder.checkpoint(run_dir.train_checkpoint_path(), checkpoint_every.max(1));
    }
    let mut session = builder.build().map_err(|e| e.to_string())?;

    let report: TrainReport = if resume {
        session
            .resume_from(run_dir.train_checkpoint_path())
            .map_err(|e| e.to_string())?
    } else {
        session.train().map_err(|e| e.to_string())?
    };
    if !quiet {
        eprintln!(
            "trained {} epochs in {:.2?}: loss {:.4} -> {:.4} ({} params)",
            report.epochs_run(),
            report.wall,
            report.losses[0],
            report.final_loss(),
            report.n_params
        );
    }

    session
        .save_model(run_dir.model_path())
        .map_err(|e| e.to_string())?;
    if !quiet {
        eprintln!("run directory ready: {}", run_dir.root().display());
    }
    println!("{}", run_dir.root().display());
    Ok(())
}
