//! The on-disk layout shared by every `tgx-cli` subcommand: a **run
//! directory** holding everything a worker process needs to execute any
//! shard of a simulation.
//!
//! ```text
//! <run-dir>/
//!   run.json          RunManifest: graph shape, master seed, provenance
//!   observed.edges    the observed graph (dense `u v t` lines)
//!   model.json        trained model checkpoint (tgae::persist format)
//!   train_ckpt.json   mid-training checkpoint (when --checkpoint-every)
//!   shards.json       ShardSpec manifest of the last `simulate` call
//!   shard_<i>.edges   per-worker shard output
//!   simulated.edges   merged shard outputs (bit-identical to in-process)
//!   retry_log.json    supervision bookkeeping when --retries saw failures
//!   partial_manifest.json   completed/missing shards of a --degrade partial run
//! ```
//!
//! The manifest is deliberately tiny: shard workers re-derive everything
//! else (the simulation plan, unit seeds, budgets) deterministically from
//! the observed graph + the `ShardSpec`, which is what makes the
//! fork/exec driver sound.

use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use tg_graph::io::load_edge_list_exact;
use tg_graph::TemporalGraph;
use tgae::{Session, Tgae};

/// Provenance + shape record for one run directory.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunManifest {
    /// Layout version (bumped on incompatible changes).
    pub version: u32,
    /// Nodes in the observed graph.
    pub n_nodes: usize,
    /// Timestamps in the observed graph.
    pub n_timestamps: usize,
    /// Temporal edges in the observed graph.
    pub n_edges: usize,
    /// The session master seed (seed policy) the run was trained under.
    pub seed: u64,
    /// The full model/training configuration — authoritative on
    /// `train --resume`, so an interrupted `--full`/`--batch-centers`
    /// run resumes with exactly the config it was started with (the
    /// session's checkpoint-config equality check would refuse anything
    /// else).
    pub config: tgae::TgaeConfig,
    /// Human-readable provenance (preset name / input file).
    pub source: String,
    /// Path of the TGES edge store the observed graph was streamed from
    /// (`train --store`); `None` for preset/text inputs. Recorded so a
    /// run is traceable back to its canonical on-disk input even after
    /// `observed.edges` is regenerated.
    pub store: Option<String>,
}

/// Current [`RunManifest::version`].
pub const RUN_VERSION: u32 = 1;

/// Typed paths inside one run directory.
pub struct RunDir {
    root: PathBuf,
}

impl RunDir {
    /// Wrap (and `mkdir -p`) a run directory.
    pub fn create(root: impl Into<PathBuf>) -> Result<Self, String> {
        let root = root.into();
        std::fs::create_dir_all(&root)
            .map_err(|e| format!("cannot create run dir {}: {e}", root.display()))?;
        Ok(RunDir { root })
    }

    /// Wrap an existing run directory (no filesystem access yet).
    pub fn open(root: impl Into<PathBuf>) -> Self {
        RunDir { root: root.into() }
    }

    /// The directory itself.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// `run.json`.
    pub fn manifest_path(&self) -> PathBuf {
        self.root.join("run.json")
    }

    /// `observed.edges`.
    pub fn observed_path(&self) -> PathBuf {
        self.root.join("observed.edges")
    }

    /// `model.json`.
    pub fn model_path(&self) -> PathBuf {
        self.root.join("model.json")
    }

    /// `train_ckpt.json`.
    pub fn train_checkpoint_path(&self) -> PathBuf {
        self.root.join("train_ckpt.json")
    }

    /// `shards.json` — the serialised `ShardSpec` manifest.
    pub fn shard_manifest_path(&self) -> PathBuf {
        self.root.join("shards.json")
    }

    /// `shard_<i>.edges`.
    pub fn shard_edges_path(&self, shard: u32) -> PathBuf {
        self.root.join(format!("shard_{shard}.edges"))
    }

    /// `shard_<i>.stats.json`.
    pub fn shard_stats_path(&self, shard: u32) -> PathBuf {
        self.root.join(format!("shard_{shard}.stats.json"))
    }

    /// `simulated.edges` — the merged output.
    pub fn simulated_path(&self) -> PathBuf {
        self.root.join("simulated.edges")
    }

    /// `simulated.stats.json` — the merged statistics.
    pub fn simulated_stats_path(&self) -> PathBuf {
        self.root.join("simulated.stats.json")
    }

    /// `retry_log.json` — per-attempt supervision record (exit codes,
    /// signals, timeouts, backoff) of a `simulate --retries` run that
    /// saw failures.
    pub fn retry_log_path(&self) -> PathBuf {
        self.root.join("retry_log.json")
    }

    /// `partial_manifest.json` — completed/missing shard sets of a
    /// `simulate --degrade partial` run that delivered an incomplete
    /// merge.
    pub fn partial_manifest_path(&self) -> PathBuf {
        self.root.join("partial_manifest.json")
    }

    /// `trace_driver.jsonl` — the driver process's span records of a
    /// `simulate --trace` run.
    pub fn trace_driver_path(&self) -> PathBuf {
        self.root.join("trace_driver.jsonl")
    }

    /// `trace_shard_<i>.jsonl` — one worker process's span records.
    pub fn trace_shard_path(&self, shard: u32) -> PathBuf {
        self.root.join(format!("trace_shard_{shard}.jsonl"))
    }

    /// `trace.json` — the merged Chrome `trace_event` view of a
    /// `simulate --trace` run (driver + every worker, flow-linked).
    pub fn trace_merged_path(&self) -> PathBuf {
        self.root.join("trace.json")
    }

    /// `telemetry.jsonl` — per-epoch loss/wall/heap records of a
    /// `train --telemetry` run.
    pub fn telemetry_path(&self) -> PathBuf {
        self.root.join("telemetry.jsonl")
    }

    /// Write the manifest (atomically: a crash mid-write must not leave
    /// a torn run.json, or the whole run dir becomes unreadable).
    pub fn save_manifest(&self, m: &RunManifest) -> Result<(), String> {
        let json = serde_json::to_string_pretty(m).map_err(|e| e.to_string())?;
        tg_graph::io::atomic_write_bytes(self.manifest_path(), json.as_bytes())
            .map_err(|e| format!("write {}: {e}", self.manifest_path().display()))
    }

    /// Read the manifest.
    pub fn load_manifest(&self) -> Result<RunManifest, String> {
        let text = std::fs::read_to_string(self.manifest_path()).map_err(|e| {
            format!(
                "{} is not a run directory (missing run.json): {e}",
                self.root.display()
            )
        })?;
        let m: RunManifest = serde_json::from_str(&text)
            .map_err(|e| format!("corrupt run.json in {}: {e}", self.root.display()))?;
        if m.version != RUN_VERSION {
            return Err(format!(
                "run.json is layout v{} (this build reads v{RUN_VERSION})",
                m.version
            ));
        }
        Ok(m)
    }

    /// Load the observed graph exactly as written (no id compaction).
    pub fn load_observed(&self, m: &RunManifest) -> Result<TemporalGraph, String> {
        load_edge_list_exact(self.observed_path(), m.n_nodes, m.n_timestamps)
            .map_err(|e| format!("load {}: {e}", self.observed_path().display()))
    }

    /// Load the trained model checkpoint.
    pub fn load_model(&self) -> Result<Tgae, String> {
        tgae::persist::load(self.model_path())
            .map_err(|e| format!("load {}: {e}", self.model_path().display()))
    }

    /// Load manifest + observed graph + model and build a simulation-ready
    /// [`Session`] over them. The observed graph is returned alongside
    /// because the session borrows it.
    pub fn load_all(&self) -> Result<(RunManifest, TemporalGraph), String> {
        let manifest = self.load_manifest()?;
        let observed = self.load_observed(&manifest)?;
        Ok((manifest, observed))
    }

    /// Build a [`Session`] over a loaded run (typed shape validation
    /// happens in the builder).
    pub fn session<'g>(
        &self,
        manifest: &RunManifest,
        observed: &'g TemporalGraph,
    ) -> Result<Session<'g>, String> {
        let model = self.load_model()?;
        Session::builder(observed)
            .seed(manifest.seed)
            .with_model(model)
            .build()
            .map_err(|e| e.to_string())
    }
}
