//! Trace plumbing shared by the `simulate` driver and its shard workers:
//! installing sinks, the best-effort flush (with its `obs.flush` fault
//! point), and the driver-side Chrome merge.
//!
//! Telemetry is **best-effort by contract**: every failure in here warns
//! on stderr and lets the simulation proceed — a run must never lose its
//! edges because its trace could not be written. The `obs.flush` fault
//! point exists to test exactly that contract (see
//! `tests/serve_faults.rs` and `crates/faults`).

use crate::rundir::RunDir;
use std::path::PathBuf;

/// Install the driver-side trace sink for a `simulate --trace` run.
/// Returns whether a sink is live (installation failure only warns).
pub fn install_driver_trace(run_dir: &RunDir) -> bool {
    let path = run_dir.trace_driver_path();
    match tg_obs::trace::install(&path, "driver") {
        Ok(()) => true,
        Err(e) => {
            eprintln!(
                "tgx-cli: tracing disabled (cannot install sink at {}: {e})",
                path.display()
            );
            tg_obs::trace::enabled()
        }
    }
}

/// Install the worker-side trace sink when the driver exported
/// [`tg_obs::trace::ENV_TRACE_FILE`]. Returns whether a sink is live.
pub fn install_worker_trace(shard_index: u32) -> bool {
    let Some(path) = tg_obs::trace::env_trace_file() else {
        return false;
    };
    match tg_obs::trace::install(&path, &format!("shard_{shard_index}")) {
        Ok(()) => true,
        Err(e) => {
            eprintln!(
                "tgx-cli: shard {shard_index} tracing disabled (cannot install sink at {}: {e})",
                path.display()
            );
            tg_obs::trace::enabled()
        }
    }
}

/// Flush this process's trace buffers to the installed sink,
/// warn-and-continue on failure. `context` names the flushing process in
/// diagnostics (and is handed to the `obs.flush` fault point so tests
/// can target one process).
pub fn flush_trace(context: &str) {
    if !tg_obs::trace::enabled() {
        return;
    }
    if let Err(e) = tg_faults::eval("obs.flush", Some(context)) {
        eprintln!("tgx-cli: trace flush skipped ({context}): {e}");
        return;
    }
    if let Err(e) = tg_obs::trace::flush() {
        eprintln!("tgx-cli: trace flush failed ({context}): {e}");
    }
}

/// Merge the driver's and every completed shard's span files into the
/// run dir's `trace.json` (Chrome `trace_event` format, loadable in
/// `chrome://tracing` / Perfetto). Missing or torn shard files are
/// skipped by the merger; total failure only warns.
pub fn merge_run_traces(run_dir: &RunDir, shards: &[u32], quiet: bool) {
    let mut inputs: Vec<PathBuf> = vec![run_dir.trace_driver_path()];
    inputs.extend(shards.iter().map(|&s| run_dir.trace_shard_path(s)));
    let out = run_dir.trace_merged_path();
    match tg_obs::chrome::merge_traces(&inputs, &out) {
        Ok(summary) => {
            if !quiet {
                eprintln!(
                    "trace: {} spans from {} process(es), {} cross-process link(s) -> {}",
                    summary.spans,
                    summary.processes,
                    summary.links,
                    out.display()
                );
            }
        }
        Err(e) => eprintln!("tgx-cli: trace merge failed: {e}"),
    }
}
