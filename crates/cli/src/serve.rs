//! `tgx-cli serve`: run the resident simulation daemon over a root
//! directory of `tgx-cli train` run directories.
//!
//! ```text
//! tgx-cli serve --root DIR [--addr HOST:PORT | --socket PATH]
//!               [--cache N] [--max-cost C] [--batch-edges N] [--quiet]
//! ```
//!
//! Each protocol `run_id` names one run directory under `--root`. Models
//! are loaded lazily on first request and kept resident in an LRU cache
//! (`--cache` entries), so repeated requests skip the load entirely;
//! admission control bounds concurrent in-flight work by plan cost
//! (`--max-cost`), refusing the excess with typed `busy` errors (client
//! exit code 6).
//!
//! The daemon prints exactly one startup line —
//! `tgx-serve listening on <endpoint>` — so scripts can bind an
//! ephemeral port (`--addr 127.0.0.1:0`) and parse the real one.
//! `SIGTERM`/`SIGINT` (or a protocol `shutdown` request) drain it: new
//! work is refused, in-flight requests finish, exit code 0.

use crate::args::Args;
use crate::errors::CliError;
use crate::rundir::RunDir;
use std::io::Write;
use std::path::PathBuf;
use tg_serve::{Loader, ServeConfig, Server};
use tgae::SharedRun;

/// A protocol run-id must be a plain directory name — anything
/// path-like is refused before it touches the filesystem.
fn safe_run_id(id: &str) -> Result<(), String> {
    if id.is_empty() {
        return Err("empty run_id".into());
    }
    if id == "." || id == ".." || id.contains('/') || id.contains('\\') {
        return Err(format!("run_id `{id}` is not a plain directory name"));
    }
    Ok(())
}

/// Build the cache-miss loader: `run_id` → run directory under `root` →
/// validated [`SharedRun`] with the manifest's master seed.
pub(crate) fn run_loader(root: PathBuf) -> Loader {
    Box::new(move |run_id: &str| {
        safe_run_id(run_id)?;
        let run_dir = RunDir::open(root.join(run_id));
        let (manifest, observed) = run_dir.load_all()?;
        let model = run_dir.load_model()?;
        let run = SharedRun::new(model, observed).map_err(|e| e.to_string())?;
        Ok(run.with_master(manifest.seed))
    })
}

/// Run the subcommand.
pub fn run(args: &Args) -> Result<(), CliError> {
    let root: String = args.require("root").map_err(CliError::Usage)?;
    let addr = args.get("addr").unwrap_or("127.0.0.1:0").to_string();
    let socket = args.get("socket").map(PathBuf::from);
    let mut cfg = ServeConfig::default();
    cfg.cache_capacity = args
        .get_parsed("cache", cfg.cache_capacity)
        .map_err(CliError::Usage)?;
    cfg.max_cost = args
        .get_parsed("max-cost", cfg.max_cost)
        .map_err(CliError::Usage)?;
    cfg.batch_edges = args
        .get_parsed("batch-edges", cfg.batch_edges)
        .map_err(CliError::Usage)?;
    let quiet = args.flag("quiet");
    args.reject_unused().map_err(CliError::Usage)?;
    if cfg.cache_capacity == 0 {
        return Err(CliError::Usage("--cache must be >= 1".into()));
    }

    let loader = run_loader(PathBuf::from(root));
    tg_serve::signal::install_handlers();
    let server = match &socket {
        Some(path) => Server::bind_unix(path, loader, cfg)
            .map_err(|e| CliError::Other(format!("bind {}: {e}", path.display())))?,
        None => Server::bind_tcp(&addr, loader, cfg)
            .map_err(|e| CliError::Other(format!("bind {addr}: {e}")))?,
    };

    // The one line scripts depend on: parseable even with --quiet, and
    // flushed so a parent polling our stdout sees it immediately.
    println!("tgx-serve listening on {}", server.endpoint());
    let _ = std::io::stdout().flush();

    let report = server
        .run()
        .map_err(|e| CliError::Other(format!("serve loop failed: {e}")))?;
    if !quiet {
        println!(
            "tgx-serve drained: {} request(s) served",
            report.requests_served
        );
    }
    Ok(())
}
