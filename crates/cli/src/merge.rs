//! `tgx-cli merge`: combine per-shard artifacts outside the driver (e.g.
//! when shards ran on different machines and were copied together).
//!
//! ```text
//! edge lists:  tgx-cli merge --out merged.edges shard_0.edges shard_1.edges …
//! statistics:  tgx-cli merge --stats --out merged.stats.json s0.json s1.json …
//! ```
//!
//! Edge lists are merged with [`merge_edge_lists`] (streaming byte
//! concatenation — byte-identical to a single-process stream when the
//! inputs are a shard partition in shard order); statistics are merged
//! with the public `GenerationStats::merge`.
//!
//! [`merge_edge_lists`]: tg_graph::io::merge_edge_lists

use crate::args::Args;
use tg_graph::io::merge_edge_lists;
use tg_graph::sink::GenerationStats;

/// Run the subcommand.
pub fn run(args: &Args) -> Result<(), String> {
    let out: String = args.require("out")?;
    let stats = args.flag("stats");
    args.reject_unused()?;
    let inputs = args.positional();
    if inputs.is_empty() {
        return Err("nothing to merge: pass shard files as positional arguments".into());
    }
    if stats {
        let mut acc = GenerationStats::default();
        for path in inputs {
            let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
            let s: GenerationStats =
                serde_json::from_str(&text).map_err(|e| format!("parse {path}: {e}"))?;
            acc.merge(&s);
        }
        let json = serde_json::to_string_pretty(&acc).map_err(|e| e.to_string())?;
        std::fs::write(&out, json).map_err(|e| format!("write {out}: {e}"))?;
        eprintln!(
            "merged {} stats files: {} edges across {} timestamps -> {out}",
            inputs.len(),
            acc.n_edges(),
            acc.per_timestamp.len()
        );
    } else {
        let bytes = merge_edge_lists(inputs, &out).map_err(|e| format!("merge edge lists: {e}"))?;
        eprintln!(
            "merged {} edge files ({bytes} bytes) -> {out}",
            inputs.len()
        );
    }
    println!("{out}");
    Ok(())
}
