//! Shared observed-graph input resolution for `train` and `ingest`.
//!
//! Both subcommands accept the same `--preset …` / `--edges …` inputs;
//! keeping the flag semantics (scale/data-seed/n-timestamps overrides,
//! bucket parsing, error wording) in one place means the two CLIs cannot
//! drift apart.

use crate::args::Args;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tg_graph::io::load_edge_list;
use tg_graph::TemporalGraph;

/// Generate a synthetic preset observed graph: `--preset NAME`
/// honoring `--scale`, `--data-seed`, and `--n-timestamps`.
pub fn load_preset(args: &Args, name: &str) -> Result<(TemporalGraph, String), String> {
    let preset = tg_datasets::presets::by_name(name)
        .ok_or_else(|| format!("unknown preset `{name}` (try: dblp, email, msg, …)"))?;
    let scale: f64 = args.get_parsed("scale", 1.0)?;
    let data_seed: u64 = args.get_parsed("data-seed", 7)?;
    let mut cfg = preset.config.scaled(scale);
    if let Some(t) = args.get("n-timestamps") {
        cfg.timestamps = t.parse().map_err(|_| "--n-timestamps: bad value")?;
    }
    let g = tg_datasets::generate(&cfg, &mut SmallRng::seed_from_u64(data_seed));
    Ok((g, format!("preset:{name}@{scale}x_seed{data_seed}")))
}

/// Load a `u v t` text edge list with id/timestamp compaction:
/// `--edges FILE` honoring `--buckets`.
pub fn load_text_edges(args: &Args, path: &str) -> Result<(TemporalGraph, String), String> {
    let buckets: Option<usize> = args
        .get("buckets")
        .map(|b| b.parse())
        .transpose()
        .map_err(|_| "--buckets: bad value")?;
    let g = load_edge_list(path, buckets).map_err(|e| format!("load {path}: {e}"))?;
    Ok((g, format!("file:{path}")))
}
