//! `tgx-cli simulate`: the ROADMAP's **multi-process shard driver**.
//!
//! ```text
//! driver:  tgx-cli simulate --run-dir DIR [--shards K] [--master M]
//!                           [--stats] [--in-process] [--verify]
//!                           [--retries N] [--shard-timeout SECS]
//!                           [--backoff-base-ms MS] [--degrade partial]
//!                           [--keep-shards] [--quiet]
//! worker:  tgx-cli simulate --run-dir DIR --shard-index I [--stats] [--quiet]
//! ```
//!
//! The driver loads the trained run, partitions the simulation plan into
//! `K` timestamp-range [`ShardSpec`]s, serialises them to `shards.json`,
//! and **fork/execs one worker process per shard** (`current_exe
//! simulate --shard-index i`). Each worker independently loads the
//! checkpointed model + observed graph, re-derives the plan from its
//! spec, and streams its shard to `shard_<i>.edges`. The driver then
//! collects the shard files with [`merge_edge_lists`] — and, because
//! per-unit RNG streams depend only on `(master, t, chunk)`, the merged
//! file is **byte-identical** to what a single in-process run would
//! stream (`--verify` asserts exactly that).
//!
//! `--stats` additionally runs a `StatsSink` pass per worker and merges
//! the shard statistics with the public `GenerationStats::merge`.
//!
//! # Supervision, retry, and graceful degradation
//!
//! Workers are **supervised**, not just awaited: the driver polls every
//! child and, with `--shard-timeout SECS`, kills any worker that
//! overruns its wall-clock budget (a hung worker would otherwise stall
//! the whole run forever). After each round the driver **excludes**
//! every shard whose worker exited cleanly and — up to `--retries N`
//! extra rounds — re-spawns only the failed ones, sleeping an
//! exponential backoff (`--backoff-base-ms`, with deterministic jitter
//! derived from the master seed) between rounds so a struggling host
//! gets breathing room. Because each shard's output is a pure function
//! of `(model, observed, ShardSpec)`, re-running a shard produces the
//! identical file, so a retried run merges byte-identically to an
//! undisturbed one (`--verify` still holds).
//!
//! Every attempt (exit code, kill signal, timeout flag, wall time) plus
//! the per-round failure history, backoff schedule, and the final
//! quarantined set are recorded in `retry_log.json` — the bookkeeping a
//! cross-machine scheduler needs to resume a half-finished simulation.
//!
//! When shards are still failing after the budget, the default is to
//! exit 4 leaving the run dir intact. `--degrade partial` instead
//! merges the shards that *did* complete, records the gap in a
//! machine-readable `partial_manifest.json`, and exits 5: downstream
//! tooling gets a usable (if incomplete) edge list and an exact recipe
//! for re-running the missing shards.
//!
//! For testing the failure paths end to end, the worker entry is a
//! `tg-faults` fault point (`worker.entry`, arg `shard:<i>`): seeded
//! `TG_FAULTS` specs can abort, fail, or hang selected workers
//! deterministically — see `crates/faults`.
//!
//! [`ShardSpec`]: tgae::ShardSpec
//! [`merge_edge_lists`]: tg_graph::io::merge_edge_lists

use crate::args::Args;
use crate::errors::CliError;
use crate::rundir::RunDir;
use serde::Serialize;
use std::process::Command;
use std::time::{Duration, Instant};
use tg_graph::io::{merge_edge_lists, StreamingWriterSink};
use tg_graph::sink::{GenerationStats, StatsSink};
use tgae::ShardSpec;

/// One worker process's outcome, as observed by the supervisor.
#[derive(Serialize)]
struct AttemptRecord {
    /// Shard the worker was running.
    shard: u32,
    /// Spawn round (0 = first attempt).
    round: usize,
    /// Whether the worker exited 0.
    success: bool,
    /// Exit code, when the worker exited on its own.
    exit_code: Option<i32>,
    /// Signal that terminated the worker (Unix), e.g. 9 after a
    /// timeout kill.
    signal: Option<i32>,
    /// Whether the supervisor killed this worker for overrunning
    /// `--shard-timeout`.
    timed_out: bool,
    /// Wall-clock from spawn to reap, in milliseconds.
    wall_ms: u64,
}

/// On-disk record of a supervised driver run (`retry_log.json`): every
/// attempt, which shards failed in each round, the backoff schedule,
/// and which shards were quarantined (still failing) at the end.
#[derive(Serialize)]
struct RetryLog {
    /// Extra rounds the driver was allowed (`--retries`).
    retries: usize,
    /// Shard ids that failed, per spawn round (round 0 = first attempt).
    failed_per_round: Vec<Vec<u32>>,
    /// Shards that completed and were excluded from later rounds.
    excluded: Vec<u32>,
    /// Whether the run ultimately produced every shard.
    completed: bool,
    /// Every worker attempt, in (round, shard) order.
    attempts: Vec<AttemptRecord>,
    /// Backoff actually slept before each retry round, in milliseconds.
    backoff_ms: Vec<u64>,
    /// Shards still failing when the retry budget ran out.
    quarantined: Vec<u32>,
}

/// `partial_manifest.json`: what a `--degrade partial` run delivered
/// and what is missing — everything needed to re-run the gap.
#[derive(Serialize)]
struct PartialManifest {
    /// Shards the plan called for.
    n_shards: usize,
    /// Shards whose output made it into the merge, in shard order.
    completed: Vec<u32>,
    /// Quarantined shards absent from the merge.
    missing: Vec<u32>,
    /// Master seed (re-running a missing shard with it reproduces the
    /// exact bytes the full merge would have contained).
    master: u64,
    /// Retry budget that was exhausted.
    retries: usize,
}

/// Supervision knobs shared by every spawn round.
struct Supervisor {
    stats: bool,
    quiet: bool,
    /// Export the trace handshake (`TG_TRACE`/`TG_TRACE_PARENT`) to every
    /// worker so its spans stitch under this driver's supervision spans.
    trace: bool,
    /// Kill a worker after this wall-clock budget (None = wait forever).
    timeout: Option<Duration>,
    /// Base of the exponential backoff between retry rounds (0 = none).
    backoff_base_ms: u64,
    /// Master seed — also salts the deterministic backoff jitter.
    master: u64,
}

/// Run the subcommand (dispatches to driver or worker mode).
pub fn run(args: &Args) -> Result<(), CliError> {
    let run_dir = RunDir::open(args.require::<String>("run-dir").map_err(CliError::Usage)?);
    match args.get("shard-index") {
        Some(idx) => {
            let idx: u32 = idx
                .parse()
                .map_err(|_| CliError::Usage("--shard-index: bad value".into()))?;
            let stats = args.flag("stats");
            let quiet = args.flag("quiet");
            args.reject_unused().map_err(CliError::Usage)?;
            worker(&run_dir, idx, stats, quiet).map_err(CliError::from)
        }
        None => driver(args, &run_dir),
    }
}

/// Worker mode: execute one shard of the serialised manifest.
fn worker(run_dir: &RunDir, shard_index: u32, stats: bool, quiet: bool) -> Result<(), String> {
    // Deterministic failure injection for the supervision/retry paths:
    // a seeded TG_FAULTS spec can fail, abort, or hang (sleep) selected
    // shard workers right here, before any real work starts.
    tg_faults::fail_point!("worker.entry", format!("shard:{shard_index}"));
    // A traced driver exports TG_TRACE/TG_TRACE_PARENT on our
    // environment; adopt its supervision span as this process's root
    // parent so the merged view stitches driver and workers together.
    let traced = crate::obs::install_worker_trace(shard_index);
    let result = {
        let _span = match tg_obs::trace::env_parent() {
            Some(parent) => tg_obs::trace::span_with_parent("worker.shard", parent),
            None => tg_obs::trace::span("worker.shard"),
        };
        worker_inner(run_dir, shard_index, stats, quiet)
    };
    if traced {
        crate::obs::flush_trace(&format!("shard {shard_index}"));
    }
    result
}

/// The worker's actual shard execution, separated so its root span is
/// closed before the trace buffers flush.
fn worker_inner(
    run_dir: &RunDir,
    shard_index: u32,
    stats: bool,
    quiet: bool,
) -> Result<(), String> {
    let (manifest, observed) = run_dir.load_all()?;
    let session = run_dir.session(&manifest, &observed)?;
    let specs = load_shard_manifest(run_dir)?;
    let spec = specs
        .iter()
        .find(|s| s.shard == shard_index)
        .ok_or_else(|| {
            format!(
                "shard index {shard_index} not in shards.json ({} shards)",
                specs.len()
            )
        })?;
    run_shard(&session, run_dir, spec, stats, quiet)
}

/// Stream one shard's edges (and optionally stats) to its run-dir files
/// through an already-loaded session — shared by worker processes and
/// the driver's `--in-process` path (which would otherwise reload the
/// model and observed graph once per shard).
fn run_shard(
    session: &tgae::Session<'_>,
    run_dir: &RunDir,
    spec: &ShardSpec,
    stats: bool,
    quiet: bool,
) -> Result<(), String> {
    let out = run_dir.shard_edges_path(spec.shard);
    let n = session
        .simulate_shard_with_sink(
            spec,
            StreamingWriterSink::create(&out).map_err(|e| format!("create shard file: {e}"))?,
        )
        .map_err(|e| e.to_string())?
        .map_err(|e| format!("stream shard: {e}"))?;
    if stats {
        let s = session
            .simulate_shard_with_sink(spec, StatsSink::new(session.observed().n_timestamps()))
            .map_err(|e| e.to_string())?;
        let json = serde_json::to_string(&s).map_err(|e| e.to_string())?;
        std::fs::write(run_dir.shard_stats_path(spec.shard), json)
            .map_err(|e| format!("write shard stats: {e}"))?;
    }
    if !quiet {
        eprintln!(
            "  shard {}: t in [{}, {}), {n} edges -> {}",
            spec.shard,
            spec.t_begin,
            spec.t_end,
            out.display()
        );
    }
    Ok(())
}

/// Remove a stale bookkeeping file from an earlier driver run. A missing
/// file is the normal case; any *other* failure (permissions, I/O) must
/// abort — otherwise this run would finish with a leftover log that
/// describes a different run.
fn remove_stale(path: &std::path::Path) -> Result<(), String> {
    match std::fs::remove_file(path) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(format!("cannot remove stale {}: {e}", path.display())),
    }
}

/// Driver mode: plan, serialise the manifest, supervise workers, merge.
fn driver(args: &Args, run_dir: &RunDir) -> Result<(), CliError> {
    let n_shards: usize = args.get_parsed("shards", 2).map_err(CliError::Usage)?;
    let retries: usize = args.get_parsed("retries", 0).map_err(CliError::Usage)?;
    let timeout_secs: f64 = args
        .get_parsed("shard-timeout", 0.0)
        .map_err(CliError::Usage)?;
    let backoff_base_ms: u64 = args
        .get_parsed("backoff-base-ms", 100)
        .map_err(CliError::Usage)?;
    let degrade_partial = match args.get("degrade") {
        None | Some("fail") => false,
        Some("partial") => true,
        Some(other) => {
            return Err(CliError::Usage(format!(
                "--degrade: expected `fail` or `partial`, got `{other}`"
            )))
        }
    };
    if !timeout_secs.is_finite() || timeout_secs < 0.0 {
        return Err(CliError::Usage(
            "--shard-timeout: must be a non-negative number of seconds".into(),
        ));
    }
    let stats = args.flag("stats");
    let verify = args.flag("verify");
    let in_process = args.flag("in-process");
    let keep_shards = args.flag("keep-shards");
    let quiet = args.flag("quiet");
    let trace = args.flag("trace");
    let (manifest, observed) = run_dir.load_all()?;
    let session = run_dir.session(&manifest, &observed)?;
    let master: u64 = args
        .get_parsed("master", session.seed_policy().simulation_master(0))
        .map_err(CliError::Usage)?;
    args.reject_unused().map_err(CliError::Usage)?;
    if in_process && (retries > 0 || degrade_partial || timeout_secs > 0.0) {
        // the supervision machinery is process-level (kill/re-spawn
        // workers); silently ignoring the flags would promise
        // resilience the in-process path can't give
        return Err(CliError::Usage(
            "--retries/--shard-timeout/--degrade are not supported with --in-process".into(),
        ));
    }
    // A retry log / partial manifest describes exactly one driver run; a
    // stale one from an earlier failed run must not outlive the run it
    // documents.
    remove_stale(&run_dir.retry_log_path())?;
    remove_stale(&run_dir.partial_manifest_path())?;

    // --trace: install this process's span sink and open the run's root
    // span. Worker spans land in their own trace_shard_<i>.jsonl via the
    // env handshake; everything merges to trace.json at the end. The
    // guard is held in an Option so it provably closes before the flush.
    let tracing = trace && crate::obs::install_driver_trace(run_dir);
    let mut root_span = Some(tg_obs::trace::span("simulate.driver"));

    // 1. Plan and serialise the shard manifest.
    let specs = session
        .shard_specs(master, n_shards)
        .map_err(|e| e.to_string())?;
    let manifest_json = serde_json::to_string_pretty(&specs).map_err(|e| e.to_string())?;
    std::fs::write(run_dir.shard_manifest_path(), manifest_json)
        .map_err(|e| format!("write shards.json: {e}"))?;
    if !quiet {
        eprintln!(
            "plan: master seed {master}, {} edges over {} shards -> {}",
            manifest.n_edges,
            specs.len(),
            run_dir.shard_manifest_path().display()
        );
    }

    // 2. One worker per shard: supervised processes by default (the
    //    point of the driver), in-process execution with --in-process
    //    (useful under debuggers and on exotic platforms). Failed or
    //    hung workers are killed/retried in shard-only rounds up to
    //    --retries times; completed shards are excluded from re-runs
    //    (their files are already final — shard output is a pure
    //    function of the spec).
    let quarantined: Vec<u32> = if in_process {
        for spec in &specs {
            run_shard(&session, run_dir, spec, stats, quiet)?;
        }
        Vec::new()
    } else {
        let sup = Supervisor {
            stats,
            quiet,
            trace: tracing,
            timeout: (timeout_secs > 0.0).then(|| Duration::from_secs_f64(timeout_secs)),
            backoff_base_ms,
            master,
        };
        let log = run_workers_with_retries(run_dir, &specs, retries, &sup)?;
        if !log.completed && !degrade_partial {
            if tracing {
                // The failed run's trace is the most interesting one:
                // flush and merge what the completed workers wrote
                // before bailing out.
                drop(root_span.take());
                crate::obs::flush_trace("driver");
                crate::obs::merge_run_traces(run_dir, &log.excluded, quiet);
            }
            return Err(CliError::WorkerFailure(format!(
                "shard worker(s) {:?} still failing after {retries} retr{} (see {})",
                log.quarantined,
                if retries == 1 { "y" } else { "ies" },
                run_dir.retry_log_path().display()
            )));
        }
        log.quarantined
    };
    let completed_specs: Vec<&ShardSpec> = specs
        .iter()
        .filter(|s| !quarantined.contains(&s.shard))
        .collect();

    // 3. Collect the completed shard files in shard order (all of them,
    //    unless a --degrade partial run is carrying missing shards).
    let shard_paths: Vec<std::path::PathBuf> = completed_specs
        .iter()
        .map(|s| run_dir.shard_edges_path(s.shard))
        .collect();
    let merged = run_dir.simulated_path();
    let bytes =
        merge_edge_lists(&shard_paths, &merged).map_err(|e| format!("merge shard files: {e}"))?;
    if !quiet {
        eprintln!(
            "merged {} shard files ({bytes} bytes) -> {}",
            completed_specs.len(),
            merged.display()
        );
    }
    if stats {
        let mut acc = GenerationStats::default();
        for spec in &completed_specs {
            let text = std::fs::read_to_string(run_dir.shard_stats_path(spec.shard))
                .map_err(|e| format!("read shard stats: {e}"))?;
            let s: GenerationStats = serde_json::from_str(&text).map_err(|e| e.to_string())?;
            acc.merge(&s);
        }
        let json = serde_json::to_string_pretty(&acc).map_err(|e| e.to_string())?;
        std::fs::write(run_dir.simulated_stats_path(), json)
            .map_err(|e| format!("write merged stats: {e}"))?;
    }

    // 4. --verify: the bit-identical-merge invariant, asserted at the
    //    byte level against an in-process single-run stream. A partial
    //    merge can't pass it by construction, so it is skipped (loudly)
    //    when shards are missing.
    if verify && quarantined.is_empty() {
        let reference = run_dir.root().join("reference.edges");
        session
            .simulate_seeded(
                master,
                StreamingWriterSink::create(&reference)
                    .map_err(|e| format!("create reference file: {e}"))?,
            )
            .map_err(|e| e.to_string())?
            .map_err(|e| format!("stream reference: {e}"))?;
        let a = std::fs::read(&merged).map_err(|e| e.to_string())?;
        let b = std::fs::read(&reference).map_err(|e| e.to_string())?;
        if a != b {
            return Err(CliError::Other(format!(
                "VERIFY FAILED: merged {}-process output differs from in-process generation \
                 ({} vs {} bytes)",
                completed_specs.len(),
                a.len(),
                b.len()
            )));
        }
        if stats {
            let text = std::fs::read_to_string(run_dir.simulated_stats_path())
                .map_err(|e| e.to_string())?;
            let merged_stats: GenerationStats =
                serde_json::from_str(&text).map_err(|e| e.to_string())?;
            let reference_stats = session
                .simulate_seeded(master, StatsSink::new(observed.n_timestamps()))
                .map_err(|e| e.to_string())?;
            if merged_stats != reference_stats {
                return Err(CliError::Other(
                    "VERIFY FAILED: merged shard stats differ from in-process stats".into(),
                ));
            }
        }
        std::fs::remove_file(&reference).ok();
        if !quiet {
            eprintln!(
                "verified: {}-process sharded output is byte-identical to in-process generation",
                completed_specs.len()
            );
        }
    } else if verify && !quiet {
        eprintln!(
            "skipping --verify: {} shard(s) missing, a partial merge cannot match \
             the in-process reference",
            quarantined.len()
        );
    }
    if !keep_shards {
        for p in &shard_paths {
            std::fs::remove_file(p).ok();
        }
        for spec in &completed_specs {
            std::fs::remove_file(run_dir.shard_stats_path(spec.shard)).ok();
        }
    }
    if tracing {
        // Close the root span, flush this process's buffers, and merge
        // driver + worker span files into the Chrome trace_event view.
        // (In-process runs have no worker files; the merger skips
        // whatever is absent.)
        drop(root_span.take());
        crate::obs::flush_trace("driver");
        let traced_shards: Vec<u32> = if in_process {
            Vec::new()
        } else {
            completed_specs.iter().map(|s| s.shard).collect()
        };
        crate::obs::merge_run_traces(run_dir, &traced_shards, quiet);
    }
    drop(root_span);
    println!("{}", merged.display());

    // 5. A partial run delivers its merge but still reports the gap:
    //    partial_manifest.json for machines, exit code 5 for schedulers.
    if !quarantined.is_empty() {
        let pm = PartialManifest {
            n_shards: specs.len(),
            completed: completed_specs.iter().map(|s| s.shard).collect(),
            missing: quarantined.clone(),
            master,
            retries,
        };
        let json = serde_json::to_string_pretty(&pm).map_err(|e| e.to_string())?;
        std::fs::write(run_dir.partial_manifest_path(), json)
            .map_err(|e| format!("write partial_manifest.json: {e}"))?;
        return Err(CliError::Partial(format!(
            "degraded completion: {} of {} shards merged, missing {:?} (see {})",
            completed_specs.len(),
            specs.len(),
            quarantined,
            run_dir.partial_manifest_path().display()
        )));
    }
    Ok(())
}

/// Drive supervised worker rounds until every shard has completed or the
/// retry budget is exhausted. Round 0 spawns every shard; each later
/// round spawns **only the shards that failed the previous one**
/// (everything else is excluded — its output file is already final),
/// after an exponential, deterministically-jittered backoff. A
/// `retry_log.json` documenting the rounds is written whenever any
/// failure occurred.
fn run_workers_with_retries(
    run_dir: &RunDir,
    specs: &[ShardSpec],
    retries: usize,
    sup: &Supervisor,
) -> Result<RetryLog, String> {
    let mut log = RetryLog {
        retries,
        failed_per_round: Vec::new(),
        excluded: Vec::new(),
        completed: false,
        attempts: Vec::new(),
        backoff_ms: Vec::new(),
        quarantined: Vec::new(),
    };
    let mut pending: Vec<ShardSpec> = specs.to_vec();
    for round in 0..=retries {
        let records = supervise_round(run_dir, &pending, round, sup)?;
        let failed: Vec<u32> = records
            .iter()
            .filter(|r| !r.success)
            .map(|r| r.shard)
            .collect();
        log.excluded.extend(
            pending
                .iter()
                .map(|s| s.shard)
                .filter(|s| !failed.contains(s)),
        );
        log.attempts.extend(records);
        if failed.is_empty() {
            log.completed = true;
            break;
        }
        log.failed_per_round.push(failed.clone());
        pending.retain(|s| failed.contains(&s.shard));
        if round < retries {
            // Exponential backoff before the retry round, jittered
            // deterministically from the master seed so two drivers on
            // the same host don't re-spawn in lockstep — yet a given
            // run's schedule is reproducible.
            let base = sup.backoff_base_ms;
            let backoff = if base == 0 {
                0
            } else {
                let exp = base.saturating_mul(1u64 << round.min(16));
                exp + splitmix64(sup.master ^ (round as u64 + 1)) % base
            };
            log.backoff_ms.push(backoff);
            if !sup.quiet {
                eprintln!(
                    "  retrying {} failed shard(s) {:?} after {backoff} ms (round {}/{}; \
                     {} excluded as complete)",
                    failed.len(),
                    failed,
                    round + 1,
                    retries,
                    log.excluded.len()
                );
            }
            if backoff > 0 {
                std::thread::sleep(Duration::from_millis(backoff));
            }
        } else {
            log.quarantined = failed;
        }
    }
    log.excluded.sort_unstable();
    log.quarantined.sort_unstable();
    if !log.failed_per_round.is_empty() || !log.completed {
        let json = serde_json::to_string_pretty(&log).map_err(|e| e.to_string())?;
        tg_graph::io::atomic_write_bytes(run_dir.retry_log_path(), json.as_bytes())
            .map_err(|e| format!("write retry_log.json: {e}"))?;
    }
    Ok(log)
}

/// Spawn one worker per pending shard and supervise them to completion:
/// poll every child, kill any that overruns the wall-clock budget, and
/// record each outcome (exit code, signal, timeout, wall time). Letting
/// siblings finish — rather than failing fast — means partial output
/// files are never silently half-written by an aborted round.
/// Infrastructure errors (failing to spawn or wait at all) abort instead
/// of counting as shard failures.
fn supervise_round(
    run_dir: &RunDir,
    specs: &[ShardSpec],
    round: usize,
    sup: &Supervisor,
) -> Result<Vec<AttemptRecord>, String> {
    struct Live {
        shard: u32,
        child: std::process::Child,
        start: Instant,
        timed_out: bool,
        /// Supervision span covering spawn-to-reap; the worker adopts
        /// its id as root parent via `TG_TRACE_PARENT`. Inert unless the
        /// driver installed a trace sink.
        _span: tg_obs::trace::SpanGuard,
    }
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?;
    let mut live = Vec::new();
    for spec in specs {
        let mut cmd = Command::new(&exe);
        cmd.arg("simulate")
            .arg("--run-dir")
            .arg(run_dir.root())
            .arg("--shard-index")
            .arg(spec.shard.to_string());
        if sup.stats {
            cmd.arg("--stats");
        }
        if sup.quiet {
            cmd.arg("--quiet");
        }
        let span = tg_obs::trace::span("shard.supervise");
        if sup.trace {
            cmd.env(
                tg_obs::trace::ENV_TRACE_FILE,
                run_dir.trace_shard_path(spec.shard),
            );
            if let Some(id) = span.id() {
                cmd.env(tg_obs::trace::ENV_TRACE_PARENT, id.to_string());
            }
        }
        let child = cmd
            .spawn()
            .map_err(|e| format!("spawn worker for shard {}: {e}", spec.shard))?;
        live.push(Live {
            shard: spec.shard,
            child,
            // lint: allow(determinism) — supervisor retry/timeout
            // bookkeeping; never reaches seeded output
            start: Instant::now(),
            timed_out: false,
            _span: span,
        });
    }
    let mut records = Vec::new();
    while !live.is_empty() {
        let mut i = 0;
        while i < live.len() {
            let w = &mut live[i];
            match w.child.try_wait() {
                Ok(Some(status)) => {
                    let rec = AttemptRecord {
                        shard: w.shard,
                        round,
                        success: status.success() && !w.timed_out,
                        exit_code: status.code(),
                        signal: unix_signal(&status),
                        timed_out: w.timed_out,
                        wall_ms: w.start.elapsed().as_millis() as u64,
                    };
                    if !rec.success && !sup.quiet {
                        eprintln!(
                            "  shard {} worker {} ({} ms)",
                            rec.shard,
                            if rec.timed_out {
                                format!("killed after --shard-timeout (signal {:?})", rec.signal)
                            } else {
                                format!("exited with {status}")
                            },
                            rec.wall_ms
                        );
                    }
                    records.push(rec);
                    live.swap_remove(i);
                }
                Ok(None) => {
                    if let Some(budget) = sup.timeout {
                        if !w.timed_out && w.start.elapsed() >= budget {
                            w.timed_out = true;
                            // SIGKILL; the outcome is reaped by the next
                            // try_wait sweep like any other exit
                            let _ = w.child.kill();
                        }
                    }
                    i += 1;
                }
                Err(e) => return Err(format!("wait for shard {}: {e}", w.shard)),
            }
        }
        if !live.is_empty() {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    records.sort_by_key(|r| r.shard);
    Ok(records)
}

/// The signal that terminated a worker, on Unix; `None` elsewhere or on
/// a normal exit.
fn unix_signal(status: &std::process::ExitStatus) -> Option<i32> {
    #[cfg(unix)]
    {
        use std::os::unix::process::ExitStatusExt;
        status.signal()
    }
    #[cfg(not(unix))]
    {
        let _ = status;
        None
    }
}

/// SplitMix64 — the backoff jitter's deterministic mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Read back `shards.json`.
fn load_shard_manifest(run_dir: &RunDir) -> Result<Vec<ShardSpec>, String> {
    let text = std::fs::read_to_string(run_dir.shard_manifest_path()).map_err(|e| {
        format!("missing shards.json (driver writes it before spawning workers): {e}")
    })?;
    serde_json::from_str(&text).map_err(|e| format!("corrupt shards.json: {e}"))
}
