//! `tgx-cli simulate`: the ROADMAP's **multi-process shard driver**.
//!
//! ```text
//! driver:  tgx-cli simulate --run-dir DIR [--shards K] [--master M]
//!                           [--stats] [--in-process] [--verify]
//!                           [--keep-shards] [--quiet]
//! worker:  tgx-cli simulate --run-dir DIR --shard-index I [--stats] [--quiet]
//! ```
//!
//! The driver loads the trained run, partitions the simulation plan into
//! `K` timestamp-range [`ShardSpec`]s, serialises them to `shards.json`,
//! and **fork/execs one worker process per shard** (`current_exe
//! simulate --shard-index i`). Each worker independently loads the
//! checkpointed model + observed graph, re-derives the plan from its
//! spec, and streams its shard to `shard_<i>.edges`. The driver then
//! collects the shard files with [`merge_edge_lists`] — and, because
//! per-unit RNG streams depend only on `(master, t, chunk)`, the merged
//! file is **byte-identical** to what a single in-process run would
//! stream (`--verify` asserts exactly that).
//!
//! `--stats` additionally runs a `StatsSink` pass per worker and merges
//! the shard statistics with the public `GenerationStats::merge`.
//!
//! # Partial-failure retry
//!
//! `--retries N` makes the driver tolerate worker failures: after each
//! round it **excludes** every shard whose worker exited cleanly and
//! re-spawns only the failed ones, up to `N` extra rounds. Because each
//! shard's output is a pure function of `(model, observed, ShardSpec)`,
//! re-running a shard produces the identical file, so a retried run
//! merges byte-identically to an undisturbed one (`--verify` still
//! holds). The per-round failure history and the final excluded set are
//! recorded in `retry_log.json` — the bookkeeping a cross-machine
//! scheduler needs to resume a half-finished simulation.
//!
//! For testing the retry path end to end, the hidden env hook
//! `TGX_CLI_TEST_FAIL_ONCE=<i>,<j>,…` makes the listed shard workers fail
//! their *first* attempt (a `shard_<i>.failed_once` marker keeps it to
//! one injection per run directory).
//!
//! [`ShardSpec`]: tgae::ShardSpec
//! [`merge_edge_lists`]: tg_graph::io::merge_edge_lists

use crate::args::Args;
use crate::rundir::RunDir;
use serde::Serialize;
use std::process::Command;
use tg_graph::io::{merge_edge_lists, StreamingWriterSink};
use tg_graph::sink::{GenerationStats, StatsSink};
use tgae::ShardSpec;

/// On-disk record of a retried driver run (`retry_log.json`): which
/// shards failed in each round, and which were excluded from re-runs
/// (completed successfully) by the end.
#[derive(Serialize)]
struct RetryLog {
    /// Extra rounds the driver was allowed (`--retries`).
    retries: usize,
    /// Shard ids that failed, per spawn round (round 0 = first attempt).
    failed_per_round: Vec<Vec<u32>>,
    /// Shards that completed and were excluded from later rounds.
    excluded: Vec<u32>,
    /// Whether the run ultimately produced every shard.
    completed: bool,
}

/// Run the subcommand (dispatches to driver or worker mode).
pub fn run(args: &Args) -> Result<(), String> {
    let run_dir = RunDir::open(args.require::<String>("run-dir")?);
    match args.get("shard-index") {
        Some(idx) => {
            let idx: u32 = idx.parse().map_err(|_| "--shard-index: bad value")?;
            let stats = args.flag("stats");
            let quiet = args.flag("quiet");
            args.reject_unused()?;
            worker(&run_dir, idx, stats, quiet)
        }
        None => driver(args, &run_dir),
    }
}

/// Worker mode: execute one shard of the serialised manifest.
fn worker(run_dir: &RunDir, shard_index: u32, stats: bool, quiet: bool) -> Result<(), String> {
    // Failure-injection hook for the retry path (see module docs): the
    // listed shards fail their first attempt only.
    if let Ok(list) = std::env::var("TGX_CLI_TEST_FAIL_ONCE") {
        let injected = list
            .split(',')
            .filter_map(|s| s.trim().parse::<u32>().ok())
            .any(|i| i == shard_index);
        if injected {
            let marker = run_dir
                .root()
                .join(format!("shard_{shard_index}.failed_once"));
            if !marker.exists() {
                std::fs::write(&marker, b"injected failure\n")
                    .map_err(|e| format!("write fail marker: {e}"))?;
                return Err(format!(
                    "shard {shard_index}: injected first-attempt failure (TGX_CLI_TEST_FAIL_ONCE)"
                ));
            }
        }
    }
    let (manifest, observed) = run_dir.load_all()?;
    let session = run_dir.session(&manifest, &observed)?;
    let specs = load_shard_manifest(run_dir)?;
    let spec = specs
        .iter()
        .find(|s| s.shard == shard_index)
        .ok_or_else(|| {
            format!(
                "shard index {shard_index} not in shards.json ({} shards)",
                specs.len()
            )
        })?;
    run_shard(&session, run_dir, spec, stats, quiet)
}

/// Stream one shard's edges (and optionally stats) to its run-dir files
/// through an already-loaded session — shared by worker processes and
/// the driver's `--in-process` path (which would otherwise reload the
/// model and observed graph once per shard).
fn run_shard(
    session: &tgae::Session<'_>,
    run_dir: &RunDir,
    spec: &ShardSpec,
    stats: bool,
    quiet: bool,
) -> Result<(), String> {
    let out = run_dir.shard_edges_path(spec.shard);
    let n = session
        .simulate_shard_with_sink(
            spec,
            StreamingWriterSink::create(&out).map_err(|e| format!("create shard file: {e}"))?,
        )
        .map_err(|e| e.to_string())?
        .map_err(|e| format!("stream shard: {e}"))?;
    if stats {
        let s = session
            .simulate_shard_with_sink(spec, StatsSink::new(session.observed().n_timestamps()))
            .map_err(|e| e.to_string())?;
        let json = serde_json::to_string(&s).map_err(|e| e.to_string())?;
        std::fs::write(run_dir.shard_stats_path(spec.shard), json)
            .map_err(|e| format!("write shard stats: {e}"))?;
    }
    if !quiet {
        eprintln!(
            "  shard {}: t in [{}, {}), {n} edges -> {}",
            spec.shard,
            spec.t_begin,
            spec.t_end,
            out.display()
        );
    }
    Ok(())
}

/// Driver mode: plan, serialise the manifest, spawn workers, merge.
fn driver(args: &Args, run_dir: &RunDir) -> Result<(), String> {
    let n_shards: usize = args.get_parsed("shards", 2)?;
    let retries: usize = args.get_parsed("retries", 0)?;
    let stats = args.flag("stats");
    let verify = args.flag("verify");
    let in_process = args.flag("in-process");
    let keep_shards = args.flag("keep-shards");
    let quiet = args.flag("quiet");
    let (manifest, observed) = run_dir.load_all()?;
    let session = run_dir.session(&manifest, &observed)?;
    let master: u64 = args.get_parsed("master", session.seed_policy().simulation_master(0))?;
    args.reject_unused()?;
    if in_process && retries > 0 {
        // the retry machinery is process-level (re-spawn failed workers);
        // silently ignoring the flag would promise resilience it can't give
        return Err("--retries is not supported with --in-process".into());
    }
    // A retry log describes exactly one driver run; a stale one from an
    // earlier failed/retried run must not outlive the run it documents.
    std::fs::remove_file(run_dir.retry_log_path()).ok();

    // 1. Plan and serialise the shard manifest.
    let specs = session
        .shard_specs(master, n_shards)
        .map_err(|e| e.to_string())?;
    let manifest_json = serde_json::to_string_pretty(&specs).map_err(|e| e.to_string())?;
    std::fs::write(run_dir.shard_manifest_path(), manifest_json)
        .map_err(|e| format!("write shards.json: {e}"))?;
    if !quiet {
        eprintln!(
            "plan: master seed {master}, {} edges over {} shards -> {}",
            manifest.n_edges,
            specs.len(),
            run_dir.shard_manifest_path().display()
        );
    }

    // 2. One worker per shard: separate processes by default (the point
    //    of the driver), in-process execution with --in-process (useful
    //    under debuggers and on exotic platforms). Failed workers are
    //    retried in shard-only rounds up to --retries times; completed
    //    shards are excluded from re-runs (their files are already
    //    final — shard output is a pure function of the spec).
    if in_process {
        for spec in &specs {
            run_shard(&session, run_dir, spec, stats, quiet)?;
        }
    } else {
        run_workers_with_retries(run_dir, &specs, retries, stats, quiet)?;
    }

    // 3. Collect shard files in shard order.
    let shard_paths: Vec<std::path::PathBuf> = specs
        .iter()
        .map(|s| run_dir.shard_edges_path(s.shard))
        .collect();
    let merged = run_dir.simulated_path();
    let bytes =
        merge_edge_lists(&shard_paths, &merged).map_err(|e| format!("merge shard files: {e}"))?;
    if !quiet {
        eprintln!(
            "merged {} shard files ({bytes} bytes) -> {}",
            specs.len(),
            merged.display()
        );
    }
    if stats {
        let mut acc = GenerationStats::default();
        for spec in &specs {
            let text = std::fs::read_to_string(run_dir.shard_stats_path(spec.shard))
                .map_err(|e| format!("read shard stats: {e}"))?;
            let s: GenerationStats = serde_json::from_str(&text).map_err(|e| e.to_string())?;
            acc.merge(&s);
        }
        let json = serde_json::to_string_pretty(&acc).map_err(|e| e.to_string())?;
        std::fs::write(run_dir.simulated_stats_path(), json)
            .map_err(|e| format!("write merged stats: {e}"))?;
    }

    // 4. --verify: the bit-identical-merge invariant, asserted at the
    //    byte level against an in-process single-run stream.
    if verify {
        let reference = run_dir.root().join("reference.edges");
        session
            .simulate_seeded(
                master,
                StreamingWriterSink::create(&reference)
                    .map_err(|e| format!("create reference file: {e}"))?,
            )
            .map_err(|e| e.to_string())?
            .map_err(|e| format!("stream reference: {e}"))?;
        let a = std::fs::read(&merged).map_err(|e| e.to_string())?;
        let b = std::fs::read(&reference).map_err(|e| e.to_string())?;
        if a != b {
            return Err(format!(
                "VERIFY FAILED: merged {}-process output differs from in-process generation \
                 ({} vs {} bytes)",
                specs.len(),
                a.len(),
                b.len()
            ));
        }
        if stats {
            let text = std::fs::read_to_string(run_dir.simulated_stats_path())
                .map_err(|e| e.to_string())?;
            let merged_stats: GenerationStats =
                serde_json::from_str(&text).map_err(|e| e.to_string())?;
            let reference_stats = session
                .simulate_seeded(master, StatsSink::new(observed.n_timestamps()))
                .map_err(|e| e.to_string())?;
            if merged_stats != reference_stats {
                return Err(
                    "VERIFY FAILED: merged shard stats differ from in-process stats".into(),
                );
            }
        }
        std::fs::remove_file(&reference).ok();
        if !quiet {
            eprintln!(
                "verified: {}-process sharded output is byte-identical to in-process generation",
                specs.len()
            );
        }
    }
    if !keep_shards {
        for p in &shard_paths {
            std::fs::remove_file(p).ok();
        }
        for spec in &specs {
            std::fs::remove_file(run_dir.shard_stats_path(spec.shard)).ok();
            // failure-injection markers from a TGX_CLI_TEST_FAIL_ONCE run
            std::fs::remove_file(
                run_dir
                    .root()
                    .join(format!("shard_{}.failed_once", spec.shard)),
            )
            .ok();
        }
    }
    println!("{}", merged.display());
    Ok(())
}

/// Drive worker rounds until every shard has completed or the retry
/// budget is exhausted. Round 0 spawns every shard; each later round
/// spawns **only the shards that failed the previous one** (everything
/// else is excluded — its output file is already final). A
/// `retry_log.json` documenting the rounds is written whenever any
/// failure occurred.
fn run_workers_with_retries(
    run_dir: &RunDir,
    specs: &[ShardSpec],
    retries: usize,
    stats: bool,
    quiet: bool,
) -> Result<(), String> {
    let mut log = RetryLog {
        retries,
        failed_per_round: Vec::new(),
        excluded: Vec::new(),
        completed: false,
    };
    let mut pending: Vec<ShardSpec> = specs.to_vec();
    for round in 0..=retries {
        let failed = spawn_workers(run_dir, &pending, stats, quiet)?;
        log.excluded.extend(
            pending
                .iter()
                .map(|s| s.shard)
                .filter(|s| !failed.contains(s)),
        );
        if failed.is_empty() {
            log.completed = true;
            break;
        }
        log.failed_per_round.push(failed.clone());
        pending.retain(|s| failed.contains(&s.shard));
        if round < retries && !quiet {
            eprintln!(
                "  retrying {} failed shard(s) {:?} (round {}/{}; {} excluded as complete)",
                failed.len(),
                failed,
                round + 1,
                retries,
                log.excluded.len()
            );
        }
    }
    log.excluded.sort_unstable();
    if !log.failed_per_round.is_empty() || !log.completed {
        let json = serde_json::to_string_pretty(&log).map_err(|e| e.to_string())?;
        std::fs::write(run_dir.retry_log_path(), json)
            .map_err(|e| format!("write retry_log.json: {e}"))?;
    }
    if log.completed {
        Ok(())
    } else {
        let last = log
            .failed_per_round
            .last()
            .expect("at least one failed round");
        Err(format!(
            "shard worker(s) {last:?} still failing after {retries} retr{} (see {})",
            if retries == 1 { "y" } else { "ies" },
            run_dir.retry_log_path().display()
        ))
    }
}

/// Fork/exec one worker per shard, wait for all of them, and report the
/// shard ids whose workers exited non-zero (letting siblings finish, so
/// partial output files are not silently half-written by killed
/// processes). Infrastructure errors — failing to spawn or wait at all —
/// abort instead of counting as shard failures.
fn spawn_workers(
    run_dir: &RunDir,
    specs: &[ShardSpec],
    stats: bool,
    quiet: bool,
) -> Result<Vec<u32>, String> {
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?;
    let mut children = Vec::new();
    for spec in specs {
        let mut cmd = Command::new(&exe);
        cmd.arg("simulate")
            .arg("--run-dir")
            .arg(run_dir.root())
            .arg("--shard-index")
            .arg(spec.shard.to_string());
        if stats {
            cmd.arg("--stats");
        }
        if quiet {
            cmd.arg("--quiet");
        }
        let child = cmd
            .spawn()
            .map_err(|e| format!("spawn worker for shard {}: {e}", spec.shard))?;
        children.push((spec.shard, child));
    }
    let mut failed = Vec::new();
    for (shard, mut child) in children {
        let status = child
            .wait()
            .map_err(|e| format!("wait for shard {shard}: {e}"))?;
        if !status.success() {
            if !quiet {
                eprintln!("  shard {shard} worker exited with {status}");
            }
            failed.push(shard);
        }
    }
    Ok(failed)
}

/// Read back `shards.json`.
fn load_shard_manifest(run_dir: &RunDir) -> Result<Vec<ShardSpec>, String> {
    let text = std::fs::read_to_string(run_dir.shard_manifest_path()).map_err(|e| {
        format!("missing shards.json (driver writes it before spawning workers): {e}")
    })?;
    serde_json::from_str(&text).map_err(|e| format!("corrupt shards.json: {e}"))
}
