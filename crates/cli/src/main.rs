//! `tgx-cli` — the multi-process shard driver for the TGAE simulation
//! pipeline, completing the plan → execute → emit story at the *process*
//! level (ROADMAP: "multi-process shard driver").
//!
//! ```text
//! tgx-cli train    --run-dir DIR --preset dblp --scale 0.05 [--epochs N]
//! tgx-cli simulate --run-dir DIR --shards 4 [--verify] [--stats]
//! tgx-cli merge    --out merged.edges shard_0.edges shard_1.edges …
//! tgx-cli eval     --run-dir DIR [--generated FILE]
//! ```
//!
//! `train` fits a model through the `tgae::Session` API (progress
//! observer, optional resumable checkpoints) and persists a **run
//! directory**; `simulate` partitions the run into serialisable
//! `ShardSpec`s and fork/execs one worker process per shard, each loading
//! the checkpointed model; the shard files are merged byte-identically to
//! what a single process would stream (`--verify` asserts it); `eval`
//! scores any generated edge list with the paper's Eq. 10 harness.

mod args;
mod client;
mod errors;
mod eval;
mod ingest;
mod input;
mod merge;
mod obs;
mod rundir;
mod serve;
mod simulate;
mod train;

use args::Args;
use errors::CliError;

/// Byte-accounting allocator from the benchmark harness: it is what
/// makes the heap fields of `train --telemetry` real numbers instead of
/// zeros. Allocation itself is delegated to `System` untouched.
#[global_allocator]
static ALLOC: tg_bench::TrackingAllocator = tg_bench::TrackingAllocator;

const USAGE: &str = "\
tgx-cli — multi-process driver for the TGAE temporal-graph simulator

USAGE:
  tgx-cli ingest   --out FILE (--edges FILE [--buckets T] [--exact]
                               [--n-nodes N] [--n-timestamps T]
                               | --preset NAME [--scale F] [--data-seed S]
                               | --salvage DAMAGED_STORE)
                   [--block-edges N] [--verify] [--quiet]
  tgx-cli train    --run-dir DIR (--preset NAME [--scale F] [--data-seed S]
                                  | --edges FILE [--buckets T]
                                  | --store FILE)
                   [--epochs N] [--batch-centers N] [--seed S] [--full]
                   [--checkpoint-every N] [--checkpoint-keep K] [--resume]
                   [--telemetry] [--quiet]
  tgx-cli simulate --run-dir DIR [--shards K] [--master M] [--stats]
                   [--verify] [--retries N] [--shard-timeout SECS]
                   [--backoff-base-ms MS] [--degrade partial]
                   [--in-process] [--keep-shards] [--trace] [--quiet]
  tgx-cli merge    [--stats] --out FILE INPUT...
  tgx-cli eval     --run-dir DIR [--generated FILE]
  tgx-cli eval     --observed FILE --generated FILE --n-nodes N --n-timestamps T
  tgx-cli serve    --root DIR [--addr HOST:PORT | --socket PATH]
                   [--cache N] [--max-cost C] [--batch-edges N] [--quiet]
  tgx-cli client   (simulate --run-id ID [--seed S] [--out FILE] [--stats]
                    | eval --run-id ID [--seed S]
                    | status | metrics | ping | shutdown)
                   (--addr HOST:PORT | --socket PATH) [--quiet]

OBSERVABILITY:
  train --telemetry   per-epoch loss/wall/heap -> DIR/telemetry.jsonl
  simulate --trace    cross-process spans -> DIR/trace.json (chrome://tracing)
  client status       daemon residency, admission, and cache report
  client metrics      Prometheus text exposition of the daemon's registry

EXIT CODES:
  0 success         3 ingest/store corruption   5 --degrade partial completion
  1 other failure   4 workers exhausted retries  6 server busy (retry later)
  2 usage error

The smoke pipeline (also run in CI):
  tgx-cli ingest   --out /tmp/obs.tgs --preset dblp --scale 0.04 --verify
  tgx-cli train    --run-dir /tmp/run --store /tmp/obs.tgs --epochs 8
  tgx-cli simulate --run-dir /tmp/run --shards 2 --verify --retries 1
  tgx-cli eval     --run-dir /tmp/run
";

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match run(&argv) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("tgx-cli: {e}");
            e.exit_code()
        }
    };
    std::process::exit(code);
}

fn run(argv: &[String]) -> Result<(), CliError> {
    let Some(cmd) = argv.first() else {
        eprint!("{USAGE}");
        return Err(CliError::Usage("missing subcommand".into()));
    };
    if cmd == "--help" || cmd == "-h" || cmd == "help" {
        print!("{USAGE}");
        return Ok(());
    }
    let args = Args::parse(&argv[1..]).map_err(CliError::Usage)?;
    match cmd.as_str() {
        "ingest" => ingest::run(&args),
        "train" => train::run(&args).map_err(CliError::from),
        "simulate" => simulate::run(&args),
        "merge" => merge::run(&args).map_err(CliError::from),
        "eval" => eval::run(&args).map_err(CliError::from),
        "serve" => serve::run(&args),
        "client" => client::run(&args),
        other => {
            eprint!("{USAGE}");
            Err(CliError::Usage(format!("unknown subcommand `{other}`")))
        }
    }
}
