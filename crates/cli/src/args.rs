//! Tiny argument parser: `<subcommand> [--key value | --flag] [positional…]`.
//!
//! No external parser crates are available offline, and the surface is
//! small enough that a hand-rolled `--key value` scanner beats carrying a
//! vendored clap. Flags without values are recorded as booleans;
//! everything not starting with `--` is positional.

use std::collections::BTreeSet;

/// Parsed command line: subcommand, `--key value` pairs, `--flag`s, and
/// positional operands, in order.
pub struct Args {
    pairs: Vec<(String, String)>,
    flags: BTreeSet<String>,
    positional: Vec<String>,
    used: std::cell::RefCell<BTreeSet<String>>,
}

/// Option keys that take a value; everything else starting with `--` is a
/// boolean flag. Keeping this list explicit makes `--verify model.json`
/// parse as flag + positional instead of silently eating the operand.
const VALUE_KEYS: &[&str] = &[
    "run-dir",
    "preset",
    "scale",
    "data-seed",
    "edges",
    "buckets",
    "epochs",
    "batch-centers",
    "seed",
    "checkpoint-every",
    "shards",
    "shard-index",
    "master",
    "out",
    "generated",
    "observed",
    "n-nodes",
    "n-timestamps",
    "store",
    "block-edges",
    "retries",
    "shard-timeout",
    "backoff-base-ms",
    "degrade",
    "checkpoint-keep",
    "salvage",
    "root",
    "addr",
    "socket",
    "cache",
    "max-cost",
    "batch-edges",
    "run-id",
];

impl Args {
    /// Parse everything after the subcommand.
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let mut pairs = Vec::new();
        let mut flags = BTreeSet::new();
        let mut positional = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            if let Some(key) = argv[i].strip_prefix("--") {
                if VALUE_KEYS.contains(&key) {
                    let val = argv
                        .get(i + 1)
                        .ok_or_else(|| format!("--{key} needs a value"))?;
                    pairs.push((key.to_string(), val.clone()));
                    i += 2;
                } else {
                    flags.insert(key.to_string());
                    i += 1;
                }
            } else {
                positional.push(argv[i].clone());
                i += 1;
            }
        }
        Ok(Args {
            pairs,
            flags,
            positional,
            used: std::cell::RefCell::new(BTreeSet::new()),
        })
    }

    /// Last value of `--key`, if given.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.used.borrow_mut().insert(key.to_string());
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Value of `--key`, parsed, or `default`.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse `{v}`")),
        }
    }

    /// Value of `--key`, parsed, required.
    pub fn require<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        let v = self
            .get(key)
            .ok_or_else(|| format!("--{key} is required"))?;
        v.parse()
            .map_err(|_| format!("--{key}: cannot parse `{v}`"))
    }

    /// Whether `--flag` was given.
    pub fn flag(&self, name: &str) -> bool {
        self.used.borrow_mut().insert(name.to_string());
        self.flags.contains(name)
    }

    /// Positional operands, in order.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// Error on any `--option` this subcommand never looked at (catches
    /// typos like `--shard 2` for `--shards 2`).
    pub fn reject_unused(&self) -> Result<(), String> {
        let used = self.used.borrow();
        let unknown: Vec<String> = self
            .pairs
            .iter()
            .map(|(k, _)| k.clone())
            .chain(self.flags.iter().cloned())
            .filter(|k| !used.contains(k))
            .collect();
        if unknown.is_empty() {
            Ok(())
        } else {
            Err(format!("unknown option(s): --{}", unknown.join(", --")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn pairs_flags_and_positionals() {
        let a = Args::parse(&argv(&[
            "--run-dir",
            "/tmp/r",
            "--verify",
            "a.edges",
            "b.edges",
            "--shards",
            "2",
        ]))
        .unwrap();
        assert_eq!(a.get("run-dir"), Some("/tmp/r"));
        assert!(a.flag("verify"));
        assert!(!a.flag("stats"));
        assert_eq!(a.get_parsed("shards", 1usize).unwrap(), 2);
        assert_eq!(a.positional(), &["a.edges".to_string(), "b.edges".into()]);
        a.reject_unused().unwrap();
    }

    #[test]
    fn missing_value_and_unknown_key_error() {
        assert!(Args::parse(&argv(&["--run-dir"])).is_err());
        let a = Args::parse(&argv(&["--shards", "2", "--bogus"])).unwrap();
        assert_eq!(a.get_parsed("shards", 1usize).unwrap(), 2);
        assert!(a.reject_unused().unwrap_err().contains("bogus"));
    }

    #[test]
    fn require_and_parse_errors() {
        let a = Args::parse(&argv(&["--shards", "two"])).unwrap();
        assert!(a.get_parsed("shards", 1usize).is_err());
        assert!(a.require::<usize>("master").is_err());
    }
}
