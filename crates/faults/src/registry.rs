//! The declared fault-point registry.
//!
//! Every `fail_point!` / [`crate::eval`] name in the workspace must appear
//! in [`FAULT_POINTS`]; `tg-lint`'s fault-registry pass enforces it in
//! both directions (an unregistered point in code and a registered point
//! with no call site are both errors), and validates every `TG_FAULTS`
//! spec embedded in CI and the process-level tests against this table.
//! That turns the point names from stringly-typed conventions into a
//! checked contract: a typo in a spec, a renamed point, or a deleted call
//! site can no longer silently arm nothing.
//!
//! The registry is data, not behavior — it compiles identically with and
//! without the `enabled` feature, so disabled builds can still enumerate
//! and document the points they compiled out.

/// Where evaluations of a fault point may legally appear.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultScope {
    /// A real injection site in shipping code. Production points must
    /// have at least one non-test `fail_point!` / `tg_faults::eval`
    /// call site, and are the only points `TG_FAULTS` specs may arm.
    Production,
    /// A fixture point that exists only to exercise the fault machinery
    /// itself (doctests, unit tests). Test-only points must never be
    /// evaluated from non-test code.
    TestOnly,
}

/// One declared fault point: its wire name, where it may be evaluated
/// from, and what turning it on actually interrupts.
#[derive(Debug, Clone, Copy)]
pub struct FaultPoint {
    /// The exact string passed to `fail_point!` / [`crate::eval`] and
    /// used on the left-hand side of a `TG_FAULTS` spec entry.
    pub name: &'static str,
    /// Whether this is a production injection site or a test fixture.
    pub scope: FaultScope,
    /// What the point interrupts, including the call-site argument
    /// format where one is supplied.
    pub doc: &'static str,
}

/// Every fault point in the workspace, sorted by name.
///
/// Keep this table in lockstep with the call sites: `cargo run -p
/// tg-lint -- check` fails on any drift in either direction.
pub const FAULT_POINTS: &[FaultPoint] = &[
    FaultPoint {
        name: "obs.flush",
        scope: FaultScope::Production,
        doc: "wraps the trace-buffer flush in `tgx-cli` before a traced \
              process exits (arg: trace file path). Telemetry is \
              best-effort by contract: a trigger here must cost at most \
              the trace, never the run's exit status.",
    },
    FaultPoint {
        name: "persist.atomic.partial",
        scope: FaultScope::Production,
        doc: "inside the atomic JSON/edge-list writer after a partial \
              prefix of the payload has been written to the tmp sibling \
              (arg: destination path). Proves torn writes never replace \
              a good generation.",
    },
    FaultPoint {
        name: "persist.atomic.start",
        scope: FaultScope::Production,
        doc: "at the start of an atomic write, before the tmp sibling is \
              created (arg: destination path).",
    },
    FaultPoint {
        name: "persist.atomic.unrenamed",
        scope: FaultScope::Production,
        doc: "after the tmp sibling is fully written and fsynced but \
              before the rename commit (arg: destination path). Proves \
              the commit point is the rename.",
    },
    FaultPoint {
        name: "serve.accept",
        scope: FaultScope::Production,
        doc: "evaluated once per accepted connection in the tg-serve \
              accept loop; a trigger drops that one connection without \
              taking the daemon down.",
    },
    FaultPoint {
        name: "serve.generate.unit",
        scope: FaultScope::Production,
        doc: "evaluated per generation work unit while streaming a \
              served simulation (arg: \"t:<t> chunk:<c>\"). A panic here \
              must be contained to a typed `internal` error frame.",
    },
    FaultPoint {
        name: "serve.request.decode",
        scope: FaultScope::Production,
        doc: "evaluated per decoded request frame (arg: the frame's op). \
              Proves malformed/poisoned requests answer a typed error on \
              the same connection.",
    },
    FaultPoint {
        name: "serve.status",
        scope: FaultScope::Production,
        doc: "evaluated while assembling a `status` report in tg-serve. \
              Proves an introspection failure answers a typed `internal` \
              error frame on the same connection without taking the \
              daemon or its data-plane requests down.",
    },
    FaultPoint {
        name: "store.commit",
        scope: FaultScope::Production,
        doc: "before the TGES writer back-patches the header and commits \
              (arg: store path). A trigger leaves an unreadable store, \
              never a silently short one.",
    },
    FaultPoint {
        name: "store.read.block",
        scope: FaultScope::Production,
        doc: "before each SoA block read in the TGES reader (arg: \
              \"block:<k>\").",
    },
    FaultPoint {
        name: "store.write.block",
        scope: FaultScope::Production,
        doc: "before each SoA block flush in the TGES writer (arg: \
              \"block:<k>\").",
    },
    FaultPoint {
        name: "t.macro",
        scope: FaultScope::TestOnly,
        doc: "fixture for the zero-argument `fail_point!` form in this \
              crate's own unit tests; never evaluated from production \
              code.",
    },
    FaultPoint {
        name: "t.macro.arg",
        scope: FaultScope::TestOnly,
        doc: "fixture for the lazy-argument `fail_point!` form in this \
              crate's own unit tests; never evaluated from production \
              code.",
    },
    FaultPoint {
        name: "train.checkpoint.write",
        scope: FaultScope::Production,
        doc: "wraps each rotating training-checkpoint write (arg: \
              checkpoint path). Pairs with persist.atomic.* to prove \
              resume falls back across generations.",
    },
    FaultPoint {
        name: "worker.entry",
        scope: FaultScope::Production,
        doc: "at shard-worker process entry in `tgx-cli simulate` (arg: \
              \"shard:<i>\"). The supervisor's retry/backoff/quarantine \
              story is proven against this point.",
    },
];

/// Look up a declared fault point by its exact name.
pub fn lookup(name: &str) -> Option<&'static FaultPoint> {
    FAULT_POINTS
        .binary_search_by(|p| p.name.cmp(name))
        .ok()
        .map(|i| &FAULT_POINTS[i])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_sorted_and_unique() {
        for w in FAULT_POINTS.windows(2) {
            assert!(
                w[0].name < w[1].name,
                "registry must stay sorted/unique: `{}` >= `{}`",
                w[0].name,
                w[1].name
            );
        }
    }

    #[test]
    fn lookup_finds_every_entry_and_rejects_strangers() {
        for p in FAULT_POINTS {
            let hit = lookup(p.name).expect("registered point must resolve");
            assert_eq!(hit.name, p.name);
        }
        assert!(lookup("no.such.point").is_none());
        assert!(lookup("").is_none());
    }

    #[test]
    fn scopes_are_as_declared() {
        assert_eq!(lookup("t.macro").unwrap().scope, FaultScope::TestOnly);
        assert_eq!(
            lookup("worker.entry").unwrap().scope,
            FaultScope::Production
        );
    }
}
