#![warn(missing_docs)]
//! `tg-faults`: deterministic fault injection for the tgx workspace.
//!
//! Long-lived pipelines need to *prove* their failure handling, not just
//! claim it. This crate provides `fail`-crate-style **fault points** —
//! named places in the code where a test or a CI job can deterministically
//! inject an error, a panic, a hang, or a process death:
//!
//! ```ignore
//! fn flush_block(&mut self) -> Result<(), StoreError> {
//!     tg_faults::fail_point!("store.write.block");
//!     // ... the real work ...
//! }
//! ```
//!
//! # Zero cost when disabled
//!
//! The `enabled` cargo feature gates the whole machinery. Without it,
//! [`eval`] / [`eval_lazy`] are `#[inline(always)]` stubs returning
//! `Ok(())`, so every `fail_point!` folds to nothing under optimization —
//! no branch, no atomic load, and (for the lazy-argument form) not even
//! the argument's construction. `tgx-cli` turns the feature on by
//! default; library consumers and benchmarks that don't, pay nothing.
//!
//! # Activating points
//!
//! Points are configured from the `TG_FAULTS` environment variable (read
//! once, lazily) or programmatically with [`set`]. The spec grammar is
//! `point=action[,modifier=value]*` entries separated by `;`:
//!
//! ```text
//! TG_FAULTS="worker.entry=abort,arg=shard:1,max=1;store.write.block=err,p=0.5"
//! ```
//!
//! Actions: `off`, `err`, `panic`, `abort`, `exit:CODE`, `sleep:MILLIS`.
//! Modifiers:
//!
//! - `p=PROB` — trigger with probability `PROB`, decided by a
//!   **deterministic** SplitMix64 draw from `TG_FAULTS_SEED`, the point
//!   name, and the per-point match counter (same seed ⇒ same trigger
//!   pattern, across runs and machines);
//! - `after=N` — skip the first `N` matching evaluations;
//! - `max=N` — trigger at most `N` times. With `TG_FAULTS_STATE=FILE`
//!   the trigger count is kept in an append-only ledger file, so the
//!   budget spans *process restarts* — "fail the first attempt only"
//!   works even when triggering kills the worker process;
//! - `arg=SUBSTR` — only match evaluations whose call-site argument
//!   contains `SUBSTR` (e.g. `arg=shard:1` to target one shard worker).
//!
//! A triggered point is recorded in the ledger **before** the action runs,
//! so even `abort`/`exit`/`sleep`-then-SIGKILL count against `max`.

pub mod registry;

#[cfg(feature = "enabled")]
use std::sync::atomic::Ordering;

/// The error a triggered `err` fault point returns through `?`.
///
/// Converts into `std::io::Error` and `String`, so fault points drop into
/// functions returning either without per-crate glue (store/core/graph
/// errors add their own `From` impls on top of the `io::Error` one).
#[derive(Debug, Clone)]
pub struct FaultError {
    /// Name of the fault point that fired.
    pub point: String,
    /// The call-site argument at the firing evaluation, if any.
    pub arg: Option<String>,
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.arg {
            Some(a) => write!(f, "injected fault at `{}` ({a})", self.point),
            None => write!(f, "injected fault at `{}`", self.point),
        }
    }
}

impl std::error::Error for FaultError {}

impl From<FaultError> for std::io::Error {
    fn from(e: FaultError) -> Self {
        std::io::Error::other(e)
    }
}

impl From<FaultError> for String {
    fn from(e: FaultError) -> Self {
        e.to_string()
    }
}

/// Declare a fault point. Expands to an [`eval`]/[`eval_lazy`] call
/// followed by `?`, so the enclosing function's error type must implement
/// `From<FaultError>` (directly, or via `From<std::io::Error>`).
///
/// ```ignore
/// tg_faults::fail_point!("store.write.block");
/// tg_faults::fail_point!("worker.entry", format!("shard:{idx}"));
/// ```
///
/// The two-argument form takes anything `String: From<T>`; the argument
/// expression is **not evaluated** in disabled builds.
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {
        $crate::eval($name, ::std::option::Option::None)?
    };
    ($name:expr, $arg:expr) => {
        $crate::eval_lazy($name, || ::std::string::String::from($arg))?
    };
}

/// Whether this build carries the fault-point machinery (the `enabled`
/// cargo feature). Tests that need injection should early-return when
/// this is `false` instead of failing.
pub const fn is_compiled() -> bool {
    cfg!(feature = "enabled")
}

// ---------------------------------------------------------------------
// Disabled build: inline no-op stubs. The bodies below compile away
// entirely; `fail_point!` costs nothing on any path.
// ---------------------------------------------------------------------

/// Evaluate the fault point `point`. No-op unless the `enabled` feature
/// is on and a matching spec is active.
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn eval(_point: &str, _arg: Option<&str>) -> Result<(), FaultError> {
    Ok(())
}

/// [`eval`] with a lazily built argument (not constructed when disabled).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn eval_lazy<F: FnOnce() -> String>(_point: &str, _arg: F) -> Result<(), FaultError> {
    Ok(())
}

/// Activate a fault point programmatically. Errors in disabled builds
/// (the machinery is compiled out).
#[cfg(not(feature = "enabled"))]
pub fn set(_point: &str, _spec: &str) -> Result<(), String> {
    Err("tg-faults was compiled without the `enabled` feature".into())
}

/// Deactivate one fault point. No-op in disabled builds.
#[cfg(not(feature = "enabled"))]
pub fn remove(_point: &str) {}

/// Deactivate every fault point and reset all counters. No-op in
/// disabled builds.
#[cfg(not(feature = "enabled"))]
pub fn clear() {}

/// Times `point` has been evaluated (0 in disabled builds).
#[cfg(not(feature = "enabled"))]
pub fn hits(_point: &str) -> u64 {
    0
}

/// Times `point` has actually triggered its action (0 in disabled builds).
#[cfg(not(feature = "enabled"))]
pub fn triggers(_point: &str) -> u64 {
    0
}

// ---------------------------------------------------------------------
// Enabled build: the real machinery.
// ---------------------------------------------------------------------

#[cfg(feature = "enabled")]
mod imp {
    use std::collections::HashMap;
    use std::io::Write;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Mutex, OnceLock};

    #[derive(Clone, Debug, PartialEq)]
    pub(super) enum Action {
        Off,
        Err,
        Panic,
        Abort,
        Exit(i32),
        Sleep(u64),
    }

    #[derive(Clone, Debug)]
    pub(super) struct PointSpec {
        pub action: Action,
        /// Trigger probability in [0, 1]; decided deterministically.
        pub p: f64,
        /// Maximum number of triggers (ledger-backed when a state file is
        /// configured).
        pub max: Option<u64>,
        /// Matching evaluations to skip before the first trigger.
        pub after: u64,
        /// Substring the call-site argument must contain to match.
        pub arg: Option<String>,
    }

    impl PointSpec {
        /// Ledger key: the point name plus the arg filter, so two specs
        /// targeting different shards of the same point count separately.
        pub fn ledger_key(&self, point: &str) -> String {
            match &self.arg {
                Some(a) => format!("{point}|{a}"),
                None => point.to_string(),
            }
        }
    }

    #[derive(Default)]
    pub(super) struct Registry {
        pub points: HashMap<String, PointSpec>,
        /// Evaluations per point (matched or not).
        pub hits: HashMap<String, u64>,
        /// Matching evaluations per point (drives `after`/`p`).
        pub matches: HashMap<String, u64>,
        /// In-process trigger counts per ledger key.
        pub triggers: HashMap<String, u64>,
        pub seed: u64,
        pub state_path: Option<PathBuf>,
    }

    pub(super) static ACTIVE: AtomicBool = AtomicBool::new(false);
    pub(super) static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    pub(super) static INIT: std::sync::Once = std::sync::Once::new();

    pub(super) fn registry() -> &'static Mutex<Registry> {
        REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
    }

    /// SplitMix64 finalizer — the workspace's standard seed mixer.
    pub(super) fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    pub(super) fn fnv64(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in s.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    pub(super) fn parse_spec(spec: &str) -> Result<PointSpec, String> {
        let mut parts = spec.split(',').map(str::trim);
        let action_str = parts.next().ok_or("empty fault spec")?;
        let action = match action_str.split_once(':') {
            None => match action_str {
                "off" => Action::Off,
                "err" => Action::Err,
                "panic" => Action::Panic,
                "abort" => Action::Abort,
                other => return Err(format!("unknown fault action `{other}`")),
            },
            Some(("exit", code)) => Action::Exit(
                code.parse()
                    .map_err(|_| format!("bad exit code `{code}`"))?,
            ),
            Some(("sleep", ms)) => {
                Action::Sleep(ms.parse().map_err(|_| format!("bad sleep millis `{ms}`"))?)
            }
            Some((other, _)) => return Err(format!("unknown fault action `{other}`")),
        };
        let mut out = PointSpec {
            action,
            p: 1.0,
            max: None,
            after: 0,
            arg: None,
        };
        for part in parts {
            if part.is_empty() {
                continue;
            }
            let (k, v) = part
                .split_once('=')
                .ok_or_else(|| format!("fault modifier `{part}` is not key=value"))?;
            match k {
                "p" => {
                    let p: f64 = v.parse().map_err(|_| format!("bad probability `{v}`"))?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(format!("probability `{v}` outside [0, 1]"));
                    }
                    out.p = p;
                }
                "max" => {
                    out.max = Some(v.parse().map_err(|_| format!("bad max `{v}`"))?);
                }
                "after" => {
                    out.after = v.parse().map_err(|_| format!("bad after `{v}`"))?;
                }
                "arg" => out.arg = Some(v.to_string()),
                other => return Err(format!("unknown fault modifier `{other}`")),
            }
        }
        Ok(out)
    }

    /// Count ledger entries for `key` in the state file (absent file = 0).
    pub(super) fn ledger_count(path: &std::path::Path, key: &str) -> u64 {
        match std::fs::read_to_string(path) {
            Ok(text) => text.lines().filter(|l| l.trim() == key).count() as u64,
            Err(_) => 0,
        }
    }

    pub(super) fn ledger_append(path: &std::path::Path, key: &str) {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(f, "{key}");
        }
    }

    pub(super) fn init_from_env() {
        let mut reg = registry().lock().expect("fault registry poisoned");
        reg.seed = std::env::var("TG_FAULTS_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        reg.state_path = std::env::var("TG_FAULTS_STATE").ok().map(PathBuf::from);
        if let Ok(spec) = std::env::var("TG_FAULTS") {
            for entry in spec.split(';').map(str::trim).filter(|e| !e.is_empty()) {
                let Some((point, rest)) = entry.split_once('=') else {
                    eprintln!("tg-faults: ignoring malformed TG_FAULTS entry `{entry}`");
                    continue;
                };
                match parse_spec(rest) {
                    Ok(ps) => {
                        reg.points.insert(point.trim().to_string(), ps);
                    }
                    Err(e) => eprintln!("tg-faults: ignoring `{entry}`: {e}"),
                }
            }
        }
        if !reg.points.is_empty() {
            ACTIVE.store(true, Ordering::Relaxed);
        }
    }
}

/// Evaluate the fault point `point` with an optional call-site argument.
/// Returns `Err(FaultError)` when an active `err` spec triggers; `panic`,
/// `abort`, `exit`, and `sleep` actions act directly.
#[cfg(feature = "enabled")]
pub fn eval(point: &str, arg: Option<&str>) -> Result<(), FaultError> {
    use imp::*;
    INIT.call_once(init_from_env);
    if !ACTIVE.load(Ordering::Relaxed) {
        return Ok(());
    }
    eval_active(point, arg)
}

/// [`eval`] with a lazily built argument (only constructed when some
/// fault point is active).
#[cfg(feature = "enabled")]
pub fn eval_lazy<F: FnOnce() -> String>(point: &str, arg: F) -> Result<(), FaultError> {
    use imp::*;
    INIT.call_once(init_from_env);
    if !ACTIVE.load(Ordering::Relaxed) {
        return Ok(());
    }
    let arg = arg();
    eval_active(point, Some(&arg))
}

#[cfg(feature = "enabled")]
fn eval_active(point: &str, arg: Option<&str>) -> Result<(), FaultError> {
    use imp::*;
    // Decide under the lock; act after releasing it (a sleeping or
    // panicking point must not wedge sibling threads' evaluations).
    let action: Action = {
        let mut reg = registry().lock().expect("fault registry poisoned");
        *reg.hits.entry(point.to_string()).or_insert(0) += 1;
        let Some(spec) = reg.points.get(point).cloned() else {
            return Ok(());
        };
        if spec.action == Action::Off {
            return Ok(());
        }
        if let Some(filter) = &spec.arg {
            if !arg.is_some_and(|a| a.contains(filter.as_str())) {
                return Ok(());
            }
        }
        let match_idx = {
            let c = reg.matches.entry(point.to_string()).or_insert(0);
            let idx = *c;
            *c += 1;
            idx
        };
        if match_idx < spec.after {
            return Ok(());
        }
        if spec.p < 1.0 {
            let draw = splitmix64(reg.seed ^ fnv64(point) ^ match_idx);
            // map the top 53 bits to [0, 1)
            let unit = (draw >> 11) as f64 / (1u64 << 53) as f64;
            if unit >= spec.p {
                return Ok(());
            }
        }
        let key = spec.ledger_key(point);
        if let Some(max) = spec.max {
            let fired = match &reg.state_path {
                Some(p) => ledger_count(p, &key),
                None => reg.triggers.get(&key).copied().unwrap_or(0),
            };
            if fired >= max {
                return Ok(());
            }
        }
        // Record the trigger BEFORE acting: abort/exit/sleep-then-SIGKILL
        // must still consume their budget.
        *reg.triggers.entry(key.clone()).or_insert(0) += 1;
        if let Some(p) = reg.state_path.clone() {
            ledger_append(&p, &key);
        }
        spec.action
    };
    let err = FaultError {
        point: point.to_string(),
        arg: arg.map(str::to_string),
    };
    match action {
        imp::Action::Off => Ok(()),
        imp::Action::Err => Err(err),
        imp::Action::Panic => panic!("{err}"),
        imp::Action::Abort => {
            eprintln!("tg-faults: {err}: aborting");
            std::process::abort()
        }
        imp::Action::Exit(code) => {
            eprintln!("tg-faults: {err}: exiting with code {code}");
            std::process::exit(code)
        }
        imp::Action::Sleep(ms) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            Ok(())
        }
    }
}

/// Activate (or replace) the spec for one fault point, e.g.
/// `set("store.write.block", "err,max=1")`.
#[cfg(feature = "enabled")]
pub fn set(point: &str, spec: &str) -> Result<(), String> {
    use imp::*;
    INIT.call_once(init_from_env);
    let parsed = parse_spec(spec)?;
    let mut reg = registry().lock().expect("fault registry poisoned");
    reg.points.insert(point.to_string(), parsed);
    ACTIVE.store(true, Ordering::Relaxed);
    Ok(())
}

/// Deactivate one fault point (counters are kept).
#[cfg(feature = "enabled")]
pub fn remove(point: &str) {
    use imp::*;
    let mut reg = registry().lock().expect("fault registry poisoned");
    reg.points.remove(point);
    if reg.points.is_empty() {
        ACTIVE.store(false, Ordering::Relaxed);
    }
}

/// Deactivate every fault point and reset all counters (the seed and
/// state-file path survive; tests reconfigure with [`set`]).
#[cfg(feature = "enabled")]
pub fn clear() {
    use imp::*;
    let mut reg = registry().lock().expect("fault registry poisoned");
    reg.points.clear();
    reg.hits.clear();
    reg.matches.clear();
    reg.triggers.clear();
    ACTIVE.store(false, Ordering::Relaxed);
}

/// Times `point` has been evaluated since process start (matched or not).
#[cfg(feature = "enabled")]
pub fn hits(point: &str) -> u64 {
    imp::registry()
        .lock()
        .expect("fault registry poisoned")
        .hits
        .get(point)
        .copied()
        .unwrap_or(0)
}

/// Times `point` has actually triggered its action in this process
/// (summed over arg filters).
#[cfg(feature = "enabled")]
pub fn triggers(point: &str) -> u64 {
    let reg = imp::registry().lock().expect("fault registry poisoned");
    reg.triggers
        .iter()
        .filter(|(k, _)| k.as_str() == point || k.starts_with(&format!("{point}|")))
        .map(|(_, v)| *v)
        .sum()
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // The registry is process-global, so these tests serialize on a lock
    // and clear() between scenarios.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        let g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        clear();
        g
    }

    #[test]
    fn inactive_points_are_ok() {
        let _g = locked();
        // nothing configured: the fast path skips even hit counting
        assert!(eval("nothing.set", None).is_ok());
        assert_eq!(hits("nothing.set"), 0);
        // once any point is active, unmatched points are counted but inert
        set("elsewhere", "err").unwrap();
        assert!(eval("nothing.set", None).is_ok());
        assert_eq!(hits("nothing.set"), 1);
        assert_eq!(triggers("nothing.set"), 0);
    }

    #[test]
    fn err_action_fires_and_counts() {
        let _g = locked();
        set("t.err", "err").unwrap();
        let e = eval("t.err", None).unwrap_err();
        assert!(e.to_string().contains("t.err"));
        assert_eq!(triggers("t.err"), 1);
        remove("t.err");
        assert!(eval("t.err", None).is_ok());
    }

    #[test]
    fn max_and_after_budgets() {
        let _g = locked();
        set("t.budget", "err,after=2,max=1").unwrap();
        assert!(eval("t.budget", None).is_ok());
        assert!(eval("t.budget", None).is_ok());
        assert!(eval("t.budget", None).is_err()); // third matching eval
        assert!(eval("t.budget", None).is_ok()); // budget exhausted
        assert_eq!(triggers("t.budget"), 1);
        assert_eq!(hits("t.budget"), 4);
    }

    #[test]
    fn arg_filter_matches_substring() {
        let _g = locked();
        set("t.arg", "err,arg=shard:1").unwrap();
        assert!(eval("t.arg", Some("shard:0")).is_ok());
        assert!(eval("t.arg", None).is_ok());
        assert!(eval("t.arg", Some("shard:1")).is_err());
        assert!(eval_lazy("t.arg", || "shard:12".to_string()).is_err());
    }

    #[test]
    fn probability_is_deterministic() {
        let _g = locked();
        set("t.prob", "err,p=0.5").unwrap();
        let pattern: Vec<bool> = (0..64).map(|_| eval("t.prob", None).is_err()).collect();
        let fired = pattern.iter().filter(|&&b| b).count();
        assert!((10..=54).contains(&fired), "wildly unbalanced: {fired}/64");
        // same seed, fresh counters: identical pattern
        clear();
        set("t.prob", "err,p=0.5").unwrap();
        let again: Vec<bool> = (0..64).map(|_| eval("t.prob", None).is_err()).collect();
        assert_eq!(pattern, again);
    }

    #[test]
    fn ledger_spans_processes() {
        let _g = locked();
        let dir = std::env::temp_dir().join(format!("tg_faults_ledger_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let state = dir.join("state");
        std::fs::remove_file(&state).ok();
        {
            let mut reg = imp::registry().lock().unwrap();
            reg.state_path = Some(state.clone());
        }
        set("t.ledger", "err,max=1").unwrap();
        assert!(eval("t.ledger", None).is_err());
        assert!(eval("t.ledger", None).is_ok());
        // a "restarted process": same ledger, fresh in-memory counters
        clear();
        {
            let mut reg = imp::registry().lock().unwrap();
            reg.state_path = Some(state.clone());
        }
        set("t.ledger", "err,max=1").unwrap();
        assert!(
            eval("t.ledger", None).is_ok(),
            "ledger-backed max must survive the restart"
        );
        {
            let mut reg = imp::registry().lock().unwrap();
            reg.state_path = None;
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spec_parse_errors_are_loud() {
        let _g = locked();
        assert!(set("x", "explode").is_err());
        assert!(set("x", "err,p=2.0").is_err());
        assert!(set("x", "exit:nope").is_err());
        assert!(set("x", "err,bogus=1").is_err());
        assert!(set("x", "sleep:10,arg=a,max=2,after=1,p=0.5").is_ok());
    }

    #[test]
    fn fail_point_macro_compiles_both_forms() {
        let _g = locked();
        fn f() -> Result<(), String> {
            fail_point!("t.macro");
            fail_point!("t.macro.arg", format!("x:{}", 1));
            Ok(())
        }
        assert!(f().is_ok());
        set("t.macro.arg", "err,arg=x:1").unwrap();
        assert!(f().unwrap_err().contains("t.macro.arg"));
    }
}
