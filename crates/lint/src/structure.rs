//! Structural view over a token stream: a brace-matched scope tree
//! giving each token an "am I inside test code?" flag and an enclosing
//! function, and collecting per-function facts (name, module path,
//! `#[target_feature]`, line) that the passes reason about.
//!
//! This is a heuristic item scanner, not a parser. It understands
//! exactly the shapes the passes need: `mod name { … }`, `fn name … {
//! … }`, attributes (`#[…]`, balanced), and plain `{ … }` blocks that
//! inherit their surroundings. Closure bodies deliberately do NOT open
//! a function scope, so a token inside a closure resolves to the
//! enclosing `fn` item — which is what a reachability or ratchet check
//! wants.

use crate::lexer::{Tok, TokKind};

/// Facts about one `fn` item.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// The function's name.
    pub name: String,
    /// Enclosing `mod` names, outermost first. Impl blocks contribute
    /// nothing (a method's path is its module's path).
    pub module_path: Vec<String>,
    /// Whether the item carries a `#[target_feature(…)]` attribute.
    pub has_target_feature: bool,
    /// Whether the item is test code (own `#[test]`-ish attribute or
    /// any enclosing `#[cfg(test)]` scope).
    pub is_test: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token-index range of the body, `{`-token inclusive to the
    /// matching `}`-token inclusive-end (empty for bodyless items).
    pub body: std::ops::Range<usize>,
}

/// Per-file structural facts, index-aligned with the token stream.
#[derive(Debug)]
pub struct FileStructure {
    /// All `fn` items, in source order.
    pub fns: Vec<FnInfo>,
    /// Per token: is this token inside a test scope?
    pub in_test: Vec<bool>,
    /// Per token: index into `fns` of the innermost enclosing function
    /// item, if any.
    pub enclosing_fn: Vec<Option<usize>>,
}

/// Does `attr` contain `word` with identifier boundaries on both sides?
/// (`#[cfg(test)]` matches "test"; `#[target_feature(…)]` does not.)
fn attr_has_word(attr: &str, word: &str) -> bool {
    let b = attr.as_bytes();
    let mut from = 0;
    while let Some(pos) = attr[from..].find(word) {
        let s = from + pos;
        let e = s + word.len();
        let pre_ok = s == 0 || !(b[s - 1].is_ascii_alphanumeric() || b[s - 1] == b'_');
        let post_ok = e == b.len() || !(b[e].is_ascii_alphanumeric() || b[e] == b'_');
        if pre_ok && post_ok {
            return true;
        }
        from = e;
    }
    false
}

enum Pending {
    Mod {
        name: String,
        is_test: bool,
    },
    /// Index into `fns`; the body range is patched when `{`/`}` arrive.
    Fn(usize),
    /// `impl`/`struct`/`enum`/`union`/`trait` — a named scope that is
    /// neither a module nor a function body.
    Other,
}

struct Scope {
    is_test: bool,
    mod_name: Option<String>,
    /// `fns` index whose body this scope is (to patch `body.end`).
    owns_fn: Option<usize>,
    /// Innermost enclosing fn visible inside this scope.
    cur_fn: Option<usize>,
}

/// Keywords that may legally sit between an attribute and the item
/// keyword it decorates; anything else detaches pending attributes
/// (so `#[cfg(…)]` on a match arm doesn't leak onto the next item).
const ATTR_CARRIERS: &[&str] = &[
    "pub", "crate", "super", "self", "in", "unsafe", "extern", "async", "const", "static",
    "default",
];

/// Build the structural view for one lexed file.
pub fn analyze(src: &str, toks: &[Tok]) -> FileStructure {
    let n = toks.len();
    let mut fns: Vec<FnInfo> = Vec::new();
    let mut in_test = vec![false; n];
    let mut enclosing_fn: Vec<Option<usize>> = vec![None; n];

    let mut stack: Vec<Scope> = Vec::new();
    let mut pending: Option<Pending> = None;
    let mut attrs: Vec<String> = Vec::new();

    let cur_test = |stack: &[Scope]| stack.last().map(|s| s.is_test).unwrap_or(false);
    let cur_fn = |stack: &[Scope]| stack.last().and_then(|s| s.cur_fn);
    let next_code = |from: usize| -> Option<usize> {
        toks[from..]
            .iter()
            .position(|t| !t.is_comment())
            .map(|off| from + off)
    };

    let mut i = 0usize;
    while i < n {
        in_test[i] = cur_test(&stack);
        enclosing_fn[i] = cur_fn(&stack);
        let t = &toks[i];
        if t.is_comment() {
            i += 1;
            continue;
        }
        let text = t.text(src);
        match t.kind {
            TokKind::Punct if text == "#" => {
                // attribute: `#[…]` (collected) or `#![…]` (skipped)
                let mut j = i + 1;
                let inner = matches!(toks.get(j), Some(t2) if t2.text(src) == "!");
                if inner {
                    j += 1;
                }
                if matches!(toks.get(j), Some(t2) if t2.text(src) == "[") {
                    let mut depth = 0usize;
                    let mut k = j;
                    while k < n {
                        let tk = toks[k].text(src);
                        if tk == "[" {
                            depth += 1;
                        } else if tk == "]" {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        in_test[k] = cur_test(&stack);
                        enclosing_fn[k] = cur_fn(&stack);
                        k += 1;
                    }
                    let end = (k + 1).min(n);
                    if !inner {
                        attrs.push(src[t.start..toks[k.min(n - 1)].end].to_string());
                    }
                    i = end;
                    continue;
                }
                i += 1;
            }
            TokKind::Ident => {
                match text {
                    "mod" if pending.is_none() => {
                        if let Some(j) = next_code(i + 1) {
                            if toks[j].kind == TokKind::Ident {
                                let is_test = cur_test(&stack)
                                    || attrs.iter().any(|a| attr_has_word(a, "test"));
                                pending = Some(Pending::Mod {
                                    name: toks[j].text(src).to_string(),
                                    is_test,
                                });
                                attrs.clear();
                                in_test[j] = cur_test(&stack);
                                enclosing_fn[j] = cur_fn(&stack);
                                i = j + 1;
                                continue;
                            }
                        }
                        attrs.clear();
                        i += 1;
                    }
                    "fn" if !matches!(pending, Some(Pending::Fn(_))) => {
                        if let Some(j) = next_code(i + 1) {
                            if toks[j].kind == TokKind::Ident {
                                let idx = fns.len();
                                fns.push(FnInfo {
                                    name: toks[j].text(src).to_string(),
                                    module_path: stack
                                        .iter()
                                        .filter_map(|s| s.mod_name.clone())
                                        .collect(),
                                    has_target_feature: attrs
                                        .iter()
                                        .any(|a| a.contains("target_feature")),
                                    is_test: cur_test(&stack)
                                        || attrs.iter().any(|a| attr_has_word(a, "test")),
                                    line: t.line,
                                    body: 0..0,
                                });
                                pending = Some(Pending::Fn(idx));
                                attrs.clear();
                                in_test[j] = cur_test(&stack);
                                enclosing_fn[j] = cur_fn(&stack);
                                i = j + 1;
                                continue;
                            }
                        }
                        attrs.clear();
                        i += 1;
                    }
                    "impl" | "struct" | "enum" | "union" | "trait" if pending.is_none() => {
                        pending = Some(Pending::Other);
                        attrs.clear();
                        i += 1;
                    }
                    kw if ATTR_CARRIERS.contains(&kw) => {
                        i += 1;
                    }
                    _ => {
                        // any other ident detaches pending attributes
                        // (match-arm `#[cfg]`s, field attrs, …)
                        if pending.is_none() {
                            attrs.clear();
                        }
                        i += 1;
                    }
                }
            }
            TokKind::Punct if text == "{" => {
                let parent_test = cur_test(&stack);
                let parent_fn = cur_fn(&stack);
                let scope = match pending.take() {
                    Some(Pending::Mod { name, is_test }) => Scope {
                        is_test,
                        mod_name: Some(name),
                        owns_fn: None,
                        cur_fn: None,
                    },
                    Some(Pending::Fn(idx)) => {
                        fns[idx].body = i..i;
                        Scope {
                            is_test: parent_test || fns[idx].is_test,
                            mod_name: None,
                            owns_fn: Some(idx),
                            cur_fn: Some(idx),
                        }
                    }
                    Some(Pending::Other) | None => Scope {
                        is_test: parent_test,
                        mod_name: None,
                        owns_fn: None,
                        cur_fn: parent_fn,
                    },
                };
                stack.push(scope);
                attrs.clear();
                i += 1;
            }
            TokKind::Punct if text == "}" => {
                if let Some(scope) = stack.pop() {
                    if let Some(idx) = scope.owns_fn {
                        fns[idx].body.end = i + 1;
                    }
                }
                i += 1;
            }
            TokKind::Punct if text == ";" => {
                pending = None;
                attrs.clear();
                i += 1;
            }
            _ => {
                i += 1;
            }
        }
    }
    FileStructure {
        fns,
        in_test,
        enclosing_fn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn fixture() -> (&'static str, Vec<Tok>) {
        let src = r#"
pub fn plain() { helper(); }

#[cfg(target_arch = "x86_64")]
mod avx2 {
    #[target_feature(enable = "avx2")]
    pub unsafe fn kernel(x: u32) -> u32 { x }
}

#[cfg(test)]
mod tests {
    #[test]
    fn checks() { assert_eq!(super::plain(), ()); foo.unwrap(); }
}
"#;
        (src, lex(src))
    }

    #[test]
    fn fns_and_module_paths() {
        let (src, toks) = fixture();
        let st = analyze(src, &toks);
        let names: Vec<_> = st.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["plain", "kernel", "checks"]);
        assert_eq!(st.fns[1].module_path, vec!["avx2"]);
        assert!(st.fns[1].has_target_feature);
        assert!(!st.fns[0].has_target_feature);
    }

    #[test]
    fn test_scopes_mark_tokens() {
        let (src, toks) = fixture();
        let st = analyze(src, &toks);
        assert!(st.fns[2].is_test);
        assert!(!st.fns[0].is_test);
        // the `.unwrap()` call tokens are inside test code
        let unwrap_idx = toks
            .iter()
            .position(|t| t.text(src) == "unwrap")
            .expect("unwrap token");
        assert!(st.in_test[unwrap_idx]);
        let helper_idx = toks
            .iter()
            .position(|t| t.text(src) == "helper")
            .expect("helper token");
        assert!(!st.in_test[helper_idx]);
    }

    #[test]
    fn enclosing_fn_resolution_skips_closures() {
        let src = "fn outer() { let f = |x: u32| { x.unwrap() }; }";
        let toks = lex(src);
        let st = analyze(src, &toks);
        let unwrap_idx = toks.iter().position(|t| t.text(src) == "unwrap").unwrap();
        let encl = st.enclosing_fn[unwrap_idx].expect("inside a fn");
        assert_eq!(st.fns[encl].name, "outer");
    }

    #[test]
    fn cfg_on_match_arm_does_not_leak_onto_next_item() {
        let src = r#"
fn dispatch(k: Kind) {
    match k {
        #[cfg(test)]
        Kind::A => {}
        _ => {}
    }
}
fn after() { x.unwrap(); }
"#;
        let toks = lex(src);
        let st = analyze(src, &toks);
        let after = st.fns.iter().find(|f| f.name == "after").unwrap();
        assert!(!after.is_test);
        let unwrap_idx = toks.iter().position(|t| t.text(src) == "unwrap").unwrap();
        assert!(!st.in_test[unwrap_idx]);
    }

    #[test]
    fn return_position_impl_does_not_steal_the_fn_body() {
        let src = "fn make() -> impl Iterator<Item = u32> { (0..4).map(|x| x) }";
        let toks = lex(src);
        let st = analyze(src, &toks);
        assert_eq!(st.fns.len(), 1);
        assert!(!st.fns[0].body.is_empty(), "body must be attached");
    }

    #[test]
    fn impl_blocks_do_not_contribute_to_module_paths() {
        let src = "mod m { struct S; impl S { fn method(&self) {} } }";
        let toks = lex(src);
        let st = analyze(src, &toks);
        let f = st.fns.iter().find(|f| f.name == "method").unwrap();
        assert_eq!(f.module_path, vec!["m"]);
    }
}
