//! CLI entry point: `tg-lint check` / `tg-lint fix-ratchet`.

use std::path::PathBuf;

use tg_lint::{ratchet, workspace};

fn main() {
    let code = match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("tg-lint: {e}");
            2
        }
    };
    std::process::exit(code);
}

fn run() -> Result<i32, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str);
    match cmd {
        Some("check") => cmd_check(),
        Some("fix-ratchet") => cmd_fix_ratchet(),
        _ => Err("usage: tg-lint <check | fix-ratchet>".to_string()),
    }
}

/// The workspace root: two levels up from this crate's manifest when
/// run via `cargo run -p tg-lint`, else the nearest ancestor of the
/// current directory that has a `crates/` subdirectory.
fn find_root() -> Result<PathBuf, String> {
    if let Ok(md) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(md);
        if let Some(root) = p.parent().and_then(|p| p.parent()) {
            if root.join("crates").is_dir() {
                return Ok(root.to_path_buf());
            }
        }
    }
    let mut dir = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    loop {
        if dir.join("crates").is_dir() && dir.join("Cargo.toml").is_file() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err("cannot locate the workspace root (no crates/ found)".to_string());
        }
    }
}

fn cmd_check() -> Result<i32, String> {
    let root = find_root()?;
    let ws = workspace::load(&root)?;
    let diags = workspace::check(&ws);
    if diags.is_empty() {
        println!(
            "tg-lint: {} files checked, 5 passes, 0 violations",
            ws.files.len()
        );
        return Ok(0);
    }
    for d in &diags {
        eprintln!("{d}");
    }
    eprintln!("tg-lint: {} violation(s)", diags.len());
    Ok(1)
}

fn cmd_fix_ratchet() -> Result<i32, String> {
    let root = find_root()?;
    let ws = workspace::load(&root)?;
    let counts = workspace::compute_ratchet(&ws);
    let text = ratchet::render(&counts);
    let path = root.join("lint-ratchet.toml");
    std::fs::write(&path, &text).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    let total: u32 = counts.values().sum();
    println!(
        "tg-lint: wrote {} ({} crates, {total} panic sites)",
        path.display(),
        counts.len()
    );
    Ok(0)
}
