//! Diagnostics: what a pass reports and how it renders.

use std::fmt;

/// One lint finding, anchored to a file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Repo-relative path (e.g. `crates/tensor/src/matrix.rs`).
    pub file: String,
    /// 1-based line (0 for file-level findings such as a missing
    /// ratchet entry).
    pub line: u32,
    /// Short pass name (`unsafe-audit`, `faults`, `panics`,
    /// `determinism`, `exit-codes`).
    pub pass: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Diagnostic {
    /// Construct a diagnostic.
    pub fn new(file: &str, line: u32, pass: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            file: file.to_string(),
            line,
            pass,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: [{}] {}", self.file, self.pass, self.message)
        } else {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.file, self.line, self.pass, self.message
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_file_line_pass_message() {
        let d = Diagnostic::new("crates/x/src/a.rs", 7, "panics", "naked .unwrap()");
        assert_eq!(
            d.to_string(),
            "crates/x/src/a.rs:7: [panics] naked .unwrap()"
        );
        let f = Diagnostic::new("lint-ratchet.toml", 0, "panics", "missing entry");
        assert_eq!(f.to_string(), "lint-ratchet.toml: [panics] missing entry");
    }
}
