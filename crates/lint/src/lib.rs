//! `tg-lint`: workspace-native static analysis for the tgx workspace.
//!
//! The system's correctness story rests on a handful of invariants
//! that ordinary tests cannot see drifting at the source level:
//! audited `unsafe`, guarded `#[target_feature]` dispatch, a declared
//! fault-point registry, a monotone panic-freedom ratchet, hash-order
//! and wall-clock hygiene on the seeded output paths, and a stable
//! exit-code table. This crate makes them machine-checked:
//!
//! ```text
//! cargo run -p tg-lint -- check        # exit 0 clean, 1 violations
//! cargo run -p tg-lint -- fix-ratchet  # regenerate lint-ratchet.toml
//! ```
//!
//! The scanner is a hand-rolled lexer (see [`lexer`]) rather than a
//! `syn`-based parser: the workspace builds offline against `vendor/`
//! stand-ins, and every invariant here was designed to be lexically
//! checkable. Passes live in [`passes`], one module each, as pure
//! functions over the [`workspace::SourceFile`] view so fixture tests
//! can drive them on embedded snippets.

pub mod diag;
pub mod lexer;
pub mod lines;
pub mod passes;
pub mod ratchet;
pub mod structure;
pub mod workspace;
