//! Pass 2: fault-point registry.
//!
//! The registry (`tg_faults::registry::FAULT_POINTS`) is the single
//! source of truth for fault-point names. This pass enforces it in
//! both directions and validates every armed spec against it:
//!
//! - every `fail_point!("…")` / `tg_faults::eval("…")` /
//!   `tg_faults::eval_lazy("…")` call site must name a registered
//!   point;
//! - every registered `Production` point must have at least one
//!   non-test call site, and `TestOnly` points must have at least one
//!   call site and none outside test code;
//! - every `TG_FAULTS` spec embedded in CI or in test sources must arm
//!   only registered `Production` points.
//!
//! Bare `eval("…")` calls (no `tg_faults::` qualifier) are NOT
//! usages: the faults crate's own unit tests drive the machinery with
//! throwaway names through exactly that form, and that is the
//! machinery's test fixture, not a declared injection point.

use crate::diag::Diagnostic;
use crate::lexer::{str_content, TokKind};
use crate::workspace::SourceFile;
use tg_faults::registry::{lookup, FaultScope, FAULT_POINTS};

const PASS: &str = "faults";

/// The registry's own source file, used to anchor table-level findings.
const REGISTRY_FILE: &str = "crates/faults/src/registry.rs";

struct Usage {
    name: String,
    file: String,
    line: u32,
    in_test: bool,
}

/// Run the pass. `ci_yaml` is the CI workflow text, if present.
///
/// `crates/lint` is excluded wholesale: its fixture tests embed
/// deliberately-invalid snippets and spec strings as string literals.
pub fn run(files: &[SourceFile], ci_yaml: Option<&str>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let files: Vec<&SourceFile> = files.iter().filter(|f| f.crate_name != "lint").collect();

    // -- collect call sites ------------------------------------------------
    let mut usages: Vec<Usage> = Vec::new();
    for f in files.iter().filter(|f| !f.is_test_file) {
        collect_usages(f, &mut usages);
    }
    for u in &usages {
        match lookup(&u.name) {
            None => out.push(Diagnostic::new(
                &u.file,
                u.line,
                PASS,
                format!(
                    "fault point `{}` is not declared in {REGISTRY_FILE}",
                    u.name
                ),
            )),
            Some(p) if p.scope == FaultScope::TestOnly && !u.in_test => out.push(Diagnostic::new(
                &u.file,
                u.line,
                PASS,
                format!(
                    "test-only fault point `{}` evaluated from non-test code",
                    u.name
                ),
            )),
            Some(_) => {}
        }
    }

    // -- both directions: registered points must be live -------------------
    for p in FAULT_POINTS {
        let (non_test, any) = usages
            .iter()
            .filter(|u| u.name == p.name)
            .fold((false, false), |(nt, _), u| (nt || !u.in_test, true));
        match p.scope {
            FaultScope::Production if !non_test => out.push(Diagnostic::new(
                REGISTRY_FILE,
                0,
                PASS,
                format!(
                    "registered production point `{}` has no non-test call site \
                     — delete the entry or restore the injection site",
                    p.name
                ),
            )),
            FaultScope::TestOnly if !any => out.push(Diagnostic::new(
                REGISTRY_FILE,
                0,
                PASS,
                format!("registered test-only point `{}` is never evaluated", p.name),
            )),
            _ => {}
        }
    }

    // -- armed specs: string literals in sources/tests ---------------------
    for f in &files {
        for t in &f.toks {
            if !matches!(t.kind, TokKind::Str | TokKind::RawStr) {
                continue;
            }
            let content = str_content(t, &f.src);
            if looks_like_spec(&content) {
                check_spec(&content, &f.rel_path, t.line, &mut out);
            }
        }
    }

    // -- armed specs: TG_FAULTS= lines in the CI workflow ------------------
    if let Some(yaml) = ci_yaml {
        for (no, line) in yaml.lines().enumerate() {
            let Some(pos) = line.find("TG_FAULTS=\"") else {
                continue;
            };
            let rest = &line[pos + "TG_FAULTS=\"".len()..];
            let Some(end) = rest.find('"') else { continue };
            check_spec(
                &rest[..end],
                ".github/workflows/ci.yml",
                no as u32 + 1,
                &mut out,
            );
        }
    }

    out
}

fn collect_usages(f: &SourceFile, usages: &mut Vec<Usage>) {
    let code: Vec<usize> = (0..f.toks.len())
        .filter(|&i| !f.toks[i].is_comment())
        .collect();
    let text = |ci: usize| f.toks[code[ci]].text(&f.src);
    for ci in 0..code.len() {
        let ti = code[ci];
        if f.toks[ti].kind != TokKind::Ident {
            continue;
        }
        // fail_point!("name"[, arg])
        let matched = if text(ci) == "fail_point"
            && ci + 3 < code.len()
            && text(ci + 1) == "!"
            && text(ci + 2) == "("
            && f.toks[code[ci + 3]].kind == TokKind::Str
        {
            Some(code[ci + 3])
        // tg_faults::eval("name", …) / tg_faults::eval_lazy("name", …)
        } else if text(ci) == "tg_faults"
            && ci + 5 < code.len()
            && text(ci + 1) == ":"
            && text(ci + 2) == ":"
            && matches!(text(ci + 3), "eval" | "eval_lazy")
            && text(ci + 4) == "("
            && f.toks[code[ci + 5]].kind == TokKind::Str
        {
            Some(code[ci + 5])
        } else {
            None
        };
        if let Some(si) = matched {
            usages.push(Usage {
                name: str_content(&f.toks[si], &f.src),
                file: f.rel_path.clone(),
                line: f.toks[si].line,
                in_test: f.st.in_test[si],
            });
        }
    }
}

/// Shape heuristic for a `TG_FAULTS` spec string: the first entry must
/// be `<dotted.point>=<action>` where the point is a lowercase dotted
/// path and the action is one of the spec grammar's verbs. This keeps
/// ordinary strings containing `=` from being misread as specs.
fn looks_like_spec(s: &str) -> bool {
    let Some((point, rest)) = s.split_once('=') else {
        return false;
    };
    if !point.contains('.')
        || point.is_empty()
        || !point
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '.')
        || point.split('.').any(|seg| seg.is_empty())
    {
        return false;
    }
    let action = rest.split([',', ';']).next().unwrap_or("");
    matches!(action, "off" | "err" | "panic" | "abort")
        || action.starts_with("exit:")
        || action.starts_with("sleep:")
}

/// Validate one armed spec (possibly multiple `;`-separated entries)
/// against the registry.
fn check_spec(spec: &str, file: &str, line: u32, out: &mut Vec<Diagnostic>) {
    for entry in spec.split(';').filter(|e| !e.trim().is_empty()) {
        let Some((point, _)) = entry.split_once('=') else {
            continue;
        };
        let point = point.trim();
        match lookup(point) {
            None => out.push(Diagnostic::new(
                file,
                line,
                PASS,
                format!("TG_FAULTS spec arms `{point}`, which is not declared in {REGISTRY_FILE}"),
            )),
            Some(p) if p.scope == FaultScope::TestOnly => out.push(Diagnostic::new(
                file,
                line,
                PASS,
                format!("TG_FAULTS spec arms test-only point `{point}`"),
            )),
            Some(_) => {}
        }
    }
}
