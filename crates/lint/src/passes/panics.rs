//! Pass 3: panic-freedom ratchet.
//!
//! `.unwrap()`, `.expect(` and `panic!` in non-test library code are
//! counted per crate and compared against the checked-in
//! `lint-ratchet.toml`. A count above the recorded value is a
//! regression; a count below it is also an error — run
//! `cargo run -p tg-lint -- fix-ratchet` so the improvement is
//! recorded and can never silently regress. Individual sites can opt
//! out with `// lint: allow(panic) — reason` (same line or the line
//! above) when panicking is the designed behavior (e.g. poisoned-lock
//! propagation in code that must not limp on).

use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::ratchet::Ratchet;
use crate::workspace::SourceFile;

const PASS: &str = "panics";

/// One counted panic site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Site {
    /// 1-based line.
    pub line: u32,
    /// Which construct (`.unwrap()`, `.expect(`, `panic!`).
    pub what: &'static str,
}

/// Count the un-allowed panic sites in one file's non-test code.
pub fn sites(f: &SourceFile) -> Vec<Site> {
    let mut out = Vec::new();
    let code: Vec<usize> = (0..f.toks.len())
        .filter(|&i| !f.toks[i].is_comment())
        .collect();
    let text = |ci: usize| f.toks[code[ci]].text(&f.src);
    for ci in 0..code.len() {
        let ti = code[ci];
        if f.st.in_test[ti] {
            continue;
        }
        let what = if f.toks[ti].kind == TokKind::Ident
            && ci > 0
            && text(ci - 1) == "."
            && ci + 1 < code.len()
            && text(ci + 1) == "("
        {
            match text(ci) {
                "unwrap" => Some(".unwrap()"),
                "expect" => Some(".expect("),
                _ => None,
            }
        } else if f.toks[ti].kind == TokKind::Ident
            && text(ci) == "panic"
            && ci + 1 < code.len()
            && text(ci + 1) == "!"
        {
            Some("panic!")
        } else {
            None
        };
        if let Some(what) = what {
            if !f.lines.allows(f.toks[ti].line, "panic") {
                out.push(Site {
                    line: f.toks[ti].line,
                    what,
                });
            }
        }
    }
    out
}

/// Count un-allowed panic sites per crate over library sources.
pub fn counts(files: &[SourceFile]) -> Ratchet {
    let mut counts = Ratchet::new();
    for f in files.iter().filter(|f| !f.is_test_file) {
        let n = sites(f).len() as u32;
        *counts.entry(f.crate_name.clone()).or_insert(0) += n;
    }
    counts.retain(|_, &mut v| v > 0);
    counts
}

/// Compare actual counts against the recorded ratchet.
pub fn run(files: &[SourceFile], recorded: &Ratchet) -> Vec<Diagnostic> {
    let actual = counts(files);
    let mut out = Vec::new();
    let mut crates: Vec<&String> = actual.keys().chain(recorded.keys()).collect();
    crates.sort();
    crates.dedup();
    for krate in crates {
        let a = actual.get(krate).copied().unwrap_or(0);
        let r = recorded.get(krate).copied().unwrap_or(0);
        if a > r {
            out.push(Diagnostic::new(
                "lint-ratchet.toml",
                0,
                PASS,
                format!(
                    "crate `{krate}` has {a} panic sites but the ratchet allows {r} — \
                     replace the new .unwrap()/.expect(/panic! with typed errors or \
                     annotate `// lint: allow(panic) — reason`"
                ),
            ));
        } else if a < r {
            out.push(Diagnostic::new(
                "lint-ratchet.toml",
                0,
                PASS,
                format!(
                    "crate `{krate}` improved to {a} panic sites (ratchet says {r}) — \
                     run `cargo run -p tg-lint -- fix-ratchet` to record it"
                ),
            ));
        }
    }
    out
}
