//! Pass 1: unsafe-audit.
//!
//! Two invariants:
//!
//! 1. Every `unsafe` token (block, fn, impl, trait) is covered by a
//!    literal `// SAFETY:` comment — on the same line, or reachable by
//!    walking up through attribute lines and contiguous comment lines.
//!    A rustdoc `# Safety` section does NOT count: it documents the
//!    caller's obligation, while `// SAFETY:` records why *this* site
//!    discharges it.
//! 2. Every `#[target_feature(enable = …)]` function may only be
//!    called from (a) another `#[target_feature]` function, or (b) a
//!    call site whose enclosing function consults
//!    `is_x86_feature_detected!` or a `MicrokernelKind` dispatch match
//!    before the call. This is the file-local call-graph check that
//!    keeps the AVX2/AVX-512 microkernels from being reachable on
//!    hardware that lacks them.

use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::workspace::SourceFile;

const PASS: &str = "unsafe-audit";

/// Run the pass over library sources.
pub fn run(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in files.iter().filter(|f| !f.is_test_file) {
        check_safety_comments(f, &mut out);
        check_target_feature_reachability(f, &mut out);
    }
    out
}

fn check_safety_comments(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    for t in &f.toks {
        if t.kind == TokKind::Ident && t.text(&f.src) == "unsafe" && !f.lines.safety_covers(t.line)
        {
            out.push(Diagnostic::new(
                &f.rel_path,
                t.line,
                PASS,
                "`unsafe` without an immediately preceding `// SAFETY:` comment \
                 (a rustdoc `# Safety` section does not count)",
            ));
        }
    }
}

fn check_target_feature_reachability(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    let tf_fns: Vec<usize> = (0..f.st.fns.len())
        .filter(|&i| f.st.fns[i].has_target_feature)
        .collect();
    if tf_fns.is_empty() {
        return;
    }
    // comment-free token view, preserving original indices
    let code: Vec<usize> = (0..f.toks.len())
        .filter(|&i| !f.toks[i].is_comment())
        .collect();
    let text = |ci: usize| f.toks[code[ci]].text(&f.src);

    for ci in 0..code.len() {
        let ti = code[ci];
        let t = &f.toks[ti];
        if t.kind != TokKind::Ident {
            continue;
        }
        let name = t.text(&f.src);
        let Some(&target) = tf_fns.iter().find(|&&fi| f.st.fns[fi].name == name) else {
            continue;
        };
        // a call site: `name (` that is not the `fn name` definition
        let is_call = ci + 1 < code.len() && text(ci + 1) == "(";
        if !is_call || (ci > 0 && text(ci - 1) == "fn") {
            continue;
        }
        // resolve module qualification: `seg :: name (` must end in the
        // target's module; a bare call must come from the same module
        let qualifier = (ci >= 3
            && text(ci - 1) == ":"
            && text(ci - 2) == ":"
            && f.toks[code[ci - 3]].kind == TokKind::Ident)
            .then(|| text(ci - 3).to_string());
        let target_mod = &f.st.fns[target].module_path;
        let enclosing = f.st.enclosing_fn[ti];
        let same_module = enclosing
            .map(|e| f.st.fns[e].module_path == *target_mod)
            .unwrap_or(false);
        let resolves = match &qualifier {
            Some(q) => target_mod.last().map(|m| m == q).unwrap_or(false),
            None => same_module,
        };
        if !resolves {
            continue;
        }
        let Some(encl) = enclosing else {
            out.push(Diagnostic::new(
                &f.rel_path,
                t.line,
                PASS,
                format!("`{name}` has #[target_feature] but is referenced outside any fn"),
            ));
            continue;
        };
        if f.st.fns[encl].has_target_feature {
            continue;
        }
        if guarded_before(f, &code, f.st.fns[encl].body.start, ti) {
            continue;
        }
        out.push(Diagnostic::new(
            &f.rel_path,
            t.line,
            PASS,
            format!(
                "call to #[target_feature] fn `{name}` from `{caller}` is not guarded by \
                 is_x86_feature_detected! or a MicrokernelKind dispatch arm",
                caller = f.st.fns[encl].name
            ),
        ));
    }
}

/// Does the enclosing body, between its opening brace and the call,
/// consult the CPU-feature guard or a `MicrokernelKind … =>` match arm?
fn guarded_before(f: &SourceFile, code: &[usize], body_start_tok: usize, call_tok: usize) -> bool {
    let text = |ci: usize| f.toks[code[ci]].text(&f.src);
    let lo = code.partition_point(|&ti| ti < body_start_tok);
    let hi = code.partition_point(|&ti| ti < call_tok);
    for (ci, &ti) in code.iter().enumerate().take(hi).skip(lo) {
        if f.toks[ti].kind != TokKind::Ident {
            continue;
        }
        match text(ci) {
            "is_x86_feature_detected" => return true,
            "MicrokernelKind" => {
                // a dispatch arm: `MicrokernelKind :: Variant =>` within
                // a few tokens (`=>` lexes as `=` `>`)
                for j in ci + 1..(ci + 7).min(hi) {
                    if text(j) == "=" && j + 1 < hi && text(j + 1) == ">" {
                        return true;
                    }
                }
            }
            _ => {}
        }
    }
    false
}
