//! Pass 4: determinism lint.
//!
//! The system's headline claim is bit-identical seeded output at any
//! thread and shard count. Two lexically-visible hazards can quietly
//! break it:
//!
//! - **Hash-order iteration.** `std` `HashMap`/`HashSet` use a
//!   per-process random hasher, so iteration order differs between
//!   runs. Inside the seeded output paths (`crates/core/src`,
//!   `crates/graph/src`, `crates/sampling/src`) any mention of these
//!   types must either be on
//!   a `use` line or carry `// lint: allow(determinism) — reason`
//!   documenting why order never reaches the output (lookup-only,
//!   drained-then-sorted, …).
//! - **Wall-clock reads.** `Instant::now`/`SystemTime::now` anywhere
//!   outside `crates/bench` must be allowlisted the same way
//!   (observer/retry bookkeeping is fine; feeding time into seeded
//!   state is not).

use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::workspace::SourceFile;

const PASS: &str = "determinism";

/// Crate dirs whose sources are seeded output paths for the hash-order
/// check.
const SEEDED_CRATES: &[&str] = &["core", "graph", "sampling"];

/// Crate dirs exempt from the wall-clock check (they exist to measure
/// time).
const CLOCK_EXEMPT: &[&str] = &["bench"];

/// Run the pass over library sources.
pub fn run(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in files.iter().filter(|f| !f.is_test_file) {
        if SEEDED_CRATES.contains(&f.crate_name.as_str()) {
            check_hash_order(f, &mut out);
        }
        if !CLOCK_EXEMPT.contains(&f.crate_name.as_str()) {
            check_wall_clock(f, &mut out);
        }
    }
    out
}

fn check_hash_order(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (i, t) in f.toks.iter().enumerate() {
        if t.kind != TokKind::Ident || f.st.in_test[i] {
            continue;
        }
        let name = t.text(&f.src);
        if name != "HashMap" && name != "HashSet" {
            continue;
        }
        if line_is_use(f, t.line) || f.lines.allows(t.line, "determinism") {
            continue;
        }
        out.push(Diagnostic::new(
            &f.rel_path,
            t.line,
            PASS,
            format!(
                "`{name}` in a seeded output path: iteration order is \
                 per-process random — sort before iterating, or annotate \
                 `// lint: allow(determinism) — reason` if order never \
                 reaches the output"
            ),
        ));
    }
}

fn check_wall_clock(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    let code: Vec<usize> = (0..f.toks.len())
        .filter(|&i| !f.toks[i].is_comment())
        .collect();
    let text = |ci: usize| f.toks[code[ci]].text(&f.src);
    for ci in 0..code.len() {
        let ti = code[ci];
        if f.toks[ti].kind != TokKind::Ident || f.st.in_test[ti] {
            continue;
        }
        let name = text(ci);
        if name != "Instant" && name != "SystemTime" {
            continue;
        }
        let is_now = ci + 3 < code.len()
            && text(ci + 1) == ":"
            && text(ci + 2) == ":"
            && text(ci + 3) == "now";
        if !is_now || f.lines.allows(f.toks[ti].line, "determinism") {
            continue;
        }
        out.push(Diagnostic::new(
            &f.rel_path,
            f.toks[ti].line,
            PASS,
            format!(
                "`{name}::now` outside bench code: wall-clock reads must not \
                 influence seeded output — annotate `// lint: allow(determinism) \
                 — reason` if this is observer/retry bookkeeping only"
            ),
        ));
    }
}

/// Is the first code token on `line` the `use` keyword? (Imports may
/// name hash types freely; only uses at expression/type positions are
/// suspect.)
fn line_is_use(f: &SourceFile, line: u32) -> bool {
    f.toks
        .iter()
        .find(|t| !t.is_comment() && t.line == line)
        .map(|t| t.text(&f.src) == "use")
        .unwrap_or(false)
}
