//! The analysis passes. Each pass is a pure function over the loaded
//! [`crate::workspace::SourceFile`] view (plus whatever extra text it
//! validates — CI config, README, the ratchet file) returning
//! [`crate::diag::Diagnostic`]s, so fixture tests can drive a pass on
//! an embedded snippet without touching the real tree.

pub mod determinism;
pub mod exit_codes;
pub mod faults;
pub mod panics;
pub mod unsafe_audit;
