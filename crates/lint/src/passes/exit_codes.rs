//! Pass 5: exit-code contract.
//!
//! `tgx-cli`'s exit codes are a documented, stable interface
//! (schedulers and scripts branch on them). This pass pins the three
//! places the table lives to each other:
//!
//! - every `process::exit(<literal>)` in `crates/cli/src` uses a code
//!   from the table;
//! - `CliError::exit_code` in `errors.rs` maps onto exactly the
//!   non-zero table entries;
//! - the `errors.rs` module doc enumerates exactly the table;
//! - the README documents codes 2–6 and carries the stability promise.

use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::workspace::SourceFile;
use std::collections::BTreeSet;

const PASS: &str = "exit-codes";

/// The documented exit-code table.
pub const TABLE: &[u32] = &[0, 1, 2, 3, 4, 5, 6];

/// Run the pass over `crates/cli/src` (plus the README text).
pub fn run(files: &[SourceFile], readme: Option<&str>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in files
        .iter()
        .filter(|f| f.crate_name == "cli" && !f.is_test_file)
    {
        check_exit_calls(f, &mut out);
        if f.rel_path.ends_with("errors.rs") {
            check_exit_code_fn(f, &mut out);
            check_module_doc(f, &mut out);
        }
    }
    if let Some(readme) = readme {
        check_readme(readme, &mut out);
    }
    out
}

fn parse_int(text: &str) -> Option<u32> {
    // strip a type suffix (`2i32`) if present
    let digits: String = text.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

fn check_exit_calls(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    let code: Vec<usize> = (0..f.toks.len())
        .filter(|&i| !f.toks[i].is_comment())
        .collect();
    let text = |ci: usize| f.toks[code[ci]].text(&f.src);
    for ci in 0..code.len() {
        if f.toks[code[ci]].kind != TokKind::Ident || text(ci) != "process" {
            continue;
        }
        if !(ci + 4 < code.len()
            && text(ci + 1) == ":"
            && text(ci + 2) == ":"
            && text(ci + 3) == "exit"
            && text(ci + 4) == "(")
        {
            continue;
        }
        let Some(&arg) = code.get(ci + 5) else {
            continue;
        };
        if f.toks[arg].kind != TokKind::Num {
            continue; // a variable — its range is pinned via exit_code()
        }
        let lit = parse_int(f.toks[arg].text(&f.src));
        if lit.map(|v| TABLE.contains(&v)) != Some(true) {
            out.push(Diagnostic::new(
                &f.rel_path,
                f.toks[arg].line,
                PASS,
                format!(
                    "process::exit({}) uses a code outside the documented table {TABLE:?}",
                    f.toks[arg].text(&f.src)
                ),
            ));
        }
    }
}

fn check_exit_code_fn(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    let Some(fi) = f.st.fns.iter().find(|fi| fi.name == "exit_code") else {
        out.push(Diagnostic::new(
            &f.rel_path,
            0,
            PASS,
            "errors.rs no longer defines fn exit_code — the exit-code contract \
             lost its single mapping point",
        ));
        return;
    };
    let got: BTreeSet<u32> = f.toks[fi.body.clone()]
        .iter()
        .filter(|t| t.kind == TokKind::Num)
        .filter_map(|t| parse_int(t.text(&f.src)))
        .collect();
    let want: BTreeSet<u32> = TABLE.iter().copied().filter(|&v| v != 0).collect();
    if got != want {
        out.push(Diagnostic::new(
            &f.rel_path,
            fi.line,
            PASS,
            format!("fn exit_code maps to {got:?} but the documented non-zero table is {want:?}"),
        ));
    }
}

fn check_module_doc(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    // `//! N  description` lines in the module doc
    let mut documented = BTreeSet::new();
    for line in f.src.lines() {
        let Some(rest) = line.trim_start().strip_prefix("//!") else {
            continue;
        };
        let rest = rest.trim_start();
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        if digits.is_empty() {
            continue;
        }
        let after = &rest[digits.len()..];
        if after.is_empty() || after.starts_with(' ') {
            if let Ok(v) = digits.parse::<u32>() {
                documented.insert(v);
            }
        }
    }
    let want: BTreeSet<u32> = TABLE.iter().copied().collect();
    if documented != want {
        out.push(Diagnostic::new(
            &f.rel_path,
            1,
            PASS,
            format!(
                "errors.rs module doc enumerates exit codes {documented:?} but the \
                 table is {want:?}"
            ),
        ));
    }
}

fn check_readme(readme: &str, out: &mut Vec<Diagnostic>) {
    if !readme.contains("Exit codes are stable") {
        out.push(Diagnostic::new(
            "README.md",
            0,
            PASS,
            "README lost the `Exit codes are stable` contract sentence",
        ));
    }
    for code in TABLE.iter().filter(|&&v| v >= 2) {
        if !readme.contains(&format!("`{code}`")) {
            out.push(Diagnostic::new(
                "README.md",
                0,
                PASS,
                format!("README no longer documents exit code `{code}`"),
            ));
        }
    }
}
