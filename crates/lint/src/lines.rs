//! Per-line facts derived from the token stream: which lines hold
//! code, which are attribute lines, and what comment text each line
//! carries. The SAFETY walk-up rule and the `// lint: allow(…)`
//! escape hatches are both line-oriented, so passes share this index
//! instead of re-deriving it.

use crate::lexer::{Tok, TokKind};

/// Line-indexed facts for one file. All vectors are indexed by
/// 1-based line number (index 0 is unused padding).
#[derive(Debug)]
pub struct LineIndex {
    /// Line has at least one non-comment token starting on it.
    has_code: Vec<bool>,
    /// First non-comment token starting on the line is `#` (an
    /// attribute line).
    is_attr: Vec<bool>,
    /// Last non-comment token starting on the line is `;`, `{` or `}`
    /// — i.e. the line ends a statement rather than continuing one.
    stmt_end: Vec<bool>,
    /// Concatenated text of comment tokens starting on the line.
    comments: Vec<String>,
}

impl LineIndex {
    /// Build the index for a lexed file.
    pub fn build(src: &str, toks: &[Tok]) -> Self {
        let last_line = toks.iter().map(|t| t.end_line).max().unwrap_or(1) as usize;
        let mut has_code = vec![false; last_line + 2];
        let mut is_attr = vec![false; last_line + 2];
        let mut stmt_end = vec![false; last_line + 2];
        let mut seen_code_first: Vec<bool> = vec![false; last_line + 2];
        let mut comments = vec![String::new(); last_line + 2];
        for t in toks {
            let l = t.line as usize;
            if t.is_comment() {
                if !comments[l].is_empty() {
                    comments[l].push(' ');
                }
                comments[l].push_str(t.text(src));
            } else {
                if !seen_code_first[l] {
                    seen_code_first[l] = true;
                    is_attr[l] = t.kind == TokKind::Punct && t.text(src) == "#";
                }
                has_code[l] = true;
                stmt_end[l] = matches!(t.text(src), ";" | "{" | "}");
            }
        }
        LineIndex {
            has_code,
            is_attr,
            stmt_end,
            comments,
        }
    }

    fn idx(&self, line: u32) -> Option<usize> {
        let l = line as usize;
        (l > 0 && l < self.has_code.len()).then_some(l)
    }

    /// Does 1-based `line` have non-comment code on it?
    pub fn has_code(&self, line: u32) -> bool {
        self.idx(line).map(|l| self.has_code[l]).unwrap_or(false)
    }

    /// Is `line` an attribute line (`#[…]` / `#![…]`)?
    pub fn is_attr(&self, line: u32) -> bool {
        self.idx(line).map(|l| self.is_attr[l]).unwrap_or(false)
    }

    /// Comment text on `line` ("" if none).
    pub fn comments(&self, line: u32) -> &str {
        self.idx(line)
            .map(|l| self.comments[l].as_str())
            .unwrap_or("")
    }

    /// Is `line` blank (no tokens start on it)?
    pub fn is_blank(&self, line: u32) -> bool {
        !self.has_code(line) && self.comments(line).is_empty()
    }

    /// Does a `// SAFETY:` comment cover an `unsafe` on `line`?
    ///
    /// True if the line itself carries one, or if one appears in the
    /// contiguous run of attribute lines and comment-only lines
    /// immediately above (so `// SAFETY:` may sit above a
    /// `#[target_feature]` attribute, or above doc comments). A blank
    /// line or an unrelated code line breaks the run.
    pub fn safety_covers(&self, line: u32) -> bool {
        if self.comments(line).contains("SAFETY:") {
            return true;
        }
        let mut l = line;
        while l > 1 {
            l -= 1;
            if self.is_attr(l) {
                continue;
            }
            if !self.has_code(l) && !self.comments(l).is_empty() {
                if self.comments(l).contains("SAFETY:") {
                    return true;
                }
                continue;
            }
            // code line: a trailing SAFETY comment on it still counts
            return self.comments(l).contains("SAFETY:");
        }
        false
    }

    /// Is a `// lint: allow(<pass>) — reason` escape hatch (with a
    /// non-empty reason) in force on `line`?
    ///
    /// The hatch may be a trailing comment on the line itself, a
    /// comment-only line directly above the statement, or — for a
    /// statement spanning several lines — above the statement's first
    /// line. The walk-up follows continuation lines (a line whose code
    /// does not end in `;`/`{`/`}` continues onto the next) and stops
    /// at blank lines or completed statements, so a hatch never leaks
    /// past the statement it annotates.
    pub fn allows(&self, line: u32, pass: &str) -> bool {
        let needle = format!("lint: allow({pass})");
        let check = |text: &str| -> bool {
            if let Some(pos) = text.find(&needle) {
                let rest = &text[pos + needle.len()..];
                let reason = rest.trim_start_matches([' ', '\t', '—', '-', ':', ',']);
                return !reason.trim().is_empty();
            }
            false
        };
        if check(self.comments(line)) {
            return true;
        }
        let mut l = line;
        for _ in 0..16 {
            if l <= 1 {
                break;
            }
            l -= 1;
            if self.is_blank(l) {
                break;
            }
            if !self.has_code(l) {
                // comment-only line above the statement; a hatch may
                // sit on any line of a contiguous comment block
                if check(self.comments(l)) {
                    return true;
                }
                continue;
            }
            // an earlier line of the same statement: a trailing hatch
            // there counts; a completed statement ends the walk
            if check(self.comments(l)) {
                return true;
            }
            if self.idx(l).map(|i| self.stmt_end[i]).unwrap_or(true) {
                break;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn index(src: &str) -> LineIndex {
        LineIndex::build(src, &lex(src))
    }

    #[test]
    fn safety_same_line_and_directly_above() {
        let src = "// SAFETY: fine\nlet x = unsafe { y };\n";
        let li = index(src);
        assert!(li.safety_covers(2));
        let src2 = "let x = unsafe { y }; // SAFETY: fine\n";
        assert!(index(src2).safety_covers(1));
    }

    #[test]
    fn safety_walks_through_attributes_and_doc_comments() {
        let src = "\
/// Docs.
///
/// # Safety
/// caller promises things
// SAFETY: dispatch guarded
#[target_feature(enable = \"avx2\")]
pub unsafe fn k() {}
";
        let li = index(src);
        assert!(li.safety_covers(7));
    }

    #[test]
    fn blank_line_breaks_the_safety_run() {
        let src = "// SAFETY: too far away\n\nlet x = unsafe { y };\n";
        assert!(!index(src).safety_covers(3));
    }

    #[test]
    fn doc_safety_section_alone_does_not_count() {
        let src = "\
/// # Safety
/// caller promises things
pub unsafe fn k() {}
";
        assert!(!index(src).safety_covers(3));
    }

    #[test]
    fn allow_requires_a_reason() {
        let with = "let m = HashMap::new(); // lint: allow(determinism) — lookups only\n";
        assert!(index(with).allows(1, "determinism"));
        let above = "// lint: allow(panic) — poisoned lock is fatal\nx.unwrap();\n";
        assert!(index(above).allows(2, "panic"));
        let bare = "x.unwrap(); // lint: allow(panic)\n";
        assert!(!index(bare).allows(1, "panic"));
        let wrong = "x.unwrap(); // lint: allow(determinism) — reason\n";
        assert!(!index(wrong).allows(1, "panic"));
    }

    #[test]
    fn allow_covers_a_multi_line_statement() {
        let src = "\
// lint: allow(determinism) — drained then sorted
let mut counts: HashMap<u32, u32> =
    HashMap::new();
let other = HashMap::new();
";
        let li = index(src);
        assert!(li.allows(2, "determinism"));
        assert!(li.allows(3, "determinism"), "continuation line is covered");
        assert!(!li.allows(4, "determinism"), "next statement is not");
    }
}
