//! A hand-rolled Rust lexer: just enough token structure for the lint
//! passes, with exactly the edge cases that break naive `grep`-based
//! scanners handled properly — nested block comments, raw strings with
//! arbitrary `#` fences, byte/char literals, lifetimes vs chars, and
//! raw identifiers.
//!
//! The lexer is deliberately dependency-free (no `syn`): the workspace
//! builds offline against `vendor/` stand-ins, and a proc-macro-grade
//! parser is far more machinery than five token-level passes need. The
//! trade-off is that the passes reason lexically, not semantically —
//! which is fine, because every invariant they enforce was *designed*
//! to be lexically checkable (SAFETY comments, registered string
//! literals, counted call forms, scoped type names).

/// What a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers, without the
    /// `r#` prefix).
    Ident,
    /// A lifetime or loop label such as `'a` (leading `'` included).
    Lifetime,
    /// Character literal, e.g. `'x'`, `'\''`, `'"'`.
    Char,
    /// String or byte-string literal (escapes NOT resolved; text
    /// includes the quotes and prefix).
    Str,
    /// Raw (byte) string literal `r#"…"#` (any fence width).
    RawStr,
    /// Numeric literal (integer or float, any base, with suffix).
    Num,
    /// A single punctuation byte (`.`, `!`, `:`, `{`, …).
    Punct,
    /// `// …` line comment (doc comments included).
    LineComment,
    /// `/* … */` block comment, nesting-aware (doc comments included).
    BlockComment,
}

/// One token: kind, byte span into the source, and 1-based line of its
/// first byte. Multi-line tokens (block comments, strings) also record
/// the line their last byte falls on.
#[derive(Debug, Clone, Copy)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based line of the last byte (== `line` for single-line tokens).
    pub end_line: u32,
}

impl Tok {
    /// The token's text.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// Whether this token is a comment.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// For a string-literal token, the literal's content with simple escape
/// sequences (`\\`, `\"`, `\'`, `\n`, `\t`, `\r`, `\0`) resolved. Raw
/// strings return their content verbatim. Fault-point names and spec
/// strings never use exotic escapes, so this is all the passes need.
pub fn str_content(tok: &Tok, src: &str) -> String {
    let t = tok.text(src);
    let t = t.strip_prefix('b').unwrap_or(t);
    if let Some(rest) = t.strip_prefix('r') {
        let fence = rest.bytes().take_while(|&b| b == b'#').count();
        let inner = &rest[fence..rest.len() - fence];
        return inner[1..inner.len() - 1].to_string();
    }
    let inner = &t[1..t.len() - 1];
    let mut out = String::with_capacity(inner.len());
    let mut it = inner.chars();
    while let Some(c) = it.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match it.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('0') => out.push('\0'),
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_cont(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Tokenize `src`. Unterminated constructs (string/comment running to
/// EOF) produce a final token ending at EOF rather than an error: the
/// passes lint real, compiling source, and fixtures deserve best-effort
/// output instead of a panic.
pub fn lex(src: &str) -> Vec<Tok> {
    let b = src.as_bytes();
    let n = b.len();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Count newlines in src[from..to] and advance the line counter.
    let count_lines = |from: usize, to: usize| -> u32 {
        b[from..to].iter().filter(|&&c| c == b'\n').count() as u32
    };

    while i < n {
        let c = b[i];
        // whitespace
        if c.is_ascii_whitespace() {
            if c == b'\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        let start = i;
        let start_line = line;
        // line comment
        if c == b'/' && i + 1 < n && b[i + 1] == b'/' {
            while i < n && b[i] != b'\n' {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::LineComment,
                start,
                end: i,
                line: start_line,
                end_line: start_line,
            });
            continue;
        }
        // block comment (nesting!)
        if c == b'/' && i + 1 < n && b[i + 1] == b'*' {
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            line += count_lines(start, i);
            toks.push(Tok {
                kind: TokKind::BlockComment,
                start,
                end: i,
                line: start_line,
                end_line: line,
            });
            continue;
        }
        // raw string / raw ident / plain ident starting with r or b
        if is_ident_start(c) {
            // r"…" | r#"…"# | br#"…"# | b"…" | r#ident
            let (prefix_len, raw) = match c {
                b'r' => (1usize, true),
                b'b' if i + 1 < n && b[i + 1] == b'r' => (2usize, true),
                b'b' => (1usize, false),
                _ => (0, false),
            };
            if raw {
                let mut j = i + prefix_len;
                let mut fence = 0usize;
                while j < n && b[j] == b'#' {
                    fence += 1;
                    j += 1;
                }
                if j < n && b[j] == b'"' {
                    // raw string: scan for `"` followed by `fence` hashes
                    j += 1;
                    'scan: while j < n {
                        if b[j] == b'"' {
                            let mut k = 0usize;
                            while k < fence && j + 1 + k < n && b[j + 1 + k] == b'#' {
                                k += 1;
                            }
                            if k == fence {
                                j += 1 + fence;
                                break 'scan;
                            }
                        }
                        j += 1;
                    }
                    line += count_lines(start, j);
                    toks.push(Tok {
                        kind: TokKind::RawStr,
                        start,
                        end: j,
                        line: start_line,
                        end_line: line,
                    });
                    i = j;
                    continue;
                }
                if fence == 1 && prefix_len == 1 && j < n && is_ident_start(b[j]) {
                    // raw identifier r#ident: token text excludes `r#`
                    let id_start = j;
                    while j < n && is_ident_cont(b[j]) {
                        j += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Ident,
                        start: id_start,
                        end: j,
                        line: start_line,
                        end_line: start_line,
                    });
                    i = j;
                    continue;
                }
                // fall through: plain ident starting with r/br
            }
            if prefix_len > 0 && i + prefix_len < n && b[i + prefix_len] == b'"' {
                // b"…" byte string
                let mut j = i + prefix_len + 1;
                while j < n {
                    match b[j] {
                        b'\\' => j += 2,
                        b'"' => {
                            j += 1;
                            break;
                        }
                        _ => j += 1,
                    }
                }
                let j = j.min(n);
                line += count_lines(start, j);
                toks.push(Tok {
                    kind: TokKind::Str,
                    start,
                    end: j,
                    line: start_line,
                    end_line: line,
                });
                i = j;
                continue;
            }
            // plain identifier / keyword
            let mut j = i;
            while j < n && is_ident_cont(b[j]) {
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                start,
                end: j,
                line: start_line,
                end_line: start_line,
            });
            i = j;
            continue;
        }
        // string literal
        if c == b'"' {
            let mut j = i + 1;
            while j < n {
                match b[j] {
                    b'\\' => j += 2,
                    b'"' => {
                        j += 1;
                        break;
                    }
                    _ => j += 1,
                }
            }
            let j = j.min(n);
            line += count_lines(start, j);
            toks.push(Tok {
                kind: TokKind::Str,
                start,
                end: j,
                line: start_line,
                end_line: line,
            });
            i = j;
            continue;
        }
        // lifetime vs char literal
        if c == b'\'' {
            // `'a` / `'static` / `'outer:` are lifetimes/labels: an
            // ident-start follows and the char after the ident run is
            // NOT a closing quote. `'x'` and `'_'`-the-char are chars.
            if i + 1 < n && is_ident_start(b[i + 1]) {
                let mut j = i + 1;
                while j < n && is_ident_cont(b[j]) {
                    j += 1;
                }
                if j < n && b[j] == b'\'' && j == i + 2 {
                    // single ident char then a quote: char literal 'x'
                    toks.push(Tok {
                        kind: TokKind::Char,
                        start,
                        end: j + 1,
                        line: start_line,
                        end_line: start_line,
                    });
                    i = j + 1;
                    continue;
                }
                toks.push(Tok {
                    kind: TokKind::Lifetime,
                    start,
                    end: j,
                    line: start_line,
                    end_line: start_line,
                });
                i = j;
                continue;
            }
            // char literal: '\…' or a single non-ident char like '"'
            let mut j = i + 1;
            if j < n && b[j] == b'\\' {
                j += 2;
                // \u{…}
                if j < n && b[j] == b'{' {
                    while j < n && b[j] != b'}' {
                        j += 1;
                    }
                    j += 1;
                }
            } else if j < n {
                // one full char, which may be multi-byte (`'—'`)
                j += 1;
                while j < n && (b[j] & 0xC0) == 0x80 {
                    j += 1;
                }
            }
            if j < n && b[j] == b'\'' {
                j += 1;
            }
            let j = j.min(n);
            toks.push(Tok {
                kind: TokKind::Char,
                start,
                end: j,
                line: start_line,
                end_line: start_line,
            });
            i = j;
            continue;
        }
        // number
        if c.is_ascii_digit() {
            let mut j = i;
            while j < n && (is_ident_cont(b[j]) || b[j] == b'.') {
                // don't swallow `..` range operators or method calls on
                // literals (`1.max(2)`): a `.` must be followed by a digit
                if b[j] == b'.' && !(j + 1 < n && b[j + 1].is_ascii_digit()) {
                    break;
                }
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::Num,
                start,
                end: j,
                line: start_line,
                end_line: start_line,
            });
            i = j;
            continue;
        }
        // single punctuation byte; a non-ASCII leading byte consumes
        // its whole UTF-8 sequence so spans stay on char boundaries
        let mut j = i + 1;
        if c >= 0x80 {
            while j < n && (b[j] & 0xC0) == 0x80 {
                j += 1;
            }
        }
        toks.push(Tok {
            kind: TokKind::Punct,
            start,
            end: j,
            line: start_line,
            end_line: start_line,
        });
        i = j;
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let ks = kinds("fn foo(x: u32) -> u32 { x }");
        assert_eq!(ks[0], (TokKind::Ident, "fn".into()));
        assert_eq!(ks[1], (TokKind::Ident, "foo".into()));
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Punct && t == "{"));
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = r###"let s = r#"an "unsafe" say: fail_point!("x")"#; let t = 1;"###;
        let ks = kinds(src);
        let raw: Vec<_> = ks.iter().filter(|(k, _)| *k == TokKind::RawStr).collect();
        assert_eq!(raw.len(), 1);
        assert!(raw[0].1.contains("unsafe"));
        // the `unsafe` inside the raw string is NOT an ident token
        assert!(!ks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "unsafe"));
        // lexing resumed correctly after the fence
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Ident && t == "t"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still comment */ b";
        let ks = kinds(src);
        assert_eq!(ks.len(), 3);
        assert_eq!(ks[0].1, "a");
        assert_eq!(ks[1].0, TokKind::BlockComment);
        assert!(ks[1].1.contains("still comment"));
        assert_eq!(ks[2].1, "b");
    }

    #[test]
    fn char_literal_containing_quote_does_not_open_a_string() {
        let src = "let c = '\"'; let d = unsafe_name;";
        let ks = kinds(src);
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Char && t == "'\"'"));
        assert!(ks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "unsafe_name"));
        assert!(!ks.iter().any(|(k, _)| *k == TokKind::Str));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let ks = kinds("fn f<'a>(x: &'a str) { 'outer: loop { break 'outer; } let c = 'x'; }");
        let lifetimes: Vec<_> = ks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a", "'outer", "'outer"]);
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Char && t == "'x'"));
    }

    #[test]
    fn escaped_chars() {
        let ks = kinds(r"let a = '\''; let b = '\\'; let c = '\u{1F600}';");
        let chars: Vec<_> = ks.iter().filter(|(k, _)| *k == TokKind::Char).collect();
        assert_eq!(chars.len(), 3);
    }

    #[test]
    fn unsafe_inside_strings_and_comments_is_not_an_ident() {
        let src = r#"
            // this comment says unsafe
            /* unsafe here too */
            let s = "unsafe { code }";
            let r = r"unsafe";
            let ok = 1;
        "#;
        let ks = kinds(src);
        assert!(!ks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "unsafe"));
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Ident && t == "ok"));
    }

    #[test]
    fn raw_identifiers() {
        let ks = kinds("let r#type = r#fn; let x = r#\"raw\"#;");
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Ident && t == "type"));
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Ident && t == "fn"));
        assert!(ks.iter().any(|(k, _)| *k == TokKind::RawStr));
    }

    #[test]
    fn byte_strings() {
        let ks = kinds(r##"let b = b"TGES"; let br = br#"x"#;"##);
        assert!(ks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t == "b\"TGES\""));
        assert!(ks.iter().any(|(k, _)| *k == TokKind::RawStr));
    }

    #[test]
    fn numbers_do_not_swallow_ranges_or_methods() {
        let ks = kinds("for i in 0..10 { let x = 1.5; let y = 2.max(3); let h = 0xff; }");
        let nums: Vec<_> = ks
            .iter()
            .filter(|(k, _)| *k == TokKind::Num)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(nums, vec!["0", "10", "1.5", "2", "3", "0xff"]);
    }

    #[test]
    fn line_numbers_across_multiline_tokens() {
        let src = "a\n/* one\ntwo */\nb \"s\ntring\" c";
        let toks = lex(src);
        let a = &toks[0];
        assert_eq!((a.line, a.end_line), (1, 1));
        let cmt = &toks[1];
        assert_eq!((cmt.line, cmt.end_line), (2, 3));
        let b = &toks[2];
        assert_eq!(b.line, 4);
        let s = &toks[3];
        assert_eq!((s.line, s.end_line), (4, 5));
        let c = &toks[4];
        assert_eq!(c.line, 5);
    }

    #[test]
    fn str_content_resolves_simple_escapes() {
        let src = r#"let a = "worker.entry=err,arg=shard:1"; let b = "a\"b\\c";"#;
        let toks = lex(src);
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(str_content(strs[0], src), "worker.entry=err,arg=shard:1");
        assert_eq!(str_content(strs[1], src), "a\"b\\c");
    }
}
