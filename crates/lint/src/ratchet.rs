//! The panic-freedom ratchet file: a tiny TOML-subset reader/writer
//! for `lint-ratchet.toml` at the workspace root.
//!
//! Format (exactly what the writer emits):
//!
//! ```toml
//! [panic-sites]
//! cli = 12
//! core = 30
//! ```
//!
//! Keys are crate directory names under `crates/`, values are counts
//! of un-allowed `.unwrap()` / `.expect(` / `panic!` sites in non-test
//! library code. `tg-lint -- check` fails if a count rises OR falls
//! relative to this file; `tg-lint -- fix-ratchet` rewrites it, which
//! is how an improvement gets recorded (and reviewed).

use std::collections::BTreeMap;

/// Parsed ratchet file: crate dir name → recorded panic-site count.
pub type Ratchet = BTreeMap<String, u32>;

/// Parse the `[panic-sites]` section. Unknown sections are ignored;
/// malformed lines inside the section are reported as errors.
pub fn parse(text: &str) -> Result<Ratchet, String> {
    let mut out = Ratchet::new();
    let mut in_section = false;
    for (no, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            in_section = line == "[panic-sites]";
            continue;
        }
        if !in_section {
            continue;
        }
        let (key, val) = line
            .split_once('=')
            .ok_or_else(|| format!("lint-ratchet.toml:{}: expected `crate = N`", no + 1))?;
        let key = key.trim();
        let val: u32 = val
            .trim()
            .parse()
            .map_err(|_| format!("lint-ratchet.toml:{}: count is not an integer", no + 1))?;
        if out.insert(key.to_string(), val).is_some() {
            return Err(format!(
                "lint-ratchet.toml:{}: duplicate entry for `{key}`",
                no + 1
            ));
        }
    }
    Ok(out)
}

/// Render a ratchet table in the canonical format `fix-ratchet` emits.
pub fn render(r: &Ratchet) -> String {
    let mut out = String::from(
        "# Panic-freedom ratchet: un-allowed `.unwrap()` / `.expect(` / `panic!`\n\
         # sites per crate in non-test library code. Counts may go DOWN but\n\
         # never up. Regenerate with `cargo run -p tg-lint -- fix-ratchet`\n\
         # after burning sites down; tg-lint's check fails on any drift.\n\
         \n\
         [panic-sites]\n",
    );
    for (k, v) in r {
        out.push_str(&format!("{k} = {v}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut r = Ratchet::new();
        r.insert("cli".into(), 12);
        r.insert("core".into(), 30);
        let text = render(&r);
        assert_eq!(parse(&text).unwrap(), r);
    }

    #[test]
    fn comments_and_unknown_sections_are_ignored() {
        let text = "[other]\nx = 1\n[panic-sites]\ncli = 3 # trailing\n";
        let r = parse(text).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r["cli"], 3);
    }

    #[test]
    fn malformed_lines_error() {
        assert!(parse("[panic-sites]\ncli\n").is_err());
        assert!(parse("[panic-sites]\ncli = many\n").is_err());
        assert!(parse("[panic-sites]\ncli = 1\ncli = 2\n").is_err());
    }
}
