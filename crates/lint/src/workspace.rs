//! Loading the workspace into the per-file view the passes consume,
//! and orchestrating a full check.

use crate::diag::Diagnostic;
use crate::lexer::{lex, Tok};
use crate::lines::LineIndex;
use crate::passes;
use crate::ratchet::{self, Ratchet};
use crate::structure::{analyze, FileStructure};
use std::fs;
use std::path::{Path, PathBuf};

/// One loaded `.rs` file plus everything the passes derive from it.
pub struct SourceFile {
    /// Repo-relative path with `/` separators.
    pub rel_path: String,
    /// Crate directory name under `crates/` (e.g. `tensor`).
    pub crate_name: String,
    /// Whether the file lives under the crate's `tests/` directory.
    pub is_test_file: bool,
    /// File contents.
    pub src: String,
    /// Lexed tokens.
    pub toks: Vec<Tok>,
    /// Structural facts (scopes, fns, test markers).
    pub st: FileStructure,
    /// Line-indexed facts (comments, attrs, allow/SAFETY lookups).
    pub lines: LineIndex,
}

impl SourceFile {
    /// Build the full derived view from a path and source text. Also
    /// the entry point for fixture tests, which pass synthetic paths
    /// like `crates/fix/src/lib.rs`.
    pub fn synth(rel_path: &str, src: &str) -> SourceFile {
        let crate_name = rel_path
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("")
            .to_string();
        let is_test_file = rel_path.contains("/tests/");
        let toks = lex(src);
        let st = analyze(src, &toks);
        let lines = LineIndex::build(src, &toks);
        SourceFile {
            rel_path: rel_path.to_string(),
            crate_name,
            is_test_file,
            src: src.to_string(),
            toks,
            st,
            lines,
        }
    }
}

/// The loaded workspace: sources plus the side files passes validate.
pub struct Workspace {
    /// Workspace root.
    pub root: PathBuf,
    /// All `.rs` files under `crates/*/src` and `crates/*/tests`.
    pub files: Vec<SourceFile>,
    /// `lint-ratchet.toml` text, if present.
    pub ratchet_text: Option<String>,
    /// `.github/workflows/ci.yml` text, if present.
    pub ci_yaml: Option<String>,
    /// `README.md` text, if present.
    pub readme: Option<String>,
}

fn push_rs_files(dir: &Path, acc: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            push_rs_files(&p, acc)?;
        } else if p.extension().and_then(|e| e.to_str()) == Some("rs") {
            acc.push(p);
        }
    }
    Ok(())
}

/// Load every crate source (and integration test) under `root`.
pub fn load(root: &Path) -> Result<Workspace, String> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    let mut paths = Vec::new();
    for dir in &crate_dirs {
        for sub in ["src", "tests"] {
            push_rs_files(&dir.join(sub), &mut paths)
                .map_err(|e| format!("walking {}: {e}", dir.display()))?;
        }
    }

    let mut files = Vec::with_capacity(paths.len());
    for p in &paths {
        let src = fs::read_to_string(p).map_err(|e| format!("cannot read {}: {e}", p.display()))?;
        let rel = p
            .strip_prefix(root)
            .unwrap_or(p)
            .to_string_lossy()
            .replace('\\', "/");
        files.push(SourceFile::synth(&rel, &src));
    }

    let read_opt = |rel: &str| fs::read_to_string(root.join(rel)).ok();
    Ok(Workspace {
        root: root.to_path_buf(),
        files,
        ratchet_text: read_opt("lint-ratchet.toml"),
        ci_yaml: read_opt(".github/workflows/ci.yml"),
        readme: read_opt("README.md"),
    })
}

/// Run every pass; diagnostics come back sorted by file and line.
pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    diags.extend(passes::unsafe_audit::run(&ws.files));
    diags.extend(passes::faults::run(&ws.files, ws.ci_yaml.as_deref()));
    match &ws.ratchet_text {
        Some(text) => match ratchet::parse(text) {
            Ok(recorded) => diags.extend(passes::panics::run(&ws.files, &recorded)),
            Err(e) => diags.push(Diagnostic::new("lint-ratchet.toml", 0, "panics", e)),
        },
        None => diags.push(Diagnostic::new(
            "lint-ratchet.toml",
            0,
            "panics",
            "missing — run `cargo run -p tg-lint -- fix-ratchet` to create it",
        )),
    }
    diags.extend(passes::determinism::run(&ws.files));
    diags.extend(passes::exit_codes::run(&ws.files, ws.readme.as_deref()));

    diags.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    diags
}

/// Current per-crate panic-site counts, for `fix-ratchet`.
pub fn compute_ratchet(ws: &Workspace) -> Ratchet {
    passes::panics::counts(&ws.files)
}
