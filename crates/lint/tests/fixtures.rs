//! Pass-level fixture tests: every pass must flag a seeded violation
//! with a file:line diagnostic and stay quiet on the corrected form.
//! These are the executable spec for what `tg-lint -- check` enforces.

use tg_lint::passes::{determinism, exit_codes, faults, panics, unsafe_audit};
use tg_lint::ratchet::Ratchet;
use tg_lint::workspace::SourceFile;

fn synth(path: &str, src: &str) -> Vec<SourceFile> {
    vec![SourceFile::synth(path, src)]
}

// ---------------------------------------------------------------- unsafe

#[test]
fn unsafe_without_safety_comment_is_flagged_with_file_and_line() {
    let bad = "\
pub fn danger() {
    let x = 1i32;
    let y = unsafe { *(&x as *const i32) };
    assert_eq!(y, 1);
}
";
    let d = unsafe_audit::run(&synth("crates/fix/src/lib.rs", bad));
    assert_eq!(d.len(), 1, "{d:?}");
    assert_eq!(d[0].file, "crates/fix/src/lib.rs");
    assert_eq!(d[0].line, 3);
    assert!(d[0].to_string().starts_with("crates/fix/src/lib.rs:3:"));
}

#[test]
fn safety_comment_silences_the_unsafe_audit() {
    let good = "\
pub fn danger() {
    let x = 1i32;
    // SAFETY: reads a live stack local through its own address
    let y = unsafe { *(&x as *const i32) };
    assert_eq!(y, 1);
}
";
    assert!(unsafe_audit::run(&synth("crates/fix/src/lib.rs", good)).is_empty());
}

#[test]
fn doc_safety_section_is_not_a_safety_comment() {
    let bad = "\
/// # Safety
/// caller must check avx2
pub unsafe fn k() {}
";
    let d = unsafe_audit::run(&synth("crates/fix/src/lib.rs", bad));
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].line, 3);
}

#[test]
fn unsafe_inside_strings_and_comments_does_not_count() {
    let good = "\
// unsafe in a comment
pub fn f() -> &'static str {
    /* unsafe in a block comment */
    \"unsafe in a string\"
}
";
    assert!(unsafe_audit::run(&synth("crates/fix/src/lib.rs", good)).is_empty());
}

#[test]
fn unguarded_target_feature_call_is_flagged() {
    let bad = "\
mod avx2 {
    // SAFETY: caller dispatches on detected features
    #[target_feature(enable = \"avx2\")]
    pub unsafe fn kernel(x: u32) -> u32 { x }
}
pub fn driver(x: u32) -> u32 {
    // SAFETY: WRONG — nothing checked avx2 support here
    unsafe { avx2::kernel(x) }
}
";
    let d = unsafe_audit::run(&synth("crates/fix/src/lib.rs", bad));
    assert_eq!(d.len(), 1, "{d:?}");
    assert_eq!(d[0].line, 8);
    assert!(d[0].message.contains("kernel"), "{d:?}");
    assert!(d[0].message.contains("driver"), "{d:?}");
}

#[test]
fn feature_detected_guard_silences_the_reachability_check() {
    let good = "\
mod avx2 {
    // SAFETY: caller dispatches on detected features
    #[target_feature(enable = \"avx2\")]
    pub unsafe fn kernel(x: u32) -> u32 { x }
}
pub fn driver(x: u32) -> u32 {
    if is_x86_feature_detected!(\"avx2\") {
        // SAFETY: guarded by the detection right above
        unsafe { avx2::kernel(x) }
    } else {
        x
    }
}
";
    assert!(unsafe_audit::run(&synth("crates/fix/src/lib.rs", good)).is_empty());
}

#[test]
fn microkernel_dispatch_arm_counts_as_a_guard() {
    let good = "\
mod avx2 {
    // SAFETY: caller dispatches on MicrokernelKind
    #[target_feature(enable = \"avx2\")]
    pub unsafe fn kernel(x: u32) -> u32 { x }
}
pub fn driver(kind: MicrokernelKind, x: u32) -> u32 {
    match kind {
        // SAFETY: the Avx2Fma arm exists iff detection succeeded
        MicrokernelKind::Avx2Fma => unsafe { avx2::kernel(x) },
        MicrokernelKind::Portable => x,
    }
}
";
    assert!(unsafe_audit::run(&synth("crates/fix/src/lib.rs", good)).is_empty());
}

#[test]
fn target_feature_to_target_feature_calls_are_fine() {
    let good = "\
mod avx2 {
    // SAFETY: same-module TF-to-TF call
    #[target_feature(enable = \"avx2\")]
    pub unsafe fn inner(x: u32) -> u32 { x }
    // SAFETY: caller dispatches on detected features
    #[target_feature(enable = \"avx2\")]
    pub unsafe fn outer(x: u32) -> u32 { inner(x) }
}
";
    assert!(unsafe_audit::run(&synth("crates/fix/src/lib.rs", good)).is_empty());
}

// ---------------------------------------------------------------- faults

#[test]
fn unregistered_fail_point_is_flagged() {
    let bad = "\
pub fn work() -> Result<(), tg_faults::FaultError> {
    tg_faults::fail_point!(\"no.such.point\");
    Ok(())
}
";
    let d = faults::run(&synth("crates/fix/src/lib.rs", bad), None);
    let hit: Vec<_> = d
        .iter()
        .filter(|d| d.message.contains("no.such.point"))
        .collect();
    assert_eq!(hit.len(), 1, "{d:?}");
    assert_eq!(hit[0].file, "crates/fix/src/lib.rs");
    assert_eq!(hit[0].line, 2);
}

#[test]
fn test_only_point_in_production_code_is_flagged() {
    let bad = "\
pub fn work() -> Result<(), tg_faults::FaultError> {
    tg_faults::fail_point!(\"t.macro\");
    Ok(())
}
";
    let d = faults::run(&synth("crates/fix/src/lib.rs", bad), None);
    assert!(
        d.iter()
            .any(|d| d.line == 2 && d.message.contains("test-only")),
        "{d:?}"
    );
}

#[test]
fn registered_production_usage_is_clean_and_liveness_sees_it() {
    let good = "\
pub fn work() -> Result<(), tg_faults::FaultError> {
    tg_faults::fail_point!(\"worker.entry\", format!(\"shard:{}\", 0));
    Ok(())
}
";
    let d = faults::run(&synth("crates/fix/src/lib.rs", good), None);
    // no diagnostic about the usage itself, and no "never evaluated"
    // liveness complaint for worker.entry
    assert!(
        !d.iter().any(|d| d.message.contains("worker.entry")),
        "{d:?}"
    );
    // other registered points have no call site in this one-file
    // fixture world, so the both-directions check reports them
    assert!(d
        .iter()
        .any(|d| d.message.contains("no non-test call site")));
}

#[test]
fn spec_strings_arming_bad_points_are_flagged() {
    let bad = "\
#[cfg(test)]
mod tests {
    #[test]
    fn drives_faults() {
        let unknown = \"bogus.point=err,max=1\";
        let testonly = \"t.macro=panic\";
        let fine = \"worker.entry=err,arg=shard:1\";
    }
}
";
    let d = faults::run(&synth("crates/fix/src/lib.rs", bad), None);
    assert!(
        d.iter()
            .any(|d| d.line == 5 && d.message.contains("bogus.point")),
        "{d:?}"
    );
    assert!(
        d.iter()
            .any(|d| d.line == 6 && d.message.contains("test-only")),
        "{d:?}"
    );
    assert!(
        !d.iter().any(|d| d.line == 7),
        "registered production spec must be clean: {d:?}"
    );
}

#[test]
fn ci_yaml_tg_faults_lines_are_validated() {
    let yaml = "\
jobs:
  test:
    steps:
      - run: |
          TG_FAULTS=\"worker.entry=abort,max=1\" ./go
      - run: |
          TG_FAULTS=\"gone.point=panic\" ./go
";
    let d = faults::run(&[], Some(yaml));
    let spec: Vec<_> = d
        .iter()
        .filter(|d| d.file == ".github/workflows/ci.yml")
        .collect();
    assert_eq!(spec.len(), 1, "{d:?}");
    assert_eq!(spec[0].line, 7);
    assert!(spec[0].message.contains("gone.point"));
}

#[test]
fn multi_entry_specs_check_every_point() {
    let d = faults::run(
        &synth(
            "crates/fix/src/lib.rs",
            "pub const S: &str = \"worker.entry=err;phantom.pt=panic\";\n",
        ),
        None,
    );
    assert!(d.iter().any(|d| d.message.contains("phantom.pt")), "{d:?}");
}

// ---------------------------------------------------------------- panics

#[test]
fn panic_sites_are_counted_with_lines_outside_test_code_only() {
    let src = "\
pub fn lib_code(x: Option<u32>) -> u32 {
    let a = x.unwrap();
    let b = x.expect(\"present\");
    if a != b { panic!(\"impossible\"); }
    a
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { None::<u32>.unwrap(); }
}
";
    let f = SourceFile::synth("crates/fix/src/lib.rs", src);
    let sites = panics::sites(&f);
    let lines: Vec<u32> = sites.iter().map(|s| s.line).collect();
    assert_eq!(lines, vec![2, 3, 4], "{sites:?}");
    assert_eq!(sites[0].what, ".unwrap()");
    assert_eq!(sites[1].what, ".expect(");
    assert_eq!(sites[2].what, "panic!");
}

#[test]
fn allow_panic_with_reason_suppresses_a_site() {
    let src = "\
pub fn f(m: &std::sync::Mutex<u32>) -> u32 {
    // lint: allow(panic) — poisoned lock means a panicked writer; abort
    *m.lock().unwrap()
}
";
    let f = SourceFile::synth("crates/fix/src/lib.rs", src);
    assert!(panics::sites(&f).is_empty());
}

#[test]
fn ratchet_regression_and_improvement_both_fail() {
    let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    let files = synth("crates/fix/src/lib.rs", src);

    let mut exact = Ratchet::new();
    exact.insert("fix".into(), 1);
    assert!(panics::run(&files, &exact).is_empty());

    let mut too_low = Ratchet::new();
    too_low.insert("fix".into(), 0);
    let d = panics::run(&files, &too_low);
    assert_eq!(d.len(), 1);
    assert!(d[0].message.contains("ratchet allows 0"), "{d:?}");

    let mut too_high = Ratchet::new();
    too_high.insert("fix".into(), 5);
    let d = panics::run(&files, &too_high);
    assert_eq!(d.len(), 1);
    assert!(d[0].message.contains("fix-ratchet"), "{d:?}");
}

// ----------------------------------------------------------- determinism

#[test]
fn hashmap_in_a_seeded_path_is_flagged() {
    let bad = "\
use std::collections::HashMap;
pub fn emit(xs: &[u32]) -> Vec<(u32, u32)> {
    let mut m: HashMap<u32, u32> = HashMap::new();
    for &x in xs { *m.entry(x).or_insert(0) += 1; }
    m.into_iter().collect()
}
";
    let d = determinism::run(&synth("crates/core/src/fix.rs", bad));
    assert_eq!(d.len(), 2, "type + constructor mentions: {d:?}");
    assert!(d.iter().all(|d| d.line == 3));
    // the `use` line is exempt
    assert!(!d.iter().any(|d| d.line == 1));
}

#[test]
fn allowlisted_or_out_of_scope_hash_use_is_clean() {
    let allowed = "\
use std::collections::HashMap;
pub fn lookup_only(keys: &[u32]) -> HashMap<u32, u32> {
    // lint: allow(determinism) — keyed lookups only, never iterated
    let m: HashMap<u32, u32> = HashMap::new();
    m
}
";
    // HashMap in the signature line 2 of a seeded crate WOULD flag, so
    // scope check first: same file under a non-seeded crate is clean
    assert!(determinism::run(&synth("crates/serve/src/fix.rs", allowed)).is_empty());
    // and in a seeded crate the allow comment covers line 4 (line 2
    // still flags: signatures promising hash types are part of the
    // hazard surface)
    let d = determinism::run(&synth("crates/graph/src/fix.rs", allowed));
    assert_eq!(d.len(), 1, "{d:?}");
    assert_eq!(d[0].line, 2);
}

#[test]
fn wall_clock_reads_are_flagged_outside_bench() {
    let src = "\
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
";
    let d = determinism::run(&synth("crates/store/src/fix.rs", src));
    assert_eq!(d.len(), 1, "{d:?}");
    assert_eq!(d[0].line, 2);
    assert!(d[0].message.contains("Instant::now"), "{d:?}");
    // bench exists to measure time
    assert!(determinism::run(&synth("crates/bench/src/fix.rs", src)).is_empty());
}

#[test]
fn obs_clock_reads_need_an_argued_hatch() {
    // tg-obs is where telemetry clock reads are *supposed* to live, but
    // each one still has to argue (via the allow hatch) that its reading
    // is exported, never fed back into seeded state.
    let hatched = "\
pub fn stopwatch() -> std::time::Instant {
    // lint: allow(determinism) — metrics-only latency timing; the
    // reading is exported, never fed back into seeded state
    std::time::Instant::now()
}
";
    assert!(determinism::run(&synth("crates/obs/src/fix.rs", hatched)).is_empty());

    let bare = "\
pub fn stopwatch() -> std::time::Instant {
    std::time::Instant::now()
}
";
    let d = determinism::run(&synth("crates/obs/src/fix.rs", bare));
    assert_eq!(d.len(), 1, "unhatched clock read in obs must flag: {d:?}");
    assert_eq!(d[0].line, 2);

    // SystemTime is a clock too (trace epoch anchoring uses it).
    let sys = "\
pub fn anchor() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
";
    let d = determinism::run(&synth("crates/obs/src/fix.rs", sys));
    assert_eq!(d.len(), 1, "{d:?}");
    assert!(d[0].message.contains("SystemTime::now"), "{d:?}");
}

// ------------------------------------------------------------ exit codes

const GOOD_ERRORS_RS: &str = "\
//! Exit codes:
//!
//! ```text
//! 0  success
//! 1  other failure
//! 2  usage error
//! 3  corruption
//! 4  worker failure
//! 5  partial
//! 6  busy
//! ```

pub enum CliError { Usage, Other }

impl CliError {
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Other => 1,
            CliError::Usage => 2,
            CliError::A => 3,
            CliError::B => 4,
            CliError::C => 5,
            CliError::D => 6,
        }
    }
}
";

const GOOD_README: &str = "\
Exit codes are stable: `0` ok, `2` usage, `3` corruption, `4` worker
failure, `5` partial, `6` busy.
";

#[test]
fn consistent_exit_code_contract_is_clean() {
    let files = synth("crates/cli/src/errors.rs", GOOD_ERRORS_RS);
    assert!(exit_codes::run(&files, Some(GOOD_README)).is_empty());
}

#[test]
fn out_of_table_process_exit_is_flagged() {
    let src = "\
pub fn die() {
    std::process::exit(9);
}
";
    let d = exit_codes::run(&synth("crates/cli/src/fix.rs", src), None);
    assert_eq!(d.len(), 1, "{d:?}");
    assert_eq!(d[0].line, 2);
    assert!(d[0].message.contains("exit(9)"), "{d:?}");
}

#[test]
fn exit_code_fn_drifting_from_the_table_is_flagged() {
    let drifted = GOOD_ERRORS_RS.replace("CliError::D => 6", "CliError::D => 7");
    let d = exit_codes::run(
        &synth("crates/cli/src/errors.rs", &drifted),
        Some(GOOD_README),
    );
    assert_eq!(d.len(), 1, "{d:?}");
    assert!(d[0].message.contains("exit_code"), "{d:?}");
}

#[test]
fn module_doc_drifting_from_the_table_is_flagged() {
    let drifted = GOOD_ERRORS_RS.replace("//! 6  busy\n", "");
    let d = exit_codes::run(
        &synth("crates/cli/src/errors.rs", &drifted),
        Some(GOOD_README),
    );
    assert_eq!(d.len(), 1, "{d:?}");
    assert!(d[0].message.contains("module doc"), "{d:?}");
}

#[test]
fn readme_losing_a_code_or_the_promise_is_flagged() {
    let files = synth("crates/cli/src/errors.rs", GOOD_ERRORS_RS);
    let d = exit_codes::run(&files, Some("Exit codes are stable: `2` `3` `4` `5`."));
    assert_eq!(d.len(), 1, "{d:?}");
    assert!(d[0].message.contains("`6`"), "{d:?}");
    let d = exit_codes::run(&files, Some("codes: `2` `3` `4` `5` `6`"));
    assert_eq!(d.len(), 1, "{d:?}");
    assert!(d[0].message.contains("stable"), "{d:?}");
}

// ------------------------------------------------- the binary end to end

/// `tg-lint check` exits 0 on this repository: the invariants the other
/// tests seed violations against all hold on the real tree.
#[test]
fn binary_is_clean_on_this_repository() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_tg-lint"))
        .arg("check")
        .output()
        .expect("spawn tg-lint");
    assert!(
        out.status.success(),
        "tg-lint check failed on the repo:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 violations"), "{stdout}");
}

/// Seeding a violation into a scratch workspace makes the binary exit
/// non-zero and print a `file:line: [pass]` diagnostic.
#[test]
fn binary_flags_a_seeded_workspace_with_file_line_diagnostics() {
    let scratch = std::env::temp_dir().join(format!("tg-lint-fixture-{}", std::process::id()));
    let src_dir = scratch.join("crates/fix/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir scratch workspace");
    std::fs::write(scratch.join("Cargo.toml"), "[workspace]\n").expect("write Cargo.toml");
    std::fs::write(scratch.join("lint-ratchet.toml"), "[panic-sites]\n").expect("write ratchet");
    std::fs::write(
        src_dir.join("lib.rs"),
        "pub fn danger() {\n    let x = 1i32;\n    let _y = unsafe { *(&x as *const i32) };\n}\n",
    )
    .expect("write fixture source");

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_tg-lint"))
        .arg("check")
        .current_dir(&scratch)
        .env_remove("CARGO_MANIFEST_DIR")
        .output()
        .expect("spawn tg-lint");
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    std::fs::remove_dir_all(&scratch).ok();

    assert_eq!(out.status.code(), Some(1), "stderr:\n{stderr}");
    assert!(
        stderr.contains("crates/fix/src/lib.rs:3: [unsafe-audit]"),
        "missing file:line diagnostic:\n{stderr}"
    );
}
