//! Determinism invariance of the sharded streaming simulation engine:
//! for a fixed master seed the generated edge stream must be
//! bit-identical across **thread counts × shard counts × sink
//! implementations**, and the statistics-only sink must agree exactly
//! with statistics recomputed from the in-memory graph.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tg_graph::io::read_edge_list_exact;
use tg_graph::io::StreamingWriterSink;
use tg_graph::sink::{GenerationStats, GraphSink, StatsSink};
use tg_graph::{TemporalEdge, TemporalGraph};
use tg_tensor::parallel::ThreadPin;
use tgae::engine::{
    generate_shard, generate_shard_with_sink, generate_with_sink, SimulationEngine,
};
use tgae::{Session, Tgae, TgaeConfig};

/// A small multigraph with ring structure plus seeded random extra edges
/// (including re-fired pairs, so the multiplicity path is exercised).
fn mixed_graph(n: u32, t_count: u32, extra: usize, seed: u64) -> TemporalGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for t in 0..t_count {
        for u in 0..n {
            edges.push(TemporalEdge::new(u, (u + 1) % n, t));
        }
    }
    for _ in 0..extra {
        let u = rng.gen_range(0..n);
        let mut v = rng.gen_range(0..n);
        if v == u {
            v = (v + 1) % n;
        }
        let t = rng.gen_range(0..t_count);
        edges.push(TemporalEdge::new(u, v, t));
        if rng.gen_bool(0.3) {
            edges.push(TemporalEdge::new(u, v, t)); // multigraph re-fire
        }
    }
    TemporalGraph::from_edges(n as usize, t_count as usize, edges)
}

fn tiny_trained(g: &TemporalGraph, batch_centers: usize) -> Tgae {
    let mut cfg = TgaeConfig::tiny();
    cfg.epochs = 4;
    cfg.batch_centers = batch_centers;
    let mut session = Session::builder(g).config(cfg).build().expect("session");
    session.train().expect("train");
    session.into_model()
}

/// Full-run reference edges through a `GraphSink`.
fn reference_edges(model: &Tgae, g: &TemporalGraph, master: u64) -> Vec<TemporalEdge> {
    generate_with_sink(
        model,
        g,
        master,
        GraphSink::new(g.n_nodes(), g.n_timestamps()),
    )
    .edges()
    .to_vec()
}

#[test]
fn edges_bit_identical_across_threads_shards_and_sinks() {
    let g = mixed_graph(10, 3, 12, 5);
    let model = tiny_trained(&g, 4); // several chunks per timestamp
    let master = 20240731u64;
    let reference = reference_edges(&model, &g, master);
    assert_eq!(reference.len(), g.n_edges());

    for threads in [1usize, 2, 4] {
        let _pin = ThreadPin::new(threads);
        for n_shards in [1usize, 2, 4] {
            let plan = SimulationEngine::new(&model, &g).plan(master);
            let shards = plan.shards(n_shards);

            // GraphSink per shard, merged
            let mut merged: Vec<TemporalEdge> = Vec::new();
            for spec in &shards {
                merged.extend_from_slice(generate_shard(&model, &g, spec).edges());
            }
            let merged = TemporalGraph::from_edges(g.n_nodes(), g.n_timestamps(), merged);
            assert_eq!(
                merged.edges(),
                &reference[..],
                "GraphSink: threads={threads} shards={n_shards}"
            );

            // StreamingWriterSink per shard; shard buffers concatenate in
            // shard order and parse back to the reference edges
            let mut bytes: Vec<u8> = Vec::new();
            for spec in &shards {
                let mut sink = StreamingWriterSink::new(Vec::new());
                let engine = SimulationEngine::new(&model, &g);
                let shard_plan = engine.plan(spec.master_seed);
                engine.execute(shard_plan.shard_units(spec), &mut sink);
                bytes.extend_from_slice(&sink.into_inner().unwrap());
            }
            let parsed = read_edge_list_exact(bytes.as_slice(), g.n_nodes(), g.n_timestamps())
                .expect("streamed text parses");
            assert_eq!(
                parsed.edges(),
                &reference[..],
                "StreamingWriterSink: threads={threads} shards={n_shards}"
            );

            // StatsSink per shard: stats merged through the public
            // GenerationStats::merge equal graph-derived stats
            let mut stats_acc: Option<GenerationStats> = None;
            for spec in &shards {
                let s =
                    generate_shard_with_sink(&model, &g, spec, StatsSink::new(g.n_timestamps()));
                stats_acc = Some(match stats_acc {
                    None => s,
                    Some(mut acc) => {
                        acc.merge(&s);
                        acc
                    }
                });
            }
            let full = TemporalGraph::from_edges(g.n_nodes(), g.n_timestamps(), reference.clone());
            assert_eq!(
                stats_acc.unwrap(),
                GenerationStats::from_graph(&full),
                "StatsSink: threads={threads} shards={n_shards}"
            );
        }
    }
}

#[test]
fn streamed_bytes_are_shard_concatenation() {
    let g = mixed_graph(8, 2, 6, 9);
    let model = tiny_trained(&g, 4);
    let master = 77u64;
    let dir = std::env::temp_dir().join(format!("tg_engine_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let full_path = dir.join("full.txt");
    let n_full = generate_with_sink(
        &model,
        &g,
        master,
        StreamingWriterSink::create(&full_path).unwrap(),
    )
    .unwrap();
    assert_eq!(n_full as usize, g.n_edges());

    let plan = SimulationEngine::new(&model, &g).plan(master);
    let mut shard_paths = Vec::new();
    for spec in plan.shards(2) {
        let p = dir.join(format!("shard_{}.txt", spec.shard));
        generate_shard_with_sink(&model, &g, &spec, StreamingWriterSink::create(&p).unwrap())
            .unwrap();
        shard_paths.push(p);
    }
    let merged_path = dir.join("merged.txt");
    tg_graph::io::merge_edge_lists(&shard_paths, &merged_path).unwrap();
    assert_eq!(
        std::fs::read(&full_path).unwrap(),
        std::fs::read(&merged_path).unwrap(),
        "shard files must concatenate byte-identically to the full stream"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Over random small multigraphs: sharded GraphSink union equals the
    /// full run, and StatsSink totals equal GraphSink-derived stats.
    #[test]
    fn sharding_and_stats_invariants_hold(
        n in 5u32..9,
        t_count in 1u32..4,
        extra in 0usize..10,
        graph_seed in 0u64..1000,
        master in 0u64..1000,
    ) {
        let g = mixed_graph(n, t_count, extra, graph_seed);
        let model = tiny_trained(&g, 4);
        let reference = reference_edges(&model, &g, master);
        prop_assert_eq!(reference.len(), g.n_edges());

        let plan = SimulationEngine::new(&model, &g).plan(master);
        let mut merged: Vec<TemporalEdge> = Vec::new();
        for spec in plan.shards(2) {
            merged.extend_from_slice(generate_shard(&model, &g, &spec).edges());
        }
        let merged = TemporalGraph::from_edges(g.n_nodes(), g.n_timestamps(), merged);
        prop_assert_eq!(merged.edges(), &reference[..]);

        let stats = generate_with_sink(&model, &g, master, StatsSink::new(g.n_timestamps()));
        let full = TemporalGraph::from_edges(g.n_nodes(), g.n_timestamps(), reference);
        prop_assert_eq!(stats, GenerationStats::from_graph(&full));
    }
}
