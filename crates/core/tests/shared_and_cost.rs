//! PR-7 enabling-refactor proofs:
//!
//! - a [`SharedRun`] is bit-identical to the raw engine entry point and
//!   to itself across threads (one `Arc`-held model, no per-caller
//!   state);
//! - [`CostEstimate`] is monotone in edges, timestamps, and chunk
//!   granularity, additive over shards, and master-seed independent —
//!   property-tested over random small multigraphs, because these are
//!   exactly the invariants admission control banks on.

use proptest::prelude::*;
use std::sync::Arc;
use tg_graph::io::StreamingWriterSink;
use tg_graph::{TemporalEdge, TemporalGraph};
use tgae::{generate_with_sink, Session, SharedRun, SimulationPlan, TgaeConfig};

fn ring(n: u32, t_count: u32) -> TemporalGraph {
    let mut edges = Vec::new();
    for t in 0..t_count {
        for u in 0..n {
            edges.push(TemporalEdge::new(u, (u + 1) % n, t));
        }
    }
    TemporalGraph::from_edges(n as usize, t_count as usize, edges)
}

fn trained_run() -> SharedRun {
    let observed = ring(18, 3);
    let mut cfg = TgaeConfig::tiny();
    cfg.epochs = 2;
    let mut session = Session::builder(&observed)
        .config(cfg)
        .seed(13)
        .build()
        .unwrap();
    session.train().unwrap();
    session.into_shared()
}

fn stream_bytes(run: &SharedRun, master: u64) -> Vec<u8> {
    let mut buf = Vec::new();
    run.simulate_seeded(master, StreamingWriterSink::new(&mut buf))
        .unwrap()
        .unwrap();
    buf
}

#[test]
fn shared_run_matches_the_raw_engine_entry_point() {
    let run = trained_run();
    for master in [0u64, 9, 41] {
        let mut raw = Vec::new();
        generate_with_sink(
            run.model(),
            run.observed(),
            master,
            StreamingWriterSink::new(&mut raw),
        )
        .unwrap();
        assert_eq!(
            stream_bytes(&run, master),
            raw,
            "SharedRun wrapper diverged from generate_with_sink at master {master}"
        );
    }
}

#[test]
fn concurrent_shared_simulations_are_bit_identical_to_sequential() {
    let run = trained_run();
    let masters = [3u64, 7, 21, 100];
    let sequential: Vec<Vec<u8>> = masters.iter().map(|&m| stream_bytes(&run, m)).collect();

    let model_before = run.model_arc();
    let handles: Vec<_> = masters
        .iter()
        .map(|&m| {
            let run = run.clone();
            std::thread::spawn(move || (m, stream_bytes(&run, m), run.model_arc()))
        })
        .collect();
    for (i, h) in handles.into_iter().enumerate() {
        let (m, bytes, model_arc) = h.join().unwrap();
        assert_eq!(
            bytes, sequential[i],
            "master {m}: concurrent stream diverged from sequential"
        );
        assert!(
            Arc::ptr_eq(&model_arc, &model_before),
            "a thread ended up with a different model instance"
        );
    }
}

/// Random small multigraph parts: shape + self-loop-free edge triples.
fn graph_parts() -> impl Strategy<Value = (usize, usize, Vec<(u32, u32, u32)>)> {
    (4usize..12, 1usize..4).prop_flat_map(|(n, t)| {
        proptest::collection::vec((0u32..n as u32, 1u32..n as u32, 0u32..t as u32), 1..60)
            .prop_map(move |triples| (n, t, triples))
    })
}

fn build(n: usize, t: usize, triples: &[(u32, u32, u32)]) -> TemporalGraph {
    let edges = triples
        .iter()
        .map(|&(u, off, ts)| TemporalEdge::new(u, (u + off) % n as u32, ts))
        .collect();
    TemporalGraph::from_edges(n, t, edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cost_is_monotone_in_edges(parts in graph_parts(), split in 0usize..60) {
        let (n, t, triples) = parts;
        let split = 1 + split % triples.len();
        let smaller = build(n, t, &triples[..split]);
        let larger = build(n, t, &triples);
        let small = SimulationPlan::new(&smaller, 32, 0).cost_estimate();
        let large = SimulationPlan::new(&larger, 32, 0).cost_estimate();
        prop_assert!(large.edges >= small.edges);
        prop_assert!(large.centers >= small.centers);
        prop_assert!(large.units >= small.units);
        prop_assert!(large.cost >= small.cost, "adding edges reduced the cost");
    }

    #[test]
    fn cost_is_monotone_in_timestamps(parts in graph_parts()) {
        let (n, t, triples) = parts;
        let base = build(n, t, &triples);
        // Same edges plus one more populated timestamp appended.
        let mut extended: Vec<(u32, u32, u32)> = triples.clone();
        extended.push((0, 1, t as u32));
        let taller = build(n, t + 1, &extended);
        let small = SimulationPlan::new(&base, 32, 0).cost_estimate();
        let large = SimulationPlan::new(&taller, 32, 0).cost_estimate();
        prop_assert!(large.units > small.units, "new timestamp must add a unit");
        prop_assert!(large.cost > small.cost, "extending the horizon reduced the cost");
    }

    #[test]
    fn finer_chunking_never_costs_less(parts in graph_parts()) {
        let (n, t, triples) = parts;
        let g = build(n, t, &triples);
        let fine = SimulationPlan::new(&g, 32, 0).cost_estimate();
        let coarse = SimulationPlan::new(&g, 256, 0).cost_estimate();
        prop_assert_eq!(fine.edges, coarse.edges);
        prop_assert_eq!(fine.centers, coarse.centers);
        prop_assert!(fine.units >= coarse.units);
        prop_assert!(fine.cost >= coarse.cost, "finer chunks reduced the cost");
    }

    #[test]
    fn cost_is_master_seed_independent_and_shard_additive(
        parts in graph_parts(),
        master_a in 0u64..1000,
        master_b in 0u64..1000,
        n_shards in 1usize..6,
    ) {
        let (n, t, triples) = parts;
        let g = build(n, t, &triples);
        let plan_a = SimulationPlan::new(&g, 32, master_a);
        let plan_b = SimulationPlan::new(&g, 32, master_b);
        prop_assert_eq!(plan_a.cost_estimate(), plan_b.cost_estimate(),
            "cost must not depend on the master seed");

        let total = plan_a.cost_estimate();
        let mut units = 0u64;
        let mut centers = 0u64;
        let mut edges = 0u64;
        let mut cost = 0u64;
        for spec in plan_a.shards(n_shards) {
            let e = plan_a.shard_cost_estimate(&spec);
            units += e.units;
            centers += e.centers;
            edges += e.edges;
            cost += e.cost;
        }
        prop_assert_eq!(units, total.units);
        prop_assert_eq!(centers, total.centers);
        prop_assert_eq!(edges, total.edges);
        prop_assert_eq!(cost, total.cost, "shard costs must sum to the plan cost");
    }
}
