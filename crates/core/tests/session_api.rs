//! Acceptance tests for the PR-4 `Session` API:
//!
//! - **bit-identity with the PR-3 free functions** — for the same config
//!   and master seed, `Session::train` + `simulate_seeded` reproduce
//!   `fit` + `generate_with_sink` exactly;
//! - **resume-equals-straight-run** — training with a mid-run checkpoint,
//!   then resuming from it in a *fresh* session, yields bit-identical
//!   parameters, losses, and generated edges;
//! - **typed error paths** — shape/config mismatches and corrupt
//!   checkpoints come back as `TgxError`, never a panic;
//! - **observer semantics** — epoch events arrive in order,
//!   cancellation stops mid-train, and attaching an observer does not
//!   change the trained parameters.

use tg_graph::sink::{GenerationStats, GraphSink, StatsSink};
use tg_graph::source::InMemorySource;
use tg_graph::{TemporalEdge, TemporalGraph};
use tgae::engine::generate_with_sink;
use tgae::{EpochEvent, Session, Tgae, TgaeConfig, TgxError, TrainControl};

fn ring_graph(n: u32, t_count: u32) -> TemporalGraph {
    let mut edges = Vec::new();
    for t in 0..t_count {
        for u in 0..n {
            edges.push(TemporalEdge::new(u, (u + 1) % n, t));
        }
    }
    TemporalGraph::from_edges(n as usize, t_count as usize, edges)
}

fn tiny_cfg(epochs: usize, seed: u64) -> TgaeConfig {
    let mut cfg = TgaeConfig::tiny();
    cfg.epochs = epochs;
    cfg.seed = seed;
    cfg
}

fn params_of(model: &Tgae) -> String {
    serde_json::to_string(&model.store).expect("serialise params")
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tgae_session_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
#[allow(deprecated)]
fn session_is_bit_identical_to_free_function_path() {
    let g = ring_graph(9, 3);
    let cfg = tiny_cfg(6, 41);
    let master = 20240731u64;

    // PR-3 free-function path
    let mut model = Tgae::new(g.n_nodes(), g.n_timestamps(), cfg.clone());
    let free_report = tgae::fit(&mut model, &g);
    let free_edges = generate_with_sink(
        &model,
        &g,
        master,
        GraphSink::new(g.n_nodes(), g.n_timestamps()),
    );

    // Session path, same config => same master seed policy
    let mut session = Session::builder(&g).config(cfg).build().expect("session");
    let report = session.train().expect("train");
    assert_eq!(report.losses, free_report.losses, "loss trajectories");
    assert_eq!(
        params_of(session.model()),
        params_of(&model),
        "trained parameters"
    );
    let session_edges = session
        .simulate_seeded(master, GraphSink::new(g.n_nodes(), g.n_timestamps()))
        .expect("simulate");
    assert_eq!(session_edges.edges(), free_edges.edges(), "generated edges");
}

#[test]
fn resume_from_checkpoint_equals_straight_run() {
    let g = ring_graph(8, 3);
    let dir = tmp_dir("resume");
    let ckpt = dir.join("ckpt.json");
    let total_epochs = 9usize;
    let stop_after = 4usize;

    // Straight run, no interruption.
    let mut straight = Session::builder(&g)
        .config(tiny_cfg(total_epochs, 17))
        .build()
        .expect("session");
    let straight_report = straight.train().expect("train");

    // Interrupted run: checkpoint every 2 epochs, observer cancels after
    // epoch index 3 (i.e. 4 epochs run, last checkpoint at epoch 4).
    let mut interrupted = Session::builder(&g)
        .config(tiny_cfg(total_epochs, 17))
        .checkpoint(&ckpt, 2)
        .observer(move |ev: &EpochEvent| {
            if ev.epoch + 1 >= stop_after {
                TrainControl::Stop
            } else {
                TrainControl::Continue
            }
        })
        .build()
        .expect("session");
    let partial = interrupted.train().expect("train");
    assert!(partial.early_stopped);
    assert_eq!(partial.epochs_run(), stop_after);
    assert_eq!(partial.epochs_configured, total_epochs);
    assert!(ckpt.exists(), "cadence checkpoint written");

    // Resume in a *fresh* session (fresh process stand-in).
    let mut resumed = Session::builder(&g)
        .config(tiny_cfg(total_epochs, 17))
        .build()
        .expect("session");
    let full_report = resumed.resume_from(&ckpt).expect("resume");
    assert!(!full_report.early_stopped);
    assert_eq!(full_report.epochs_run(), total_epochs);
    // The resumed run must be bit-identical to the straight run: losses
    // (restored prefix from the checkpoint epoch + recomputed tail)...
    assert_eq!(full_report.losses, straight_report.losses);
    // ...parameters...
    assert_eq!(params_of(resumed.model()), params_of(straight.model()));
    // ...and generated output.
    let a = straight
        .simulate_seeded(5, GraphSink::new(g.n_nodes(), g.n_timestamps()))
        .unwrap();
    let b = resumed
        .simulate_seeded(5, GraphSink::new(g.n_nodes(), g.n_timestamps()))
        .unwrap();
    assert_eq!(a.edges(), b.edges());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn source_built_session_is_bit_identical_to_borrowed_graph() {
    // The PR-5 EdgeSource ingest path: a session whose observed graph was
    // streamed chunk-by-chunk out of a source must train to the same
    // losses and parameters — and generate the same edges — as a session
    // borrowing the materialised graph directly. (The same invariant for
    // the on-disk StoreSource lives in crates/store/tests, which owns the
    // tg-store dev-dependency.)
    let g = ring_graph(10, 4);
    let cfg = tiny_cfg(6, 17);
    let master = 424242u64;

    let mut borrowed = Session::builder(&g)
        .config(cfg.clone())
        .seed(17)
        .build()
        .expect("borrowed session");
    let report_a = borrowed.train().expect("train borrowed");
    let edges_a = borrowed
        .simulate_seeded(master, GraphSink::new(g.n_nodes(), g.n_timestamps()))
        .expect("simulate borrowed");

    let mut streamed = Session::builder_from_source(&mut InMemorySource::new(&g))
        .expect("ingest")
        .config(cfg)
        .seed(17)
        .build()
        .expect("streamed session");
    assert_eq!(streamed.observed().edges(), g.edges());
    let report_b = streamed.train().expect("train streamed");
    let edges_b = streamed
        .simulate_seeded(master, GraphSink::new(g.n_nodes(), g.n_timestamps()))
        .expect("simulate streamed");

    assert_eq!(report_a.losses, report_b.losses, "loss history diverged");
    assert_eq!(
        params_of(borrowed.model()),
        params_of(streamed.model()),
        "trained parameters diverged"
    );
    assert_eq!(edges_a.edges(), edges_b.edges(), "generated edges diverged");
}

#[test]
fn observer_does_not_perturb_training() {
    let g = ring_graph(8, 2);
    let mut plain = Session::builder(&g)
        .config(tiny_cfg(5, 23))
        .build()
        .unwrap();
    plain.train().unwrap();

    let mut events: Vec<(usize, f32)> = Vec::new();
    let mut observed_session = Session::builder(&g)
        .config(tiny_cfg(5, 23))
        .observer(|ev: &EpochEvent| {
            events.push((ev.epoch, ev.loss));
            TrainControl::Continue
        })
        .build()
        .unwrap();
    let report = observed_session.train().unwrap();
    let observed_params = params_of(observed_session.model());
    drop(observed_session);

    assert_eq!(params_of(plain.model()), observed_params);
    // events arrive once per epoch, in order, with the reported losses
    assert_eq!(events.len(), 5);
    assert!(events.windows(2).all(|w| w[0].0 + 1 == w[1].0));
    let event_losses: Vec<f32> = events.iter().map(|&(_, l)| l).collect();
    assert_eq!(event_losses, report.losses);
}

#[test]
fn observer_cancellation_stops_mid_train() {
    let g = ring_graph(8, 2);
    let mut calls = 0usize;
    let mut s = Session::builder(&g)
        .config(tiny_cfg(50, 1))
        .observer(|ev: &EpochEvent| {
            calls += 1;
            assert_eq!(ev.n_epochs, 50);
            if ev.epoch == 2 {
                TrainControl::Stop
            } else {
                TrainControl::Continue
            }
        })
        .build()
        .unwrap();
    let report = s.train().unwrap();
    assert!(report.early_stopped);
    assert_eq!(report.epochs_run(), 3);
    assert_eq!(report.epochs_configured, 50);
    assert_eq!(s.trained_epochs(), 3);
    drop(s);
    assert_eq!(calls, 3, "observer not called after cancellation");
}

#[test]
fn corrupt_checkpoint_is_a_typed_error_not_a_panic() {
    let g = ring_graph(6, 2);
    let dir = tmp_dir("corrupt");
    let path = dir.join("bad.json");
    std::fs::write(&path, b"{this is not json").unwrap();
    let mut s = Session::builder(&g).config(tiny_cfg(4, 2)).build().unwrap();
    let err = s.resume_from(&path).unwrap_err();
    assert!(matches!(err, TgxError::Checkpoint(_)), "{err}");
    // missing file: also typed
    let err = s.resume_from(dir.join("nope.json")).unwrap_err();
    assert!(matches!(err, TgxError::Checkpoint(_)), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn foreign_checkpoint_is_rejected_with_mismatch() {
    let g = ring_graph(6, 2);
    let other = ring_graph(9, 2);
    let dir = tmp_dir("foreign");
    let ckpt = dir.join("other.json");
    // checkpoint written against a 9-node graph...
    let mut other_session = Session::builder(&other)
        .config(tiny_cfg(4, 2))
        .checkpoint(&ckpt, 2)
        .build()
        .unwrap();
    other_session.train().unwrap();
    // ...must be refused by a 6-node session
    let mut s = Session::builder(&g).config(tiny_cfg(4, 2)).build().unwrap();
    let err = s.resume_from(&ckpt).unwrap_err();
    assert!(matches!(err, TgxError::CheckpointMismatch(_)), "{err}");

    // same shape but different config: also refused
    let g2 = ring_graph(9, 2);
    let mut diff_cfg = Session::builder(&g2)
        .config(tiny_cfg(4, 999))
        .build()
        .unwrap();
    let err = diff_cfg.resume_from(&ckpt).unwrap_err();
    assert!(matches!(err, TgxError::CheckpointMismatch(_)), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn edgeless_graph_is_a_typed_error() {
    // `TemporalGraph::from_edges` statically refuses zero timestamps, so
    // the reachable "nothing to simulate" inputs are an edgeless horizon
    // or a sub-2-node graph; both must come back as EmptyGraph, not a
    // panic from deep inside the sampler.
    let g = TemporalGraph::from_edges(4, 3, Vec::new());
    let err = Session::builder(&g)
        .config(tiny_cfg(3, 0))
        .build()
        .unwrap_err();
    assert!(matches!(err, TgxError::EmptyGraph));

    let one_node = TemporalGraph::from_edges(1, 2, Vec::new());
    let err = Session::builder(&one_node)
        .config(tiny_cfg(3, 0))
        .build()
        .unwrap_err();
    assert!(matches!(err, TgxError::EmptyGraph));
}

#[test]
fn stats_sink_and_merge_through_the_session() {
    let g = ring_graph(8, 4);
    let mut cfg = tiny_cfg(4, 9);
    cfg.batch_centers = 4;
    let mut s = Session::builder(&g).config(cfg).build().unwrap();
    s.train().unwrap();
    let master = s.seed_policy().simulation_master(0);
    let reference = s
        .simulate_seeded(master, GraphSink::new(g.n_nodes(), g.n_timestamps()))
        .unwrap();
    // sharded stats runs merged through the public GenerationStats::merge
    let shard_stats = s
        .simulate_sharded(3, |_| StatsSink::new(g.n_timestamps()))
        .unwrap();
    let mut merged = GenerationStats::default();
    for stats in &shard_stats {
        merged.merge(stats);
    }
    assert_eq!(merged, GenerationStats::from_graph(&reference));
}
