//! ISSUE-6 crash-safety tests for the checkpoint rotation:
//!
//! - **rotation bookkeeping** — `checkpoint_rotating(path, every, keep)`
//!   retains exactly the `keep` newest generations at `path`, `path.1`, …;
//! - **fallback resume** — when the newest checkpoint is corrupt (the only
//!   one a crash can tear, since writes are atomic and rotation happens
//!   first), `resume_from` falls back to the older generation and the
//!   completed run is still bit-identical to an uninterrupted one;
//! - **torn-write regression** — with the `persist.atomic.partial` fault
//!   point armed, a checkpoint write fails mid-file yet the previous
//!   generation at `path` survives untouched (the pre-fix code truncated
//!   `path` in place, so a torn write destroyed it).

use tg_graph::{TemporalEdge, TemporalGraph};
use tgae::{Session, Tgae, TgaeConfig, TgxError};

fn ring_graph(n: u32, t_count: u32) -> TemporalGraph {
    let mut edges = Vec::new();
    for t in 0..t_count {
        for u in 0..n {
            edges.push(TemporalEdge::new(u, (u + 1) % n, t));
        }
    }
    TemporalGraph::from_edges(n as usize, t_count as usize, edges)
}

fn tiny_cfg(epochs: usize, seed: u64) -> TgaeConfig {
    let mut cfg = TgaeConfig::tiny();
    cfg.epochs = epochs;
    cfg.seed = seed;
    cfg
}

fn params_of(model: &Tgae) -> String {
    serde_json::to_string(&model.store).expect("serialise params")
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tgae_rotation_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn slot(path: &std::path::Path, i: usize) -> std::path::PathBuf {
    if i == 0 {
        path.to_path_buf()
    } else {
        let mut name = path.file_name().unwrap().to_os_string();
        name.push(format!(".{i}"));
        path.with_file_name(name)
    }
}

#[test]
fn rotation_retains_exactly_keep_generations() {
    let g = ring_graph(8, 2);
    let dir = tmp_dir("keepk");
    let path = dir.join("ckpt.json");
    let mut s = Session::builder(&g)
        .config(tiny_cfg(6, 5))
        .checkpoint_rotating(&path, 1, 3)
        .build()
        .unwrap();
    s.train().unwrap();
    // 6 checkpoint writes, keep 3: slots 0..=2 populated, never a slot 3
    for i in 0..3 {
        assert!(slot(&path, i).exists(), "missing rotation slot {i}");
    }
    assert!(!slot(&path, 3).exists(), "rotation leaked past keep");
    // every retained generation is a complete JSON checkpoint
    for i in 0..3 {
        let text = std::fs::read_to_string(slot(&path, i)).unwrap();
        assert!(text.contains("losses"), "slot {i} is not a checkpoint");
        assert!(text.ends_with('}'), "slot {i} is torn");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn zero_keep_is_rejected_at_build() {
    let g = ring_graph(6, 2);
    let err = Session::builder(&g)
        .config(tiny_cfg(4, 2))
        .checkpoint_rotating("/tmp/never.json", 2, 0)
        .build()
        .unwrap_err();
    assert!(matches!(err, TgxError::InvalidConfig(_)), "{err}");
}

#[test]
fn resume_falls_back_to_older_generation_when_newest_is_torn() {
    let g = ring_graph(10, 3);
    let dir = tmp_dir("fallback");
    let path = dir.join("ckpt.json");
    let cfg = tiny_cfg(8, 11);

    // the reference: one uninterrupted run
    let mut clean = Session::builder(&g).config(cfg.clone()).build().unwrap();
    let clean_report = clean.train().unwrap();

    // a checkpointed run (every 2 epochs, keep 2) that "crashes" after
    // its newest checkpoint gets torn
    let mut first = Session::builder(&g)
        .config(cfg.clone())
        .checkpoint_rotating(&path, 2, 2)
        .build()
        .unwrap();
    first.train().unwrap();
    assert!(slot(&path, 0).exists() && slot(&path, 1).exists());
    std::fs::write(&path, b"{\"version\":1,\"torn mid-wri").unwrap();

    // fresh session: resume must skip the damaged slot 0, restore slot 1
    // (epoch 6), re-run the remaining epochs, and land bit-identical
    let mut resumed = Session::builder(&g).config(cfg).build().unwrap();
    let report = resumed.resume_from(&path).unwrap();
    assert_eq!(report.losses, clean_report.losses);
    assert_eq!(params_of(resumed.model()), params_of(clean.model()));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_with_every_generation_damaged_reports_all_candidates() {
    let g = ring_graph(6, 2);
    let dir = tmp_dir("alldead");
    let path = dir.join("ckpt.json");
    std::fs::write(&path, b"garbage one").unwrap();
    std::fs::write(slot(&path, 1), b"garbage two").unwrap();
    let mut s = Session::builder(&g).config(tiny_cfg(4, 2)).build().unwrap();
    let err = s.resume_from(&path).unwrap_err();
    let msg = err.to_string();
    assert!(matches!(err, TgxError::CheckpointMismatch(_)), "{msg}");
    assert!(
        msg.contains("ckpt.json") && msg.contains("ckpt.json.1"),
        "{msg}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_checkpoint_write_leaves_previous_generation_intact() {
    // regression for the truncate-and-overwrite-in-place checkpoint bug:
    // needs the fault machinery compiled in (`--features tg-faults/enabled`,
    // which the workspace test run enables); a no-op otherwise.
    if !tg_faults::is_compiled() {
        return;
    }
    let g = ring_graph(8, 2);
    let dir = tmp_dir("torn");
    let path = dir.join("ckpt.json");
    let cfg = tiny_cfg(6, 7);

    // first run: land a valid mid-run checkpoint at `path` (after epoch
    // index 2), then stop early — simulating a run interrupted mid-way
    let mut s = Session::builder(&g)
        .config(cfg.clone())
        .checkpoint_rotating(&path, 3, 1)
        .observer(|e: &tgae::EpochEvent| {
            if e.epoch >= 2 {
                tgae::TrainControl::Stop
            } else {
                tgae::TrainControl::Continue
            }
        })
        .build()
        .unwrap();
    s.train().unwrap();
    let good_bytes = std::fs::read(&path).unwrap();

    // second run: every checkpoint write now fails mid-file
    tg_faults::clear();
    tg_faults::set("persist.atomic.partial", "err").unwrap();
    let mut crashing = Session::builder(&g)
        .config(cfg)
        .checkpoint_rotating(&path, 3, 1)
        .build()
        .unwrap();
    let err = crashing.resume_from(&path).unwrap_err();
    tg_faults::clear();
    assert!(matches!(err, TgxError::Checkpoint(_)), "{err}");

    // the torn write must not have harmed the committed checkpoint
    assert_eq!(std::fs::read(&path).unwrap(), good_bytes);
    std::fs::remove_dir_all(&dir).ok();
}
