//! Acceptance tests for the opt-in bf16 embedding-table precision:
//!
//! - **memory** — converting the node/time tables to bf16 halves their
//!   payload bytes exactly (everything else stays f32);
//! - **quality guard** — training the tiny preset at f32 and at bf16
//!   yields eval metrics within the documented drift bound (bf16 stores
//!   tables at ≤ 2⁻⁸ relative rounding error; all arithmetic is f32);
//! - **persistence** — `model.json` records the precision, round-trips
//!   it, and both checkpoint resume and serve adoption reject models
//!   whose precision disagrees, with a typed [`TgxError`], never a
//!   panic;
//! - **default** — `Precision::F32` stays the default, so existing call
//!   sites are untouched (the f32-vs-PR7 bit-identity itself is covered
//!   by `session_api.rs`).

use std::sync::Arc;
use tg_graph::sink::GraphSink;
use tg_graph::{TemporalEdge, TemporalGraph};
use tgae::{Precision, Session, SharedRun, Tgae, TgaeConfig, TgxError};

/// Per-metric drift bound between an f32-trained and a bf16-trained run
/// of the same seeded tiny preset: `|Δ| ≤ DRIFT_ABS + DRIFT_REL·|f32|`,
/// on both the avg and med scores. The two runs train genuinely
/// different trajectories (tables are rounded from step one), so this
/// bounds accumulated divergence, not per-op rounding; observed maxima
/// on the seeds below are several times smaller.
const DRIFT_ABS: f64 = 0.05;
const DRIFT_REL: f64 = 0.25;

fn ring_graph(n: u32, t_count: u32) -> TemporalGraph {
    let mut edges = Vec::new();
    for t in 0..t_count {
        for u in 0..n {
            edges.push(TemporalEdge::new(u, (u + 1) % n, t));
            edges.push(TemporalEdge::new(u, (u + 2) % n, t));
        }
    }
    TemporalGraph::from_edges(n as usize, t_count as usize, edges)
}

fn cfg_with(precision: Precision) -> TgaeConfig {
    let mut cfg = TgaeConfig::tiny();
    cfg.epochs = 8;
    cfg.seed = 2024;
    cfg.precision = precision;
    cfg
}

#[test]
fn bf16_halves_embedding_table_bytes() {
    let g = ring_graph(12, 3);
    let f32_model = Tgae::new(g.n_nodes(), g.n_timestamps(), cfg_with(Precision::F32));
    let bf_model = Tgae::new(g.n_nodes(), g.n_timestamps(), cfg_with(Precision::Bf16));
    assert_eq!(f32_model.n_parameters(), bf_model.n_parameters());
    let table_scalars = (g.n_nodes() + g.n_timestamps()) * f32_model.cfg.d_in;
    // f32 spends 4 B/scalar everywhere; bf16 drops the two tables to 2 B.
    assert_eq!(f32_model.parameter_bytes(), f32_model.n_parameters() * 4);
    assert_eq!(
        bf_model.parameter_bytes(),
        f32_model.parameter_bytes() - table_scalars * 2,
        "bf16 must halve exactly the embedding-table bytes"
    );
    assert!(bf_model.precision_consistent());
    assert_eq!(bf_model.cfg.precision, Precision::Bf16);
}

#[test]
fn bf16_training_quality_stays_within_documented_drift() {
    let g = ring_graph(14, 3);
    let shape = (g.n_nodes(), g.n_timestamps());
    let run = |precision: Precision| {
        let mut session = Session::builder(&g)
            .config(cfg_with(precision))
            .build()
            .expect("build");
        let report = session.train().expect("train");
        assert!(report.losses.iter().all(|l| l.is_finite()));
        let synth = session
            .simulate_seeded(7, GraphSink::new(shape.0, shape.1))
            .expect("simulate");
        session.evaluate(&synth).expect("evaluate")
    };
    let base = run(Precision::F32);
    let bf = run(Precision::Bf16);
    assert_eq!(base.len(), bf.len());
    // Guard against the comparison degenerating: the bf16 run must
    // actually have taken the reduced-precision path (tables are
    // rounded from init, so the loss trajectories cannot coincide).
    let losses = |p: Precision| {
        let mut s = Session::builder(&g).config(cfg_with(p)).build().unwrap();
        s.train().unwrap().losses
    };
    assert_ne!(
        losses(Precision::F32),
        losses(Precision::Bf16),
        "bf16 training must diverge from f32 (else the knob is dead)"
    );
    for (a, b) in base.iter().zip(&bf) {
        assert_eq!(a.kind, b.kind);
        for (x, y) in [(a.avg, b.avg), (a.med, b.med)] {
            assert!(
                (x - y).abs() <= DRIFT_ABS + DRIFT_REL * x.abs(),
                "{:?}: f32 {x} vs bf16 {y} exceeds drift bound",
                a.kind
            );
        }
    }
}

#[test]
fn model_json_round_trips_precision() {
    let g = ring_graph(10, 2);
    let model = Tgae::new(g.n_nodes(), g.n_timestamps(), cfg_with(Precision::Bf16));
    let dir = std::env::temp_dir().join(format!("tgae_bf16_rt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.json");
    tgae::save(&model, &path).expect("save");
    let loaded = tgae::load(&path).expect("load");
    assert_eq!(loaded.cfg.precision, Precision::Bf16);
    assert!(loaded.precision_consistent());
    // The payload is the same bytes the original reported (tables u16).
    assert_eq!(loaded.parameter_bytes(), model.parameter_bytes());
    // And the round trip is value-exact: bf16 bits reload as the same f32s.
    assert_eq!(
        serde_json::to_string(&loaded.store).unwrap(),
        serde_json::to_string(&model.store).unwrap()
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_rejects_checkpoints_with_different_precision() {
    let g = ring_graph(10, 2);
    let dir = std::env::temp_dir().join(format!("tgae_bf16_resume_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ckpt.json");
    // Train an f32 session that leaves a checkpoint behind.
    let mut f32_session = Session::builder(&g)
        .config(cfg_with(Precision::F32))
        .checkpoint(&path, 4)
        .build()
        .expect("build f32");
    f32_session.train().expect("train f32");
    // A bf16-configured session must refuse to resume it, naming the
    // precisions rather than a generic config mismatch.
    let mut bf_session = Session::builder(&g)
        .config(cfg_with(Precision::Bf16))
        .build()
        .expect("build bf16");
    let err = bf_session.resume_from(&path).expect_err("must reject");
    let msg = err.to_string();
    assert!(
        matches!(err, TgxError::CheckpointMismatch(_)),
        "wrong error: {err:?}"
    );
    assert!(
        msg.contains("f32") && msg.contains("bf16"),
        "message must name both precisions: {msg}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn adoption_and_serve_reject_tampered_precision() {
    let g = ring_graph(10, 2);
    // A model whose config *claims* f32 but whose tables are bf16 — the
    // shape a hand-edited model.json could take.
    let mut tampered = Tgae::new(g.n_nodes(), g.n_timestamps(), cfg_with(Precision::Bf16));
    tampered.cfg.precision = Precision::F32;
    let err = Session::builder(&g)
        .with_model(tampered.clone())
        .build()
        .expect_err("builder must reject");
    assert!(matches!(err, TgxError::CheckpointMismatch(_)), "{err:?}");
    let err = SharedRun::from_arcs(Arc::new(tampered), Arc::new(g.clone())).expect_err("serve");
    assert!(matches!(err, TgxError::CheckpointMismatch(_)), "{err:?}");
    // A consistent bf16 model is adopted and served fine.
    let honest = Tgae::new(g.n_nodes(), g.n_timestamps(), cfg_with(Precision::Bf16));
    assert!(Session::builder(&g)
        .with_model(honest.clone())
        .build()
        .is_ok());
    let run = SharedRun::new(honest, g.clone()).expect("shared run");
    let shape = (g.n_nodes(), g.n_timestamps());
    let out = run
        .simulate_seeded(3, GraphSink::new(shape.0, shape.1))
        .expect("bf16 generation");
    assert_eq!(out.n_edges(), g.n_edges());
}
