//! Variational ego-graph decoder — paper §IV-D, Algorithm 2.
//!
//! Two MLPs infer the posterior parameters `μ, log σ²` from ego-node
//! features; the reparameterised latent `Z = μ + σ ⊙ ε` seeds a recursive
//! reconstruction that walks the ego-graph outward from the center:
//! every visited temporal node `v` receives a decode state
//! `h(v) = h(parent) + Z(v)` and emits a categorical edge-probability row
//! `softmax(h(v) W_dec + b_dec)` over (a candidate set of) the `n` nodes.
//!
//! Implementation note (documented interpretation): Algorithm 2 emits rows
//! only at recursion depth `k`, yet the loss (Eq. 7) is the cross-entropy
//! of the *center's* adjacency row. We emit a row at **every** visited
//! node — the center at depth 0 (which realises Eq. 7 exactly) and each
//! sampled neighbor at depths `1..k` (which realises the "reconstruct the
//! entire ego-graph evolutionarily" description). Deduplicated slots with
//! several parents average their parents' decode states, keeping the batch
//! computation a DAG pass rather than a per-path walk.
//!
//! For graphs larger than `dense_cutoff` the softmax runs over a sampled
//! candidate set (all positive targets plus uniform negatives) — a sampled
//! softmax, which is what keeps decoding memory `O(n(T + n_s))` rather
//! than `O(T n²)`.
//!
//! During training the per-level logits produced by [`EgoDecoder::score`]
//! feed the **fused** softmax-cross-entropy
//! ([`tg_tensor::tape::Tape::softmax_xent`]): no `slots × candidates`
//! probability matrix is materialised on the tape — backward recomputes
//! probabilities from the logits — so each level's training-memory cost
//! is the logits matrix itself plus `O(slots)` softmax statistics.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::rc::Rc;
use tg_graph::NodeId;
use tg_sampling::ComputationGraph;
use tg_tensor::matrix::Matrix;
use tg_tensor::prelude::*;

/// The decoder parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EgoDecoder {
    /// `MLP_mu`: features -> latent mean.
    pub mlp_mu: Mlp,
    /// `MLP_sigma`: features -> latent log-variance.
    pub mlp_logvar: Mlp,
    /// Per-node output rows `W_dec` (`n x d_model`).
    pub w_dec: ParamId,
    /// Per-node output bias `b_dec` (`n x 1`).
    pub b_dec: ParamId,
    /// Latent / decode-state dimension `d_att`.
    pub d_model: usize,
    /// Number of nodes (rows of `W_dec`).
    pub n_nodes: usize,
}

/// Result of one decode pass: per-level decode states plus the variational
/// heads (needed for the KL term).
pub struct DecodeStates {
    /// `h_dec` rows per level (index 0 = centers).
    pub levels: Vec<Var>,
    /// Posterior mean over all slots (flattened level order).
    pub mu: Var,
    /// Posterior log-variance (absent for the non-probabilistic variant).
    pub logvar: Option<Var>,
}

impl EgoDecoder {
    /// Initialise the decoder parameters (Xavier) into `store`.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        rng: &mut R,
        d_in: usize,
        d_model: usize,
        n_nodes: usize,
    ) -> Self {
        let mlp_mu = Mlp::new(store, rng, "dec.mu", &[d_in, d_model], Activation::Identity);
        let mlp_logvar = Mlp::new(
            store,
            rng,
            "dec.logvar",
            &[d_in, d_model],
            Activation::Identity,
        );
        let w_dec = store.create("dec.w", xavier_uniform(rng, n_nodes, d_model));
        let b_dec = store.create("dec.b", Matrix::zeros(n_nodes, 1));
        EgoDecoder {
            mlp_mu,
            mlp_logvar,
            w_dec,
            b_dec,
            d_model,
            n_nodes,
        }
    }

    /// Latent `Z` for all slots. Probabilistic mode draws
    /// `Z = μ + exp(logvar/2) ⊙ ε`; deterministic mode (TGAE-p, Eq. 8) uses
    /// `Z = μ`. `x_all` are the slot features (flattened level order).
    pub fn latent<R: Rng + ?Sized>(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        x_all: Var,
        probabilistic: bool,
        rng: &mut R,
    ) -> (Var, Var, Option<Var>) {
        let mu = self.mlp_mu.forward(tape, store, x_all);
        if !probabilistic {
            return (mu, mu, None);
        }
        let logvar = self.mlp_logvar.forward(tape, store, x_all);
        let (rows, cols) = tape.shape(mu);
        let half = tape.scale(logvar, 0.5);
        let std = tape.exp(half);
        let eps = tape.input(normal_matrix(rng, rows, cols, 1.0));
        let noise = tape.mul(std, eps);
        let z = tape.add(mu, noise);
        (z, mu, Some(logvar))
    }

    /// Walk the computation graph outward, producing decode states per
    /// level: `h[0] = h_center_enc + Z[centers]`, then for each bipartite
    /// layer, children receive the mean of their parents' states plus
    /// their own `Z` row.
    pub fn decode_levels(
        &self,
        tape: &mut Tape,
        cg: &ComputationGraph,
        h_center_enc: Var,
        z_all: Var,
        level_offsets: &[usize],
    ) -> Vec<Var> {
        let k = cg.k();
        let z_level = |tape: &mut Tape, level: usize, z_all: Var| -> Var {
            let lo = level_offsets[level] as u32;
            let hi = level_offsets[level + 1] as u32;
            let idx: Rc<Vec<u32>> = Rc::new((lo..hi).collect());
            tape.gather_rows(z_all, idx)
        };
        let z0 = z_level(tape, 0, z_all);
        let mut levels = Vec::with_capacity(k + 1);
        levels.push(tape.add(h_center_enc, z0));
        for (i, layer) in cg.layers.iter().enumerate() {
            // mean over parent contributions per child slot
            let mut counts = vec![0f32; layer.n_sources];
            for &s in &layer.src {
                counts[s as usize] += 1.0;
            }
            let w: Vec<f32> = layer
                .src
                .iter()
                .map(|&s| 1.0 / counts[s as usize])
                .collect();
            let w_in = tape.input(Matrix::from_vec(w.len(), 1, w));
            let dst_idx: Rc<Vec<u32>> = Rc::new(layer.dst.clone());
            let src_idx: Rc<Vec<u32>> = Rc::new(layer.src.clone());
            let parent_rows = tape.gather_rows(levels[i], dst_idx);
            let weighted = tape.scale_rows(parent_rows, w_in);
            let agg = tape.scatter_add_rows(weighted, src_idx, layer.n_sources);
            let z_i = z_level(tape, i + 1, z_all);
            levels.push(tape.add(agg, z_i));
        }
        levels
    }

    /// Score decode states against a candidate node set:
    /// `logits = H W_dec[C]^T + b_dec[C]` (`rows x |C|`).
    pub fn score(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        h: Var,
        candidates: Rc<Vec<u32>>,
    ) -> Var {
        let w = tape.param(store, self.w_dec);
        let w_c = tape.gather_rows(w, candidates.clone());
        let logits = tape.matmul_nt(h, w_c);
        let b = tape.param(store, self.b_dec);
        let b_c = tape.gather_rows(b, candidates);
        let b_row = tape.transpose(b_c);
        tape.add_row(logits, b_row)
    }
}

/// Build a candidate set: all `positives`, plus `n_negatives` uniform
/// draws, deduplicated. In dense mode (`n <= dense_cutoff`) returns all
/// nodes. Returns `(candidates, index_of_candidate_by_node)` where the
/// lookup maps a global node id to its candidate column (dense vector,
/// `u32::MAX` = absent).
pub fn build_candidates<R: Rng + ?Sized>(
    n_nodes: usize,
    positives: impl Iterator<Item = NodeId>,
    dense_cutoff: usize,
    n_negatives: usize,
    rng: &mut R,
) -> (Rc<Vec<u32>>, Vec<u32>) {
    let mut lookup = vec![u32::MAX; n_nodes];
    if n_nodes <= dense_cutoff {
        let cands: Vec<u32> = (0..n_nodes as u32).collect();
        for (i, slot) in lookup.iter_mut().enumerate() {
            *slot = i as u32;
        }
        return (Rc::new(cands), lookup);
    }
    let mut cands: Vec<u32> = Vec::new();
    let push = |v: u32, cands: &mut Vec<u32>, lookup: &mut Vec<u32>| {
        if lookup[v as usize] == u32::MAX {
            lookup[v as usize] = cands.len() as u32;
            cands.push(v);
        }
    };
    for v in positives {
        push(v, &mut cands, &mut lookup);
    }
    for _ in 0..n_negatives {
        let v = rng.gen_range(0..n_nodes) as u32;
        push(v, &mut cands, &mut lookup);
    }
    (Rc::new(cands), lookup)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use tg_graph::{TemporalEdge, TemporalGraph};
    use tg_sampling::SamplerConfig;

    fn setup() -> (TemporalGraph, ComputationGraph) {
        let g = TemporalGraph::from_edges(
            4,
            2,
            vec![
                TemporalEdge::new(0, 1, 0),
                TemporalEdge::new(1, 2, 0),
                TemporalEdge::new(2, 3, 1),
            ],
        );
        let cfg = SamplerConfig {
            k: 2,
            threshold: 8,
            time_window: 1,
            degree_weighted: true,
        };
        let mut rng = SmallRng::seed_from_u64(0);
        let cg = ComputationGraph::build(&g, &[(1, 0), (2, 1)], &cfg, &mut rng);
        (g, cg)
    }

    #[test]
    fn latent_shapes_probabilistic_and_not() {
        let (_, cg) = setup();
        let mut store = ParamStore::new();
        let mut rng = SmallRng::seed_from_u64(1);
        let dec = EgoDecoder::new(&mut store, &mut rng, 6, 8, 4);
        let n_slots = cg.n_slots();
        let mut tape = Tape::new();
        let x = tape.input(Matrix::full(n_slots, 6, 0.1));
        let (z, mu, logvar) = dec.latent(&mut tape, &store, x, true, &mut rng);
        assert_eq!(tape.shape(z), (n_slots, 8));
        assert_eq!(tape.shape(mu), (n_slots, 8));
        assert!(logvar.is_some());
        // non-probabilistic: z == mu, no logvar
        let mut tape2 = Tape::new();
        let x2 = tape2.input(Matrix::full(n_slots, 6, 0.1));
        let (z2, mu2, lv2) = dec.latent(&mut tape2, &store, x2, false, &mut rng);
        assert_eq!(z2, mu2);
        assert!(lv2.is_none());
    }

    #[test]
    fn decode_levels_shapes() {
        let (_, cg) = setup();
        let mut store = ParamStore::new();
        let mut rng = SmallRng::seed_from_u64(2);
        let dec = EgoDecoder::new(&mut store, &mut rng, 6, 8, 4);
        let (_, offsets) = cg.all_slots();
        let mut tape = Tape::new();
        let h_enc = tape.input(Matrix::full(cg.centers().len(), 8, 0.2));
        let z = tape.input(Matrix::full(cg.n_slots(), 8, 0.1));
        let levels = dec.decode_levels(&mut tape, &cg, h_enc, z, &offsets);
        assert_eq!(levels.len(), cg.k() + 1);
        for (i, lvl) in levels.iter().enumerate() {
            assert_eq!(tape.shape(*lvl), (cg.levels[i].len(), 8), "level {i}");
        }
    }

    #[test]
    fn score_shapes_and_bias() {
        let mut store = ParamStore::new();
        let mut rng = SmallRng::seed_from_u64(3);
        let dec = EgoDecoder::new(&mut store, &mut rng, 6, 8, 10);
        let mut tape = Tape::new();
        let h = tape.input(normal_matrix(&mut rng, 3, 8, 1.0));
        let cands: Rc<Vec<u32>> = Rc::new(vec![0, 3, 7]);
        let logits = dec.score(&mut tape, &store, h, cands);
        assert_eq!(tape.shape(logits), (3, 3));
    }

    #[test]
    fn candidates_dense_mode() {
        let mut rng = SmallRng::seed_from_u64(4);
        let (c, lookup) = build_candidates(100, [5u32, 7].into_iter(), 4096, 10, &mut rng);
        assert_eq!(c.len(), 100);
        assert_eq!(lookup[42], 42);
    }

    #[test]
    fn candidates_sparse_mode_contains_positives() {
        let mut rng = SmallRng::seed_from_u64(5);
        let (c, lookup) =
            build_candidates(10_000, [42u32, 4242, 42].into_iter(), 100, 16, &mut rng);
        assert!(c.len() <= 2 + 16);
        assert!(lookup[42] != u32::MAX);
        assert!(lookup[4242] != u32::MAX);
        // dedup: 42 appears once
        assert_eq!(c.iter().filter(|&&v| v == 42).count(), 1);
        // lookup is consistent
        for (col, &v) in c.iter().enumerate() {
            assert_eq!(lookup[v as usize] as usize, col);
        }
    }

    #[test]
    fn gradients_flow_through_decoder() {
        let (g, cg) = setup();
        let mut store = ParamStore::new();
        let mut rng = SmallRng::seed_from_u64(6);
        let dec = EgoDecoder::new(&mut store, &mut rng, 6, 8, g.n_nodes());
        let (slots, offsets) = cg.all_slots();
        let mut tape = Tape::new();
        let x = tape.input(normal_matrix(&mut rng, cg.n_slots(), 6, 0.5));
        let (z, _mu, logvar) = dec.latent(&mut tape, &store, x, true, &mut rng);
        let h_enc = tape.input(normal_matrix(&mut rng, cg.centers().len(), 8, 0.5));
        let levels = dec.decode_levels(&mut tape, &cg, h_enc, z, &offsets);
        let cands: Rc<Vec<u32>> = Rc::new((0..g.n_nodes() as u32).collect());
        // loss: xent of level-0 rows against observed out-neighbors
        let mut targets = Vec::new();
        for (r, &(v, t)) in cg.centers().iter().enumerate() {
            for nb in g.out_neighbors_at(v, t) {
                targets.push((r as u32, nb, 1.0f32));
            }
        }
        assert!(!targets.is_empty());
        let logits = dec.score(&mut tape, &store, levels[0], cands);
        let xent = tape.softmax_xent(logits, Rc::new(targets), 1.0);
        let kl = {
            let lv = logvar.unwrap();
            let mu2 = tape.gather_rows(z, Rc::new((0..slots.len() as u32).collect()));
            tape.kl_normal(mu2, lv, 0.01)
        };
        let loss = tape.add(xent, kl);
        let grads = tape.backward(loss);
        assert!(grads.get(dec.w_dec).is_some());
        assert!(grads.get(dec.b_dec).is_some());
        assert!(grads.get(dec.mlp_mu.layers[0].w).is_some());
    }
}
