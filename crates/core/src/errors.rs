//! Typed errors for the [`Session`](crate::session::Session) pipeline.
//!
//! The PR-3 free functions (`fit`, `generate`, `SimulationEngine::new`)
//! `assert!`ed their preconditions and panicked on bad input. The session
//! API reports the same conditions as a [`TgxError`] instead, so callers —
//! in particular the `tgx-cli` driver, whose workers run other people's
//! files — can distinguish "your graph doesn't match your model" from a
//! genuine engine bug and exit with a message rather than a backtrace.
//!
//! The enum is `thiserror`-shaped by hand (the build container vendors no
//! proc-macro error crates): every variant carries its context, `Display`
//! renders a one-line human message, and `source()` chains the underlying
//! I/O or codec error where one exists.

use crate::persist::PersistError;

/// Everything that can go wrong in the train → simulate → evaluate
/// pipeline, short of an engine bug (those still panic).
#[derive(Debug)]
#[non_exhaustive]
pub enum TgxError {
    /// The observed graph and the model were shaped for different node
    /// counts.
    NodeCountMismatch {
        /// Nodes the model was built for.
        model: usize,
        /// Nodes in the observed graph.
        graph: usize,
    },
    /// The observed graph has more timestamps than the model was built
    /// for (or, on [`Session::evaluate`](crate::session::Session::evaluate),
    /// the synthetic graph covers fewer timestamps than the observed one).
    TimestampMismatch {
        /// Timestamps the model (or observed horizon) expects.
        model: usize,
        /// Timestamps actually present.
        graph: usize,
    },
    /// The observed graph has no timestamps or no temporal node with
    /// positive out-degree — there is nothing to learn from or simulate.
    EmptyGraph,
    /// A configuration field is out of its valid range (zero epochs, zero
    /// model dimensions, …). The message names the field.
    InvalidConfig(String),
    /// Reading or writing a checkpoint failed (missing file, permissions,
    /// corrupt/incompatible JSON). Wraps the underlying [`PersistError`].
    Checkpoint(PersistError),
    /// A checkpoint loaded fine but belongs to a different run: its model
    /// shape or configuration disagrees with this session's.
    CheckpointMismatch(String),
    /// The training loop was cancelled by the
    /// [`RunObserver`](crate::session::RunObserver) before any epoch ran,
    /// so there is no report to return.
    Cancelled,
    /// Streaming the observed graph out of an
    /// [`EdgeSource`](tg_graph::source::EdgeSource) failed — an I/O or
    /// corruption error from the source (e.g. a damaged `tg-store` file),
    /// or a stream that violated the chunk-order contract. The message
    /// carries the source's own diagnosis.
    Ingest(String),
}

impl std::fmt::Display for TgxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TgxError::NodeCountMismatch { model, graph } => write!(
                f,
                "graph/model node-count mismatch: model was shaped for {model} nodes, graph has {graph}"
            ),
            TgxError::TimestampMismatch { model, graph } => write!(
                f,
                "timestamp-count mismatch: expected up to {model} timestamps, graph has {graph}"
            ),
            TgxError::EmptyGraph => write!(
                f,
                "observed graph has no temporal nodes to learn from or simulate"
            ),
            TgxError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            TgxError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            TgxError::CheckpointMismatch(msg) => write!(f, "checkpoint mismatch: {msg}"),
            TgxError::Cancelled => write!(f, "run cancelled by observer before the first epoch"),
            TgxError::Ingest(msg) => write!(f, "ingesting the observed graph failed: {msg}"),
        }
    }
}

impl std::error::Error for TgxError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TgxError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PersistError> for TgxError {
    fn from(e: PersistError) -> Self {
        TgxError::Checkpoint(e)
    }
}

impl From<tg_faults::FaultError> for TgxError {
    fn from(e: tg_faults::FaultError) -> Self {
        TgxError::Checkpoint(PersistError::Io(e.into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_name_the_condition() {
        let e = TgxError::NodeCountMismatch {
            model: 10,
            graph: 12,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("12"));
        assert!(TgxError::EmptyGraph
            .to_string()
            .contains("no temporal nodes"));
        assert!(TgxError::InvalidConfig("epochs must be > 0".into())
            .to_string()
            .contains("epochs"));
    }

    #[test]
    fn checkpoint_errors_chain_their_source() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = TgxError::from(PersistError::Io(io));
        assert!(matches!(e, TgxError::Checkpoint(_)));
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("checkpoint"));
    }
}
