//! Temporal graph attention (TGAT) encoder — paper §IV-C, Eqs. 3–5.
//!
//! The encoder stacks `k` multi-head graph-attention layers over the
//! merged k-bipartite computation graph, passing messages from the
//! periphery (level `k`) inward to the centers (level 0). One layer runs
//! per bipartite level, exactly the batched schedule of Fig. 4.
//!
//! Per head `i` (Eqs. 4–5):
//! `α_{u,v} = softmax_v( LeakyReLU( a_i^T [W h_v ‖ W h_u] ) )` over the
//! sampled in-neighborhood of each target, followed by the α-weighted sum
//! of projected source messages; heads are concatenated and projected by
//! `W_o` (Eq. 3). Every target has a self-loop source slot, so segments
//! are never empty.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::rc::Rc;
use tg_sampling::{BipartiteLayer, ComputationGraph};
use tg_tensor::prelude::*;

/// One attention head's parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct TgaHead {
    /// Projection `W` (`in_dim x d_head`).
    w: ParamId,
    /// Attention vector, source half (`d_head x 1`).
    a_src: ParamId,
    /// Attention vector, target/query half (`d_head x 1`).
    a_dst: ParamId,
}

/// One multi-head TGAT layer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TgatLayer {
    heads: Vec<TgaHead>,
    /// Output projection `W_o` (`heads*d_head x out_dim`), Eq. 3.
    w_o: Linear,
    /// Input row width this layer consumes.
    pub in_dim: usize,
    /// Per-head hidden dimension `d_enc`.
    pub d_head: usize,
    /// Output row width after the `W_o` projection.
    pub out_dim: usize,
}

impl TgatLayer {
    /// Initialise one multi-head layer's parameters (Xavier) into `store`.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        rng: &mut R,
        name: &str,
        in_dim: usize,
        d_head: usize,
        n_heads: usize,
        out_dim: usize,
    ) -> Self {
        let heads = (0..n_heads)
            .map(|h| TgaHead {
                w: store.create(
                    format!("{name}.h{h}.w"),
                    xavier_uniform(rng, in_dim, d_head),
                ),
                a_src: store.create(format!("{name}.h{h}.a_src"), xavier_uniform(rng, d_head, 1)),
                a_dst: store.create(format!("{name}.h{h}.a_dst"), xavier_uniform(rng, d_head, 1)),
            })
            .collect();
        let w_o = Linear::new(
            store,
            rng,
            &format!("{name}.w_o"),
            n_heads * d_head,
            out_dim,
        );
        TgatLayer {
            heads,
            w_o,
            in_dim,
            d_head,
            out_dim,
        }
    }

    /// Run one bipartite attention step: `h_src` are source-level hidden
    /// rows (`n_sources x in_dim`); returns target-level rows
    /// (`n_targets x out_dim`).
    pub fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        h_src: Var,
        layer: &BipartiteLayer,
    ) -> Var {
        assert_eq!(tape.shape(h_src).0, layer.n_sources, "source row mismatch");
        let src_idx: Rc<Vec<u32>> = Rc::new(layer.src.clone());
        let seg: Rc<Vec<u32>> = Rc::new(layer.dst.clone());
        // per-edge index of the target's own (self-loop) source slot
        let query_idx: Rc<Vec<u32>> = Rc::new(
            layer
                .dst
                .iter()
                .map(|&d| layer.self_idx[d as usize])
                .collect(),
        );

        let mut head_outs = Vec::with_capacity(self.heads.len());
        for head in &self.heads {
            let w = tape.param(store, head.w);
            let hw = tape.matmul(h_src, w); // n_src x d_head
            let a_s = tape.param(store, head.a_src);
            let a_d = tape.param(store, head.a_dst);
            let s_src = tape.matmul(hw, a_s); // n_src x 1
            let s_dst = tape.matmul(hw, a_d); // n_src x 1 (queried at self slots)
            let e_src = tape.gather_rows(s_src, src_idx.clone());
            let e_dst = tape.gather_rows(s_dst, query_idx.clone());
            let e_sum = tape.add(e_src, e_dst);
            let e = tape.leaky_relu(e_sum, 0.2); // Eq. 5
            let alpha = tape.segment_softmax(e, seg.clone(), layer.n_targets);
            let msgs = tape.gather_rows(hw, src_idx.clone());
            let weighted = tape.scale_rows(msgs, alpha);
            let agg = tape.scatter_add_rows(weighted, seg.clone(), layer.n_targets);
            head_outs.push(tape.leaky_relu(agg, 0.2)); // σ of Eq. 4
        }
        // Concat heads then project (Eq. 3).
        let mut cat = head_outs[0];
        for &h in &head_outs[1..] {
            cat = tape.concat_cols(cat, h);
        }
        self.w_o.forward(tape, store, cat)
    }
}

/// The stacked k-layer encoder. Layer `i` consumes level `i+1` rows and
/// produces level `i` rows; `layers[k-1]` (the outermost) reads the raw
/// `d_in` features, every other layer reads `d_model` hidden rows.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TgatEncoder {
    /// `layers[i]` maps level `i+1` rows to level `i` rows; index `k-1`
    /// is the outermost (reads raw `d_in` features).
    pub layers: Vec<TgatLayer>,
}

impl TgatEncoder {
    /// Initialise the `k` stacked layers' parameters into `store`.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        rng: &mut R,
        k: usize,
        d_in: usize,
        d_head: usize,
        heads: usize,
        d_model: usize,
    ) -> Self {
        assert!(k >= 1, "encoder needs at least one layer");
        let layers = (0..k)
            .map(|i| {
                let in_dim = if i == k - 1 { d_in } else { d_model };
                TgatLayer::new(
                    store,
                    rng,
                    &format!("enc.l{i}"),
                    in_dim,
                    d_head,
                    heads,
                    d_model,
                )
            })
            .collect();
        TgatEncoder { layers }
    }

    /// Encode the computation graph. `outer_features` are the raw features
    /// of the deepest level (`levels[k]`). Returns hidden rows for every
    /// level `0..k` (index 0 = centers).
    pub fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        cg: &ComputationGraph,
        outer_features: Var,
    ) -> Vec<Var> {
        let k = self.layers.len();
        assert_eq!(cg.k(), k, "computation graph radius != encoder depth");
        let mut h = outer_features;
        let mut per_level: Vec<Var> = Vec::with_capacity(k);
        for i in (0..k).rev() {
            h = self.layers[i].forward(tape, store, h, &cg.layers[i]);
            per_level.push(h);
        }
        per_level.reverse(); // now index 0 = centers
        per_level
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use tg_graph::{TemporalEdge, TemporalGraph};
    use tg_sampling::SamplerConfig;

    fn toy_graph() -> TemporalGraph {
        TemporalGraph::from_edges(
            5,
            2,
            vec![
                TemporalEdge::new(0, 1, 0),
                TemporalEdge::new(1, 2, 0),
                TemporalEdge::new(2, 3, 1),
                TemporalEdge::new(3, 4, 1),
                TemporalEdge::new(0, 4, 1),
            ],
        )
    }

    fn build_cg(k: usize) -> ComputationGraph {
        let g = toy_graph();
        let cfg = SamplerConfig {
            k,
            threshold: 10,
            time_window: 1,
            degree_weighted: true,
        };
        let mut rng = SmallRng::seed_from_u64(0);
        ComputationGraph::build(&g, &[(0, 0), (2, 1)], &cfg, &mut rng)
    }

    #[test]
    fn layer_shapes() {
        let cg = build_cg(1);
        let mut store = ParamStore::new();
        let mut rng = SmallRng::seed_from_u64(1);
        let layer = TgatLayer::new(&mut store, &mut rng, "l", 6, 4, 2, 8);
        let mut tape = Tape::new();
        let h = tape.input(Matrix::full(cg.layers[0].n_sources, 6, 0.1));
        let out = layer.forward(&mut tape, &store, h, &cg.layers[0]);
        assert_eq!(tape.shape(out), (cg.layers[0].n_targets, 8));
    }

    #[test]
    fn encoder_stacks_to_centers() {
        let cg = build_cg(2);
        let mut store = ParamStore::new();
        let mut rng = SmallRng::seed_from_u64(2);
        let enc = TgatEncoder::new(&mut store, &mut rng, 2, 6, 4, 2, 8);
        let mut tape = Tape::new();
        let feats = tape.input(Matrix::full(cg.levels[2].len(), 6, 0.1));
        let levels = enc.forward(&mut tape, &store, &cg, feats);
        assert_eq!(levels.len(), 2);
        assert_eq!(tape.shape(levels[0]), (cg.levels[0].len(), 8));
        assert_eq!(tape.shape(levels[1]), (cg.levels[1].len(), 8));
    }

    #[test]
    fn gradients_flow_to_all_layer_params() {
        let cg = build_cg(2);
        let mut store = ParamStore::new();
        let mut rng = SmallRng::seed_from_u64(3);
        let enc = TgatEncoder::new(&mut store, &mut rng, 2, 6, 4, 2, 8);
        let n_params = store.len();
        let mut tape = Tape::new();
        let feats = tape.input(Matrix::full(cg.levels[2].len(), 6, 0.3));
        let levels = enc.forward(&mut tape, &store, &cg, feats);
        let loss = tape.sum(levels[0]);
        let grads = tape.backward(loss);
        let with_grad = grads.iter().count();
        assert_eq!(with_grad, n_params, "some encoder params got no gradient");
    }

    #[test]
    fn attention_weights_differ_for_different_inputs() {
        // with random (non-constant) features, two different targets should
        // generally produce different center outputs
        let cg = build_cg(1);
        let mut store = ParamStore::new();
        let mut rng = SmallRng::seed_from_u64(4);
        let layer = TgatLayer::new(&mut store, &mut rng, "l", 6, 4, 2, 8);
        let mut tape = Tape::new();
        let feats = normal_matrix(&mut rng, cg.layers[0].n_sources, 6, 1.0);
        let h = tape.input(feats);
        let out = layer.forward(&mut tape, &store, h, &cg.layers[0]);
        let m = tape.value(out);
        assert_ne!(m.row(0), m.row(1));
    }

    #[test]
    #[should_panic(expected = "radius != encoder depth")]
    fn depth_mismatch_panics() {
        let cg = build_cg(1);
        let mut store = ParamStore::new();
        let mut rng = SmallRng::seed_from_u64(5);
        let enc = TgatEncoder::new(&mut store, &mut rng, 2, 6, 4, 2, 8);
        let mut tape = Tape::new();
        let feats = tape.input(Matrix::zeros(cg.levels[1].len(), 6));
        enc.forward(&mut tape, &store, &cg, feats);
    }
}
