//! Model checkpointing: save/load a trained TGAE as JSON.
//!
//! Everything a model needs to regenerate graphs — config, parameter
//! store, layer wiring — is serde-serialisable, so a checkpoint is a
//! single self-describing file. JSON is chosen over a binary format
//! because checkpoints at TGAE's scale are small (the biggest tensors are
//! the `n x d` embedding/decoder tables) and diffable.

use crate::model::Tgae;
use std::io::BufReader;
use std::path::Path;

/// Errors produced by checkpoint I/O.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem error (missing path, permissions, short write, …).
    Io(std::io::Error),
    /// JSON (de)serialisation error (corrupt or incompatible checkpoint).
    Codec(serde_json::Error),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "checkpoint io error: {e}"),
            PersistError::Codec(e) => write!(f, "checkpoint codec error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Codec(e)
    }
}

/// Write any serialisable document as JSON (the shared primitive behind
/// model checkpoints and the session's [`TrainCheckpoint`]s).
///
/// The write is atomic: bytes land in a tmp sibling that is fsynced and
/// renamed over `path`, so a crash mid-save can tear the tmp file but
/// never the previous checkpoint at `path`.
///
/// [`TrainCheckpoint`]: crate::trainer::TrainCheckpoint
pub fn save_json<T: serde::Serialize>(
    value: &T,
    path: impl AsRef<Path>,
) -> Result<(), PersistError> {
    let bytes = serde_json::to_string(value)?.into_bytes();
    tg_graph::io::atomic_write_bytes(path, &bytes)?;
    Ok(())
}

/// Read a JSON document written by [`save_json`].
pub fn load_json<T: serde::Deserialize>(path: impl AsRef<Path>) -> Result<T, PersistError> {
    let f = std::fs::File::open(path)?;
    Ok(serde_json::from_reader(BufReader::new(f))?)
}

/// Write a model checkpoint.
pub fn save(model: &Tgae, path: impl AsRef<Path>) -> Result<(), PersistError> {
    save_json(model, path)
}

/// Load a model checkpoint.
pub fn load(path: impl AsRef<Path>) -> Result<Tgae, PersistError> {
    load_json(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TgaeConfig;
    use crate::engine::generate_with_sink;
    use crate::trainer::{train_loop, LoopHooks};
    use tg_graph::sink::GraphSink;
    use tg_graph::{TemporalEdge, TemporalGraph};

    fn toy() -> TemporalGraph {
        let edges: Vec<TemporalEdge> = (0..12)
            .map(|i| TemporalEdge::new(i % 4, (i + 1) % 4, i % 3))
            .collect();
        TemporalGraph::from_edges(4, 3, edges)
    }

    #[test]
    fn save_load_roundtrip_preserves_generation() {
        let g = toy();
        let mut cfg = TgaeConfig::tiny();
        cfg.epochs = 4;
        let mut model = Tgae::new(g.n_nodes(), g.n_timestamps(), cfg);
        train_loop(&mut model, &g, LoopHooks::none()).expect("train");
        let dir = std::env::temp_dir().join("tgae_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        save(&model, &path).expect("save");
        let restored = load(&path).expect("load");
        assert_eq!(restored.n_nodes, model.n_nodes);
        assert_eq!(restored.n_parameters(), model.n_parameters());
        let sink = || GraphSink::new(g.n_nodes(), g.n_timestamps());
        let a = generate_with_sink(&model, &g, 1, sink());
        let b = generate_with_sink(&restored, &g, 1, sink());
        assert_eq!(a.edges(), b.edges());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        let Err(err) = load("/definitely/not/a/path.json") else {
            panic!("expected error")
        };
        assert!(matches!(err, PersistError::Io(_)));
        assert!(err.to_string().contains("io error"));
    }

    #[test]
    fn load_garbage_errors() {
        let dir = std::env::temp_dir().join("tgae_ckpt_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, b"{not json").unwrap();
        let Err(err) = load(&path) else {
            panic!("expected error")
        };
        assert!(matches!(err, PersistError::Codec(_)));
        std::fs::remove_file(&path).ok();
    }
}
