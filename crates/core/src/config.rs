//! TGAE model and training configuration.

use serde::{Deserialize, Serialize};
use tg_sampling::SamplerConfig;
use tg_tensor::params::Precision;

/// The ablation variants of §IV-F (Table VII).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TgaeVariant {
    /// Full model.
    Full,
    /// TGAE-g: random-walk context (`th = 1`) instead of ego-graphs.
    RandomWalk,
    /// TGAE-t: no neighbor truncation.
    NoTruncation,
    /// TGAE-n: uniform initial node sampling instead of Eq. 2.
    UniformSampling,
    /// TGAE-p: deterministic (non-probabilistic) decoder — `Z = MLP_mu(X)`,
    /// no reparameterisation, no KL term (Eqs. 8–9).
    NonProbabilistic,
}

impl TgaeVariant {
    /// Display name matching Table VII's column headers.
    pub fn name(self) -> &'static str {
        match self {
            TgaeVariant::Full => "TGAE",
            TgaeVariant::RandomWalk => "TGAE-g",
            TgaeVariant::NoTruncation => "TGAE-t",
            TgaeVariant::UniformSampling => "TGAE-n",
            TgaeVariant::NonProbabilistic => "TGAE-p",
        }
    }

    /// All variants in Table VII order.
    pub const ALL: [TgaeVariant; 5] = [
        TgaeVariant::Full,
        TgaeVariant::RandomWalk,
        TgaeVariant::NoTruncation,
        TgaeVariant::UniformSampling,
        TgaeVariant::NonProbabilistic,
    ];
}

/// Full TGAE configuration: architecture + sampling + optimisation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TgaeConfig {
    /// Input feature dimension `d_in` (node-id + timestamp embeddings).
    pub d_in: usize,
    /// Hidden dimension per attention head `d_enc`.
    pub d_head: usize,
    /// Number of attention heads `h_tga` (Eq. 3).
    pub heads: usize,
    /// Output dimension of the encoder / decoder latent `d_att`.
    pub d_model: usize,
    /// Ego-graph sampler settings (radius `k` = number of TGAT layers).
    pub sampler: SamplerConfig,
    /// Initial temporal nodes per batch, `n_s` (Eq. 7).
    pub batch_centers: usize,
    /// Training epochs (each epoch = one sampled batch pass).
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Weight of the KL term (β-VAE style; 1.0 = Eq. 6).
    pub kl_beta: f32,
    /// Global-norm gradient clip.
    pub grad_clip: f64,
    /// Use the dense n-way softmax when `n <= dense_cutoff`; otherwise
    /// score against a sampled candidate set (positives + negatives).
    pub dense_cutoff: usize,
    /// Number of uniform negative candidates in sparse mode.
    pub n_negatives: usize,
    /// Generation softmax temperature: logits are divided by this before
    /// sampling. `< 1` sharpens rows, concentrating repeated draws on the
    /// same partners across timestamps (how real temporal graphs behave);
    /// `1.0` reproduces the raw learned distribution.
    pub gen_temperature: f32,
    /// Storage precision of the node/time embedding tables (they
    /// dominate model memory). [`Precision::F32`] — the default — is
    /// bit-identical to every earlier release; [`Precision::Bf16`]
    /// halves table bytes and gather bandwidth at ≤ 2⁻⁸ relative
    /// rounding error per scalar, with all arithmetic still in f32.
    /// Persisted in `model.json`; resume and serve reject checkpoints
    /// whose precision differs from the session's.
    pub precision: Precision,
    /// Model variant (ablations).
    pub variant: TgaeVariant,
    /// RNG seed for parameter init and sampling.
    pub seed: u64,
}

impl Default for TgaeConfig {
    fn default() -> Self {
        TgaeConfig {
            d_in: 32,
            d_head: 16,
            heads: 4,
            d_model: 32,
            sampler: SamplerConfig::default(),
            batch_centers: 64,
            epochs: 60,
            lr: 5e-3,
            kl_beta: 1e-3,
            grad_clip: 5.0,
            dense_cutoff: 4096,
            n_negatives: 512,
            gen_temperature: 0.7,
            precision: Precision::F32,
            variant: TgaeVariant::Full,
            seed: 42,
        }
    }
}

impl TgaeConfig {
    /// Apply a variant: adjusts the sampler and decoder knobs, returning
    /// the updated config.
    pub fn with_variant(mut self, variant: TgaeVariant) -> Self {
        self.variant = variant;
        match variant {
            TgaeVariant::Full | TgaeVariant::NonProbabilistic => {}
            TgaeVariant::RandomWalk => self.sampler = self.sampler.random_walk_variant(),
            TgaeVariant::NoTruncation => self.sampler = self.sampler.no_truncation_variant(),
            TgaeVariant::UniformSampling => self.sampler = self.sampler.uniform_sampling_variant(),
        }
        self
    }

    /// A small configuration for tests and quick examples.
    pub fn tiny() -> Self {
        TgaeConfig {
            d_in: 8,
            d_head: 4,
            heads: 2,
            d_model: 8,
            batch_centers: 16,
            epochs: 15,
            n_negatives: 32,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_names_match_table7() {
        let names: Vec<&str> = TgaeVariant::ALL.iter().map(|v| v.name()).collect();
        assert_eq!(names, vec!["TGAE", "TGAE-g", "TGAE-t", "TGAE-n", "TGAE-p"]);
    }

    #[test]
    fn with_variant_adjusts_sampler() {
        let c = TgaeConfig::default().with_variant(TgaeVariant::RandomWalk);
        assert_eq!(c.sampler.threshold, 1);
        let c = TgaeConfig::default().with_variant(TgaeVariant::NoTruncation);
        assert_eq!(c.sampler.threshold, usize::MAX);
        let c = TgaeConfig::default().with_variant(TgaeVariant::UniformSampling);
        assert!(!c.sampler.degree_weighted);
        let c = TgaeConfig::default().with_variant(TgaeVariant::NonProbabilistic);
        assert_eq!(c.sampler.threshold, SamplerConfig::default().threshold);
    }
}
