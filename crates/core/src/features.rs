//! Temporal node features.
//!
//! The paper uses "node identity numbers as default node features" with
//! per-snapshot feature matrices `X^(t)`. The dense equivalent of a one-hot
//! node id (and one-hot timestamp) times a weight matrix is an embedding
//! lookup, so a temporal node `(v, t)` is featurised as
//! `node_emb[v] + time_emb[t]`. Keeping the two tables separate costs
//! `O((n + T) d)` instead of the paper's `O(nT d)` materialised features —
//! one of the memory wins the Fig. 6 comparison depends on.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::rc::Rc;
use tg_graph::{NodeId, Time};
use tg_tensor::prelude::*;

/// Learned node-id + timestamp embedding tables.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TemporalFeatures {
    /// Per-node-id embedding table (`n_nodes x dim`).
    pub node_emb: Embedding,
    /// Per-timestamp embedding table (`n_timestamps x dim`).
    pub time_emb: Embedding,
    /// Feature dimension `d_in`.
    pub dim: usize,
}

impl TemporalFeatures {
    /// Create both tables in `store` with `N(0, 1/dim)` rows.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        rng: &mut R,
        n_nodes: usize,
        n_timestamps: usize,
        dim: usize,
    ) -> Self {
        TemporalFeatures {
            node_emb: Embedding::new(store, rng, "feat.node", n_nodes, dim),
            time_emb: Embedding::new(store, rng, "feat.time", n_timestamps, dim),
            dim,
        }
    }

    /// Features for a list of temporal-node slots: `node_emb[v] + time_emb[t]`.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, slots: &[(NodeId, Time)]) -> Var {
        let v_idx: Rc<Vec<u32>> = Rc::new(slots.iter().map(|&(v, _)| v).collect());
        let t_idx: Rc<Vec<u32>> = Rc::new(slots.iter().map(|&(_, t)| t).collect());
        let nv = self.node_emb.forward(tape, store, v_idx);
        let tv = self.time_emb.forward(tape, store, t_idx);
        tape.add(nv, tv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn features_combine_node_and_time() {
        let mut store = ParamStore::new();
        let mut rng = SmallRng::seed_from_u64(0);
        let feats = TemporalFeatures::new(&mut store, &mut rng, 4, 3, 5);
        let mut tape = Tape::new();
        let x = feats.forward(&mut tape, &store, &[(0, 0), (0, 1), (1, 0)]);
        assert_eq!(tape.shape(x), (3, 5));
        // same node at different times must differ; different nodes at the
        // same time must differ
        let m = tape.value(x);
        assert_ne!(m.row(0), m.row(1));
        assert_ne!(m.row(0), m.row(2));
    }

    #[test]
    fn gradients_reach_both_tables() {
        let mut store = ParamStore::new();
        let mut rng = SmallRng::seed_from_u64(1);
        let feats = TemporalFeatures::new(&mut store, &mut rng, 3, 2, 4);
        let mut tape = Tape::new();
        let x = feats.forward(&mut tape, &store, &[(2, 1)]);
        let loss = tape.sum(x);
        let grads = tape.backward(loss);
        assert!(grads.get(feats.node_emb.table).is_some());
        assert!(grads.get(feats.time_emb.table).is_some());
    }
}
