//! The `Session` API: one owned object for the whole
//! **train → simulate → evaluate** lifecycle.
//!
//! The paper's pitch is an *efficient end-to-end pipeline*: train a TGAE
//! once on an observed temporal graph, then cheaply generate (and score)
//! many synthetic graphs. Before PR 4 that pipeline was a bag of free
//! functions — `fit(&mut model, &g)`, `generate(&model, &g, &mut rng)` —
//! with `&mut SmallRng` threaded through every call and `assert!`s that
//! panic on bad input. A [`Session`] owns the lifecycle instead:
//!
//! ```text
//! Session::builder(&observed)          SeedPolicy (one master u64)
//!     .config(cfg)                     RunObserver (epoch hook: progress,
//!     .seed(7)                                      early stop, cancel)
//!     .observer(obs)                   CheckpointPolicy (every N epochs)
//!     .checkpoint(path, 5)
//!     .build()?                        -> typed TgxError, never a panic
//!        |
//!     train() ----------- checkpoints ----> ckpt.json
//!        |                                     |
//!        |   (crash / ctrl-C)   resume_from(ckpt.json)  [bit-identical]
//!        v
//!     simulate() / simulate_sharded(k, ..) / simulate_shard_with_sink(spec, ..)
//!        |
//!     evaluate(&synthetic)             -> Eq. 10 metric scores
//! ```
//!
//! # Determinism contract
//!
//! A session is driven by a single [`SeedPolicy`] master seed; internals
//! derive SplitMix64 sub-streams exactly as the simulation engine already
//! does for its work units. For the same config the session path is
//! **bit-identical** to the PR-3 free functions (regression-tested in
//! `tests/session_api.rs`):
//!
//! - [`Session::train`] reproduces `fit`'s parameter trajectory exactly
//!   (same RNG stream `seed ^ 0x5eed_1234`, same update order);
//! - [`Session::simulate_seeded`] with master `m` reproduces
//!   `generate_with_sink(.., m, ..)` exactly;
//! - [`Session::resume_from`] a mid-run checkpoint and training to the end
//!   reproduces an uninterrupted run bit-for-bit (the checkpoint carries
//!   the model, the Adam moments, and the raw RNG state);
//! - [`Session::builder_from_source`] — streaming the observed graph out
//!   of any [`EdgeSource`] (the on-disk `tg-store` or an in-memory
//!   adapter) — trains and simulates bit-identically to
//!   [`Session::builder`] over the same edges: ingest changes where the
//!   bytes come from, never what the model sees.

use crate::engine::{
    generate_shard_with_sink, generate_with_sink, mix_seed, ShardSpec, SimulationPlan,
};
use crate::errors::TgxError;
use crate::model::Tgae;
use crate::persist::{self, PersistError};
use crate::trainer::{
    train_loop, validate_shapes, LoopHooks, ResumeState, TrainCheckpoint, TrainReport,
    CHECKPOINT_VERSION,
};
use crate::TgaeConfig;
use rand::rngs::SmallRng;
use std::path::{Path, PathBuf};
use std::time::Duration;
use tg_graph::sink::{EdgeSink, GraphSink};
use tg_graph::source::{read_graph, EdgeSource, DEFAULT_CHUNK_EDGES};
use tg_graph::TemporalGraph;
use tg_metrics::MetricScore;

/// The observed graph a session mirrors: either borrowed from the caller
/// ([`Session::builder`]) or owned after streaming ingest from an
/// [`EdgeSource`] ([`Session::builder_from_source`]). Both paths feed the
/// identical training/simulation code, which is what makes the
/// store-vs-in-memory bit-identity guarantee testable at this level.
enum Observed<'a> {
    /// Caller-provided graph, borrowed for the session's lifetime.
    Borrowed(&'a TemporalGraph),
    /// Graph assembled by the session itself (boxed: sessions move).
    Owned(Box<TemporalGraph>),
}

impl Observed<'_> {
    fn get(&self) -> &TemporalGraph {
        match self {
            Observed::Borrowed(g) => g,
            Observed::Owned(g) => g,
        }
    }
}

/// Stream tag mixed into the master seed to derive per-run simulation
/// seeds (so `simulate()` run 0, 1, 2… get decorrelated streams that are
/// still pure functions of the master).
const SIM_STREAM: u64 = 0x51AB_CAFE;

/// The session's single source of randomness: one master `u64`.
///
/// Replaces the `&mut SmallRng` parameters of the PR-3 free functions.
/// Internals derive independent SplitMix64 sub-streams from the master —
/// parameter init and the training stream use it as `cfg.seed` did, and
/// each `simulate()` call gets [`SeedPolicy::simulation_master`]`(run)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeedPolicy {
    master: u64,
}

impl SeedPolicy {
    /// Policy deriving every stream from `master`.
    pub fn new(master: u64) -> Self {
        SeedPolicy { master }
    }

    /// The master seed.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// The engine master seed of simulation run `run` (0-based call
    /// counter). Pure: any process computing this for the same policy and
    /// run index gets the same seed — which is what lets a remote worker
    /// reproduce a driver's plan.
    pub fn simulation_master(&self, run: u64) -> u64 {
        mix_seed(self.master, SIM_STREAM, run)
    }
}

/// What the training loop should do after an observed epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrainControl {
    /// Keep training.
    Continue,
    /// Stop after this epoch (graceful early stop / cancellation); the
    /// report's [`TrainReport::early_stopped`] flag is set when epochs
    /// remained.
    Stop,
}

/// Everything an observer sees at the end of one epoch.
#[derive(Clone, Copy, Debug)]
pub struct EpochEvent {
    /// 0-based index of the epoch that just finished.
    pub epoch: usize,
    /// Total epochs the run is configured for.
    pub n_epochs: usize,
    /// Loss after this epoch's step.
    pub loss: f32,
    /// Wall-clock time this epoch took.
    pub wall: Duration,
}

/// Epoch-end hook: progress bars, metric logging, early stopping, and
/// cooperative cancellation (return [`TrainControl::Stop`]).
///
/// Observers only *observe* — the training RNG stream never sees them, so
/// attaching or detaching an observer cannot change the trained
/// parameters of the epochs that do run.
///
/// Any `FnMut(&EpochEvent) -> TrainControl` closure is an observer:
///
/// ```
/// use tgae::{EpochEvent, TrainControl};
/// let mut best = f32::INFINITY;
/// let _early_stop = move |ev: &EpochEvent| {
///     if ev.loss < best {
///         best = ev.loss;
///     }
///     if ev.loss > best * 2.0 {
///         TrainControl::Stop // diverged
///     } else {
///         TrainControl::Continue
///     }
/// };
/// ```
pub trait RunObserver {
    /// Called after every completed epoch, in order.
    fn on_epoch_end(&mut self, event: &EpochEvent) -> TrainControl;
}

impl<F: FnMut(&EpochEvent) -> TrainControl> RunObserver for F {
    fn on_epoch_end(&mut self, event: &EpochEvent) -> TrainControl {
        self(event)
    }
}

/// Periodic checkpointing: write a full [`TrainCheckpoint`] to `path`
/// every `every_epochs` epochs, retaining a rotation of the `keep` most
/// recent checkpoints (`path` is the newest, `path.1` the one before,
/// …). Writes are atomic (tmp + rename), and the rotation happens
/// *before* each write, so even a crash mid-checkpoint leaves the
/// previous generation intact at `path.1` for
/// [`Session::resume_from`] to fall back to.
#[derive(Clone, Debug)]
pub struct CheckpointPolicy {
    /// File the newest checkpoint JSON lives at.
    pub path: PathBuf,
    /// Cadence in epochs (a checkpoint lands after epochs `every`,
    /// `2*every`, …).
    pub every_epochs: usize,
    /// Checkpoints retained, `>= 1`. With `keep == 1` there is no
    /// rotation — `path` is atomically replaced each time.
    pub keep: usize,
}

/// Rotation slot `i` of a checkpoint path: slot 0 is `path` itself,
/// slot `i > 0` is `path.i` (`ckpt.json`, `ckpt.json.1`, …).
pub(crate) fn rotation_slot(path: &Path, i: usize) -> PathBuf {
    if i == 0 {
        return path.to_path_buf();
    }
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| std::ffi::OsString::from("checkpoint"));
    name.push(format!(".{i}"));
    path.with_file_name(name)
}

/// Builder for a [`Session`]; see the [module docs](crate::session) for
/// the lifecycle picture.
pub struct SessionBuilder<'a> {
    observed: Observed<'a>,
    cfg: TgaeConfig,
    seed: Option<u64>,
    observer: Option<Box<dyn RunObserver + 'a>>,
    checkpoint: Option<CheckpointPolicy>,
    model: Option<Tgae>,
}

impl<'a> SessionBuilder<'a> {
    /// Use this model/training configuration (default:
    /// [`TgaeConfig::default`]).
    pub fn config(mut self, cfg: TgaeConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Set the [`SeedPolicy`] master seed. Overrides `cfg.seed`, so
    /// parameter init, the training stream, and all simulation streams
    /// derive from this one value.
    pub fn seed(mut self, master: u64) -> Self {
        self.seed = Some(master);
        self
    }

    /// Equivalent to [`SessionBuilder::seed`] with `policy.master()`.
    pub fn seed_policy(self, policy: SeedPolicy) -> Self {
        self.seed(policy.master())
    }

    /// Attach an epoch-end [`RunObserver`] (closure or trait object).
    pub fn observer(mut self, observer: impl RunObserver + 'a) -> Self {
        self.observer = Some(Box::new(observer));
        self
    }

    /// Write a [`TrainCheckpoint`] to `path` every `every_epochs` epochs
    /// during [`Session::train`] / [`Session::resume_from`], keeping
    /// only the newest one.
    pub fn checkpoint(self, path: impl Into<PathBuf>, every_epochs: usize) -> Self {
        self.checkpoint_rotating(path, every_epochs, 1)
    }

    /// [`SessionBuilder::checkpoint`] retaining the `keep` newest
    /// checkpoints in a rotation (`path`, `path.1`, …) so a checkpoint
    /// torn by a crash still leaves an older valid generation for
    /// [`Session::resume_from`] to fall back to.
    pub fn checkpoint_rotating(
        mut self,
        path: impl Into<PathBuf>,
        every_epochs: usize,
        keep: usize,
    ) -> Self {
        self.checkpoint = Some(CheckpointPolicy {
            path: path.into(),
            every_epochs,
            keep,
        });
        self
    }

    /// Adopt an existing (typically already-trained) model instead of
    /// initialising a fresh one. The session takes the model's own config;
    /// builder-set config is ignored. This is how `tgx-cli` workers load a
    /// checkpointed model and go straight to simulation.
    pub fn with_model(mut self, model: Tgae) -> Self {
        self.model = Some(model);
        self
    }

    /// Validate everything and construct the [`Session`].
    ///
    /// Returns a typed [`TgxError`] — never panics — for: an empty or
    /// zero-timestamp observed graph, out-of-range config fields, or a
    /// provided model whose shape disagrees with the observed graph.
    pub fn build(self) -> Result<Session<'a>, TgxError> {
        let SessionBuilder {
            observed,
            mut cfg,
            seed,
            observer,
            checkpoint,
            model,
        } = self;
        let g = observed.get();
        if g.n_timestamps() == 0 || g.n_edges() == 0 || g.n_nodes() < 2 {
            return Err(TgxError::EmptyGraph);
        }
        if let Some(cp) = &checkpoint {
            if cp.every_epochs == 0 {
                return Err(TgxError::InvalidConfig(
                    "checkpoint cadence must be > 0 epochs".into(),
                ));
            }
            if cp.keep == 0 {
                return Err(TgxError::InvalidConfig(
                    "checkpoint rotation must keep >= 1 checkpoints".into(),
                ));
            }
        }
        let model = match model {
            Some(m) => {
                // An adopted model is authoritative for its config; only
                // its shape needs to agree with the observed graph —
                // plus its table storage must match its declared
                // precision (a deserialized model.json can be edited
                // out of sync).
                validate_shapes(&m, g)?;
                if m.n_timestamps != g.n_timestamps() {
                    return Err(TgxError::TimestampMismatch {
                        model: m.n_timestamps,
                        graph: g.n_timestamps(),
                    });
                }
                if !m.precision_consistent() {
                    return Err(TgxError::CheckpointMismatch(format!(
                        "adopted model declares {} precision but its embedding tables are stored otherwise",
                        m.cfg.precision.name()
                    )));
                }
                m
            }
            None => {
                if let Some(master) = seed {
                    cfg.seed = master;
                }
                validate_config(&cfg)?;
                Tgae::new(g.n_nodes(), g.n_timestamps(), cfg)
            }
        };
        let policy = SeedPolicy::new(seed.unwrap_or(model.cfg.seed));
        Ok(Session {
            observed,
            model,
            policy,
            observer,
            checkpoint,
            trained_epochs: 0,
            sim_runs: 0,
        })
    }
}

fn validate_config(cfg: &TgaeConfig) -> Result<(), TgxError> {
    let field_checks: [(&str, bool); 8] = [
        ("epochs must be > 0", cfg.epochs > 0),
        ("d_in must be > 0", cfg.d_in > 0),
        ("d_head must be > 0", cfg.d_head > 0),
        ("heads must be > 0", cfg.heads > 0),
        ("d_model must be > 0", cfg.d_model > 0),
        ("batch_centers must be > 0", cfg.batch_centers > 0),
        (
            "lr must be finite and > 0",
            cfg.lr.is_finite() && cfg.lr > 0.0,
        ),
        (
            "gen_temperature must be finite and > 0",
            cfg.gen_temperature.is_finite() && cfg.gen_temperature > 0.0,
        ),
    ];
    for (msg, ok) in field_checks {
        if !ok {
            return Err(TgxError::InvalidConfig(msg.into()));
        }
    }
    Ok(())
}

/// One train → simulate → evaluate run over a fixed observed graph.
///
/// Construct with [`Session::builder`]; see the
/// [module docs](crate::session) for the lifecycle and the determinism
/// contract.
pub struct Session<'a> {
    observed: Observed<'a>,
    model: Tgae,
    policy: SeedPolicy,
    observer: Option<Box<dyn RunObserver + 'a>>,
    checkpoint: Option<CheckpointPolicy>,
    trained_epochs: usize,
    sim_runs: u64,
}

impl std::fmt::Debug for Session<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("n_nodes", &self.observed.get().n_nodes())
            .field("n_timestamps", &self.observed.get().n_timestamps())
            .field("master_seed", &self.policy.master())
            .field("trained_epochs", &self.trained_epochs)
            .field("simulation_runs", &self.sim_runs)
            .field("has_observer", &self.observer.is_some())
            .field("checkpoint", &self.checkpoint)
            .finish_non_exhaustive()
    }
}

impl std::fmt::Debug for SessionBuilder<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionBuilder")
            .field("n_nodes", &self.observed.get().n_nodes())
            .field("n_timestamps", &self.observed.get().n_timestamps())
            .field("seed", &self.seed)
            .field("has_observer", &self.observer.is_some())
            .field("checkpoint", &self.checkpoint)
            .field("has_model", &self.model.is_some())
            .finish_non_exhaustive()
    }
}

impl<'a> Session<'a> {
    /// Start building a session over a borrowed, already-materialised
    /// `observed` graph.
    pub fn builder(observed: &TemporalGraph) -> SessionBuilder<'_> {
        SessionBuilder {
            observed: Observed::Borrowed(observed),
            cfg: TgaeConfig::default(),
            seed: None,
            observer: None,
            checkpoint: None,
            model: None,
        }
    }

    /// Start building a session by **streaming** the observed graph out
    /// of any [`EdgeSource`] — `tg-store`'s `StoreSource` for an on-disk
    /// edge store, or [`InMemorySource`](tg_graph::source::InMemorySource)
    /// for an existing graph. The per-timestamp chunks are assembled
    /// incrementally (never re-sorted, never staged twice), so ingest
    /// peak memory above the finished graph is `O(chunk)`; the session
    /// owns the result, which is why the returned builder is `'static`.
    ///
    /// Training, simulation, and evaluation behave **bit-identically** to
    /// a [`Session::builder`] session over the same edges — same losses,
    /// same parameters, same generated edges for the same seed
    /// (regression-tested against both source implementations).
    ///
    /// Source I/O or contract failures surface as [`TgxError::Ingest`].
    pub fn builder_from_source<S: EdgeSource>(
        source: &mut S,
    ) -> Result<SessionBuilder<'static>, TgxError> {
        let g =
            read_graph(source, DEFAULT_CHUNK_EDGES).map_err(|e| TgxError::Ingest(e.to_string()))?;
        Ok(SessionBuilder {
            observed: Observed::Owned(Box::new(g)),
            cfg: TgaeConfig::default(),
            seed: None,
            observer: None,
            checkpoint: None,
            model: None,
        })
    }

    /// The observed graph this session trains on and mirrors.
    pub fn observed(&self) -> &TemporalGraph {
        self.observed.get()
    }

    /// The model (trained in place by [`Session::train`]).
    pub fn model(&self) -> &Tgae {
        &self.model
    }

    /// Consume the session, keeping the model.
    pub fn into_model(self) -> Tgae {
        self.model
    }

    /// Consume the session into a [`SharedRun`](crate::shared::SharedRun): the trained model and
    /// the observed graph move behind `Arc`s so any number of threads can
    /// simulate/evaluate the run concurrently without cloning parameters
    /// (a borrowed observed graph is cloned once here — the shared run
    /// must be `'static` to cross threads). The seed policy carries over,
    /// and [`simulate_seeded`](crate::shared::SharedRun::simulate_seeded) stays bit-identical to
    /// [`Session::simulate_seeded`] for the same master.
    pub fn into_shared(self) -> crate::shared::SharedRun {
        let observed = match self.observed {
            Observed::Borrowed(g) => g.clone(),
            Observed::Owned(g) => *g,
        };
        crate::shared::SharedRun::assemble(
            std::sync::Arc::new(self.model),
            std::sync::Arc::new(observed),
            self.policy,
        )
    }

    /// The seed policy every stream derives from.
    pub fn seed_policy(&self) -> SeedPolicy {
        self.policy
    }

    /// Epochs run so far across [`Session::train`] /
    /// [`Session::resume_from`] calls.
    pub fn trained_epochs(&self) -> usize {
        self.trained_epochs
    }

    /// Simulation runs started so far (the per-run seed counter).
    pub fn simulation_runs(&self) -> u64 {
        self.sim_runs
    }

    /// Run the configured number of training epochs from the model's
    /// current parameters, driving the observer and writing periodic
    /// checkpoints as configured.
    ///
    /// For a freshly built session this is bit-identical to the PR-3
    /// `fit` free function with the same config.
    pub fn train(&mut self) -> Result<TrainReport, TgxError> {
        let hooks = LoopHooks {
            observer: self.observer.as_deref_mut(),
            checkpoint: self.checkpoint.as_ref(),
            resume: None,
        };
        let report = train_loop(&mut self.model, self.observed.get(), hooks)?;
        self.trained_epochs = report.epochs_run();
        Ok(report)
    }

    /// Validate one checkpoint candidate against this session (format
    /// version, shape, config, history consistency).
    fn try_load_checkpoint(&self, path: &Path) -> Result<TrainCheckpoint, TgxError> {
        let ckpt: TrainCheckpoint = persist::load_json(path)?;
        if ckpt.version != CHECKPOINT_VERSION {
            return Err(TgxError::CheckpointMismatch(format!(
                "checkpoint format v{} (this build reads v{CHECKPOINT_VERSION})",
                ckpt.version
            )));
        }
        if ckpt.model.n_nodes != self.observed.get().n_nodes()
            || ckpt.model.n_timestamps != self.observed.get().n_timestamps()
        {
            return Err(TgxError::CheckpointMismatch(format!(
                "checkpointed model is shaped {}x{} but the observed graph is {}x{}",
                ckpt.model.n_nodes,
                ckpt.model.n_timestamps,
                self.observed.get().n_nodes(),
                self.observed.get().n_timestamps()
            )));
        }
        // Precision first, with a message that names it: the generic
        // config comparison below would also catch a mismatch, but
        // "config differs" hides *what* differs for the one field that
        // changes numeric behaviour.
        if ckpt.model.cfg.precision != self.model.cfg.precision {
            return Err(TgxError::CheckpointMismatch(format!(
                "checkpointed model stores {} embedding tables but this session expects {}",
                ckpt.model.cfg.precision.name(),
                self.model.cfg.precision.name()
            )));
        }
        if !ckpt.model.precision_consistent() {
            return Err(TgxError::CheckpointMismatch(
                "checkpointed model's table storage disagrees with its declared precision".into(),
            ));
        }
        let ckpt_cfg = serde_json::to_string(&ckpt.model.cfg).map_err(PersistError::Codec)?;
        let own_cfg = serde_json::to_string(&self.model.cfg).map_err(PersistError::Codec)?;
        if ckpt_cfg != own_cfg {
            return Err(TgxError::CheckpointMismatch(
                "checkpointed config differs from this session's config".into(),
            ));
        }
        if ckpt.losses.len() != ckpt.epoch_wall_nanos.len() {
            return Err(TgxError::CheckpointMismatch(format!(
                "inconsistent history: {} losses vs {} epoch walls",
                ckpt.losses.len(),
                ckpt.epoch_wall_nanos.len()
            )));
        }
        Ok(ckpt)
    }

    /// Restore a mid-run [`TrainCheckpoint`] from `path` and train the
    /// remaining epochs (observer + further checkpoints included).
    ///
    /// The checkpoint carries the model, the Adam moments, and the raw
    /// training-RNG state, so the completed run is **bit-identical** to
    /// one that never stopped. Returns the *full-run* report (restored
    /// history + new epochs).
    ///
    /// If `path` is missing or damaged (a crash can tear at most the
    /// newest write), the rotation siblings `path.1`, `path.2`, … left
    /// by [`CheckpointPolicy`]'s `keep` are tried in order; the newest
    /// valid checkpoint wins. Resuming from an older generation is
    /// still bit-identical — it just re-runs more epochs. Only when no
    /// candidate validates does this fail, with every candidate's
    /// diagnosis.
    pub fn resume_from(&mut self, path: impl AsRef<Path>) -> Result<TrainReport, TgxError> {
        let path = path.as_ref();
        let mut found: Option<TrainCheckpoint> = None;
        let mut failures: Vec<(PathBuf, TgxError)> = Vec::new();
        let mut slot = 0usize;
        loop {
            let candidate = rotation_slot(path, slot);
            // slot 0 is always probed; beyond it, stop at the first gap
            if slot > 0 && !candidate.exists() {
                break;
            }
            match self.try_load_checkpoint(&candidate) {
                Ok(ckpt) => {
                    found = Some(ckpt);
                    break;
                }
                Err(e) => failures.push((candidate, e)),
            }
            slot += 1;
        }
        let ckpt = match found {
            Some(ckpt) => ckpt,
            // no rotation sibling to fall back to: surface the primary
            // path's own typed error unchanged
            None if failures.len() == 1 => {
                return Err(failures.pop().expect("one failure").1);
            }
            None => {
                let diagnoses: Vec<String> = failures
                    .iter()
                    .map(|(p, e)| format!("{}: {e}", p.display()))
                    .collect();
                return Err(TgxError::CheckpointMismatch(format!(
                    "no usable checkpoint in the rotation at {}: [{}]",
                    path.display(),
                    diagnoses.join("; ")
                )));
            }
        };
        self.model = ckpt.model;
        let resume = ResumeState {
            opt: ckpt.opt,
            rng: SmallRng::from_state(ckpt.rng_state),
            losses: ckpt.losses,
            epoch_walls: ckpt
                .epoch_wall_nanos
                .iter()
                .map(|&n| Duration::from_nanos(n))
                .collect(),
            slot_acc: ckpt.slot_acc,
        };
        let hooks = LoopHooks {
            observer: self.observer.as_deref_mut(),
            checkpoint: self.checkpoint.as_ref(),
            resume: Some(resume),
        };
        let report = train_loop(&mut self.model, self.observed.get(), hooks)?;
        self.trained_epochs = report.epochs_run();
        Ok(report)
    }

    /// Save the current model (not the training state — use the
    /// checkpoint policy for that) as a standalone artifact loadable by
    /// [`crate::persist::load`] or [`SessionBuilder::with_model`].
    pub fn save_model(&self, path: impl AsRef<Path>) -> Result<(), TgxError> {
        persist::save(&self.model, path)?;
        Ok(())
    }

    /// Simulate one synthetic graph mirroring the observed graph. Each
    /// call uses the next per-run seed derived from the [`SeedPolicy`],
    /// so repeated calls produce independent (but individually
    /// reproducible) graphs.
    pub fn simulate(&mut self) -> Result<TemporalGraph, TgxError> {
        let sink = GraphSink::new(
            self.observed.get().n_nodes(),
            self.observed.get().n_timestamps(),
        );
        self.simulate_with_sink(sink)
    }

    /// [`Session::simulate`] into any [`EdgeSink`] (streaming writer,
    /// statistics-only, …).
    pub fn simulate_with_sink<S: EdgeSink>(&mut self, sink: S) -> Result<S::Output, TgxError> {
        let master = self.policy.simulation_master(self.sim_runs);
        self.sim_runs += 1;
        self.simulate_seeded(master, sink)
    }

    /// Simulate with an explicit engine master seed (does not advance the
    /// per-run counter). Bit-identical to the PR-3
    /// [`generate_with_sink`] for the
    /// same master.
    pub fn simulate_seeded<S: EdgeSink>(
        &self,
        master: u64,
        sink: S,
    ) -> Result<S::Output, TgxError> {
        Ok(generate_with_sink(
            &self.model,
            self.observed.get(),
            master,
            sink,
        ))
    }

    /// The deterministic shard manifest a run with `master` would execute.
    pub fn simulation_plan(&self, master: u64) -> SimulationPlan {
        SimulationPlan::new(self.observed.get(), self.model.cfg.batch_centers, master)
    }

    /// Partition the run with `master` into `n_shards` serialisable
    /// [`ShardSpec`]s (contiguous timestamp ranges balanced by observed
    /// edge count) — the unit of cross-process distribution.
    pub fn shard_specs(&self, master: u64, n_shards: usize) -> Result<Vec<ShardSpec>, TgxError> {
        if n_shards == 0 {
            return Err(TgxError::InvalidConfig("n_shards must be > 0".into()));
        }
        Ok(self.simulation_plan(master).shards(n_shards))
    }

    /// Execute one shard of a run into `sink` — any process holding the
    /// model and the observed graph can run any shard, and concatenating
    /// shard outputs in shard order reproduces the single-process stream
    /// bit-identically.
    pub fn simulate_shard_with_sink<S: EdgeSink>(
        &self,
        spec: &ShardSpec,
        sink: S,
    ) -> Result<S::Output, TgxError> {
        Ok(generate_shard_with_sink(
            &self.model,
            self.observed.get(),
            spec,
            sink,
        ))
    }

    /// Simulate one run as `n_shards` in-process shards, building one sink
    /// per shard and returning the per-shard outputs in shard order.
    /// Advances the per-run seed counter once (the whole sharded run is
    /// one simulation).
    pub fn simulate_sharded<S: EdgeSink>(
        &mut self,
        n_shards: usize,
        mut make_sink: impl FnMut(&ShardSpec) -> S,
    ) -> Result<Vec<S::Output>, TgxError> {
        let master = self.policy.simulation_master(self.sim_runs);
        self.sim_runs += 1;
        let specs = self.shard_specs(master, n_shards)?;
        let mut outputs = Vec::with_capacity(specs.len());
        for spec in &specs {
            let sink = make_sink(spec);
            outputs.push(self.simulate_shard_with_sink(spec, sink)?);
        }
        Ok(outputs)
    }

    /// Score a synthetic graph against the observed one across the seven
    /// Table III statistics (Eq. 10). The synthetic graph must cover the
    /// observed horizon and node set.
    pub fn evaluate(&self, synthetic: &TemporalGraph) -> Result<Vec<MetricScore>, TgxError> {
        if synthetic.n_nodes() != self.observed.get().n_nodes() {
            return Err(TgxError::NodeCountMismatch {
                model: self.observed.get().n_nodes(),
                graph: synthetic.n_nodes(),
            });
        }
        if synthetic.n_timestamps() < self.observed.get().n_timestamps() {
            return Err(TgxError::TimestampMismatch {
                model: self.observed.get().n_timestamps(),
                graph: synthetic.n_timestamps(),
            });
        }
        Ok(tg_metrics::evaluate(self.observed.get(), synthetic))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_graph::TemporalEdge;

    fn ring(n: u32, t_count: u32) -> TemporalGraph {
        let mut edges = Vec::new();
        for t in 0..t_count {
            for u in 0..n {
                edges.push(TemporalEdge::new(u, (u + 1) % n, t));
            }
        }
        TemporalGraph::from_edges(n as usize, t_count as usize, edges)
    }

    fn tiny_cfg(epochs: usize) -> TgaeConfig {
        let mut cfg = TgaeConfig::tiny();
        cfg.epochs = epochs;
        cfg
    }

    #[test]
    fn seed_policy_streams_are_deterministic_and_distinct() {
        let p = SeedPolicy::new(7);
        assert_eq!(p.master(), 7);
        assert_eq!(
            p.simulation_master(0),
            SeedPolicy::new(7).simulation_master(0)
        );
        assert_ne!(p.simulation_master(0), p.simulation_master(1));
        assert_ne!(
            p.simulation_master(0),
            SeedPolicy::new(8).simulation_master(0)
        );
    }

    #[test]
    fn build_train_simulate_evaluate_round_trip() {
        let g = ring(8, 3);
        let mut session = Session::builder(&g)
            .config(tiny_cfg(5))
            .seed(11)
            .build()
            .expect("valid session");
        let report = session.train().expect("train");
        assert_eq!(report.epochs_run(), 5);
        assert_eq!(session.trained_epochs(), 5);
        let synthetic = session.simulate().expect("simulate");
        assert_eq!(synthetic.n_edges(), g.n_edges());
        assert_eq!(session.simulation_runs(), 1);
        let scores = session.evaluate(&synthetic).expect("evaluate");
        assert_eq!(scores.len(), 7);
    }

    #[test]
    fn repeated_simulations_differ_but_are_reproducible() {
        let g = ring(8, 3);
        let mut s = Session::builder(&g)
            .config(tiny_cfg(5))
            .seed(3)
            .build()
            .unwrap();
        s.train().unwrap();
        let a = s.simulate().unwrap();
        let b = s.simulate().unwrap();
        // run 0 and run 1 use different derived seeds
        assert_ne!(a.edges(), b.edges());
        // but run 0 is reproducible from the policy
        let master0 = s.seed_policy().simulation_master(0);
        let again = s
            .simulate_seeded(master0, GraphSink::new(g.n_nodes(), g.n_timestamps()))
            .unwrap();
        assert_eq!(a.edges(), again.edges());
    }

    #[test]
    fn sharded_simulation_concatenates_to_full_run() {
        let g = ring(9, 4);
        let mut cfg = tiny_cfg(4);
        cfg.batch_centers = 4;
        let mut s = Session::builder(&g).config(cfg).seed(5).build().unwrap();
        s.train().unwrap();
        let master = s.seed_policy().simulation_master(0);
        let full = s
            .simulate_seeded(master, GraphSink::new(g.n_nodes(), g.n_timestamps()))
            .unwrap();
        let shard_graphs = s
            .simulate_sharded(3, |_| GraphSink::new(g.n_nodes(), g.n_timestamps()))
            .unwrap();
        let merged: Vec<TemporalEdge> = shard_graphs
            .iter()
            .flat_map(|sg| sg.edges().iter().copied())
            .collect();
        assert_eq!(merged, full.edges());
    }

    #[test]
    fn empty_graph_is_a_typed_error() {
        let g = TemporalGraph::from_edges(4, 2, Vec::new());
        let err = Session::builder(&g)
            .config(tiny_cfg(3))
            .build()
            .unwrap_err();
        assert!(matches!(err, TgxError::EmptyGraph));
    }

    #[test]
    fn invalid_config_is_a_typed_error() {
        let g = ring(6, 2);
        let err = Session::builder(&g)
            .config(tiny_cfg(0))
            .build()
            .unwrap_err();
        assert!(matches!(err, TgxError::InvalidConfig(_)));
        let mut bad = tiny_cfg(3);
        bad.lr = f32::NAN;
        let err = Session::builder(&g).config(bad).build().unwrap_err();
        assert!(matches!(err, TgxError::InvalidConfig(_)));
        let err = Session::builder(&g)
            .config(tiny_cfg(3))
            .checkpoint("/tmp/nope.json", 0)
            .build()
            .unwrap_err();
        assert!(matches!(err, TgxError::InvalidConfig(_)));
    }

    #[test]
    fn adopted_model_shape_mismatch_is_a_typed_error() {
        let g = ring(6, 2);
        let other = Tgae::new(9, 2, tiny_cfg(3));
        let err = Session::builder(&g).with_model(other).build().unwrap_err();
        assert!(matches!(
            err,
            TgxError::NodeCountMismatch { model: 9, graph: 6 }
        ));
        let other_t = Tgae::new(6, 4, tiny_cfg(3));
        let err = Session::builder(&g)
            .with_model(other_t)
            .build()
            .unwrap_err();
        assert!(matches!(err, TgxError::TimestampMismatch { .. }));
    }

    #[test]
    fn evaluate_rejects_mismatched_synthetic() {
        let g = ring(6, 3);
        let mut s = Session::builder(&g).config(tiny_cfg(3)).build().unwrap();
        s.train().unwrap();
        let short = ring(6, 2);
        assert!(matches!(
            s.evaluate(&short).unwrap_err(),
            TgxError::TimestampMismatch { model: 3, graph: 2 }
        ));
        let other = ring(8, 3);
        assert!(matches!(
            s.evaluate(&other).unwrap_err(),
            TgxError::NodeCountMismatch { .. }
        ));
    }
}
