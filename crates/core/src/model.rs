//! The assembled TGAE model: features + TGAT encoder + variational
//! ego-graph decoder, with the approximate mini-batch loss of Eq. 7.

use crate::config::{TgaeConfig, TgaeVariant};
use crate::decoder::{build_candidates, EgoDecoder};
use crate::encoder::TgatEncoder;
use crate::features::TemporalFeatures;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::rc::Rc;
use tg_graph::{NodeId, TemporalGraph, Time};
use tg_sampling::ComputationGraph;
use tg_tensor::prelude::*;

/// Diagnostics of one batch forward pass.
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchStats {
    /// Slots across all computation-graph levels.
    pub n_slots: usize,
    /// Message edges across all bipartite layers.
    pub n_edges: usize,
    /// Positive supervision entries (observed out-edges).
    pub n_targets: usize,
    /// Candidate columns in the decoder softmax.
    pub n_candidates: usize,
}

/// The Temporal Graph Autoencoder.
#[derive(Clone, Serialize, Deserialize)]
pub struct Tgae {
    /// Architecture, sampling, and optimisation settings.
    pub cfg: TgaeConfig,
    /// All trainable parameters, keyed by `ParamId`.
    pub store: ParamStore,
    /// Node-id + timestamp embedding tables (model input features).
    pub features: TemporalFeatures,
    /// The stacked TGAT attention encoder (Eqs. 3–5).
    pub encoder: TgatEncoder,
    /// The variational ego-graph decoder (Algorithm 2).
    pub decoder: EgoDecoder,
    /// Number of nodes the model was shaped for.
    pub n_nodes: usize,
    /// Number of timestamps the model was shaped for.
    pub n_timestamps: usize,
}

impl Tgae {
    /// Initialise a model for graphs with the given shape. Parameter init
    /// is seeded from `cfg.seed`.
    pub fn new(n_nodes: usize, n_timestamps: usize, cfg: TgaeConfig) -> Self {
        assert!(n_nodes >= 2 && n_timestamps >= 1);
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        let features = TemporalFeatures::new(&mut store, &mut rng, n_nodes, n_timestamps, cfg.d_in);
        let encoder = TgatEncoder::new(
            &mut store,
            &mut rng,
            cfg.sampler.k,
            cfg.d_in,
            cfg.d_head,
            cfg.heads,
            cfg.d_model,
        );
        let decoder = EgoDecoder::new(&mut store, &mut rng, cfg.d_in, cfg.d_model, n_nodes);
        // Init always happens at f32 (so f32 and bf16 runs share the
        // same seeded starting point, rounded); the conversion below is
        // the only place table storage changes format.
        if cfg.precision == Precision::Bf16 {
            store.set_precision(features.node_emb.table, Precision::Bf16);
            store.set_precision(features.time_emb.table, Precision::Bf16);
        }
        Tgae {
            cfg,
            store,
            features,
            encoder,
            decoder,
            n_nodes,
            n_timestamps,
        }
    }

    /// Whether the decoder is variational (everything but TGAE-p).
    pub fn probabilistic(&self) -> bool {
        self.cfg.variant != TgaeVariant::NonProbabilistic
    }

    /// Total trainable scalars.
    pub fn n_parameters(&self) -> usize {
        self.store.total_scalars()
    }

    /// Total parameter payload bytes (4/scalar f32, 2/scalar bf16) —
    /// what the bf16 knob halves for the embedding tables.
    pub fn parameter_bytes(&self) -> usize {
        self.store.param_bytes()
    }

    /// True when the stored precision of both embedding tables matches
    /// `cfg.precision`. A freshly built model always agrees; a
    /// deserialized `model.json` could have been edited out of sync, so
    /// checkpoint resume and serve adoption validate this.
    pub fn precision_consistent(&self) -> bool {
        let p = self.cfg.precision;
        self.store.precision(self.features.node_emb.table) == p
            && self.store.precision(self.features.time_emb.table) == p
    }

    /// Forward pass on a batch of center temporal nodes; returns the tape,
    /// the scalar loss node, and diagnostics. The caller runs `backward`
    /// and the optimizer step.
    pub fn forward_batch<R: Rng + ?Sized>(
        &self,
        g: &TemporalGraph,
        centers: &[(NodeId, Time)],
        rng: &mut R,
    ) -> (Tape, Var, BatchStats) {
        let mut tape = Tape::new();
        let (loss, stats) = self.forward_batch_into(&mut tape, g, centers, rng);
        (tape, loss, stats)
    }

    /// Forward pass recording onto a caller-owned tape. The training loop
    /// reuses one tape (plus its scratch pool) across every epoch via
    /// [`Tape::clear`], which removes per-step buffer allocation; see
    /// `trainer::fit`. The tape is cleared before recording.
    pub fn forward_batch_into<R: Rng + ?Sized>(
        &self,
        tape: &mut Tape,
        g: &TemporalGraph,
        centers: &[(NodeId, Time)],
        rng: &mut R,
    ) -> (Var, BatchStats) {
        tape.clear();
        let cg = ComputationGraph::build(g, centers, &self.cfg.sampler, rng);
        let (slots, offsets) = cg.all_slots();

        // Features for every slot; the deepest level feeds the encoder.
        let x_all = self.features.forward(tape, &self.store, &slots);
        let k = cg.k();
        let outer_idx: Rc<Vec<u32>> = Rc::new((offsets[k] as u32..offsets[k + 1] as u32).collect());
        let x_outer = tape.gather_rows(x_all, outer_idx);
        let enc_levels = self.encoder.forward(tape, &self.store, &cg, x_outer);

        // Variational latent over all slots, then outward decode.
        let (z, mu, logvar) =
            self.decoder
                .latent(tape, &self.store, x_all, self.probabilistic(), rng);
        let dec_levels = self
            .decoder
            .decode_levels(tape, &cg, enc_levels[0], z, &offsets);

        // Supervision: observed out-neighbor rows per slot, per level.
        let mut per_level_targets: Vec<Vec<(u32, NodeId, f32)>> = Vec::with_capacity(k + 1);
        let mut positives: Vec<NodeId> = Vec::new();
        let mut total_weight = 0.0f32;
        for level in &cg.levels {
            let mut targets: Vec<(u32, NodeId, f32)> = Vec::new();
            for (r, &(v, t)) in level.iter().enumerate() {
                // Aggregate repeated out-neighbors by sorted run-length
                // so target order is canonical (node-id order), not
                // hash order: the f64 loss sum and the sparse-path
                // candidate ordering both see this sequence.
                let mut nbs: Vec<NodeId> = g.out_neighbors_at(v, t).collect();
                nbs.sort_unstable();
                let mut idx = 0usize;
                while idx < nbs.len() {
                    let nb = nbs[idx];
                    let mut w = 0.0f32;
                    while idx < nbs.len() && nbs[idx] == nb {
                        w += 1.0;
                        idx += 1;
                    }
                    positives.push(nb);
                    total_weight += w;
                    targets.push((r as u32, nb, w));
                }
            }
            per_level_targets.push(targets);
        }

        let (candidates, lookup) = build_candidates(
            self.n_nodes,
            positives.iter().copied(),
            self.cfg.dense_cutoff,
            self.cfg.n_negatives,
            rng,
        );

        let norm = total_weight.max(1.0);
        let mut loss: Option<Var> = None;
        let mut n_targets = 0usize;
        for (level_var, targets) in dec_levels.iter().zip(&per_level_targets) {
            if targets.is_empty() {
                continue;
            }
            n_targets += targets.len();
            let remapped: Vec<SparseTarget> = targets
                .iter()
                .map(|&(r, v, w)| (r, lookup[v as usize], w))
                .collect();
            let logits = self
                .decoder
                .score(tape, &self.store, *level_var, candidates.clone());
            let xent = tape.softmax_xent(logits, Rc::new(remapped), norm);
            loss = Some(match loss {
                Some(l) => tape.add(l, xent),
                None => xent,
            });
        }

        // KL over all slots (paper: KL is computed on all nodes of the batch).
        if let Some(lv) = logvar {
            let scale = self.cfg.kl_beta / slots.len().max(1) as f32;
            let kl = tape.kl_normal(mu, lv, scale);
            loss = Some(match loss {
                Some(l) => tape.add(l, kl),
                None => kl,
            });
        }
        let loss = loss.unwrap_or_else(|| {
            // nothing to supervise (isolated batch): zero-loss constant
            tape.input(Matrix::scalar(0.0))
        });

        let stats = BatchStats {
            n_slots: slots.len(),
            n_edges: cg.n_edges(),
            n_targets,
            n_candidates: candidates.len(),
        };
        (loss, stats)
    }

    /// Deterministic decode rows for a set of centers (generation path):
    /// returns, per center, the probability row over `candidates`
    /// (softmax already applied) as an owned matrix, along with the
    /// candidate list used.
    ///
    /// Records onto this thread's **persistent thread-local tape**
    /// ([`Tape::with_thread_local`]): on the worker pool every worker
    /// keeps its own tape whose scratch pool survives across chunks, so
    /// steady-state generation allocates almost nothing — the same
    /// scratch story the training loop gets from its single reused tape.
    pub fn decode_rows_for_generation<R: Rng + ?Sized>(
        &self,
        g: &TemporalGraph,
        centers: &[(NodeId, Time)],
        rng: &mut R,
    ) -> (Matrix, Rc<Vec<u32>>) {
        Tape::with_thread_local(|tape| self.decode_rows_for_generation_into(tape, g, centers, rng))
    }

    /// [`Tgae::decode_rows_for_generation`] recording onto a caller-owned
    /// tape (cleared first). Exposed so benchmarks can A/B fresh-tape vs
    /// reused-tape decoding; the probability matrix is value-identical
    /// either way.
    pub fn decode_rows_for_generation_into<R: Rng + ?Sized>(
        &self,
        tape: &mut Tape,
        g: &TemporalGraph,
        centers: &[(NodeId, Time)],
        rng: &mut R,
    ) -> (Matrix, Rc<Vec<u32>>) {
        tape.clear();
        let cg = ComputationGraph::build(g, centers, &self.cfg.sampler, rng);
        assert_eq!(
            cg.centers(),
            centers,
            "generation centers must be distinct and sorted"
        );
        let (slots, offsets) = cg.all_slots();
        let x_all = self.features.forward(tape, &self.store, &slots);
        let k = cg.k();
        let outer_idx: Rc<Vec<u32>> = Rc::new((offsets[k] as u32..offsets[k + 1] as u32).collect());
        let x_outer = tape.gather_rows(x_all, outer_idx);
        let enc_levels = self.encoder.forward(tape, &self.store, &cg, x_outer);
        // deterministic latent: Z = mu
        let (_, mu, _) = self.decoder.latent(tape, &self.store, x_all, false, rng);
        let dec_levels = self
            .decoder
            .decode_levels(tape, &cg, enc_levels[0], mu, &offsets);

        // Candidates: dense for small n; otherwise the observed temporal
        // neighborhoods of the centers plus uniform negatives (the
        // candidate-sparse assembly of DESIGN.md D6).
        let mut positives: Vec<NodeId> = Vec::new();
        if self.n_nodes > self.cfg.dense_cutoff {
            for &(v, t) in centers {
                for (u, _) in tg_sampling::temporal_neighbor_occurrences(
                    g,
                    v,
                    t,
                    self.cfg.sampler.time_window,
                ) {
                    positives.push(u);
                }
            }
        }
        let (candidates, _) = build_candidates(
            self.n_nodes,
            positives.iter().copied(),
            self.cfg.dense_cutoff,
            self.cfg.n_negatives * 4,
            rng,
        );
        let logits = self
            .decoder
            .score(tape, &self.store, dec_levels[0], candidates.clone());
        let tau = self.cfg.gen_temperature.max(1e-3);
        let sharpened = tape.value(logits).map(|x| x / tau);
        let probs = tg_tensor::matrix::softmax_rows(&sharpened);
        (probs, candidates)
    }
}

use tg_tensor::matrix::Matrix;

#[cfg(test)]
mod tests {
    use super::*;
    use tg_graph::TemporalEdge;

    fn toy_graph() -> TemporalGraph {
        let mut edges = Vec::new();
        for t in 0..3u32 {
            edges.push(TemporalEdge::new(0, 1, t));
            edges.push(TemporalEdge::new(1, 2, t));
            edges.push(TemporalEdge::new(2, 3, t));
            edges.push(TemporalEdge::new(3, 0, t));
            edges.push(TemporalEdge::new(0, 2, t));
        }
        TemporalGraph::from_edges(4, 3, edges)
    }

    #[test]
    fn forward_batch_produces_finite_loss() {
        let g = toy_graph();
        let model = Tgae::new(g.n_nodes(), g.n_timestamps(), TgaeConfig::tiny());
        let mut rng = SmallRng::seed_from_u64(0);
        let centers = vec![(0u32, 0u32), (1, 1), (2, 2)];
        let (tape, loss, stats) = model.forward_batch(&g, &centers, &mut rng);
        let l = tape.value(loss).item();
        assert!(l.is_finite(), "loss {l}");
        assert!(l > 0.0);
        assert!(stats.n_slots >= 3);
        assert!(stats.n_targets > 0);
        assert_eq!(stats.n_candidates, 4); // dense mode
    }

    #[test]
    fn backward_reaches_every_parameter_family() {
        let g = toy_graph();
        let model = Tgae::new(g.n_nodes(), g.n_timestamps(), TgaeConfig::tiny());
        let mut rng = SmallRng::seed_from_u64(1);
        let centers = vec![(0u32, 0u32), (2, 1)];
        let (tape, loss, _) = model.forward_batch(&g, &centers, &mut rng);
        let grads = tape.backward(loss);
        assert!(
            grads.get(model.features.node_emb.table).is_some(),
            "node emb"
        );
        assert!(
            grads.get(model.features.time_emb.table).is_some(),
            "time emb"
        );
        assert!(grads.get(model.decoder.w_dec).is_some(), "w_dec");
        assert!(
            grads.get(model.decoder.mlp_mu.layers[0].w).is_some(),
            "mlp_mu"
        );
    }

    #[test]
    fn non_probabilistic_variant_has_no_kl_and_is_deterministic() {
        let g = toy_graph();
        let cfg = TgaeConfig::tiny().with_variant(TgaeVariant::NonProbabilistic);
        let model = Tgae::new(g.n_nodes(), g.n_timestamps(), cfg);
        let centers = vec![(0u32, 0u32)];
        let l1 = {
            let mut rng = SmallRng::seed_from_u64(7);
            let (tape, loss, _) = model.forward_batch(&g, &centers, &mut rng);
            tape.value(loss).item()
        };
        let l2 = {
            let mut rng = SmallRng::seed_from_u64(8); // different rng, same loss
            let (tape, loss, _) = model.forward_batch(&g, &centers, &mut rng);
            tape.value(loss).item()
        };
        assert_eq!(l1, l2, "TGAE-p forward must not depend on sampling noise");
    }

    #[test]
    fn probabilistic_variant_is_stochastic() {
        let g = toy_graph();
        // no-truncation + large threshold -> the computation graph is
        // deterministic, so any loss difference comes from the VAE noise
        let cfg = TgaeConfig {
            sampler: tg_sampling::SamplerConfig {
                threshold: usize::MAX,
                ..Default::default()
            },
            ..TgaeConfig::tiny()
        };
        let model = Tgae::new(g.n_nodes(), g.n_timestamps(), cfg);
        let centers = vec![(0u32, 0u32)];
        let mut rng1 = SmallRng::seed_from_u64(7);
        let mut rng2 = SmallRng::seed_from_u64(8);
        let (t1, l1, _) = model.forward_batch(&g, &centers, &mut rng1);
        let (t2, l2, _) = model.forward_batch(&g, &centers, &mut rng2);
        assert_ne!(t1.value(l1).item(), t2.value(l2).item());
    }

    #[test]
    fn generation_rows_are_distributions() {
        let g = toy_graph();
        let model = Tgae::new(g.n_nodes(), g.n_timestamps(), TgaeConfig::tiny());
        let mut rng = SmallRng::seed_from_u64(2);
        let centers = vec![(0u32, 0u32), (1, 0)];
        let (probs, cands) = model.decode_rows_for_generation(&g, &centers, &mut rng);
        assert_eq!(probs.rows(), 2);
        assert_eq!(probs.cols(), cands.len());
        for r in 0..probs.rows() {
            let s: f32 = probs.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-4, "row {r} sums to {s}");
            assert!(probs.row(r).iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn parameter_count_is_positive_and_reported() {
        let g = toy_graph();
        let model = Tgae::new(g.n_nodes(), g.n_timestamps(), TgaeConfig::tiny());
        assert!(model.n_parameters() > 100);
    }
}
