//! One immutable trained run shared across concurrent generations.
//!
//! A [`Session`](crate::session::Session) *owns* its model and observed
//! graph, which is the right shape for the train → simulate → evaluate
//! lifecycle of one caller — but wrong for a resident server where many
//! requests hit the same trained run at once: cloning the model per
//! request would multiply resident memory by the concurrency level, and
//! `&mut self` methods would serialise everything behind a lock.
//!
//! A [`SharedRun`] is the serving-side counterpart: the trained model and
//! the observed graph live behind `Arc`s, every method takes `&self`, and
//! the whole struct is `Clone` (two `Arc` bumps) + `Send` + `Sync`. Any
//! number of threads can call [`SharedRun::simulate_seeded`] concurrently
//! against **one** parameter set — generation is read-only over the model
//! (`decode_rows_for_generation` takes `&self`), and each call's RNG
//! streams derive purely from its own master seed, so concurrent outputs
//! are bit-identical to sequential ones.
//!
//! ```
//! use tgae::{Session, TgaeConfig};
//! use tg_graph::sink::GraphSink;
//! use tg_graph::{TemporalEdge, TemporalGraph};
//!
//! let mut edges = Vec::new();
//! for t in 0..2 {
//!     for u in 0..6u32 {
//!         edges.push(TemporalEdge::new(u, (u + 1) % 6, t));
//!     }
//! }
//! let observed = TemporalGraph::from_edges(6, 2, edges);
//! let mut cfg = TgaeConfig::tiny();
//! cfg.epochs = 3;
//! let mut session = Session::builder(&observed).config(cfg).seed(7).build().unwrap();
//! session.train().unwrap();
//!
//! let run = session.into_shared(); // Arc-held, Clone, Send + Sync
//! let handles: Vec<_> = (0..4u64)
//!     .map(|seed| {
//!         let run = run.clone(); // two Arc bumps, no parameter copy
//!         std::thread::spawn(move || {
//!             let shape = (run.observed().n_nodes(), run.observed().n_timestamps());
//!             run.simulate_seeded(seed, GraphSink::new(shape.0, shape.1)).unwrap()
//!         })
//!     })
//!     .collect();
//! for h in handles {
//!     assert_eq!(h.join().unwrap().n_edges(), run.observed().n_edges());
//! }
//! ```

use crate::engine::{generate_with_sink, CostEstimate, SimulationPlan};
use crate::errors::TgxError;
use crate::model::Tgae;
use crate::session::SeedPolicy;
use crate::trainer::validate_shapes;
use std::sync::Arc;
use tg_graph::sink::EdgeSink;
use tg_graph::TemporalGraph;
use tg_metrics::MetricScore;

/// An immutable trained run — model + observed graph behind `Arc`s — that
/// any number of threads can simulate and evaluate concurrently.
///
/// Construct with [`SharedRun::new`] / [`SharedRun::from_arcs`] (typed
/// shape validation, like the session builder) or convert a finished
/// session with [`Session::into_shared`](crate::session::Session::into_shared).
#[derive(Clone)]
pub struct SharedRun {
    model: Arc<Tgae>,
    observed: Arc<TemporalGraph>,
    policy: SeedPolicy,
}

impl std::fmt::Debug for SharedRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedRun")
            .field("n_nodes", &self.observed.n_nodes())
            .field("n_timestamps", &self.observed.n_timestamps())
            .field("master_seed", &self.policy.master())
            .field("model_refs", &Arc::strong_count(&self.model))
            .finish_non_exhaustive()
    }
}

impl SharedRun {
    /// Wrap an owned model + observed graph. Validates shapes exactly
    /// like [`SessionBuilder::build`](crate::session::SessionBuilder::build)
    /// with an adopted model: node counts must match, timestamp counts
    /// must match, and the graph must have something to simulate.
    pub fn new(model: Tgae, observed: TemporalGraph) -> Result<Self, TgxError> {
        Self::from_arcs(Arc::new(model), Arc::new(observed))
    }

    /// [`SharedRun::new`] over already-shared parts (no copies; the run
    /// keeps the given `Arc`s, so callers can hold aliases and assert
    /// pointer identity).
    pub fn from_arcs(model: Arc<Tgae>, observed: Arc<TemporalGraph>) -> Result<Self, TgxError> {
        if observed.n_timestamps() == 0 || observed.n_edges() == 0 || observed.n_nodes() < 2 {
            return Err(TgxError::EmptyGraph);
        }
        validate_shapes(&model, &observed)?;
        if model.n_timestamps != observed.n_timestamps() {
            return Err(TgxError::TimestampMismatch {
                model: model.n_timestamps,
                graph: observed.n_timestamps(),
            });
        }
        if !model.precision_consistent() {
            return Err(TgxError::CheckpointMismatch(format!(
                "model declares {} precision but its embedding tables are stored otherwise",
                model.cfg.precision.name()
            )));
        }
        let policy = SeedPolicy::new(model.cfg.seed);
        Ok(SharedRun {
            model,
            observed,
            policy,
        })
    }

    /// Already-validated assembly path for [`Session::into_shared`]
    /// (the session builder proved the shapes at build time).
    pub(crate) fn assemble(
        model: Arc<Tgae>,
        observed: Arc<TemporalGraph>,
        policy: SeedPolicy,
    ) -> Self {
        SharedRun {
            model,
            observed,
            policy,
        }
    }

    /// Replace the seed policy master (e.g. with the master seed recorded
    /// in a run manifest, which is authoritative over the model config's
    /// copy).
    pub fn with_master(mut self, master: u64) -> Self {
        self.policy = SeedPolicy::new(master);
        self
    }

    /// The trained model.
    pub fn model(&self) -> &Tgae {
        &self.model
    }

    /// The observed graph the run mirrors.
    pub fn observed(&self) -> &TemporalGraph {
        &self.observed
    }

    /// An alias of the shared model `Arc` (pointer-identity checks; the
    /// concurrency tests use this to prove no request cloned the params).
    pub fn model_arc(&self) -> Arc<Tgae> {
        Arc::clone(&self.model)
    }

    /// An alias of the shared observed-graph `Arc`.
    pub fn observed_arc(&self) -> Arc<TemporalGraph> {
        Arc::clone(&self.observed)
    }

    /// The seed policy per-run streams derive from.
    pub fn seed_policy(&self) -> SeedPolicy {
        self.policy
    }

    /// The deterministic shard manifest a run with `master` would execute.
    pub fn plan(&self, master: u64) -> SimulationPlan {
        SimulationPlan::new(&self.observed, self.model.cfg.batch_centers, master)
    }

    /// Workload estimate of one full simulation of this run — what a
    /// server's admission control prices a request at. Master-seed
    /// independent (seeds never change budgets or chunking).
    pub fn cost_estimate(&self) -> CostEstimate {
        self.plan(0).cost_estimate()
    }

    /// Simulate one synthetic stream under an explicit engine master
    /// seed. `&self`: any number of threads may call this concurrently on
    /// clones of the same run, and each call is bit-identical to
    /// [`generate_with_sink`] over the same model/graph/master.
    pub fn simulate_seeded<S: EdgeSink>(
        &self,
        master: u64,
        sink: S,
    ) -> Result<S::Output, TgxError> {
        Ok(generate_with_sink(
            &self.model,
            &self.observed,
            master,
            sink,
        ))
    }

    /// Score a synthetic graph against the observed one (Eq. 10), with
    /// the same typed shape checks as
    /// [`Session::evaluate`](crate::session::Session::evaluate).
    pub fn evaluate(&self, synthetic: &TemporalGraph) -> Result<Vec<MetricScore>, TgxError> {
        if synthetic.n_nodes() != self.observed.n_nodes() {
            return Err(TgxError::NodeCountMismatch {
                model: self.observed.n_nodes(),
                graph: synthetic.n_nodes(),
            });
        }
        if synthetic.n_timestamps() < self.observed.n_timestamps() {
            return Err(TgxError::TimestampMismatch {
                model: self.observed.n_timestamps(),
                graph: synthetic.n_timestamps(),
            });
        }
        Ok(tg_metrics::evaluate(&self.observed, synthetic))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TgaeConfig;
    use tg_graph::TemporalEdge;

    fn ring(n: u32, t_count: u32) -> TemporalGraph {
        let mut edges = Vec::new();
        for t in 0..t_count {
            for u in 0..n {
                edges.push(TemporalEdge::new(u, (u + 1) % n, t));
            }
        }
        TemporalGraph::from_edges(n as usize, t_count as usize, edges)
    }

    #[test]
    fn validation_mirrors_the_session_builder() {
        let g = ring(6, 2);
        let wrong_nodes = Tgae::new(9, 2, TgaeConfig::tiny());
        assert!(matches!(
            SharedRun::new(wrong_nodes, g.clone()).unwrap_err(),
            TgxError::NodeCountMismatch { model: 9, graph: 6 }
        ));
        let wrong_t = Tgae::new(6, 4, TgaeConfig::tiny());
        assert!(matches!(
            SharedRun::new(wrong_t, g.clone()).unwrap_err(),
            TgxError::TimestampMismatch { .. }
        ));
        let empty = TemporalGraph::from_edges(4, 2, Vec::new());
        assert!(matches!(
            SharedRun::new(Tgae::new(4, 2, TgaeConfig::tiny()), empty).unwrap_err(),
            TgxError::EmptyGraph
        ));
        assert!(SharedRun::new(Tgae::new(6, 2, TgaeConfig::tiny()), g).is_ok());
    }

    #[test]
    fn clones_alias_the_same_model() {
        let g = ring(6, 2);
        let run = SharedRun::new(Tgae::new(6, 2, TgaeConfig::tiny()), g).unwrap();
        let clone = run.clone();
        assert!(Arc::ptr_eq(&run.model_arc(), &clone.model_arc()));
        assert!(Arc::ptr_eq(&run.observed_arc(), &clone.observed_arc()));
        assert_eq!(run.seed_policy(), clone.seed_policy());
    }

    #[test]
    fn with_master_rebases_the_policy() {
        let g = ring(6, 2);
        let run = SharedRun::new(Tgae::new(6, 2, TgaeConfig::tiny()), g)
            .unwrap()
            .with_master(99);
        assert_eq!(run.seed_policy().master(), 99);
    }

    #[test]
    fn cost_estimate_matches_the_plan() {
        let g = ring(8, 3);
        let run = SharedRun::new(Tgae::new(8, 3, TgaeConfig::tiny()), g).unwrap();
        let est = run.cost_estimate();
        assert_eq!(est, run.plan(42).cost_estimate());
        assert_eq!(est.edges as usize, run.observed().n_edges());
    }
}
