//! Temporal graph assembly and generation — paper §IV-G.
//!
//! After training, every observed temporal node `(u, t)` with positive
//! out-degree is decoded into a categorical edge distribution
//! `p(t, u, ·)`, and its observed out-degree worth of targets is drawn
//! **without replacement** (`A'_ut ~ Cat(...)`). Generation finishes when
//! the per-timestamp edge budget matches the observed graph — so the
//! synthetic graph has exactly the same number of temporal edges per
//! snapshot, and the evaluation compares structure rather than volume.
//!
//! Decoding runs in center batches; with `n > dense_cutoff` the
//! distribution is restricted to a candidate set (the observed temporal
//! neighborhood plus uniform negatives), which is what keeps assembly
//! memory far below the `O(T n^2)` dense score matrix.
//!
//! # Parallelism & determinism
//!
//! Center chunks are independent given the trained model, so assembly
//! fans out across the worker pool (`tg_tensor::parallel::par_map`). Each
//! `(timestamp, chunk)` pair decodes and samples with its **own RNG
//! stream**, seeded by mixing a master seed (one draw from the caller's
//! RNG) with the pair's indices. Chunk outputs are concatenated in chunk
//! order afterwards. Consequences:
//!
//! - the generated graph is **bit-identical for a fixed seed regardless
//!   of thread count** (including `set_num_threads(1)`), and
//! - `generate` scales with cores while consuming exactly one `u64` from
//!   the caller's RNG.

use crate::model::Tgae;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tg_graph::{NodeId, TemporalEdge, TemporalGraph, Time};
use tg_tensor::init::{sample_categorical, sample_categorical_without_replacement};
use tg_tensor::parallel::par_map;

/// One unit of parallel assembly work: a timestamp, the chunk's derived
/// RNG seed, and the `(source, total, distinct)` budgets of its centers.
type ChunkWork = (Time, u64, Vec<(NodeId, usize, usize)>);

/// SplitMix64 finalizer: decorrelates the per-chunk seeds derived from
/// (master, t, chunk) so neighboring chunks get unrelated streams.
fn mix_seed(master: u64, t: u64, chunk: u64) -> u64 {
    let mut z = master ^ t.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ chunk.rotate_left(32);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generate a synthetic temporal graph mirroring the observed graph's
/// per-timestamp out-degree sequence.
pub fn generate<R: Rng + ?Sized>(
    model: &Tgae,
    observed: &TemporalGraph,
    rng: &mut R,
) -> TemporalGraph {
    let batch = model.cfg.batch_centers.max(32);
    let master: u64 = rng.gen();

    // Collect per-source budget chunks for every timestamp up front; each
    // becomes one independent unit of parallel work.
    let mut work: Vec<ChunkWork> = Vec::new();
    for t in 0..observed.n_timestamps() as Time {
        // centers: distinct sources at t with their out-degree budgets
        let slice = observed.edges_at(t);
        if slice.is_empty() {
            continue;
        }
        // per-source budgets at t: total out-edges and distinct targets
        // (temporal graphs are multigraphs — EMAIL-like data re-fires the
        // same pair within one snapshot, and the simulation must too)
        let mut budgets: Vec<(NodeId, usize, usize)> = Vec::new();
        let mut last_target: Option<NodeId> = None;
        for e in slice {
            match budgets.last_mut() {
                Some((u, total, distinct)) if *u == e.u => {
                    *total += 1;
                    if last_target != Some(e.v) {
                        *distinct += 1;
                    }
                }
                _ => budgets.push((e.u, 1, 1)),
            }
            last_target = Some(e.v);
        }
        for (ci, chunk) in budgets.chunks(batch).enumerate() {
            work.push((t, mix_seed(master, t as u64, ci as u64), chunk.to_vec()));
        }
    }

    // Decode and sample every chunk on the pool; chunk RNGs make the
    // result independent of scheduling order.
    let per_chunk: Vec<Vec<TemporalEdge>> = par_map(work.len(), |wi| {
        let (t, seed, chunk) = &work[wi];
        let t = *t;
        let mut rng = SmallRng::seed_from_u64(*seed);
        let mut edges: Vec<TemporalEdge> = Vec::new();
        let centers: Vec<(NodeId, Time)> = chunk.iter().map(|&(u, _, _)| (u, t)).collect();
        let (probs, cands) = model.decode_rows_for_generation(observed, &centers, &mut rng);
        for (row, &(u, total, distinct)) in chunk.iter().enumerate() {
            // categorical weights over candidates, excluding self-loops
            let mut w: Vec<f64> = probs.row(row).iter().map(|&p| p as f64).collect();
            for (col, &cand) in cands.iter().enumerate() {
                if cand == u {
                    w[col] = 0.0;
                }
            }
            // support: `distinct` targets without replacement (§IV-G)
            let take = distinct.min(w.iter().filter(|&&x| x > 0.0).count());
            let support = sample_categorical_without_replacement(&mut rng, &w, take);
            for &col in &support {
                edges.push(TemporalEdge::new(u, cands[col], t));
            }
            // multiplicity: the remaining (total - distinct) edges
            // re-fire within the sampled support, weighted by p
            if total > take && !support.is_empty() {
                let sup_w: Vec<f64> = support.iter().map(|&col| w[col]).collect();
                for _ in 0..(total - take) {
                    let pick = support[sample_categorical(&mut rng, &sup_w)];
                    edges.push(TemporalEdge::new(u, cands[pick], t));
                }
            }
        }
        edges
    });

    let edges: Vec<TemporalEdge> = per_chunk.into_iter().flatten().collect();
    TemporalGraph::from_edges(observed.n_nodes(), observed.n_timestamps(), edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TgaeConfig;
    use crate::trainer::fit;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn ring_graph(n: u32, t_count: u32) -> TemporalGraph {
        let mut edges = Vec::new();
        for t in 0..t_count {
            for u in 0..n {
                edges.push(TemporalEdge::new(u, (u + 1) % n, t));
            }
        }
        TemporalGraph::from_edges(n as usize, t_count as usize, edges)
    }

    #[test]
    fn generated_graph_matches_shape_and_budgets() {
        let g = ring_graph(8, 3);
        let mut cfg = TgaeConfig::tiny();
        cfg.epochs = 10;
        let mut model = Tgae::new(g.n_nodes(), g.n_timestamps(), cfg);
        fit(&mut model, &g);
        let mut rng = SmallRng::seed_from_u64(0);
        let gen = generate(&model, &g, &mut rng);
        assert_eq!(gen.n_nodes(), g.n_nodes());
        assert_eq!(gen.n_timestamps(), g.n_timestamps());
        // per-timestamp budgets preserved exactly (ring: every node has
        // out-degree 1 <= candidates)
        assert_eq!(
            gen.edge_counts_per_timestamp(),
            g.edge_counts_per_timestamp()
        );
    }

    #[test]
    fn generated_edges_have_no_self_loops() {
        let g = ring_graph(6, 2);
        let mut cfg = TgaeConfig::tiny();
        cfg.epochs = 5;
        let mut model = Tgae::new(g.n_nodes(), g.n_timestamps(), cfg);
        fit(&mut model, &g);
        let mut rng = SmallRng::seed_from_u64(1);
        let gen = generate(&model, &g, &mut rng);
        assert!(gen.edges().iter().all(|e| e.u != e.v));
    }

    #[test]
    fn generation_sources_are_observed_sources() {
        // we preserve the out-degree sequence, so generated sources at t
        // must be a subset of observed sources at t
        let g = ring_graph(6, 2);
        let mut cfg = TgaeConfig::tiny();
        cfg.epochs = 5;
        let mut model = Tgae::new(g.n_nodes(), g.n_timestamps(), cfg);
        fit(&mut model, &g);
        let mut rng = SmallRng::seed_from_u64(2);
        let gen = generate(&model, &g, &mut rng);
        for t in 0..2u32 {
            let mut observed_sources: Vec<u32> = g.edges_at(t).iter().map(|e| e.u).collect();
            observed_sources.dedup();
            for e in gen.edges_at(t) {
                assert!(observed_sources.contains(&e.u), "unexpected source {}", e.u);
            }
        }
    }

    #[test]
    fn multigraph_budgets_reproduced_with_multiplicity() {
        // observed graph re-fires (0 -> 1) three times at t=0: generation
        // must emit three edges from node 0 at t=0 (repeats allowed).
        let mut edges = vec![
            TemporalEdge::new(0, 1, 0),
            TemporalEdge::new(0, 1, 0),
            TemporalEdge::new(0, 1, 0),
            TemporalEdge::new(1, 2, 0),
            TemporalEdge::new(2, 3, 0),
        ];
        for u in 0..4u32 {
            edges.push(TemporalEdge::new(u, (u + 1) % 4, 1));
        }
        let g = TemporalGraph::from_edges(4, 2, edges);
        let mut cfg = TgaeConfig::tiny();
        cfg.epochs = 5;
        let mut model = Tgae::new(g.n_nodes(), g.n_timestamps(), cfg);
        fit(&mut model, &g);
        let mut rng = SmallRng::seed_from_u64(5);
        let gen = generate(&model, &g, &mut rng);
        assert_eq!(
            gen.edge_counts_per_timestamp(),
            g.edge_counts_per_timestamp()
        );
        let from0: Vec<_> = gen.edges_at(0).iter().filter(|e| e.u == 0).collect();
        assert_eq!(from0.len(), 3, "source budget with multiplicity");
    }

    #[test]
    fn generation_is_bit_identical_across_thread_counts() {
        let g = ring_graph(10, 3);
        let mut cfg = TgaeConfig::tiny();
        cfg.epochs = 5;
        cfg.batch_centers = 4; // force several chunks per timestamp
        let mut model = Tgae::new(g.n_nodes(), g.n_timestamps(), cfg);
        fit(&mut model, &g);
        let run = |threads: usize| -> Vec<(u32, u32, u32)> {
            let _pin = tg_tensor::parallel::ThreadPin::new(threads);
            let mut rng = SmallRng::seed_from_u64(77);
            let gen = generate(&model, &g, &mut rng);
            gen.edges().iter().map(|e| (e.u, e.v, e.t)).collect()
        };
        let serial = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(
                run(threads),
                serial,
                "thread count {threads} changed the output"
            );
        }
    }

    #[test]
    fn trained_model_reproduces_ring_better_than_untrained() {
        // The ring is perfectly learnable: out-neighbor of u is always
        // (u+1) mod n. A trained model should hit far more true edges.
        let g = ring_graph(8, 3);
        let mut cfg = TgaeConfig::tiny();
        cfg.epochs = 200;
        cfg.lr = 3e-2;
        let mut trained = Tgae::new(g.n_nodes(), g.n_timestamps(), cfg.clone());
        fit(&mut trained, &g);
        let untrained = Tgae::new(g.n_nodes(), g.n_timestamps(), cfg);
        let hit_rate = |model: &Tgae, seed: u64| -> f64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let gen = generate(model, &g, &mut rng);
            let truth: std::collections::HashSet<(u32, u32)> =
                g.edges().iter().map(|e| (e.u, e.v)).collect();
            let hits = gen
                .edges()
                .iter()
                .filter(|e| truth.contains(&(e.u, e.v)))
                .count();
            hits as f64 / gen.n_edges().max(1) as f64
        };
        let trained_rate = hit_rate(&trained, 3);
        let untrained_rate = hit_rate(&untrained, 3);
        assert!(
            trained_rate > untrained_rate + 0.2,
            "trained {trained_rate:.3} vs untrained {untrained_rate:.3}"
        );
    }
}
