//! Temporal graph assembly and generation — paper §IV-G.
//!
//! After training, every observed temporal node `(u, t)` with positive
//! out-degree is decoded into a categorical edge distribution
//! `p(t, u, ·)`, and its observed out-degree worth of targets is drawn
//! **without replacement** (`A'_ut ~ Cat(...)`). Generation finishes when
//! the per-timestamp edge budget matches the observed graph — so the
//! synthetic graph has exactly the same number of temporal edges per
//! snapshot, and the evaluation compares structure rather than volume.
//!
//! Decoding runs in center batches; with `n > dense_cutoff` the
//! distribution is restricted to a candidate set (the observed temporal
//! neighborhood plus uniform negatives), which is what keeps assembly
//! memory far below the `O(T n^2)` dense score matrix.
//!
//! # Parallelism & determinism
//!
//! Assembly is driven by the plan → execute → emit pipeline of
//! [`crate::engine`]: center chunks are independent given the trained
//! model, so they fan out across the worker pool, each `(timestamp,
//! chunk)` unit decoding and sampling with its **own RNG stream** seeded
//! by mixing a master seed with the unit's indices. Unit outputs are
//! emitted in plan order afterwards. Consequences:
//!
//! - the generated graph is **bit-identical for a fixed seed regardless
//!   of thread count** (including `set_num_threads(1)`), and across any
//!   shard partition of the manifest, and
//! - generation scales with cores while consuming exactly one `u64`
//!   master seed.
//!
//! The supported entry points are
//! [`Session::simulate`](crate::session::Session::simulate) (seed policy,
//! typed errors) and the [`crate::engine`] free functions (explicit
//! master seed); [`generate`] survives as a deprecated wrapper.

use crate::engine::generate_with_sink;
use crate::model::Tgae;
use rand::Rng;
use tg_graph::sink::GraphSink;
use tg_graph::TemporalGraph;

/// Generate a synthetic temporal graph mirroring the observed graph's
/// per-timestamp out-degree sequence.
///
/// **Deprecated:** this is the PR-3 entry point, kept as a thin wrapper so
/// existing callers compile. It draws one master seed (exactly one `u64`)
/// from `rng` and delegates to
/// [`generate_with_sink`] with a
/// [`GraphSink`] — prefer [`Session::simulate`] (seed policy, typed
/// errors) or the engine functions (explicit master seed, any sink).
///
/// [`Session::simulate`]: crate::session::Session::simulate
#[deprecated(
    since = "0.1.0",
    note = "use tgae::Session::simulate / simulate_seeded, or tgae::engine::generate_with_sink with an explicit master seed"
)]
pub fn generate<R: Rng + ?Sized>(
    model: &Tgae,
    observed: &TemporalGraph,
    rng: &mut R,
) -> TemporalGraph {
    let master: u64 = rng.gen();
    generate_with_sink(
        model,
        observed,
        master,
        GraphSink::new(observed.n_nodes(), observed.n_timestamps()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TgaeConfig;
    use crate::session::Session;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use tg_graph::TemporalEdge;

    fn ring_graph(n: u32, t_count: u32) -> TemporalGraph {
        let mut edges = Vec::new();
        for t in 0..t_count {
            for u in 0..n {
                edges.push(TemporalEdge::new(u, (u + 1) % n, t));
            }
        }
        TemporalGraph::from_edges(n as usize, t_count as usize, edges)
    }

    /// Build a trained session over `g` with the tiny config.
    fn trained_session(g: &TemporalGraph, epochs: usize, batch_centers: usize) -> Session<'_> {
        let mut cfg = TgaeConfig::tiny();
        cfg.epochs = epochs;
        cfg.batch_centers = batch_centers;
        let mut s = Session::builder(g).config(cfg).build().expect("session");
        s.train().expect("train");
        s
    }

    #[test]
    fn generated_graph_matches_shape_and_budgets() {
        let g = ring_graph(8, 3);
        let mut session = trained_session(&g, 10, 16);
        let gen = session.simulate().expect("simulate");
        assert_eq!(gen.n_nodes(), g.n_nodes());
        assert_eq!(gen.n_timestamps(), g.n_timestamps());
        // per-timestamp budgets preserved exactly (ring: every node has
        // out-degree 1 <= candidates)
        assert_eq!(
            gen.edge_counts_per_timestamp(),
            g.edge_counts_per_timestamp()
        );
    }

    #[test]
    fn generated_edges_have_no_self_loops() {
        let g = ring_graph(6, 2);
        let mut session = trained_session(&g, 5, 16);
        let gen = session.simulate().expect("simulate");
        assert!(gen.edges().iter().all(|e| e.u != e.v));
    }

    #[test]
    fn generation_sources_are_observed_sources() {
        // we preserve the out-degree sequence, so generated sources at t
        // must be a subset of observed sources at t
        let g = ring_graph(6, 2);
        let mut session = trained_session(&g, 5, 16);
        let gen = session.simulate().expect("simulate");
        for t in 0..2u32 {
            let mut observed_sources: Vec<u32> = g.edges_at(t).iter().map(|e| e.u).collect();
            observed_sources.dedup();
            for e in gen.edges_at(t) {
                assert!(observed_sources.contains(&e.u), "unexpected source {}", e.u);
            }
        }
    }

    #[test]
    fn multigraph_budgets_reproduced_with_multiplicity() {
        // observed graph re-fires (0 -> 1) three times at t=0: generation
        // must emit three edges from node 0 at t=0 (repeats allowed).
        let mut edges = vec![
            TemporalEdge::new(0, 1, 0),
            TemporalEdge::new(0, 1, 0),
            TemporalEdge::new(0, 1, 0),
            TemporalEdge::new(1, 2, 0),
            TemporalEdge::new(2, 3, 0),
        ];
        for u in 0..4u32 {
            edges.push(TemporalEdge::new(u, (u + 1) % 4, 1));
        }
        let g = TemporalGraph::from_edges(4, 2, edges);
        let mut session = trained_session(&g, 5, 16);
        let gen = session.simulate().expect("simulate");
        assert_eq!(
            gen.edge_counts_per_timestamp(),
            g.edge_counts_per_timestamp()
        );
        let from0: Vec<_> = gen.edges_at(0).iter().filter(|e| e.u == 0).collect();
        assert_eq!(from0.len(), 3, "source budget with multiplicity");
    }

    #[test]
    fn generation_is_bit_identical_across_thread_counts() {
        let g = ring_graph(10, 3);
        let session = trained_session(&g, 5, 4); // several chunks per timestamp
        let run = |threads: usize| -> Vec<(u32, u32, u32)> {
            let _pin = tg_tensor::parallel::ThreadPin::new(threads);
            let gen = session
                .simulate_seeded(77, GraphSink::new(g.n_nodes(), g.n_timestamps()))
                .expect("simulate");
            gen.edges().iter().map(|e| (e.u, e.v, e.t)).collect()
        };
        let serial = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(
                run(threads),
                serial,
                "thread count {threads} changed the output"
            );
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrapper_matches_engine_path() {
        // `generate` must keep its PR-3 contract: one u64 drawn from the
        // caller's RNG becomes the engine master seed.
        let g = ring_graph(6, 2);
        let session = trained_session(&g, 5, 16);
        let seed = 20240731u64;
        let via_wrapper = generate(session.model(), &g, &mut SmallRng::seed_from_u64(seed));
        let master: u64 = SmallRng::seed_from_u64(seed).gen();
        let via_engine = session
            .simulate_seeded(master, GraphSink::new(g.n_nodes(), g.n_timestamps()))
            .expect("simulate");
        assert_eq!(via_wrapper.edges(), via_engine.edges());
    }

    #[test]
    fn trained_model_reproduces_ring_better_than_untrained() {
        // The ring is perfectly learnable: out-neighbor of u is always
        // (u+1) mod n. A trained model should hit far more true edges.
        let g = ring_graph(8, 3);
        let mut cfg = TgaeConfig::tiny();
        cfg.epochs = 200;
        cfg.lr = 3e-2;
        let mut trained = Session::builder(&g)
            .config(cfg.clone())
            .build()
            .expect("session");
        trained.train().expect("train");
        let untrained = Session::builder(&g).config(cfg).build().expect("session");
        let hit_rate = |session: &Session<'_>, master: u64| -> f64 {
            let gen = session
                .simulate_seeded(master, GraphSink::new(g.n_nodes(), g.n_timestamps()))
                .expect("simulate");
            let truth: std::collections::HashSet<(u32, u32)> =
                g.edges().iter().map(|e| (e.u, e.v)).collect();
            let hits = gen
                .edges()
                .iter()
                .filter(|e| truth.contains(&(e.u, e.v)))
                .count();
            hits as f64 / gen.n_edges().max(1) as f64
        };
        let trained_rate = hit_rate(&trained, 3);
        let untrained_rate = hit_rate(&untrained, 3);
        assert!(
            trained_rate > untrained_rate + 0.2,
            "trained {trained_rate:.3} vs untrained {untrained_rate:.3}"
        );
    }
}
