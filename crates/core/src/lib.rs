#![warn(missing_docs)]
//! `tgae`: the Temporal Graph Autoencoder of *"Efficient Learning-based
//! Graph Simulation for Temporal Graphs"* (ICDE 2025), reimplemented from
//! scratch in Rust.
//!
//! The model simulates a temporal graph — a series of snapshots — by
//! learning the generative distribution of sampled temporal ego-graphs:
//!
//! 1. **Initial node sampling** (Eq. 2): degree-weighted draws of
//!    representative temporal nodes (`tg_sampling::InitialNodeSampler`).
//! 2. **Ego-graph sampling** (Algorithm 1) merged into **k-bipartite
//!    computation graphs** (Fig. 4) for batched training.
//! 3. **TGAT encoding** ([`encoder`], Eqs. 3–5): stacked multi-head graph
//!    attention from the ego periphery to the center.
//! 4. **Variational ego-graph decoding** ([`decoder`], Algorithm 2):
//!    reparameterised latents seed an outward reconstruction emitting
//!    categorical edge rows.
//! 5. **Assembly & generation** ([`generator`], §IV-G): per-timestamp
//!    categorical edge sampling without replacement under the observed
//!    edge budget, driven by the sharded streaming [`engine`] (plan →
//!    execute → emit into an `EdgeSink`).
//!
//! Training minimises the approximate loss of Eq. 7 ([`trainer`]); the
//! ablation variants of §IV-F are selected via
//! [`config::TgaeVariant`].
//!
//! The supported entry point is the [`session`] API: one [`Session`]
//! object owns the **train → simulate → evaluate** lifecycle with a
//! single master seed ([`SeedPolicy`]), typed errors ([`TgxError`]),
//! epoch observation/cancellation ([`RunObserver`]), and bit-identical
//! checkpoint/resume. The PR-3 free functions ([`fit`], [`generate`])
//! remain as deprecated wrappers.
//!
//! # Quickstart
//! ```
//! use tgae::{Session, TgaeConfig};
//! use tg_graph::{TemporalEdge, TemporalGraph};
//!
//! // a small ring evolving over 2 timestamps
//! let mut edges = Vec::new();
//! for t in 0..2 {
//!     for u in 0..6u32 {
//!         edges.push(TemporalEdge::new(u, (u + 1) % 6, t));
//!     }
//! }
//! let observed = TemporalGraph::from_edges(6, 2, edges);
//!
//! let mut cfg = TgaeConfig::tiny();
//! cfg.epochs = 5;
//! let mut session = Session::builder(&observed)
//!     .config(cfg)
//!     .seed(7)
//!     .build()
//!     .expect("valid graph + config");
//! let report = session.train().expect("training ran");
//! assert!(report.final_loss().is_finite());
//!
//! let synthetic = session.simulate().expect("simulation ran");
//! assert_eq!(synthetic.n_edges(), observed.n_edges());
//!
//! let scores = session.evaluate(&synthetic).expect("same shape");
//! assert_eq!(scores.len(), 7);
//! ```

pub mod config;
pub mod decoder;
pub mod encoder;
pub mod engine;
pub mod errors;
pub mod features;
pub mod generator;
pub mod model;
pub mod persist;
pub mod session;
pub mod shared;
pub mod trainer;

pub use config::{TgaeConfig, TgaeVariant};
pub use engine::{
    generate_shard, generate_shard_with_sink, generate_with_sink, CostEstimate, ShardSpec,
    SimulationEngine, SimulationPlan,
};
pub use errors::TgxError;
pub use model::{BatchStats, Tgae};
pub use persist::{load, save, PersistError};
pub use session::{
    CheckpointPolicy, EpochEvent, RunObserver, SeedPolicy, Session, SessionBuilder, TrainControl,
};
pub use shared::SharedRun;
pub use tg_tensor::params::Precision;
pub use trainer::{TrainCheckpoint, TrainReport};

#[allow(deprecated)]
pub use generator::generate;
#[allow(deprecated)]
pub use trainer::fit;
