#![warn(missing_docs)]
//! `tgae`: the Temporal Graph Autoencoder of *"Efficient Learning-based
//! Graph Simulation for Temporal Graphs"* (ICDE 2025), reimplemented from
//! scratch in Rust.
//!
//! The model simulates a temporal graph — a series of snapshots — by
//! learning the generative distribution of sampled temporal ego-graphs:
//!
//! 1. **Initial node sampling** (Eq. 2): degree-weighted draws of
//!    representative temporal nodes (`tg_sampling::InitialNodeSampler`).
//! 2. **Ego-graph sampling** (Algorithm 1) merged into **k-bipartite
//!    computation graphs** (Fig. 4) for batched training.
//! 3. **TGAT encoding** ([`encoder`], Eqs. 3–5): stacked multi-head graph
//!    attention from the ego periphery to the center.
//! 4. **Variational ego-graph decoding** ([`decoder`], Algorithm 2):
//!    reparameterised latents seed an outward reconstruction emitting
//!    categorical edge rows.
//! 5. **Assembly & generation** ([`generator`], §IV-G): per-timestamp
//!    categorical edge sampling without replacement under the observed
//!    edge budget, driven by the sharded streaming [`engine`] (plan →
//!    execute → emit into an `EdgeSink`).
//!
//! Training minimises the approximate loss of Eq. 7 ([`trainer`]); the
//! ablation variants of §IV-F are selected via
//! [`config::TgaeVariant`].
//!
//! # Quickstart
//! ```
//! use tgae::{Tgae, TgaeConfig, fit, generate};
//! use rand::{rngs::SmallRng, SeedableRng};
//! use tg_graph::{TemporalEdge, TemporalGraph};
//!
//! // a small ring evolving over 2 timestamps
//! let mut edges = Vec::new();
//! for t in 0..2 {
//!     for u in 0..6u32 {
//!         edges.push(TemporalEdge::new(u, (u + 1) % 6, t));
//!     }
//! }
//! let observed = TemporalGraph::from_edges(6, 2, edges);
//!
//! let mut cfg = TgaeConfig::tiny();
//! cfg.epochs = 5;
//! let mut model = Tgae::new(observed.n_nodes(), observed.n_timestamps(), cfg);
//! let report = fit(&mut model, &observed);
//! assert!(report.final_loss().is_finite());
//!
//! let mut rng = SmallRng::seed_from_u64(7);
//! let synthetic = generate(&model, &observed, &mut rng);
//! assert_eq!(synthetic.n_edges(), observed.n_edges());
//! ```

pub mod config;
pub mod decoder;
pub mod encoder;
pub mod engine;
pub mod features;
pub mod generator;
pub mod model;
pub mod persist;
pub mod trainer;

pub use config::{TgaeConfig, TgaeVariant};
pub use engine::{
    generate_shard, generate_shard_with_sink, generate_with_sink, ShardSpec, SimulationEngine,
    SimulationPlan,
};
pub use generator::generate;
pub use model::{BatchStats, Tgae};
pub use persist::{load, save, PersistError};
pub use trainer::{fit, TrainReport};
