//! Mini-batch training loop (paper §IV-E).
//!
//! Each step samples `n_s` initial temporal nodes (Eq. 2 or uniform,
//! depending on the variant), merges their ego-graphs into k-bipartite
//! computation graphs, and minimises the approximate loss of Eq. 7 with
//! Adam under global-norm gradient clipping.

use crate::config::TgaeConfig;
use crate::model::Tgae;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};
use tg_graph::TemporalGraph;
use tg_sampling::InitialNodeSampler;
use tg_tensor::prelude::*;

/// Outcome of a training run.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Loss after each optimisation step.
    pub losses: Vec<f32>,
    /// Wall-clock training time.
    pub wall: Duration,
    /// Trainable scalar count.
    pub n_params: usize,
    /// Mean slots per batch (space diagnostics for Fig. 6).
    pub mean_batch_slots: f64,
}

impl TrainReport {
    /// Final (last-step) loss.
    pub fn final_loss(&self) -> f32 {
        *self.losses.last().expect("at least one step")
    }

    /// Mean loss over the last quarter of training (noise-robust).
    pub fn tail_loss(&self) -> f32 {
        let n = self.losses.len();
        let tail = &self.losses[n - (n / 4).max(1)..];
        tail.iter().sum::<f32>() / tail.len() as f32
    }
}

/// Train a TGAE model in place on an observed temporal graph.
pub fn fit(model: &mut Tgae, g: &TemporalGraph) -> TrainReport {
    let cfg: TgaeConfig = model.cfg.clone();
    assert_eq!(
        g.n_nodes(),
        model.n_nodes,
        "graph/model node-count mismatch"
    );
    assert!(
        g.n_timestamps() <= model.n_timestamps,
        "graph has more timestamps than model"
    );
    let start = Instant::now();
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x5eed_1234);
    let sampler = InitialNodeSampler::new(g, cfg.sampler.degree_weighted);
    assert!(
        sampler.population_size() > 0,
        "graph has no temporal nodes to learn from"
    );

    let mut opt = Adam::new(cfg.lr);
    let mut losses = Vec::with_capacity(cfg.epochs);
    let mut slot_acc = 0usize;
    // One tape for the whole run: `forward_batch_into` clears it each step
    // and node/gradient buffers recycle through its scratch pool, so the
    // steady-state loop performs (almost) no heap allocation.
    let mut tape = Tape::new();
    for _step in 0..cfg.epochs {
        let centers = sampler.sample_batch(cfg.batch_centers, &mut rng);
        let (loss, stats) = model.forward_batch_into(&mut tape, g, &centers, &mut rng);
        let loss_val = tape.value(loss).item();
        let mut grads = tape.backward(loss);
        clip_global_norm(&mut grads, cfg.grad_clip);
        opt.step(&mut model.store, &grads);
        tape.recycle(grads);
        losses.push(loss_val);
        slot_acc += stats.n_slots;
        debug_assert!(!model.store.any_non_finite(), "parameters went non-finite");
    }
    TrainReport {
        mean_batch_slots: slot_acc as f64 / losses.len().max(1) as f64,
        losses,
        wall: start.elapsed(),
        n_params: model.n_parameters(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TgaeConfig;
    use tg_graph::TemporalEdge;

    fn community_graph() -> TemporalGraph {
        // two dense communities: {0..4} and {5..9}, repeated over 4 steps
        let mut edges = Vec::new();
        for t in 0..4u32 {
            for u in 0..5u32 {
                for v in 0..5u32 {
                    if u != v && (u + v + t) % 3 == 0 {
                        edges.push(TemporalEdge::new(u, v, t));
                        edges.push(TemporalEdge::new(u + 5, v + 5, t));
                    }
                }
            }
        }
        TemporalGraph::from_edges(10, 4, edges)
    }

    #[test]
    fn training_reduces_loss() {
        let g = community_graph();
        let mut cfg = TgaeConfig::tiny();
        cfg.epochs = 40;
        cfg.lr = 2e-2;
        let mut model = Tgae::new(g.n_nodes(), g.n_timestamps(), cfg);
        let report = fit(&mut model, &g);
        assert_eq!(report.losses.len(), 40);
        let head: f32 = report.losses[..5].iter().sum::<f32>() / 5.0;
        let tail = report.tail_loss();
        assert!(
            tail < head * 0.95,
            "loss did not decrease: head {head} tail {tail}"
        );
        assert!(report.losses.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn trained_model_prefers_community_neighbors() {
        let g = community_graph();
        let mut cfg = TgaeConfig::tiny();
        cfg.epochs = 120;
        cfg.lr = 2e-2;
        let mut model = Tgae::new(g.n_nodes(), g.n_timestamps(), cfg);
        fit(&mut model, &g);
        // node 0 (community A) should put more mass on 1..5 than on 5..10
        let mut rng = SmallRng::seed_from_u64(99);
        let (probs, cands) = model.decode_rows_for_generation(&g, &[(0, 0)], &mut rng);
        let mut mass_a = 0.0f32;
        let mut mass_b = 0.0f32;
        for (col, &v) in cands.iter().enumerate() {
            if (1..5).contains(&v) {
                mass_a += probs.get(0, col);
            } else if v >= 5 {
                mass_b += probs.get(0, col);
            }
        }
        assert!(mass_a > mass_b, "community mass A {mass_a} <= B {mass_b}");
    }

    #[test]
    fn report_accessors() {
        let g = community_graph();
        let mut cfg = TgaeConfig::tiny();
        cfg.epochs = 4;
        let mut model = Tgae::new(g.n_nodes(), g.n_timestamps(), cfg);
        let report = fit(&mut model, &g);
        assert!(report.final_loss().is_finite());
        assert!(report.tail_loss().is_finite());
        assert!(report.n_params > 0);
        assert!(report.mean_batch_slots > 0.0);
        assert!(report.wall.as_nanos() > 0);
    }
}
