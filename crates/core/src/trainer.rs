//! Mini-batch training loop (paper §IV-E).
//!
//! Each step samples `n_s` initial temporal nodes (Eq. 2 or uniform,
//! depending on the variant), merges their ego-graphs into k-bipartite
//! computation graphs, and minimises the approximate loss of Eq. 7 with
//! Adam under global-norm gradient clipping.
//!
//! The loop itself lives in `train_loop` (crate-private), which is
//! driven two ways:
//!
//! - [`Session::train`](crate::session::Session::train) — the supported
//!   entry point: typed errors, [`RunObserver`] epoch hooks (progress,
//!   early stopping), periodic checkpoints, and bit-identical
//!   resume-from-checkpoint (the loop's RNG stream, optimizer moments,
//!   and loss history are all part of [`TrainCheckpoint`]).
//! - [`fit`] — the original PR-3 free function, kept as a thin deprecated
//!   wrapper (no hooks, panics on bad input) so existing callers compile.
//!
//! For a fixed config the two paths drive the loop identically, so their
//! trained parameters are bit-for-bit equal.

use crate::config::TgaeConfig;
use crate::errors::TgxError;
use crate::model::Tgae;
use crate::session::{CheckpointPolicy, EpochEvent, RunObserver, TrainControl};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};
use tg_graph::TemporalGraph;
use tg_sampling::InitialNodeSampler;
use tg_tensor::prelude::*;

/// XOR-folded into the master seed to derive the training RNG stream
/// (kept from the seed implementation so trained parameters stay
/// bit-identical across the free-function → session migration).
pub(crate) const TRAIN_STREAM: u64 = 0x5eed_1234;

/// Outcome of a training run.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Loss after each optimisation step actually run (on an
    /// early-stopped or resumed run this is the *full* history, including
    /// epochs restored from the checkpoint).
    pub losses: Vec<f32>,
    /// Wall-clock time of each epoch, aligned with [`TrainReport::losses`].
    pub epoch_walls: Vec<Duration>,
    /// Total wall-clock training time (including the checkpointed portion
    /// of a resumed run).
    pub wall: Duration,
    /// Trainable scalar count.
    pub n_params: usize,
    /// Mean slots per batch (space diagnostics for Fig. 6).
    pub mean_batch_slots: f64,
    /// Epochs the configuration asked for (`cfg.epochs`).
    pub epochs_configured: usize,
    /// Whether a [`RunObserver`] stopped the run before
    /// [`TrainReport::epochs_configured`] epochs completed.
    pub early_stopped: bool,
}

impl TrainReport {
    /// Final (last-step) loss.
    pub fn final_loss(&self) -> f32 {
        *self.losses.last().expect("at least one step")
    }

    /// Mean loss over the last quarter of training (noise-robust).
    pub fn tail_loss(&self) -> f32 {
        let n = self.losses.len();
        let tail = &self.losses[n - (n / 4).max(1)..];
        tail.iter().sum::<f32>() / tail.len() as f32
    }

    /// Epochs actually run — `< epochs_configured` when early-stopped.
    pub fn epochs_run(&self) -> usize {
        self.losses.len()
    }

    /// Per-epoch loss history (aligned with [`TrainReport::epoch_walls`]).
    pub fn loss_history(&self) -> &[f32] {
        &self.losses
    }

    /// Wall-clock time of epoch `i`.
    pub fn epoch_wall(&self, i: usize) -> Duration {
        self.epoch_walls[i]
    }

    /// Mean wall-clock time per epoch actually run.
    pub fn mean_epoch_wall(&self) -> Duration {
        if self.epoch_walls.is_empty() {
            return Duration::ZERO;
        }
        self.epoch_walls.iter().sum::<Duration>() / self.epoch_walls.len() as u32
    }
}

/// Everything the training loop needs to continue a run exactly where a
/// checkpoint left off: model parameters, Adam moments, the raw RNG
/// stream state, and the already-run history. Serialised as one JSON
/// document by [`Session`](crate::session::Session)'s periodic
/// checkpointing; restoring it and running the remaining epochs is
/// bit-identical to never having stopped.
#[derive(Clone, Serialize, Deserialize)]
pub struct TrainCheckpoint {
    /// Checkpoint format version (bumped on incompatible layout changes).
    pub version: u32,
    /// The model mid-training (config + all parameters).
    pub model: Tgae,
    /// Adam state: step count and first/second moments.
    pub opt: Adam,
    /// Raw xoshiro256++ state of the training RNG stream.
    pub rng_state: [u64; 4],
    /// Loss after each epoch run so far (`len()` = next epoch index).
    pub losses: Vec<f32>,
    /// Wall-clock nanoseconds of each epoch run so far.
    pub epoch_wall_nanos: Vec<u64>,
    /// Accumulated batch-slot count (diagnostics carried into the final
    /// report's `mean_batch_slots`).
    pub slot_acc: u64,
}

/// Current [`TrainCheckpoint::version`].
pub(crate) const CHECKPOINT_VERSION: u32 = 1;

/// Mid-run state threaded back into [`train_loop`] when resuming.
pub(crate) struct ResumeState {
    pub opt: Adam,
    pub rng: SmallRng,
    pub losses: Vec<f32>,
    pub epoch_walls: Vec<Duration>,
    pub slot_acc: u64,
}

/// Hooks and prior state for one [`train_loop`] drive. `'h` is the
/// borrow of the driving session, `'o` the observer's own lifetime
/// (captured environment of a closure observer).
pub(crate) struct LoopHooks<'h, 'o> {
    pub observer: Option<&'h mut (dyn RunObserver + 'o)>,
    pub checkpoint: Option<&'h CheckpointPolicy>,
    pub resume: Option<ResumeState>,
}

impl LoopHooks<'_, '_> {
    /// No observer, no checkpoints, fresh run — the [`fit`] configuration.
    pub fn none() -> Self {
        LoopHooks {
            observer: None,
            checkpoint: None,
            resume: None,
        }
    }
}

/// Validate that `g` matches the shape `model` was built for.
pub(crate) fn validate_shapes(model: &Tgae, g: &TemporalGraph) -> Result<(), TgxError> {
    if g.n_nodes() != model.n_nodes {
        return Err(TgxError::NodeCountMismatch {
            model: model.n_nodes,
            graph: g.n_nodes(),
        });
    }
    if g.n_timestamps() > model.n_timestamps {
        return Err(TgxError::TimestampMismatch {
            model: model.n_timestamps,
            graph: g.n_timestamps(),
        });
    }
    Ok(())
}

/// The mini-batch training loop shared by [`fit`] and
/// [`Session::train`](crate::session::Session::train). For identical
/// inputs (same config, same graph, no resume) the parameter trajectory is
/// bit-identical to the seed implementation: the RNG stream, sampling
/// order, and update order are unchanged — hooks only observe.
pub(crate) fn train_loop(
    model: &mut Tgae,
    g: &TemporalGraph,
    hooks: LoopHooks<'_, '_>,
) -> Result<TrainReport, TgxError> {
    let cfg: TgaeConfig = model.cfg.clone();
    validate_shapes(model, g)?;
    if g.n_timestamps() == 0 || g.n_edges() == 0 {
        return Err(TgxError::EmptyGraph);
    }
    if cfg.epochs == 0 {
        return Err(TgxError::InvalidConfig("epochs must be > 0".into()));
    }
    let sampler = InitialNodeSampler::new(g, cfg.sampler.degree_weighted);
    if sampler.population_size() == 0 {
        return Err(TgxError::EmptyGraph);
    }

    let LoopHooks {
        mut observer,
        checkpoint,
        resume,
    } = hooks;
    let (mut opt, mut rng, mut losses, mut epoch_walls, mut slot_acc) = match resume {
        Some(r) => (r.opt, r.rng, r.losses, r.epoch_walls, r.slot_acc),
        None => (
            Adam::new(cfg.lr),
            SmallRng::seed_from_u64(cfg.seed ^ TRAIN_STREAM),
            Vec::with_capacity(cfg.epochs),
            Vec::with_capacity(cfg.epochs),
            0u64,
        ),
    };
    let start_epoch = losses.len();
    if start_epoch > cfg.epochs {
        return Err(TgxError::CheckpointMismatch(format!(
            "checkpoint has already run {start_epoch} epochs but the config asks for {}",
            cfg.epochs
        )));
    }
    let prior_wall: Duration = epoch_walls.iter().sum();
    // lint: allow(determinism) — observer wall-clock only (epoch
    // reporting and checkpoint metadata), never seeded state
    let run_start = Instant::now();
    let mut early_stopped = false;

    // One tape for the whole run: `forward_batch_into` clears it each step
    // and node/gradient buffers recycle through its scratch pool, so the
    // steady-state loop performs (almost) no heap allocation.
    let mut tape = Tape::new();
    for epoch in start_epoch..cfg.epochs {
        let _span = tg_obs::trace::span("train.epoch");
        // lint: allow(determinism) — per-epoch timing for the observer
        let t0 = Instant::now();
        let centers = sampler.sample_batch(cfg.batch_centers, &mut rng);
        let (loss, stats) = model.forward_batch_into(&mut tape, g, &centers, &mut rng);
        let loss_val = tape.value(loss).item();
        let mut grads = tape.backward(loss);
        clip_global_norm(&mut grads, cfg.grad_clip);
        opt.step(&mut model.store, &grads);
        tape.recycle(grads);
        losses.push(loss_val);
        slot_acc += stats.n_slots as u64;
        epoch_walls.push(t0.elapsed());
        debug_assert!(!model.store.any_non_finite(), "parameters went non-finite");

        if let Some(cp) = checkpoint {
            if (epoch + 1).is_multiple_of(cp.every_epochs) {
                tg_faults::fail_point!("train.checkpoint.write", cp.path.display().to_string());
                let ckpt = TrainCheckpoint {
                    version: CHECKPOINT_VERSION,
                    model: model.clone(),
                    opt: opt.clone(),
                    rng_state: rng.state(),
                    losses: losses.clone(),
                    epoch_wall_nanos: epoch_walls.iter().map(|w| w.as_nanos() as u64).collect(),
                    slot_acc,
                };
                // age the rotation before writing: path -> path.1 -> …
                // so a crash inside save_json can cost at most the
                // not-yet-written newest generation
                for i in (1..cp.keep).rev() {
                    let from = crate::session::rotation_slot(&cp.path, i - 1);
                    let to = crate::session::rotation_slot(&cp.path, i);
                    match std::fs::rename(&from, &to) {
                        Ok(()) => {}
                        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                        Err(e) => return Err(crate::persist::PersistError::Io(e).into()),
                    }
                }
                crate::persist::save_json(&ckpt, &cp.path)?;
            }
        }
        if let Some(obs) = observer.as_deref_mut() {
            let event = EpochEvent {
                epoch,
                n_epochs: cfg.epochs,
                loss: loss_val,
                wall: *epoch_walls.last().expect("just pushed"),
            };
            if matches!(obs.on_epoch_end(&event), TrainControl::Stop) {
                early_stopped = epoch + 1 < cfg.epochs;
                break;
            }
        }
    }
    if losses.is_empty() {
        // start_epoch == cfg.epochs can't happen (checked above) with an
        // empty history, so this is unreachable in practice; keep a typed
        // error rather than an expect-panic all the same.
        return Err(TgxError::Cancelled);
    }
    Ok(TrainReport {
        mean_batch_slots: slot_acc as f64 / losses.len() as f64,
        epochs_configured: cfg.epochs,
        early_stopped,
        losses,
        epoch_walls,
        wall: prior_wall + run_start.elapsed(),
        n_params: model.n_parameters(),
    })
}

/// Train a TGAE model in place on an observed temporal graph.
///
/// **Deprecated:** this is the PR-3 entry point, kept as a thin wrapper so
/// existing callers compile. It panics on shape mismatches and offers no
/// observation, cancellation, or checkpointing — prefer building a
/// [`Session`](crate::session::Session), whose
/// [`train`](crate::session::Session::train) produces bit-identical
/// parameters for the same config and reports failures as
/// [`TgxError`] instead.
#[deprecated(
    since = "0.1.0",
    note = "use tgae::Session::builder(..).build()?.train() — typed errors, observer hooks, checkpoint/resume"
)]
pub fn fit(model: &mut Tgae, g: &TemporalGraph) -> TrainReport {
    train_loop(model, g, LoopHooks::none()).unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TgaeConfig;
    use tg_graph::TemporalEdge;

    /// Non-deprecated shim over the shared loop for these unit tests (the
    /// wrapper-equivalence test in `tests/session_api.rs` covers `fit`).
    fn fit_for_test(model: &mut Tgae, g: &TemporalGraph) -> TrainReport {
        train_loop(model, g, LoopHooks::none()).expect("training failed")
    }

    fn community_graph() -> TemporalGraph {
        // two dense communities: {0..4} and {5..9}, repeated over 4 steps
        let mut edges = Vec::new();
        for t in 0..4u32 {
            for u in 0..5u32 {
                for v in 0..5u32 {
                    if u != v && (u + v + t) % 3 == 0 {
                        edges.push(TemporalEdge::new(u, v, t));
                        edges.push(TemporalEdge::new(u + 5, v + 5, t));
                    }
                }
            }
        }
        TemporalGraph::from_edges(10, 4, edges)
    }

    #[test]
    fn training_reduces_loss() {
        let g = community_graph();
        let mut cfg = TgaeConfig::tiny();
        cfg.epochs = 40;
        cfg.lr = 2e-2;
        let mut model = Tgae::new(g.n_nodes(), g.n_timestamps(), cfg);
        let report = fit_for_test(&mut model, &g);
        assert_eq!(report.losses.len(), 40);
        let head: f32 = report.losses[..5].iter().sum::<f32>() / 5.0;
        let tail = report.tail_loss();
        assert!(
            tail < head * 0.95,
            "loss did not decrease: head {head} tail {tail}"
        );
        assert!(report.losses.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn trained_model_prefers_community_neighbors() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let g = community_graph();
        let mut cfg = TgaeConfig::tiny();
        cfg.epochs = 120;
        cfg.lr = 2e-2;
        let mut model = Tgae::new(g.n_nodes(), g.n_timestamps(), cfg);
        fit_for_test(&mut model, &g);
        // node 0 (community A) should put more mass on 1..5 than on 5..10
        let mut rng = SmallRng::seed_from_u64(99);
        let (probs, cands) = model.decode_rows_for_generation(&g, &[(0, 0)], &mut rng);
        let mut mass_a = 0.0f32;
        let mut mass_b = 0.0f32;
        for (col, &v) in cands.iter().enumerate() {
            if (1..5).contains(&v) {
                mass_a += probs.get(0, col);
            } else if v >= 5 {
                mass_b += probs.get(0, col);
            }
        }
        assert!(mass_a > mass_b, "community mass A {mass_a} <= B {mass_b}");
    }

    #[test]
    fn report_accessors() {
        let g = community_graph();
        let mut cfg = TgaeConfig::tiny();
        cfg.epochs = 4;
        let mut model = Tgae::new(g.n_nodes(), g.n_timestamps(), cfg);
        let report = fit_for_test(&mut model, &g);
        assert!(report.final_loss().is_finite());
        assert!(report.tail_loss().is_finite());
        assert!(report.n_params > 0);
        assert!(report.mean_batch_slots > 0.0);
        assert!(report.wall.as_nanos() > 0);
        // PR-4 accessors: per-epoch history and actual-vs-configured count
        assert_eq!(report.epochs_run(), 4);
        assert_eq!(report.epochs_configured, 4);
        assert!(!report.early_stopped);
        assert_eq!(report.loss_history().len(), report.epoch_walls.len());
        assert!(report.mean_epoch_wall() <= report.wall);
        let summed: Duration = (0..report.epochs_run()).map(|i| report.epoch_wall(i)).sum();
        assert!(summed <= report.wall);
    }

    #[test]
    fn shape_mismatch_is_a_typed_error() {
        let g = community_graph();
        let mut model = Tgae::new(g.n_nodes() + 2, g.n_timestamps(), TgaeConfig::tiny());
        let err = train_loop(&mut model, &g, LoopHooks::none()).unwrap_err();
        assert!(matches!(
            err,
            TgxError::NodeCountMismatch {
                model: 12,
                graph: 10
            }
        ));
    }
}
