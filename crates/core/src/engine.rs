//! The sharded streaming simulation engine — the serving-side assembly of
//! paper §IV-G, refactored into an explicit **plan → execute → emit**
//! pipeline.
//!
//! [`generator::generate`](crate::generator::generate) used to be a
//! monolith: enumerate per-timestamp budgets, fan chunks out over the
//! worker pool, and concatenate one giant `Vec<TemporalEdge>` into an
//! in-memory graph. This module splits those stages apart so each can
//! scale independently:
//!
//! 1. **Plan** ([`SimulationPlan`]): a deterministic *shard manifest* of
//!    work units, each `(timestamp, chunk, SplitMix64-derived seed,
//!    per-source budgets)`. The plan is a pure function of the observed
//!    graph, the chunk size, and a master seed — two processes that plan
//!    with the same inputs produce the same manifest, which is what makes
//!    cross-process sharding sound.
//! 2. **Execute** ([`SimulationEngine::execute`]): run any subset of
//!    units on the worker pool. Each unit decodes its centers with a
//!    **per-worker thread-local tape** ([`tg_tensor::tape::Tape::with_thread_local`]) and
//!    samples edges with its own RNG stream, so results are bit-identical
//!    at any thread count and any unit partition. Units are processed in
//!    bounded windows (a few per worker), so the number of in-flight edge
//!    buffers — and therefore peak memory with a streaming sink — is
//!    independent of the total edge count.
//! 3. **Emit** ([`EdgeSink`]): finished units are handed to the sink *in
//!    plan order* regardless of execution interleaving. `GraphSink`
//!    rebuilds the classic in-memory graph; `StreamingWriterSink` writes
//!    edge-list text with bounded memory; `StatsSink` keeps only online
//!    per-timestamp statistics.
//!
//! # Sharding
//!
//! [`SimulationPlan::shards`] partitions the timestamp axis into
//! contiguous ranges balanced by observed edge count; each
//! [`ShardSpec`] is a small serialisable description (`master seed +
//! timestamp range`) that a separate process can execute with
//! [`generate_shard`] having nothing but the model, the observed graph,
//! and the spec. Because per-unit RNG streams depend only on
//! `(master, t, chunk)`, and shards partition the plan in order,
//! concatenating the shard outputs (e.g. with
//! [`tg_graph::io::merge_edge_lists`]) reproduces the single-process
//! output **bit-identically**.

use crate::model::Tgae;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use tg_graph::sink::{EdgeSink, GraphSink};
use tg_graph::{NodeId, TemporalEdge, TemporalGraph, Time};
use tg_tensor::init::{sample_categorical, sample_categorical_without_replacement};
use tg_tensor::parallel::{num_threads, par_map};

/// SplitMix64 finalizer: decorrelates the per-chunk seeds derived from
/// `(master, t, chunk)` so neighboring chunks get unrelated streams.
pub fn mix_seed(master: u64, t: u64, chunk: u64) -> u64 {
    let mut z = master ^ t.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ chunk.rotate_left(32);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One unit of the shard manifest: a center chunk at one timestamp, with
/// its derived RNG seed and the `(source, total, distinct)` out-degree
/// budgets the sampler must honor.
#[derive(Clone, Debug)]
pub struct PlannedUnit {
    /// Timestamp every edge of this unit will carry.
    pub t: Time,
    /// Chunk index within the timestamp (plan order key).
    pub chunk: u32,
    /// SplitMix64-derived seed of this unit's private RNG stream.
    pub seed: u64,
    /// Per-source budgets: `(source, total out-edges, distinct targets)`.
    pub budgets: Vec<(NodeId, usize, usize)>,
}

/// One shard of the manifest: a contiguous timestamp range plus the
/// master seed the plan was derived from. Small and serialisable — this
/// is the only thing a remote executor needs besides the model and the
/// observed graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSpec {
    /// Master seed the manifest derives every unit seed from.
    pub master_seed: u64,
    /// First timestamp of the shard (inclusive).
    pub t_begin: Time,
    /// One past the last timestamp of the shard (exclusive).
    pub t_end: Time,
    /// This shard's index in `0..n_shards` (file naming / bookkeeping).
    pub shard: u32,
    /// Total number of shards in the partition.
    pub n_shards: u32,
}

/// The deterministic shard manifest: every work unit of one generation
/// run, in emission order (timestamps ascending, chunks ascending).
#[derive(Clone, Debug)]
pub struct SimulationPlan {
    master_seed: u64,
    units: Vec<PlannedUnit>,
    /// Observed edges per timestamp (shard balancing weights).
    edges_per_t: Vec<usize>,
}

impl SimulationPlan {
    /// Plan the generation of a graph mirroring `observed`, chunking
    /// centers into groups of `batch_centers` (floored at 32, like the
    /// training batch), with all unit seeds derived from `master_seed`.
    ///
    /// Planning is cheap (one pass over the edge list) and **pure**:
    /// identical inputs give an identical manifest in any process.
    pub fn new(observed: &TemporalGraph, batch_centers: usize, master_seed: u64) -> Self {
        let batch = batch_centers.max(32);
        let mut units: Vec<PlannedUnit> = Vec::new();
        for t in 0..observed.n_timestamps() as Time {
            let slice = observed.edges_at(t);
            if slice.is_empty() {
                continue;
            }
            // per-source budgets at t: total out-edges and distinct targets
            // (temporal graphs are multigraphs — EMAIL-like data re-fires
            // the same pair within one snapshot, and the simulation must
            // too)
            let mut budgets: Vec<(NodeId, usize, usize)> = Vec::new();
            let mut last_target: Option<NodeId> = None;
            for e in slice {
                match budgets.last_mut() {
                    Some((u, total, distinct)) if *u == e.u => {
                        *total += 1;
                        if last_target != Some(e.v) {
                            *distinct += 1;
                        }
                    }
                    _ => budgets.push((e.u, 1, 1)),
                }
                last_target = Some(e.v);
            }
            for (ci, chunk) in budgets.chunks(batch).enumerate() {
                units.push(PlannedUnit {
                    t,
                    chunk: ci as u32,
                    seed: mix_seed(master_seed, t as u64, ci as u64),
                    budgets: chunk.to_vec(),
                });
            }
        }
        SimulationPlan {
            master_seed,
            units,
            edges_per_t: observed.edge_counts_per_timestamp(),
        }
    }

    /// The master seed every unit seed derives from.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// All work units, in emission order.
    pub fn units(&self) -> &[PlannedUnit] {
        &self.units
    }

    /// Total edges the executed plan will emit (the observed budget).
    pub fn n_edges(&self) -> usize {
        self.edges_per_t.iter().sum()
    }

    /// Partition the timestamp axis into `n_shards` contiguous ranges,
    /// greedily balanced by observed edge count. Every timestamp lands in
    /// exactly one shard; a shard may be **empty** (zero timestamps) when
    /// `n_shards` exceeds the number of non-empty timestamps or when one
    /// timestamp holds more than its proportional edge share (a skewed
    /// snapshot can exhaust several shards' targets at once — the empty
    /// shard is not necessarily trailing). Deterministic, so any process
    /// can recompute the same partition.
    pub fn shards(&self, n_shards: usize) -> Vec<ShardSpec> {
        assert!(n_shards > 0, "need at least one shard");
        let t_count = self.edges_per_t.len() as Time;
        let total: usize = self.n_edges();
        let mut specs = Vec::with_capacity(n_shards);
        let mut t_begin: Time = 0;
        let mut seen = 0usize;
        for s in 0..n_shards as u32 {
            // advance until this shard holds its proportional edge share
            let target = (total as f64 * (s + 1) as f64 / n_shards as f64).round() as usize;
            let mut t_end = t_begin;
            while t_end < t_count && (seen < target || s as usize + 1 == n_shards) {
                seen += self.edges_per_t[t_end as usize];
                t_end += 1;
            }
            specs.push(ShardSpec {
                master_seed: self.master_seed,
                t_begin,
                t_end,
                shard: s,
                n_shards: n_shards as u32,
            });
            t_begin = t_end;
        }
        specs
    }

    /// The contiguous slice of units covered by `spec` (units are sorted
    /// by timestamp, so a timestamp range is a plan subslice).
    pub fn shard_units(&self, spec: &ShardSpec) -> &[PlannedUnit] {
        assert_eq!(
            spec.master_seed, self.master_seed,
            "shard spec belongs to a different plan"
        );
        let lo = self.units.partition_point(|u| u.t < spec.t_begin);
        let hi = self.units.partition_point(|u| u.t < spec.t_end);
        &self.units[lo..hi]
    }
}

/// A cheap, **monotone** workload estimate for executing a set of planned
/// units — the admission currency of the `tg-serve` scheduler.
///
/// The component counts are exact (the plan already knows every unit's
/// budgets); `cost` folds them into one scalar with fixed positive
/// weights, so it is
///
/// - **monotone**: adding a timestamp, splitting into more chunks
///   (smaller `batch_centers`), or growing any per-source budget can only
///   increase the estimate, never decrease it;
/// - **additive**: the estimates of the shards of a partition sum exactly
///   to the estimate of the whole plan (shards partition the unit list).
///
/// The weights model the execute path: every emitted edge costs a sample,
/// every center a decode row, and every unit a fixed dispatch/RNG-setup
/// overhead.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostEstimate {
    /// Work units (center chunks) the plan executes.
    pub units: u64,
    /// Center rows decoded across all units.
    pub centers: u64,
    /// Edges the executed units will emit (the observed budget).
    pub edges: u64,
    /// The folded scalar: `edges + 8·centers + 64·units`.
    pub cost: u64,
}

/// Per-center decode weight in [`CostEstimate::cost`].
const COST_PER_CENTER: u64 = 8;
/// Per-unit dispatch weight in [`CostEstimate::cost`].
const COST_PER_UNIT: u64 = 64;

impl CostEstimate {
    /// Estimate the cost of executing exactly `units`.
    pub fn of_units(units: &[PlannedUnit]) -> CostEstimate {
        let mut centers = 0u64;
        let mut edges = 0u64;
        for unit in units {
            centers += unit.budgets.len() as u64;
            edges += unit
                .budgets
                .iter()
                .map(|&(_, total, _)| total as u64)
                .sum::<u64>();
        }
        let n_units = units.len() as u64;
        CostEstimate {
            units: n_units,
            centers,
            edges,
            cost: edges + COST_PER_CENTER * centers + COST_PER_UNIT * n_units,
        }
    }
}

impl SimulationPlan {
    /// Workload estimate of executing the whole manifest. Independent of
    /// the master seed (seeds never change budgets or chunking), so a
    /// scheduler can price a request before committing to run it.
    pub fn cost_estimate(&self) -> CostEstimate {
        CostEstimate::of_units(&self.units)
    }

    /// Workload estimate of one shard of the manifest. Shard estimates
    /// sum exactly to [`SimulationPlan::cost_estimate`] across a
    /// partition.
    pub fn shard_cost_estimate(&self, spec: &ShardSpec) -> CostEstimate {
        CostEstimate::of_units(self.shard_units(spec))
    }
}

/// Drives a [`SimulationPlan`] through a trained model into an
/// [`EdgeSink`]. Stateless besides the two borrows, so engines are free
/// to construct per call.
pub struct SimulationEngine<'a> {
    model: &'a Tgae,
    observed: &'a TemporalGraph,
}

impl<'a> SimulationEngine<'a> {
    /// Engine over a trained model and the observed graph it mirrors.
    /// Panics if the model was shaped for a different graph.
    pub fn new(model: &'a Tgae, observed: &'a TemporalGraph) -> Self {
        assert_eq!(model.n_nodes, observed.n_nodes(), "node-count mismatch");
        assert_eq!(
            model.n_timestamps,
            observed.n_timestamps(),
            "timestamp-count mismatch"
        );
        SimulationEngine { model, observed }
    }

    /// Plan the full run under `master_seed` (chunk size comes from the
    /// model's `batch_centers`).
    pub fn plan(&self, master_seed: u64) -> SimulationPlan {
        SimulationPlan::new(self.observed, self.model.cfg.batch_centers, master_seed)
    }

    /// Execute a set of units on the worker pool, emitting each finished
    /// unit into `sink` in plan order.
    ///
    /// Units run in **bounded windows** of a few per worker: within a
    /// window everything executes in parallel, then the window's outputs
    /// are emitted in order and their buffers dropped before the next
    /// window starts. With a non-accumulating sink this caps peak memory
    /// at `O(window × chunk edges)` no matter how many edges the plan
    /// emits in total.
    pub fn execute<S: EdgeSink>(&self, units: &[PlannedUnit], sink: &mut S) {
        let _span = tg_obs::trace::span("engine.execute");
        let window = num_threads().max(1) * 4;
        for group in units.chunks(window) {
            let outs: Vec<Vec<TemporalEdge>> = par_map(group.len(), |i| {
                // Worker-thread span: lands in that thread's trace
                // buffer under this process's pid lane in the merged
                // view. Inert (no clock read, no allocation) unless a
                // trace sink is installed.
                let _span = tg_obs::trace::span("engine.unit");
                self.execute_unit(&group[i])
            });
            for (unit, edges) in group.iter().zip(&outs) {
                sink.accept(unit.t, unit.chunk, edges);
            }
        }
    }

    /// Decode and sample one unit with its private RNG stream. Pure given
    /// the trained model: the same unit always yields the same edges.
    fn execute_unit(&self, unit: &PlannedUnit) -> Vec<TemporalEdge> {
        let t = unit.t;
        let mut rng = SmallRng::seed_from_u64(unit.seed);
        let mut edges: Vec<TemporalEdge> = Vec::new();
        let centers: Vec<(NodeId, Time)> = unit.budgets.iter().map(|&(u, _, _)| (u, t)).collect();
        let (probs, cands) =
            self.model
                .decode_rows_for_generation(self.observed, &centers, &mut rng);
        // Weight/support scratch reused across every row of the chunk
        // (the seed implementation allocated two fresh Vec<f64> per row).
        let mut w: Vec<f64> = Vec::with_capacity(cands.len());
        let mut sup_w: Vec<f64> = Vec::new();
        for (row, &(u, total, distinct)) in unit.budgets.iter().enumerate() {
            // categorical weights over candidates, excluding self-loops
            w.clear();
            w.extend(probs.row(row).iter().map(|&p| p as f64));
            for (col, &cand) in cands.iter().enumerate() {
                if cand == u {
                    w[col] = 0.0;
                }
            }
            // support: `distinct` targets without replacement (§IV-G)
            let take = distinct.min(w.iter().filter(|&&x| x > 0.0).count());
            let support = sample_categorical_without_replacement(&mut rng, &w, take);
            for &col in &support {
                edges.push(TemporalEdge::new(u, cands[col], t));
            }
            // multiplicity: the remaining (total - distinct) edges
            // re-fire within the sampled support, weighted by p
            if total > take && !support.is_empty() {
                sup_w.clear();
                sup_w.extend(support.iter().map(|&col| w[col]));
                for _ in 0..(total - take) {
                    let pick = support[sample_categorical(&mut rng, &sup_w)];
                    edges.push(TemporalEdge::new(u, cands[pick], t));
                }
            }
        }
        edges
    }
}

/// Execute the full manifest for `master_seed` into `sink` and finish it.
/// This is the streaming-generation entry point: pair it with any
/// [`EdgeSink`] — `GraphSink` reproduces [`crate::generate`]'s output,
/// `StreamingWriterSink` bounds memory, `StatsSink` stores nothing.
pub fn generate_with_sink<S: EdgeSink>(
    model: &Tgae,
    observed: &TemporalGraph,
    master_seed: u64,
    mut sink: S,
) -> S::Output {
    let _span = tg_obs::trace::span("engine.generate");
    let engine = SimulationEngine::new(model, observed);
    let plan = engine.plan(master_seed);
    engine.execute(plan.units(), &mut sink);
    sink.finish()
}

/// Execute one shard of the manifest into `sink` and finish it. The plan
/// is recomputed deterministically from `spec.master_seed`, so separate
/// processes can each run their own shard and the concatenation of their
/// outputs (in shard order) is bit-identical to a single-process run.
pub fn generate_shard_with_sink<S: EdgeSink>(
    model: &Tgae,
    observed: &TemporalGraph,
    spec: &ShardSpec,
    mut sink: S,
) -> S::Output {
    let _span = tg_obs::trace::span("engine.generate_shard");
    let engine = SimulationEngine::new(model, observed);
    let plan = engine.plan(spec.master_seed);
    engine.execute(plan.shard_units(spec), &mut sink);
    sink.finish()
}

/// Execute one shard into an in-memory [`TemporalGraph`] containing only
/// that shard's timestamps' edges (other timestamps are present but
/// empty, so shard graphs share the observed shape).
pub fn generate_shard(model: &Tgae, observed: &TemporalGraph, spec: &ShardSpec) -> TemporalGraph {
    generate_shard_with_sink(
        model,
        observed,
        spec,
        GraphSink::new(observed.n_nodes(), observed.n_timestamps()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TgaeConfig;
    use crate::trainer::{train_loop, LoopHooks};

    fn fit_for_test(model: &mut Tgae, g: &TemporalGraph) {
        train_loop(model, g, LoopHooks::none()).expect("train");
    }

    fn ring_graph(n: u32, t_count: u32) -> TemporalGraph {
        let mut edges = Vec::new();
        for t in 0..t_count {
            for u in 0..n {
                edges.push(TemporalEdge::new(u, (u + 1) % n, t));
            }
        }
        TemporalGraph::from_edges(n as usize, t_count as usize, edges)
    }

    #[test]
    fn plan_is_deterministic_and_ordered() {
        let g = ring_graph(12, 4);
        let a = SimulationPlan::new(&g, 4, 99);
        let b = SimulationPlan::new(&g, 4, 99);
        assert_eq!(a.units().len(), b.units().len());
        assert!(!a.units().is_empty());
        for (ua, ub) in a.units().iter().zip(b.units()) {
            assert_eq!((ua.t, ua.chunk, ua.seed), (ub.t, ub.chunk, ub.seed));
            assert_eq!(ua.budgets, ub.budgets);
        }
        // emission order: (t, chunk) strictly increasing lexicographically
        for w in a.units().windows(2) {
            assert!((w[0].t, w[0].chunk) < (w[1].t, w[1].chunk));
        }
        // different master seed -> different unit seeds
        let c = SimulationPlan::new(&g, 4, 100);
        assert_ne!(a.units()[0].seed, c.units()[0].seed);
    }

    #[test]
    fn shards_partition_the_plan() {
        let g = ring_graph(10, 5);
        let plan = SimulationPlan::new(&g, 4, 7);
        for n_shards in [1usize, 2, 3, 4, 7] {
            let specs = plan.shards(n_shards);
            assert_eq!(specs.len(), n_shards);
            assert_eq!(specs[0].t_begin, 0);
            assert_eq!(specs.last().unwrap().t_end as usize, g.n_timestamps());
            let mut covered = 0usize;
            for (i, s) in specs.iter().enumerate() {
                assert!(s.t_begin <= s.t_end);
                if i > 0 {
                    assert_eq!(s.t_begin, specs[i - 1].t_end, "contiguous ranges");
                }
                covered += plan.shard_units(s).len();
            }
            assert_eq!(covered, plan.units().len(), "{n_shards} shards");
        }
    }

    #[test]
    fn shards_beyond_timestamps_leave_trailing_empties() {
        let g = ring_graph(6, 2);
        let plan = SimulationPlan::new(&g, 4, 1);
        let specs = plan.shards(5);
        assert_eq!(specs.len(), 5);
        let non_empty = specs
            .iter()
            .filter(|s| !plan.shard_units(s).is_empty())
            .count();
        assert!(non_empty <= 2);
        let covered: usize = specs.iter().map(|s| plan.shard_units(s).len()).sum();
        assert_eq!(covered, plan.units().len());
    }

    #[test]
    fn cost_estimate_counts_the_observed_budget() {
        let g = ring_graph(12, 4); // 12 edges × 4 timestamps
        let plan = SimulationPlan::new(&g, 4, 99);
        let est = plan.cost_estimate();
        assert_eq!(est.edges as usize, g.n_edges());
        assert_eq!(est.units as usize, plan.units().len());
        // every node is a source once per timestamp
        assert_eq!(est.centers, 12 * 4);
        assert_eq!(est.cost, est.edges + 8 * est.centers + 64 * est.units);
        // seed-independent: the estimate prices the plan, not the stream
        assert_eq!(SimulationPlan::new(&g, 4, 1234).cost_estimate(), est);
    }

    #[test]
    fn shard_cost_estimates_sum_to_the_total() {
        let g = ring_graph(10, 5);
        let plan = SimulationPlan::new(&g, 4, 7);
        let total = plan.cost_estimate();
        for n_shards in [1usize, 2, 3, 7] {
            let mut units = 0u64;
            let mut centers = 0u64;
            let mut edges = 0u64;
            let mut cost = 0u64;
            for spec in plan.shards(n_shards) {
                let e = plan.shard_cost_estimate(&spec);
                units += e.units;
                centers += e.centers;
                edges += e.edges;
                cost += e.cost;
            }
            assert_eq!(
                (units, centers, edges, cost),
                (total.units, total.centers, total.edges, total.cost),
                "{n_shards} shards"
            );
        }
    }

    #[test]
    fn smaller_chunks_never_cost_less() {
        let g = ring_graph(96, 2); // enough sources for several 32-chunks
        let fine = SimulationPlan::new(&g, 32, 1).cost_estimate();
        let coarse = SimulationPlan::new(&g, 64, 1).cost_estimate();
        assert!(fine.units > coarse.units);
        assert!(fine.cost > coarse.cost);
        assert_eq!(fine.edges, coarse.edges);
        assert_eq!(fine.centers, coarse.centers);
    }

    #[test]
    fn sharded_union_equals_full_run() {
        let g = ring_graph(9, 3);
        let mut cfg = TgaeConfig::tiny();
        cfg.epochs = 5;
        cfg.batch_centers = 4;
        let mut model = Tgae::new(g.n_nodes(), g.n_timestamps(), cfg);
        fit_for_test(&mut model, &g);

        let full = generate_with_sink(
            &model,
            &g,
            123,
            GraphSink::new(g.n_nodes(), g.n_timestamps()),
        );
        for n_shards in [1usize, 2, 4] {
            let plan = SimulationEngine::new(&model, &g).plan(123);
            let mut merged: Vec<TemporalEdge> = Vec::new();
            for spec in plan.shards(n_shards) {
                let shard = generate_shard(&model, &g, &spec);
                merged.extend_from_slice(shard.edges());
            }
            let merged = TemporalGraph::from_edges(g.n_nodes(), g.n_timestamps(), merged);
            assert_eq!(merged.edges(), full.edges(), "{n_shards} shards");
        }
    }
}
