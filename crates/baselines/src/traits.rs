//! The common interface every baseline generator implements.

use rand::RngCore;
use tg_graph::TemporalGraph;

/// A temporal-graph generator: fit on an observed graph, emit a synthetic
/// graph with the same node count, timestamp count, and per-timestamp edge
/// budget (the paper's comparison protocol).
pub trait TemporalGraphGenerator {
    /// Method name as printed in the paper's tables.
    fn name(&self) -> &'static str;

    /// Fit and generate in one call (most baselines are fit-once models).
    fn fit_generate(&mut self, observed: &TemporalGraph, rng: &mut dyn RngCore) -> TemporalGraph;

    /// Whether the method is learning-based (deep) — used by the harness
    /// to group rows the way the paper's tables do.
    fn is_learning_based(&self) -> bool {
        true
    }
}

/// Check the generated graph honours the comparison protocol.
pub fn validate_output(observed: &TemporalGraph, generated: &TemporalGraph) {
    assert_eq!(
        generated.n_nodes(),
        observed.n_nodes(),
        "node count changed"
    );
    assert_eq!(
        generated.n_timestamps(),
        observed.n_timestamps(),
        "timestamp count changed"
    );
}
