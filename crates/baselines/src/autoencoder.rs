//! Auto-encoder-family static baselines: VGAE, Graphite, and SBMGNN.
//!
//! The paper applies static generative models snapshot-by-snapshot. Re-
//! training a separate deep model for every one of up to ~1900 timestamps
//! is exactly the cost blow-up the paper reports; to keep the harness
//! runnable we train one model per *bucket* of timestamps (default 8
//! buckets — `1` reproduces the union graph, `T` the paper's literal
//! protocol) and generate each snapshot from its bucket's model. The
//! per-pair scoring and O(n) dense candidate rows are retained, which is
//! why these baselines still degrade/OOM first at scale, matching the
//! paper's Tables IV–VI.
//!
//! - **VGAE** (Kipf & Welling): one mean-aggregation GCN step feeding
//!   variational heads; inner-product decoder; BCE + KL.
//! - **Graphite** (Grover et al.): VGAE plus a low-rank iterative decoder
//!   refinement `H' ∝ Z (Zᵀ H)`.
//! - **SBMGNN** (Mehta et al.): overlapping stochastic blockmodel with
//!   positive memberships `θ = exp(E)` and block matrix `B`; edge logit
//!   `θ_u B θ_vᵀ + c`.

use crate::traits::TemporalGraphGenerator;
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use std::rc::Rc;
use tg_graph::{TemporalEdge, TemporalGraph};
use tg_tensor::matrix::{matmul_nt, Matrix};
use tg_tensor::prelude::*;

/// Timestamp-to-bucket assignment plus per-bucket positive pairs.
pub(crate) struct Buckets {
    pub bucket_of_t: Vec<usize>,
    pub pairs: Vec<Vec<(u32, u32)>>,
}

pub(crate) fn bucketize(g: &TemporalGraph, max_buckets: usize) -> Buckets {
    let t_count = g.n_timestamps();
    let n_buckets = max_buckets.max(1).min(t_count);
    let bucket_of_t: Vec<usize> = (0..t_count).map(|t| t * n_buckets / t_count).collect();
    let mut pairs: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n_buckets];
    for e in g.edges() {
        if e.u != e.v {
            pairs[bucket_of_t[e.t as usize]].push((e.u, e.v));
        }
    }
    Buckets { bucket_of_t, pairs }
}

/// Draw `count` negative pairs (uniform, no self-loops).
fn sample_negatives(n: usize, count: usize, rng: &mut dyn RngCore) -> Vec<(u32, u32)> {
    (0..count)
        .map(|_| {
            let u = rng.gen_range(0..n) as u32;
            let mut v = rng.gen_range(0..n) as u32;
            while v == u {
                v = rng.gen_range(0..n) as u32;
            }
            (u, v)
        })
        .collect()
}

/// Shared per-timestamp generation: sources keep their observed
/// out-degrees; targets are drawn without replacement from the bucket
/// model's dense score row.
pub(crate) fn generate_from_scores(
    observed: &TemporalGraph,
    bucket_of_t: &[usize],
    score_row: &dyn Fn(usize, u32) -> Vec<f64>,
    rng: &mut dyn RngCore,
) -> TemporalGraph {
    let n = observed.n_nodes();
    let mut edges = Vec::with_capacity(observed.n_edges());
    for t in 0..observed.n_timestamps() as u32 {
        let slice = observed.edges_at(t);
        if slice.is_empty() {
            continue;
        }
        let mut budgets: Vec<(u32, usize)> = Vec::new();
        for e in slice {
            match budgets.last_mut() {
                Some((u, c)) if *u == e.u => *c += 1,
                _ => budgets.push((e.u, 1)),
            }
        }
        let b = bucket_of_t[t as usize];
        for (u, budget) in budgets {
            let mut w = score_row(b, u);
            debug_assert_eq!(w.len(), n);
            w[u as usize] = 0.0;
            let take = budget.min(w.iter().filter(|&&x| x > 0.0).count());
            for v in sample_categorical_without_replacement(rng, &w, take) {
                edges.push(TemporalEdge::new(u, v as u32, t));
            }
        }
    }
    TemporalGraph::from_edges(n, observed.n_timestamps(), edges)
}

/// Which auto-encoder flavour to train.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Flavor {
    Vgae,
    Graphite,
    Sbmgnn,
}

/// Shared configuration for the AE family.
#[derive(Clone, Copy)]
pub struct AeConfig {
    pub dim: usize,
    pub blocks: usize,
    pub epochs: usize,
    pub lr: f32,
    pub max_buckets: usize,
    pub batch_pairs: usize,
    pub seed: u64,
}

impl Default for AeConfig {
    fn default() -> Self {
        AeConfig {
            dim: 16,
            blocks: 8,
            epochs: 60,
            lr: 2e-2,
            max_buckets: 8,
            batch_pairs: 1024,
            seed: 1,
        }
    }
}

/// Per-bucket trained state: a dense score machine.
enum BucketModel {
    /// Inner-product models (VGAE/Graphite): `score = sigmoid(Z Zᵀ)` rows.
    InnerProduct { z: Matrix },
    /// SBM: `score = sigmoid(θB θᵀ + c)` rows.
    Sbm {
        theta: Matrix,
        theta_b: Matrix,
        bias: f32,
    },
}

impl BucketModel {
    fn score_row(&self, u: u32) -> Vec<f64> {
        match self {
            BucketModel::InnerProduct { z } => {
                let zu = Matrix::from_vec(1, z.cols(), z.row(u as usize).to_vec());
                let s = matmul_nt(&zu, z);
                s.as_slice().iter().map(|&x| sigmoid64(x)).collect()
            }
            BucketModel::Sbm {
                theta,
                theta_b,
                bias,
            } => {
                let r = Matrix::from_vec(1, theta_b.cols(), theta_b.row(u as usize).to_vec());
                let s = matmul_nt(&r, theta);
                s.as_slice().iter().map(|&x| sigmoid64(x + bias)).collect()
            }
        }
    }
}

fn sigmoid64(x: f32) -> f64 {
    1.0 / (1.0 + (-x as f64).exp())
}

/// GCN mean aggregation over undirected pairs: `agg[v] = mean_{u~v} x[u]`,
/// including a self contribution.
fn mean_aggregate(tape: &mut Tape, x: Var, n: usize, pairs: &[(u32, u32)]) -> Var {
    let mut src: Vec<u32> = Vec::with_capacity(pairs.len() * 2 + n);
    let mut dst: Vec<u32> = Vec::with_capacity(pairs.len() * 2 + n);
    for &(u, v) in pairs {
        src.push(u);
        dst.push(v);
        src.push(v);
        dst.push(u);
    }
    for i in 0..n as u32 {
        src.push(i);
        dst.push(i);
    }
    let mut deg = vec![0f32; n];
    for &d in &dst {
        deg[d as usize] += 1.0;
    }
    let w: Vec<f32> = dst.iter().map(|&d| 1.0 / deg[d as usize]).collect();
    let w_in = tape.input(Matrix::from_vec(w.len(), 1, w));
    let gathered = tape.gather_rows(x, Rc::new(src));
    let weighted = tape.scale_rows(gathered, w_in);
    tape.scatter_add_rows(weighted, Rc::new(dst), n)
}

/// Train one bucket for the requested flavour; returns its score machine.
fn train_bucket(
    flavor: Flavor,
    n: usize,
    pairs: &[(u32, u32)],
    cfg: &AeConfig,
    rng: &mut SmallRng,
) -> BucketModel {
    let mut store = ParamStore::new();
    let d = cfg.dim;
    match flavor {
        Flavor::Vgae | Flavor::Graphite => {
            let emb = store.create("x", xavier_uniform(rng, n, d));
            let w0 = Linear::new(&mut store, rng, "w0", d, d);
            let w_mu = Linear::new(&mut store, rng, "w_mu", d, d);
            let w_lv = Linear::new(&mut store, rng, "w_lv", d, d);
            let w_ref = Linear::new(&mut store, rng, "w_ref", d, d);
            let mut opt = Adam::new(cfg.lr);
            for _ in 0..cfg.epochs {
                let batch: Vec<(u32, u32)> = if pairs.len() <= cfg.batch_pairs {
                    pairs.to_vec()
                } else {
                    (0..cfg.batch_pairs)
                        .map(|_| pairs[rng.gen_range(0..pairs.len())])
                        .collect()
                };
                if batch.is_empty() {
                    break;
                }
                let negs = sample_negatives(n, batch.len(), rng);
                let mut tape = Tape::new();
                let x = tape.param(&store, emb);
                let agg = mean_aggregate(&mut tape, x, n, pairs);
                let h0 = w0.forward(&mut tape, &store, agg);
                let h = tape.relu(h0);
                let mu = w_mu.forward(&mut tape, &store, h);
                let lv = w_lv.forward(&mut tape, &store, h);
                let half = tape.scale(lv, 0.5);
                let std = tape.exp(half);
                let eps = tape.input(normal_matrix(rng, n, d, 1.0));
                let noise = tape.mul(std, eps);
                let mut z = tape.add(mu, noise);
                if flavor == Flavor::Graphite {
                    // low-rank refinement: Z' = relu(W_ref (Z (Zᵀ Z) / n)) + Z
                    let zt = tape.transpose(z);
                    let gram = tape.matmul(zt, z); // d x d
                    let prop = tape.matmul(z, gram); // n x d
                    let prop = tape.scale(prop, 1.0 / n as f32);
                    let refd = w_ref.forward(&mut tape, &store, prop);
                    let refd = tape.relu(refd);
                    z = tape.add(z, refd);
                }
                // pair logits
                let (pu, pv): (Vec<u32>, Vec<u32>) = batch.iter().copied().unzip();
                let (nu, nv): (Vec<u32>, Vec<u32>) = negs.iter().copied().unzip();
                let mut us = pu;
                us.extend(nu);
                let mut vs = pv;
                vs.extend(nv);
                let zu = tape.gather_rows(z, Rc::new(us));
                let zv = tape.gather_rows(z, Rc::new(vs));
                let logits = tape.rowwise_dot(zu, zv);
                let mut targets = vec![1.0f32; batch.len()];
                targets.extend(vec![0.0f32; negs.len()]);
                let t_in = Rc::new(Matrix::from_vec(targets.len(), 1, targets));
                let bce = tape.bce_with_logits(logits, t_in);
                let kl = tape.kl_normal(mu, lv, 1e-3 / n as f32);
                let loss = tape.add(bce, kl);
                let mut grads = tape.backward(loss);
                clip_global_norm(&mut grads, 5.0);
                opt.step(&mut store, &grads);
            }
            // deterministic embedding: recompute mu (plus refinement)
            let mut tape = Tape::new();
            let x = tape.param(&store, emb);
            let agg = mean_aggregate(&mut tape, x, n, pairs);
            let h0 = w0.forward(&mut tape, &store, agg);
            let h = tape.relu(h0);
            let mut z = w_mu.forward(&mut tape, &store, h);
            if flavor == Flavor::Graphite {
                let zt = tape.transpose(z);
                let gram = tape.matmul(zt, z);
                let prop = tape.matmul(z, gram);
                let prop = tape.scale(prop, 1.0 / n as f32);
                let refd = w_ref.forward(&mut tape, &store, prop);
                let refd = tape.relu(refd);
                z = tape.add(z, refd);
            }
            BucketModel::InnerProduct {
                z: tape.value(z).clone(),
            }
        }
        Flavor::Sbmgnn => {
            let k = cfg.blocks;
            let emb = store.create("e", normal_matrix(rng, n, k, 0.3));
            let block = store.create("b", normal_matrix(rng, k, k, 0.3));
            let bias = store.create("c", Matrix::scalar(-1.0));
            let mut opt = Adam::new(cfg.lr);
            for _ in 0..cfg.epochs {
                let batch: Vec<(u32, u32)> = if pairs.len() <= cfg.batch_pairs {
                    pairs.to_vec()
                } else {
                    (0..cfg.batch_pairs)
                        .map(|_| pairs[rng.gen_range(0..pairs.len())])
                        .collect()
                };
                if batch.is_empty() {
                    break;
                }
                let negs = sample_negatives(n, batch.len(), rng);
                let mut tape = Tape::new();
                let e = tape.param(&store, emb);
                let theta = tape.exp(e); // positive memberships
                let b = tape.param(&store, block);
                let bexp = tape.exp(b); // positive block affinities
                let theta_b = tape.matmul(theta, bexp);
                let (pu, pv): (Vec<u32>, Vec<u32>) = batch.iter().copied().unzip();
                let (nu, nv): (Vec<u32>, Vec<u32>) = negs.iter().copied().unzip();
                let mut us = pu;
                us.extend(nu);
                let mut vs = pv;
                vs.extend(nv);
                let ru = tape.gather_rows(theta_b, Rc::new(us.clone()));
                let rv = tape.gather_rows(theta, Rc::new(vs));
                let dots = tape.rowwise_dot(ru, rv);
                let c = tape.param(&store, bias);
                let ones = tape.input(Matrix::full(us.len(), 1, 1.0));
                let c_bcast = tape.matmul(ones, c);
                let logits = tape.add(dots, c_bcast);
                let mut targets = vec![1.0f32; batch.len()];
                targets.extend(vec![0.0f32; negs.len()]);
                let t_in = Rc::new(Matrix::from_vec(targets.len(), 1, targets));
                let loss = tape.bce_with_logits(logits, t_in);
                let mut grads = tape.backward(loss);
                clip_global_norm(&mut grads, 5.0);
                opt.step(&mut store, &grads);
            }
            let mut tape = Tape::new();
            let e = tape.param(&store, emb);
            let theta = tape.exp(e);
            let b = tape.param(&store, block);
            let bexp = tape.exp(b);
            let theta_b = tape.matmul(theta, bexp);
            BucketModel::Sbm {
                theta: tape.value(theta).clone(),
                theta_b: tape.value(theta_b).clone(),
                bias: store.value(bias).item(),
            }
        }
    }
}

/// Shared implementation of the three AE baselines.
pub struct AeGenerator {
    flavor: Flavor,
    pub cfg: AeConfig,
}

impl AeGenerator {
    pub fn vgae(cfg: AeConfig) -> Self {
        AeGenerator {
            flavor: Flavor::Vgae,
            cfg,
        }
    }

    pub fn graphite(cfg: AeConfig) -> Self {
        AeGenerator {
            flavor: Flavor::Graphite,
            cfg,
        }
    }

    pub fn sbmgnn(cfg: AeConfig) -> Self {
        AeGenerator {
            flavor: Flavor::Sbmgnn,
            cfg,
        }
    }
}

impl TemporalGraphGenerator for AeGenerator {
    fn name(&self) -> &'static str {
        match self.flavor {
            Flavor::Vgae => "VGAE",
            Flavor::Graphite => "Graphite",
            Flavor::Sbmgnn => "SBMGNN",
        }
    }

    fn fit_generate(&mut self, observed: &TemporalGraph, rng: &mut dyn RngCore) -> TemporalGraph {
        let n = observed.n_nodes();
        let buckets = bucketize(observed, self.cfg.max_buckets);
        let mut train_rng = SmallRng::seed_from_u64(self.cfg.seed ^ rng.next_u64());
        let models: Vec<BucketModel> = buckets
            .pairs
            .iter()
            .map(|pairs| train_bucket(self.flavor, n, pairs, &self.cfg, &mut train_rng))
            .collect();
        let score = |b: usize, u: u32| models[b].score_row(u);
        generate_from_scores(observed, &buckets.bucket_of_t, &score, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::validate_output;

    fn observed() -> TemporalGraph {
        // two communities over 4 timestamps
        let mut edges = Vec::new();
        for t in 0..4u32 {
            for i in 0..6u32 {
                for j in 0..6u32 {
                    if i != j && (i + j + t) % 4 == 0 {
                        edges.push(TemporalEdge::new(i, j, t));
                        edges.push(TemporalEdge::new(i + 6, j + 6, t));
                    }
                }
            }
        }
        TemporalGraph::from_edges(12, 4, edges)
    }

    fn quick_cfg() -> AeConfig {
        AeConfig {
            epochs: 25,
            dim: 8,
            blocks: 4,
            max_buckets: 2,
            ..Default::default()
        }
    }

    #[test]
    fn bucketize_assignments_cover_all_timestamps() {
        let g = observed();
        let b = bucketize(&g, 2);
        assert_eq!(b.bucket_of_t.len(), 4);
        assert_eq!(b.bucket_of_t, vec![0, 0, 1, 1]);
        let total: usize = b.pairs.iter().map(|p| p.len()).sum();
        assert_eq!(total, g.n_edges());
        // more buckets than timestamps clamps
        let b1 = bucketize(&g, 100);
        assert_eq!(b1.pairs.len(), 4);
    }

    #[test]
    fn vgae_generates_valid_graph() {
        let g = observed();
        let mut rng = SmallRng::seed_from_u64(0);
        let out = AeGenerator::vgae(quick_cfg()).fit_generate(&g, &mut rng);
        validate_output(&g, &out);
        assert_eq!(
            out.edge_counts_per_timestamp(),
            g.edge_counts_per_timestamp()
        );
    }

    #[test]
    fn graphite_generates_valid_graph() {
        let g = observed();
        let mut rng = SmallRng::seed_from_u64(1);
        let out = AeGenerator::graphite(quick_cfg()).fit_generate(&g, &mut rng);
        validate_output(&g, &out);
        assert_eq!(out.n_edges(), g.n_edges());
    }

    #[test]
    fn sbmgnn_generates_valid_graph() {
        let g = observed();
        let mut rng = SmallRng::seed_from_u64(2);
        let out = AeGenerator::sbmgnn(quick_cfg()).fit_generate(&g, &mut rng);
        validate_output(&g, &out);
        assert_eq!(out.n_edges(), g.n_edges());
    }

    #[test]
    fn vgae_learns_community_structure() {
        let g = observed();
        let mut cfg = quick_cfg();
        cfg.epochs = 150;
        let mut rng = SmallRng::seed_from_u64(3);
        let out = AeGenerator::vgae(cfg).fit_generate(&g, &mut rng);
        // generated edges should stay within communities more than half the time
        let within = out
            .edges()
            .iter()
            .filter(|e| (e.u < 6) == (e.v < 6))
            .count();
        let frac = within as f64 / out.n_edges() as f64;
        assert!(frac > 0.6, "within-community fraction {frac}");
    }

    #[test]
    fn names() {
        assert_eq!(AeGenerator::vgae(quick_cfg()).name(), "VGAE");
        assert_eq!(AeGenerator::graphite(quick_cfg()).name(), "Graphite");
        assert_eq!(AeGenerator::sbmgnn(quick_cfg()).name(), "SBMGNN");
    }
}
