//! Random-walk-family baselines: NetGAN-lite, TagGen-lite, TGGAN-lite and
//! TIGGER-lite.
//!
//! Each keeps the defining mechanism of its namesake (see DESIGN.md §3):
//!
//! - **NetGAN-lite** — walk-distribution learning via low-rank logit
//!   factorisation of the walk transition matrix. The paper's own citation
//!   \[45\] ("NetGAN without GAN") shows NetGAN's generator is equivalent to
//!   a low-rank approximation of the random-walk transition matrix, which
//!   is what we fit (sampled-softmax bigram model, per snapshot bucket).
//! - **TagGen-lite** — temporal random walks with a node-transition model
//!   *and* a dense `T x T` time-affinity table (the O(T²) structure that
//!   limits TagGen's scalability); the sampled walk corpus is retained in
//!   memory, mirroring TagGen's need for a large walk set.
//! - **TGGAN-lite** — TagGen-lite plus one adversarial round: a
//!   discriminator MLP over walk features re-weights the transition model.
//! - **TIGGER-lite** — first-order autoregressive temporal-walk model with
//!   a per-node inter-event gap distribution; O(n + M) state.

use crate::autoencoder::{bucketize, generate_from_scores};
use crate::traits::TemporalGraphGenerator;
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use std::collections::HashMap;
use std::rc::Rc;
use tg_graph::{NodeId, TemporalEdge, TemporalGraph, Time};
use tg_tensor::matrix::Matrix;
use tg_tensor::prelude::*;

// ---------------------------------------------------------------------
// shared machinery
// ---------------------------------------------------------------------

/// Sparse node-transition counts learned from walks or edges.
#[derive(Default, Clone)]
pub(crate) struct TransitionModel {
    /// `next[u]` = (target, weight) list.
    next: HashMap<NodeId, Vec<(NodeId, f64)>>,
    /// start-node weights (by temporal degree).
    starts: Vec<f64>,
}

impl TransitionModel {
    fn from_edges(n: usize, edges: impl Iterator<Item = (NodeId, NodeId)>) -> Self {
        let mut next: HashMap<NodeId, HashMap<NodeId, f64>> = HashMap::new();
        let mut starts = vec![0.0; n];
        for (u, v) in edges {
            *next.entry(u).or_default().entry(v).or_insert(0.0) += 1.0;
            starts[u as usize] += 1.0;
            starts[v as usize] += 0.5; // targets may start walks too
        }
        let next = next
            .into_iter()
            .map(|(u, m)| (u, m.into_iter().collect::<Vec<_>>()))
            .collect();
        TransitionModel { next, starts }
    }

    fn sample_start(&self, rng: &mut dyn RngCore) -> Option<NodeId> {
        if self.starts.iter().all(|&w| w <= 0.0) {
            return None;
        }
        Some(sample_categorical(rng, &self.starts) as NodeId)
    }

    fn sample_next(&self, u: NodeId, rng: &mut dyn RngCore) -> Option<NodeId> {
        let opts = self.next.get(&u)?;
        let weights: Vec<f64> = opts.iter().map(|&(_, w)| w).collect();
        if weights.iter().all(|&w| w <= 0.0) {
            return None;
        }
        Some(opts[sample_categorical(rng, &weights)].0)
    }

    /// Multiply the weight of transition `(u, v)` by `factor`.
    fn reweight(&mut self, u: NodeId, v: NodeId, factor: f64) {
        if let Some(opts) = self.next.get_mut(&u) {
            for (t, w) in opts.iter_mut() {
                if *t == v {
                    *w *= factor;
                }
            }
        }
    }
}

/// Budget-matched assembly: repeatedly draw candidate temporal edges from
/// `propose` and fill each timestamp's budget; any remainder (proposer
/// starved) is completed with uniform random pairs so the output always
/// honours the protocol.
pub(crate) fn assemble_with_budgets(
    observed: &TemporalGraph,
    mut propose: impl FnMut(&mut dyn RngCore) -> Vec<TemporalEdge>,
    rng: &mut dyn RngCore,
) -> TemporalGraph {
    let n = observed.n_nodes();
    let t_count = observed.n_timestamps();
    let budgets = observed.edge_counts_per_timestamp();
    let mut remaining: Vec<usize> = budgets.clone();
    let mut edges: Vec<TemporalEdge> = Vec::with_capacity(observed.n_edges());
    let mut stale_rounds = 0;
    while remaining.iter().any(|&r| r > 0) && stale_rounds < 40 {
        let batch = propose(rng);
        let mut progressed = false;
        for e in batch {
            let t = e.t as usize;
            if t < t_count && remaining[t] > 0 && e.u != e.v {
                edges.push(e);
                remaining[t] -= 1;
                progressed = true;
            }
        }
        if !progressed {
            stale_rounds += 1;
        }
    }
    // fallback fill (documented): uniform pairs for starved timestamps
    for (t, &r) in remaining.iter().enumerate() {
        for _ in 0..r {
            let u = rng.gen_range(0..n) as u32;
            let mut v = rng.gen_range(0..n) as u32;
            while v == u {
                v = rng.gen_range(0..n) as u32;
            }
            edges.push(TemporalEdge::new(u, v, t as u32));
        }
    }
    TemporalGraph::from_edges(n, t_count, edges)
}

// ---------------------------------------------------------------------
// NetGAN-lite
// ---------------------------------------------------------------------

/// Configuration for NetGAN-lite.
#[derive(Clone, Copy)]
pub struct NetGanConfig {
    pub dim: usize,
    pub walk_len: usize,
    pub n_walks: usize,
    pub epochs: usize,
    pub lr: f32,
    pub max_buckets: usize,
    pub n_negatives: usize,
    pub seed: u64,
}

impl Default for NetGanConfig {
    fn default() -> Self {
        NetGanConfig {
            dim: 16,
            walk_len: 8,
            n_walks: 400,
            epochs: 60,
            lr: 2e-2,
            max_buckets: 8,
            n_negatives: 128,
            seed: 2,
        }
    }
}

/// NetGAN-lite: low-rank factorisation of the walk transition matrix.
pub struct NetGanGenerator {
    pub cfg: NetGanConfig,
}

impl NetGanGenerator {
    pub fn new(cfg: NetGanConfig) -> Self {
        NetGanGenerator { cfg }
    }
}

fn sample_static_walks(
    tm: &TransitionModel,
    n_walks: usize,
    len: usize,
    rng: &mut dyn RngCore,
) -> Vec<Vec<NodeId>> {
    let mut walks = Vec::with_capacity(n_walks);
    for _ in 0..n_walks {
        let Some(mut cur) = tm.sample_start(rng) else {
            break;
        };
        let mut walk = vec![cur];
        for _ in 1..len {
            match tm.sample_next(cur, rng) {
                Some(nxt) => {
                    walk.push(nxt);
                    cur = nxt;
                }
                None => break,
            }
        }
        if walk.len() >= 2 {
            walks.push(walk);
        }
    }
    walks
}

impl TemporalGraphGenerator for NetGanGenerator {
    fn name(&self) -> &'static str {
        "NetGAN"
    }

    fn fit_generate(&mut self, observed: &TemporalGraph, rng: &mut dyn RngCore) -> TemporalGraph {
        let n = observed.n_nodes();
        let buckets = bucketize(observed, self.cfg.max_buckets);
        let mut train_rng = SmallRng::seed_from_u64(self.cfg.seed ^ rng.next_u64());
        // one (src-emb, dst-emb) pair per bucket, fit on walk bigrams
        let mut models: Vec<(Matrix, Matrix)> = Vec::with_capacity(buckets.pairs.len());
        for pairs in &buckets.pairs {
            let tm = TransitionModel::from_edges(n, pairs.iter().copied());
            let walks =
                sample_static_walks(&tm, self.cfg.n_walks, self.cfg.walk_len, &mut train_rng);
            let mut bigrams: Vec<(u32, u32)> = Vec::new();
            for w in &walks {
                for win in w.windows(2) {
                    bigrams.push((win[0], win[1]));
                }
            }
            let mut store = ParamStore::new();
            let src_emb = store.create("s", xavier_uniform(&mut train_rng, n, self.cfg.dim));
            let dst_emb = store.create("d", xavier_uniform(&mut train_rng, n, self.cfg.dim));
            let mut opt = Adam::new(self.cfg.lr);
            if !bigrams.is_empty() {
                for _ in 0..self.cfg.epochs {
                    let batch: Vec<(u32, u32)> = (0..bigrams.len().min(1024))
                        .map(|_| bigrams[train_rng.gen_range(0..bigrams.len())])
                        .collect();
                    // candidate set: positives + uniform negatives
                    let mut cands: Vec<u32> = batch.iter().map(|&(_, v)| v).collect();
                    for _ in 0..self.cfg.n_negatives {
                        cands.push(train_rng.gen_range(0..n) as u32);
                    }
                    cands.sort_unstable();
                    cands.dedup();
                    let col_of: HashMap<u32, u32> = cands
                        .iter()
                        .enumerate()
                        .map(|(i, &v)| (v, i as u32))
                        .collect();
                    let mut tape = Tape::new();
                    let s = tape.param(&store, src_emb);
                    let d = tape.param(&store, dst_emb);
                    let us: Vec<u32> = batch.iter().map(|&(u, _)| u).collect();
                    let su = tape.gather_rows(s, Rc::new(us));
                    let dc = tape.gather_rows(d, Rc::new(cands.clone()));
                    let logits = tape.matmul_nt(su, dc);
                    let targets: Vec<SparseTarget> = batch
                        .iter()
                        .enumerate()
                        .map(|(r, &(_, v))| (r as u32, col_of[&v], 1.0f32))
                        .collect();
                    let norm = targets.len() as f32;
                    let loss = tape.softmax_xent(logits, Rc::new(targets), norm);
                    let mut grads = tape.backward(loss);
                    clip_global_norm(&mut grads, 5.0);
                    opt.step(&mut store, &grads);
                }
            }
            models.push((store.value(src_emb).clone(), store.value(dst_emb).clone()));
        }
        let score = |b: usize, u: u32| -> Vec<f64> {
            let (s, d) = &models[b];
            let su = Matrix::from_vec(1, s.cols(), s.row(u as usize).to_vec());
            let row = tg_tensor::matrix::matmul_nt(&su, d);
            // softmax-ish positive weights
            let max = row
                .as_slice()
                .iter()
                .cloned()
                .fold(f32::NEG_INFINITY, f32::max);
            row.as_slice()
                .iter()
                .map(|&x| ((x - max) as f64).exp())
                .collect()
        };
        generate_from_scores(observed, &buckets.bucket_of_t, &score, rng)
    }
}

// ---------------------------------------------------------------------
// TagGen-lite / TGGAN-lite
// ---------------------------------------------------------------------

/// Configuration shared by TagGen-lite and TGGAN-lite.
#[derive(Clone, Copy)]
pub struct TagGenConfig {
    /// Temporal walk length.
    pub walk_len: usize,
    /// Walks sampled per proposal round (TagGen needs a large corpus).
    pub walks_per_round: usize,
    /// Time window for temporal transitions.
    pub time_window: u32,
    pub seed: u64,
}

impl Default for TagGenConfig {
    fn default() -> Self {
        TagGenConfig {
            walk_len: 8,
            walks_per_round: 2000,
            time_window: 2,
            seed: 3,
        }
    }
}

/// Internal state shared by TagGen-lite and TGGAN-lite.
struct TemporalWalkModel {
    tm: TransitionModel,
    /// Dense `T x T` time-affinity table — TagGen's O(T²) structure.
    time_affinity: Vec<f64>,
    t_count: usize,
    /// Retained walk corpus (mirrors TagGen's memory footprint).
    corpus: Vec<Vec<(NodeId, Time)>>,
}

impl TemporalWalkModel {
    fn fit(observed: &TemporalGraph, cfg: &TagGenConfig, rng: &mut dyn RngCore) -> Self {
        let t_count = observed.n_timestamps();
        let tm = TransitionModel::from_edges(
            observed.n_nodes(),
            observed.edges().iter().map(|e| (e.u, e.v)),
        );
        // time affinity: co-occurrence of consecutive edge timestamps per node
        let mut time_affinity = vec![1e-6f64; t_count * t_count];
        for e in observed.edges() {
            let lo = e.t.saturating_sub(cfg.time_window);
            let hi = ((e.t + cfg.time_window) as usize).min(t_count - 1) as Time;
            for t2 in lo..=hi {
                time_affinity[e.t as usize * t_count + t2 as usize] += 1.0;
            }
        }
        // sample the retained corpus of temporal walks
        let mut corpus = Vec::with_capacity(cfg.walks_per_round);
        for _ in 0..cfg.walks_per_round {
            if let Some(w) = sample_temporal_walk(observed, &tm, &time_affinity, t_count, cfg, rng)
            {
                corpus.push(w);
            }
        }
        TemporalWalkModel {
            tm,
            time_affinity,
            t_count,
            corpus,
        }
    }

    fn propose(&self, cfg: &TagGenConfig, rng: &mut dyn RngCore) -> Vec<TemporalEdge> {
        let mut out = Vec::new();
        for _ in 0..cfg.walks_per_round / 4 {
            if let Some(w) = sample_temporal_walk_from_model(
                &self.tm,
                &self.time_affinity,
                self.t_count,
                cfg,
                rng,
            ) {
                for pair in w.windows(2) {
                    out.push(TemporalEdge::new(pair[0].0, pair[1].0, pair[1].1));
                }
            }
        }
        out
    }
}

/// One observed-graph-anchored temporal walk (used for corpus building).
fn sample_temporal_walk(
    g: &TemporalGraph,
    tm: &TransitionModel,
    affinity: &[f64],
    t_count: usize,
    cfg: &TagGenConfig,
    rng: &mut dyn RngCore,
) -> Option<Vec<(NodeId, Time)>> {
    let e0 = g.edges()[rng.gen_range(0..g.n_edges())];
    let mut walk = vec![(e0.u, e0.t), (e0.v, e0.t)];
    let mut cur = e0.v;
    let mut cur_t = e0.t;
    for _ in 2..cfg.walk_len {
        let Some(nxt) = tm.sample_next(cur, rng) else {
            break;
        };
        let row = &affinity[cur_t as usize * t_count..(cur_t as usize + 1) * t_count];
        let t_nxt = sample_categorical(rng, row) as Time;
        walk.push((nxt, t_nxt));
        cur = nxt;
        cur_t = t_nxt;
    }
    (walk.len() >= 2).then_some(walk)
}

/// A purely model-driven temporal walk (generation path).
fn sample_temporal_walk_from_model(
    tm: &TransitionModel,
    affinity: &[f64],
    t_count: usize,
    cfg: &TagGenConfig,
    rng: &mut dyn RngCore,
) -> Option<Vec<(NodeId, Time)>> {
    let start = tm.sample_start(rng)?;
    let mut cur_t = rng.gen_range(0..t_count) as Time;
    let mut walk = vec![(start, cur_t)];
    let mut cur = start;
    for _ in 1..cfg.walk_len {
        let Some(nxt) = tm.sample_next(cur, rng) else {
            break;
        };
        let row = &affinity[cur_t as usize * t_count..(cur_t as usize + 1) * t_count];
        let t_nxt = sample_categorical(rng, row) as Time;
        walk.push((nxt, t_nxt));
        cur = nxt;
        cur_t = t_nxt;
    }
    (walk.len() >= 2).then_some(walk)
}

/// TagGen-lite.
pub struct TagGenGenerator {
    pub cfg: TagGenConfig,
}

impl TagGenGenerator {
    pub fn new(cfg: TagGenConfig) -> Self {
        TagGenGenerator { cfg }
    }
}

impl TemporalGraphGenerator for TagGenGenerator {
    fn name(&self) -> &'static str {
        "TagGen"
    }

    fn fit_generate(&mut self, observed: &TemporalGraph, rng: &mut dyn RngCore) -> TemporalGraph {
        let model = TemporalWalkModel::fit(observed, &self.cfg, rng);
        let cfg = self.cfg;
        assemble_with_budgets(observed, |r| model.propose(&cfg, r), rng)
    }
}

/// TGGAN-lite: TagGen-lite plus one adversarial re-weighting round.
pub struct TgganGenerator {
    pub cfg: TagGenConfig,
    pub disc_epochs: usize,
}

impl TgganGenerator {
    pub fn new(cfg: TagGenConfig) -> Self {
        TgganGenerator {
            cfg,
            disc_epochs: 40,
        }
    }
}

/// Hand-crafted walk features for the discriminator: [mean node degree,
/// repeat fraction, time span / T, length / walk_len].
fn walk_features(
    w: &[(NodeId, Time)],
    degrees: &[usize],
    t_count: usize,
    max_len: usize,
) -> Vec<f32> {
    let mean_deg = w
        .iter()
        .map(|&(v, _)| degrees[v as usize] as f32)
        .sum::<f32>()
        / w.len() as f32;
    let mut seen: Vec<NodeId> = w.iter().map(|&(v, _)| v).collect();
    let total = seen.len() as f32;
    seen.sort_unstable();
    seen.dedup();
    let repeat = 1.0 - seen.len() as f32 / total;
    let t_min = w.iter().map(|&(_, t)| t).min().unwrap_or(0) as f32;
    let t_max = w.iter().map(|&(_, t)| t).max().unwrap_or(0) as f32;
    vec![
        (mean_deg / 16.0).tanh(),
        repeat,
        (t_max - t_min) / t_count.max(1) as f32,
        w.len() as f32 / max_len.max(1) as f32,
    ]
}

impl TemporalGraphGenerator for TgganGenerator {
    fn name(&self) -> &'static str {
        "TGGAN"
    }

    fn fit_generate(&mut self, observed: &TemporalGraph, rng: &mut dyn RngCore) -> TemporalGraph {
        let mut model = TemporalWalkModel::fit(observed, &self.cfg, rng);
        let degrees = observed.static_degrees();
        let t_count = observed.n_timestamps();
        // fake walks from the untrained generator
        let fakes: Vec<Vec<(NodeId, Time)>> = (0..model.corpus.len())
            .filter_map(|_| {
                sample_temporal_walk_from_model(
                    &model.tm,
                    &model.time_affinity,
                    model.t_count,
                    &self.cfg,
                    rng,
                )
            })
            .collect();
        if !model.corpus.is_empty() && !fakes.is_empty() {
            // discriminator: 2-layer MLP on walk features
            let mut train_rng = SmallRng::seed_from_u64(self.cfg.seed ^ 0xd15c);
            let mut store = ParamStore::new();
            let mlp = Mlp::new(
                &mut store,
                &mut train_rng,
                "disc",
                &[4, 8, 1],
                Activation::Tanh,
            );
            let mut opt = Adam::new(2e-2);
            let feats: Vec<Vec<f32>> = model
                .corpus
                .iter()
                .map(|w| walk_features(w, &degrees, t_count, self.cfg.walk_len))
                .chain(
                    fakes
                        .iter()
                        .map(|w| walk_features(w, &degrees, t_count, self.cfg.walk_len)),
                )
                .collect();
            let labels: Vec<f32> = std::iter::repeat_n(1.0f32, model.corpus.len())
                .chain(std::iter::repeat_n(0.0f32, fakes.len()))
                .collect();
            let x_mat = Matrix::from_vec(feats.len(), 4, feats.iter().flatten().copied().collect());
            let y_mat = Rc::new(Matrix::from_vec(labels.len(), 1, labels));
            for _ in 0..self.disc_epochs {
                let mut tape = Tape::new();
                let x = tape.input(x_mat.clone());
                let logits = mlp.forward(&mut tape, &store, x);
                let loss = tape.bce_with_logits(logits, y_mat.clone());
                let grads = tape.backward(loss);
                opt.step(&mut store, &grads);
            }
            // adversarial re-weighting: walks the discriminator rejects
            // down-weight their transitions
            let mut tape = Tape::new();
            let fake_feats = Matrix::from_vec(
                fakes.len(),
                4,
                fakes
                    .iter()
                    .flat_map(|w| walk_features(w, &degrees, t_count, self.cfg.walk_len))
                    .collect(),
            );
            let x = tape.input(fake_feats);
            let logits = mlp.forward(&mut tape, &store, x);
            let scores = tape.sigmoid(logits);
            let sv = tape.value(scores).clone();
            for (i, w) in fakes.iter().enumerate() {
                let s = sv.get(i, 0) as f64; // 1 = looks real
                let factor = (0.25 + 1.5 * s).clamp(0.25, 1.75);
                for pair in w.windows(2) {
                    model.tm.reweight(pair[0].0, pair[1].0, factor);
                }
            }
        }
        let cfg = self.cfg;
        assemble_with_budgets(observed, |r| model.propose(&cfg, r), rng)
    }
}

// ---------------------------------------------------------------------
// TIGGER-lite
// ---------------------------------------------------------------------

/// Configuration for TIGGER-lite.
#[derive(Clone, Copy)]
pub struct TiggerConfig {
    pub walk_len: usize,
    pub walks_per_round: usize,
    pub seed: u64,
}

impl Default for TiggerConfig {
    fn default() -> Self {
        TiggerConfig {
            walk_len: 10,
            walks_per_round: 2000,
            seed: 4,
        }
    }
}

/// TIGGER-lite: autoregressive temporal walks with per-node inter-event
/// gap distributions; O(n + M) state.
pub struct TiggerGenerator {
    pub cfg: TiggerConfig,
}

impl TiggerGenerator {
    pub fn new(cfg: TiggerConfig) -> Self {
        TiggerGenerator { cfg }
    }
}

impl TemporalGraphGenerator for TiggerGenerator {
    fn name(&self) -> &'static str {
        "TIGGER"
    }

    fn fit_generate(&mut self, observed: &TemporalGraph, rng: &mut dyn RngCore) -> TemporalGraph {
        let n = observed.n_nodes();
        let t_count = observed.n_timestamps();
        let tm = TransitionModel::from_edges(n, observed.edges().iter().map(|e| (e.u, e.v)));
        // per-source inter-event gap histogram (global fallback histogram)
        let mut gap_hist = vec![1e-9f64; t_count];
        let mut last_t: HashMap<NodeId, Time> = HashMap::new();
        for e in observed.edges() {
            if let Some(&lt) = last_t.get(&e.u) {
                gap_hist[(e.t - lt).min(t_count as u32 - 1) as usize] += 1.0;
            }
            last_t.insert(e.u, e.t);
        }
        // start-time distribution = observed per-timestamp volume
        let start_t_weights: Vec<f64> = observed
            .edge_counts_per_timestamp()
            .iter()
            .map(|&c| c as f64 + 1e-9)
            .collect();
        let cfg = self.cfg;
        let propose = |r: &mut dyn RngCore| -> Vec<TemporalEdge> {
            let mut out = Vec::new();
            for _ in 0..cfg.walks_per_round / 4 {
                let Some(mut cur) = tm.sample_start(r) else {
                    break;
                };
                let mut t = sample_categorical(r, &start_t_weights) as u32;
                for _ in 0..cfg.walk_len {
                    let Some(nxt) = tm.sample_next(cur, r) else {
                        break;
                    };
                    out.push(TemporalEdge::new(cur, nxt, t));
                    let gap = sample_categorical(r, &gap_hist) as u32;
                    t = (t + gap).min(t_count as u32 - 1);
                    cur = nxt;
                }
            }
            out
        };
        assemble_with_budgets(observed, propose, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::validate_output;

    fn observed() -> TemporalGraph {
        let mut edges = Vec::new();
        for t in 0..5u32 {
            for u in 0..8u32 {
                edges.push(TemporalEdge::new(u, (u + 1) % 8, t));
                if u % 2 == 0 {
                    edges.push(TemporalEdge::new(u, (u + 2) % 8, t));
                }
            }
        }
        TemporalGraph::from_edges(8, 5, edges)
    }

    #[test]
    fn transition_model_follows_counts() {
        let tm = TransitionModel::from_edges(3, [(0u32, 1u32), (0, 1), (0, 2)].into_iter());
        let mut rng = SmallRng::seed_from_u64(0);
        let mut to1 = 0;
        for _ in 0..3000 {
            if tm.sample_next(0, &mut rng) == Some(1) {
                to1 += 1;
            }
        }
        let frac = to1 as f64 / 3000.0;
        assert!((0.58..0.75).contains(&frac), "{frac}");
        assert_eq!(tm.sample_next(1, &mut rng), None);
    }

    #[test]
    fn assemble_exactly_fills_budgets() {
        let g = observed();
        let mut rng = SmallRng::seed_from_u64(1);
        // proposer that only ever offers edges at t=0: fallback must fill the rest
        let out = assemble_with_budgets(
            &g,
            |r| vec![TemporalEdge::new(r.gen_range(0..8), 0, 0)],
            &mut rng,
        );
        assert_eq!(
            out.edge_counts_per_timestamp(),
            g.edge_counts_per_timestamp()
        );
    }

    #[test]
    fn netgan_generates_valid_graph() {
        let g = observed();
        let mut rng = SmallRng::seed_from_u64(2);
        let cfg = NetGanConfig {
            epochs: 20,
            n_walks: 100,
            max_buckets: 2,
            ..Default::default()
        };
        let out = NetGanGenerator::new(cfg).fit_generate(&g, &mut rng);
        validate_output(&g, &out);
        assert_eq!(out.n_edges(), g.n_edges());
    }

    #[test]
    fn taggen_generates_valid_graph() {
        let g = observed();
        let mut rng = SmallRng::seed_from_u64(3);
        let cfg = TagGenConfig {
            walks_per_round: 300,
            ..Default::default()
        };
        let out = TagGenGenerator::new(cfg).fit_generate(&g, &mut rng);
        validate_output(&g, &out);
        assert_eq!(
            out.edge_counts_per_timestamp(),
            g.edge_counts_per_timestamp()
        );
    }

    #[test]
    fn taggen_keeps_time_affinity_table() {
        let g = observed();
        let mut rng = SmallRng::seed_from_u64(4);
        let cfg = TagGenConfig {
            walks_per_round: 50,
            ..Default::default()
        };
        let model = TemporalWalkModel::fit(&g, &cfg, &mut rng);
        assert_eq!(model.time_affinity.len(), 25); // T^2 — the O(T²) table
        assert!(!model.corpus.is_empty());
    }

    #[test]
    fn tggan_generates_valid_graph() {
        let g = observed();
        let mut rng = SmallRng::seed_from_u64(5);
        let cfg = TagGenConfig {
            walks_per_round: 200,
            ..Default::default()
        };
        let out = TgganGenerator::new(cfg).fit_generate(&g, &mut rng);
        validate_output(&g, &out);
        assert_eq!(out.n_edges(), g.n_edges());
    }

    #[test]
    fn tigger_generates_valid_graph() {
        let g = observed();
        let mut rng = SmallRng::seed_from_u64(6);
        let out = TiggerGenerator::new(TiggerConfig::default()).fit_generate(&g, &mut rng);
        validate_output(&g, &out);
        assert_eq!(
            out.edge_counts_per_timestamp(),
            g.edge_counts_per_timestamp()
        );
    }

    #[test]
    fn walk_models_reuse_observed_edges_mostly() {
        // proposals come from observed transitions, so a large share of
        // generated (u,v) pairs should exist in the observed pair set
        let g = observed();
        let mut rng = SmallRng::seed_from_u64(7);
        let out = TagGenGenerator::new(TagGenConfig {
            walks_per_round: 500,
            ..Default::default()
        })
        .fit_generate(&g, &mut rng);
        let truth: std::collections::HashSet<(u32, u32)> =
            g.edges().iter().map(|e| (e.u, e.v)).collect();
        let hits = out
            .edges()
            .iter()
            .filter(|e| truth.contains(&(e.u, e.v)))
            .count();
        let frac = hits as f64 / out.n_edges() as f64;
        assert!(frac > 0.5, "observed-pair fraction {frac}");
    }

    #[test]
    fn names() {
        assert_eq!(NetGanGenerator::new(Default::default()).name(), "NetGAN");
        assert_eq!(TagGenGenerator::new(Default::default()).name(), "TagGen");
        assert_eq!(TgganGenerator::new(Default::default()).name(), "TGGAN");
        assert_eq!(TiggerGenerator::new(Default::default()).name(), "TIGGER");
    }
}
