//! `tg-baselines`: from-scratch reimplementations of the ten generators
//! the TGAE paper compares against (Tables IV–VI, Fig. 5–6).
//!
//! Every baseline keeps its namesake's defining mechanism and complexity
//! class while remaining runnable on CPU — see DESIGN.md §3 for the
//! substitution rationale per method:
//!
//! | Method   | Module           | Mechanism kept |
//! |----------|------------------|----------------|
//! | E-R      | [`simple`]       | `G(n, m_t)` per snapshot |
//! | B-A      | [`simple`]       | preferential attachment |
//! | VGAE     | [`autoencoder`]  | GCN + variational inner-product decoder |
//! | Graphite | [`autoencoder`]  | VGAE + low-rank iterative refinement |
//! | SBMGNN   | [`autoencoder`]  | overlapping SBM with learned memberships |
//! | NetGAN   | [`walks`]        | low-rank walk-transition factorisation |
//! | TagGen   | [`walks`]        | temporal walks + O(T²) time-affinity table |
//! | TGGAN    | [`walks`]        | TagGen + adversarial re-weighting |
//! | TIGGER   | [`walks`]        | autoregressive walks, O(n + M) state |
//! | DYMOND   | [`dymond`]       | dynamic motif arrival model |
//!
//! All implement [`traits::TemporalGraphGenerator`] and preserve the
//! observed per-timestamp edge budget, matching the paper's protocol.

pub mod autoencoder;
pub mod dymond;
pub mod simple;
pub mod traits;
pub mod walks;

pub use autoencoder::{AeConfig, AeGenerator};
pub use dymond::DymondGenerator;
pub use simple::{BaGenerator, ErGenerator};
pub use traits::TemporalGraphGenerator;
pub use walks::{
    NetGanConfig, NetGanGenerator, TagGenConfig, TagGenGenerator, TgganGenerator, TiggerConfig,
    TiggerGenerator,
};

/// All ten baselines with default configurations, in the paper's column
/// order (TIGGER, DYMOND, TGGAN, TagGen, NetGAN, E-R, B-A, VGAE, Graphite,
/// SBMGNN).
pub fn all_baselines() -> Vec<Box<dyn TemporalGraphGenerator>> {
    vec![
        Box::new(TiggerGenerator::new(TiggerConfig::default())),
        Box::new(DymondGenerator::default()),
        Box::new(TgganGenerator::new(TagGenConfig::default())),
        Box::new(TagGenGenerator::new(TagGenConfig::default())),
        Box::new(NetGanGenerator::new(NetGanConfig::default())),
        Box::new(ErGenerator),
        Box::new(BaGenerator),
        Box::new(AeGenerator::vgae(AeConfig::default())),
        Box::new(AeGenerator::graphite(AeConfig::default())),
        Box::new(AeGenerator::sbmgnn(AeConfig::default())),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_ten_in_paper_order() {
        let names: Vec<&str> = all_baselines().iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            vec![
                "TIGGER", "DYMOND", "TGGAN", "TagGen", "NetGAN", "E-R", "B-A", "VGAE", "Graphite",
                "SBMGNN"
            ]
        );
    }

    #[test]
    fn learning_flags_match_paper_grouping() {
        let learned: Vec<bool> = all_baselines()
            .iter()
            .map(|b| b.is_learning_based())
            .collect();
        // E-R and B-A (positions 5, 6) are the only non-learning methods
        assert_eq!(
            learned,
            vec![true, true, true, true, true, false, false, true, true, true]
        );
    }
}
