//! Simple model-based generators: Erdős–Rényi (E-R) and Barabási–Albert
//! (B-A). The paper applies static models per timestamp; both preserve the
//! per-timestamp edge budget exactly. These are the "fast but structurally
//! poor" reference points of Tables IV–VI and Fig. 6.

use crate::traits::TemporalGraphGenerator;
use rand::{Rng, RngCore};
use tg_graph::{TemporalEdge, TemporalGraph};

/// Erdős–Rényi `G(n, m_t)` per timestamp: each of the `m_t` edges picks a
/// uniform ordered pair (no self-loops).
#[derive(Default)]
pub struct ErGenerator;

impl TemporalGraphGenerator for ErGenerator {
    fn name(&self) -> &'static str {
        "E-R"
    }

    fn is_learning_based(&self) -> bool {
        false
    }

    fn fit_generate(&mut self, observed: &TemporalGraph, rng: &mut dyn RngCore) -> TemporalGraph {
        let n = observed.n_nodes();
        let mut edges = Vec::with_capacity(observed.n_edges());
        for (t, &m_t) in observed.edge_counts_per_timestamp().iter().enumerate() {
            for _ in 0..m_t {
                let u = rng.gen_range(0..n) as u32;
                let mut v = rng.gen_range(0..n) as u32;
                while v == u {
                    v = rng.gen_range(0..n) as u32;
                }
                edges.push(TemporalEdge::new(u, v, t as u32));
            }
        }
        TemporalGraph::from_edges(n, observed.n_timestamps(), edges)
    }
}

/// Barabási–Albert-style preferential attachment per timestamp: sources
/// are uniform, targets are drawn with probability proportional to
/// `degree + 1` accumulated over the generated graph so far.
#[derive(Default)]
pub struct BaGenerator;

impl TemporalGraphGenerator for BaGenerator {
    fn name(&self) -> &'static str {
        "B-A"
    }

    fn is_learning_based(&self) -> bool {
        false
    }

    fn fit_generate(&mut self, observed: &TemporalGraph, rng: &mut dyn RngCore) -> TemporalGraph {
        let n = observed.n_nodes();
        let mut degree = vec![1.0f64; n]; // +1 smoothing
        let mut max_w = 1.0f64;
        let mut edges = Vec::with_capacity(observed.n_edges());
        for (t, &m_t) in observed.edge_counts_per_timestamp().iter().enumerate() {
            for _ in 0..m_t {
                let u = rng.gen_range(0..n) as u32;
                // rejection sampling against the max weight keeps each draw O(1)
                let v = loop {
                    let cand = rng.gen_range(0..n) as u32;
                    if cand != u && rng.gen::<f64>() * max_w <= degree[cand as usize] {
                        break cand;
                    }
                };
                degree[u as usize] += 1.0;
                degree[v as usize] += 1.0;
                max_w = max_w.max(degree[u as usize]).max(degree[v as usize]);
                edges.push(TemporalEdge::new(u, v, t as u32));
            }
        }
        TemporalGraph::from_edges(n, observed.n_timestamps(), edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::validate_output;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn observed() -> TemporalGraph {
        let mut edges = Vec::new();
        for t in 0..4u32 {
            for u in 0..10u32 {
                edges.push(TemporalEdge::new(u, (u + 1 + t) % 20, t));
            }
        }
        TemporalGraph::from_edges(20, 4, edges)
    }

    #[test]
    fn er_preserves_budgets() {
        let g = observed();
        let mut rng = SmallRng::seed_from_u64(0);
        let out = ErGenerator.fit_generate(&g, &mut rng);
        validate_output(&g, &out);
        assert_eq!(
            out.edge_counts_per_timestamp(),
            g.edge_counts_per_timestamp()
        );
        assert!(out.edges().iter().all(|e| e.u != e.v));
    }

    #[test]
    fn ba_preserves_budgets_and_skews_degrees() {
        let g = observed();
        let mut rng = SmallRng::seed_from_u64(1);
        let out = BaGenerator.fit_generate(&g, &mut rng);
        validate_output(&g, &out);
        assert_eq!(out.n_edges(), g.n_edges());
        assert!(out.edges().iter().all(|e| e.u != e.v));
    }

    #[test]
    fn ba_is_heavier_tailed_than_er_on_average() {
        // On a larger budget, BA's max degree should typically exceed ER's.
        let mut edges = Vec::new();
        for t in 0..2u32 {
            for i in 0..1500u32 {
                edges.push(TemporalEdge::new(i % 100, (i + 1) % 100, t));
            }
        }
        let g = TemporalGraph::from_edges(100, 2, edges);
        let mut wins = 0;
        for seed in 0..5 {
            let mut r1 = SmallRng::seed_from_u64(seed);
            let mut r2 = SmallRng::seed_from_u64(seed);
            let ba = BaGenerator.fit_generate(&g, &mut r1);
            let er = ErGenerator.fit_generate(&g, &mut r2);
            let max_ba = ba.static_degrees().into_iter().max().unwrap();
            let max_er = er.static_degrees().into_iter().max().unwrap();
            if max_ba > max_er {
                wins += 1;
            }
        }
        assert!(wins >= 4, "BA max degree exceeded ER in only {wins}/5 runs");
    }

    #[test]
    fn names_and_flags() {
        assert_eq!(ErGenerator.name(), "E-R");
        assert_eq!(BaGenerator.name(), "B-A");
        assert!(!ErGenerator.is_learning_based());
        assert!(!BaGenerator.is_learning_based());
    }
}
