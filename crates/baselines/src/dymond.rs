//! DYMOND-lite: dynamic motif-nodes generative model (Zeno et al., WWW'21).
//!
//! DYMOND models a dynamic graph as arrivals of three motif types —
//! triangles, wedges, and lone edges — with per-type rates and
//! degree-weighted node roles. The original has O(n³ T) training (its
//! limitation in the paper's Tables); this lite version estimates the
//! per-timestamp motif mix from observed wedge/triangle statistics and
//! generates by placing whole motifs until each timestamp's edge budget is
//! met, sampling participating nodes by degree.

use crate::traits::TemporalGraphGenerator;
use rand::{Rng, RngCore};
use tg_graph::{Snapshot, TemporalEdge, TemporalGraph};
use tg_tensor::init::sample_categorical;

/// Estimated motif mix: fraction of the edge budget spent on triangle /
/// wedge / single-edge placements.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MotifMix {
    pub triangle: f64,
    pub wedge: f64,
    pub single: f64,
}

impl MotifMix {
    fn normalised(t: f64, w: f64, s: f64) -> Self {
        let total = (t + w + s).max(1e-12);
        MotifMix {
            triangle: t / total,
            wedge: w / total,
            single: s / total,
        }
    }
}

/// Estimate the observed motif mix from per-snapshot wedge and triangle
/// counts (closed wedges form triangles; open wedges stay wedges).
pub fn estimate_motif_mix(g: &TemporalGraph) -> MotifMix {
    let mut tri_edges = 0.0f64;
    let mut wedge_edges = 0.0f64;
    let mut single_edges = 0.0f64;
    for t in 0..g.n_timestamps() as u32 {
        let snap = Snapshot::at_time(g, t, true);
        if snap.n_edges() == 0 {
            continue;
        }
        let adj = snap.undirected_adjacency();
        let triangles = crate::dymond::count_triangles(&adj) as f64;
        let wedges: f64 = adj
            .iter()
            .map(|nb| {
                let d = nb.len() as f64;
                d * (d - 1.0) / 2.0
            })
            .sum();
        let open_wedges = (wedges - 3.0 * triangles).max(0.0);
        let m = snap.n_edges() as f64;
        tri_edges += 3.0 * triangles;
        wedge_edges += 2.0 * open_wedges.min(m / 2.0);
        single_edges += (m - 3.0 * triangles - open_wedges.min(m / 2.0)).max(0.0);
    }
    MotifMix::normalised(tri_edges, wedge_edges, single_edges)
}

pub(crate) fn count_triangles(adj: &[Vec<u32>]) -> u64 {
    let mut count = 0u64;
    for (u, nbrs) in adj.iter().enumerate() {
        let u = u as u32;
        for &v in nbrs {
            if v <= u {
                continue;
            }
            let a = &adj[u as usize];
            let b = &adj[v as usize];
            let (mut i, mut j) = (0usize, 0usize);
            while i < a.len() && j < b.len() {
                match a[i].cmp(&b[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        if a[i] > v {
                            count += 1;
                        }
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    count
}

/// DYMOND-lite generator.
pub struct DymondGenerator {
    /// Extra smoothing mass on node-role weights.
    pub role_smoothing: f64,
}

impl Default for DymondGenerator {
    fn default() -> Self {
        DymondGenerator {
            role_smoothing: 1.0,
        }
    }
}

impl DymondGenerator {
    /// Sample `k` distinct nodes by degree weight.
    fn sample_roles(&self, weights: &[f64], k: usize, rng: &mut dyn RngCore) -> Option<Vec<u32>> {
        if weights.len() < k {
            return None;
        }
        let mut w = weights.to_vec();
        let mut out = Vec::with_capacity(k);
        for _ in 0..k {
            if w.iter().all(|&x| x <= 0.0) {
                return None;
            }
            let pick = sample_categorical(rng, &w);
            out.push(pick as u32);
            w[pick] = 0.0;
        }
        Some(out)
    }
}

impl TemporalGraphGenerator for DymondGenerator {
    fn name(&self) -> &'static str {
        "DYMOND"
    }

    fn fit_generate(&mut self, observed: &TemporalGraph, rng: &mut dyn RngCore) -> TemporalGraph {
        let n = observed.n_nodes();
        let mix = estimate_motif_mix(observed);
        let weights: Vec<f64> = observed
            .static_degrees()
            .iter()
            .map(|&d| d as f64 + self.role_smoothing)
            .collect();
        let mut edges = Vec::with_capacity(observed.n_edges());
        for (t, &m_t) in observed.edge_counts_per_timestamp().iter().enumerate() {
            let mut remaining = m_t;
            while remaining > 0 {
                let r: f64 = rng.gen();
                if r < mix.triangle && remaining >= 3 && n >= 3 {
                    if let Some(nodes) = self.sample_roles(&weights, 3, rng) {
                        edges.push(TemporalEdge::new(nodes[0], nodes[1], t as u32));
                        edges.push(TemporalEdge::new(nodes[1], nodes[2], t as u32));
                        edges.push(TemporalEdge::new(nodes[2], nodes[0], t as u32));
                        remaining -= 3;
                        continue;
                    }
                }
                if r < mix.triangle + mix.wedge && remaining >= 2 && n >= 3 {
                    if let Some(nodes) = self.sample_roles(&weights, 3, rng) {
                        edges.push(TemporalEdge::new(nodes[0], nodes[1], t as u32));
                        edges.push(TemporalEdge::new(nodes[1], nodes[2], t as u32));
                        remaining -= 2;
                        continue;
                    }
                }
                // single edge
                if let Some(nodes) = self.sample_roles(&weights, 2, rng) {
                    edges.push(TemporalEdge::new(nodes[0], nodes[1], t as u32));
                    remaining -= 1;
                }
            }
        }
        TemporalGraph::from_edges(n, observed.n_timestamps(), edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::validate_output;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn triangle_rich() -> TemporalGraph {
        let mut edges = Vec::new();
        for t in 0..3u32 {
            for base in [0u32, 3, 6] {
                edges.push(TemporalEdge::new(base, base + 1, t));
                edges.push(TemporalEdge::new(base + 1, base + 2, t));
                edges.push(TemporalEdge::new(base + 2, base, t));
            }
        }
        TemporalGraph::from_edges(9, 3, edges)
    }

    fn star_like() -> TemporalGraph {
        let mut edges = Vec::new();
        for t in 0..3u32 {
            for v in 1..9u32 {
                edges.push(TemporalEdge::new(0, v, t));
            }
        }
        TemporalGraph::from_edges(9, 3, edges)
    }

    #[test]
    fn motif_mix_detects_triangles() {
        let mix = estimate_motif_mix(&triangle_rich());
        assert!(mix.triangle > 0.8, "{mix:?}");
    }

    #[test]
    fn motif_mix_detects_wedges_on_stars() {
        let mix = estimate_motif_mix(&star_like());
        assert!(mix.triangle < 0.05, "{mix:?}");
        assert!(mix.wedge > 0.5, "{mix:?}");
    }

    #[test]
    fn generates_exact_budgets() {
        let g = triangle_rich();
        let mut rng = SmallRng::seed_from_u64(0);
        let out = DymondGenerator::default().fit_generate(&g, &mut rng);
        validate_output(&g, &out);
        assert_eq!(
            out.edge_counts_per_timestamp(),
            g.edge_counts_per_timestamp()
        );
        assert!(out.edges().iter().all(|e| e.u != e.v));
    }

    #[test]
    fn triangle_rich_input_produces_triangles() {
        let g = triangle_rich();
        let mut rng = SmallRng::seed_from_u64(1);
        let out = DymondGenerator::default().fit_generate(&g, &mut rng);
        let mut tri_total = 0.0;
        for t in 0..3u32 {
            let snap = Snapshot::at_time(&out, t, true);
            tri_total += count_triangles(&snap.undirected_adjacency()) as f64;
        }
        assert!(tri_total >= 3.0, "generated only {tri_total} triangles");
    }

    #[test]
    fn name_and_flag() {
        assert_eq!(DymondGenerator::default().name(), "DYMOND");
        assert!(DymondGenerator::default().is_learning_based());
    }
}
