//! Property-based tests for the tensor substrate: algebraic identities of
//! the raw kernels, gradient-correctness properties of the tape, and
//! parity of the optimised paths (tiled matmul, pooled parallelism)
//! against their scalar reference implementations.

use proptest::prelude::*;
use std::rc::Rc;
use tg_tensor::matrix::{
    active_microkernel, available_microkernels, concat_cols, force_microkernel, gather_rows,
    matmul_nn, matmul_nn_naive, matmul_nt, matmul_nt_naive, matmul_tn, matmul_tn_naive,
    scatter_add_rows, segment_softmax, segment_softmax_backward, segment_softmax_naive,
    softmax_rows, softmax_rows_naive, Matrix, MicrokernelKind,
};
use tg_tensor::parallel::{par_chunks_mut, par_map, ThreadPin};
use tg_tensor::prelude::*;

/// Strategy: a matrix with bounded entries.
fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

fn assert_close(a: &Matrix, b: &Matrix, tol: f32) {
    assert_eq!(a.shape(), b.shape());
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        assert!(
            (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
            "{x} vs {y}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// (A B) C == A (B C)
    #[test]
    fn matmul_associative(a in arb_matrix(3, 4), b in arb_matrix(4, 2), c in arb_matrix(2, 5)) {
        let left = matmul_nn(&matmul_nn(&a, &b), &c);
        let right = matmul_nn(&a, &matmul_nn(&b, &c));
        assert_close(&left, &right, 1e-4);
    }

    /// A(B + C) == AB + AC
    #[test]
    fn matmul_distributive(a in arb_matrix(3, 4), b in arb_matrix(4, 3), c in arb_matrix(4, 3)) {
        let sum = b.zip(&c, |x, y| x + y);
        let left = matmul_nn(&a, &sum);
        let mut right = matmul_nn(&a, &b);
        right.add_assign(&matmul_nn(&a, &c));
        assert_close(&left, &right, 1e-4);
    }

    /// The fused transpose variants agree with explicit transposes.
    #[test]
    fn transpose_variants_agree(a in arb_matrix(3, 4), b in arb_matrix(5, 4)) {
        assert_close(&matmul_nt(&a, &b), &matmul_nn(&a, &b.transpose()), 1e-4);
        let c = a.transpose(); // 4x3
        assert_close(&matmul_tn(&a, &a), &matmul_nn(&c, &a), 1e-4);
    }

    /// softmax rows are probability vectors, invariant to row shifts.
    #[test]
    fn softmax_rows_properties(x in arb_matrix(4, 6), shift in -3.0f32..3.0) {
        let p = softmax_rows(&x);
        for r in 0..4 {
            let s: f32 = p.row(r).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
            prop_assert!(p.row(r).iter().all(|&v| (0.0..=1.0 + 1e-6).contains(&v)));
        }
        let shifted = softmax_rows(&x.map(|v| v + shift));
        assert_close(&p, &shifted, 1e-4);
    }

    /// gather then scatter with the same index is a projection: entries of
    /// rows never indexed stay zero, indexed rows accumulate multiplicity.
    #[test]
    fn gather_scatter_projection(x in arb_matrix(5, 3), raw_idx in proptest::collection::vec(0u32..5, 1..8)) {
        let idx = Rc::new(raw_idx.clone());
        let g = gather_rows(&x, &idx);
        let s = scatter_add_rows(&g, &idx, 5);
        let mut mult = [0f32; 5];
        for &i in raw_idx.iter() {
            mult[i as usize] += 1.0;
        }
        for (r, &m) in mult.iter().enumerate() {
            for c in 0..3 {
                let expect = x.get(r, c) * m;
                prop_assert!((s.get(r, c) - expect).abs() < 1e-4);
            }
        }
    }

    /// segment softmax sums to one within every non-empty segment.
    #[test]
    fn segment_softmax_normalises(scores in proptest::collection::vec(-4.0f32..4.0, 1..24), n_seg in 1usize..5) {
        let seg: Vec<u32> = (0..scores.len()).map(|i| (i % n_seg) as u32).collect();
        let m = Matrix::from_vec(scores.len(), 1, scores);
        let sm = segment_softmax(&m, &seg, n_seg);
        let mut sums = vec![0f64; n_seg];
        for (i, &s) in seg.iter().enumerate() {
            sums[s as usize] += sm.as_slice()[i] as f64;
        }
        for (s, total) in sums.iter().enumerate() {
            if seg.iter().any(|&x| x as usize == s) {
                prop_assert!((total - 1.0).abs() < 1e-4, "segment {s} sums {total}");
            }
        }
    }

    /// Backward pass is linear: grad of (a*L) is a * grad of L.
    #[test]
    fn backward_is_linear_in_loss_scale(w0 in arb_matrix(3, 3), alpha in 0.5f32..4.0) {
        let mut store = ParamStore::new();
        let id = store.create("w", w0);
        let grad_of = |scale: f32, store: &ParamStore| -> Matrix {
            let mut tape = Tape::new();
            let w = tape.param(store, id);
            let y = tape.tanh(w);
            let l0 = tape.sum(y);
            let l = tape.scale(l0, scale);
            tape.backward(l).get(id).expect("grad").clone()
        };
        let g1 = grad_of(1.0, &store);
        let ga = grad_of(alpha, &store);
        for (a, b) in g1.as_slice().iter().zip(ga.as_slice()) {
            prop_assert!((a * alpha - b).abs() < 1e-4);
        }
    }

    /// Sum rule: grad of (f + g) equals grad f + grad g.
    #[test]
    fn backward_sum_rule(w0 in arb_matrix(2, 3)) {
        let mut store = ParamStore::new();
        let id = store.create("w", w0);
        let grad_combined = {
            let mut tape = Tape::new();
            let w = tape.param(&store, id);
            let f = tape.sigmoid(w);
            let g = tape.tanh(w);
            let fs = tape.sum(f);
            let gs = tape.sum(g);
            let l = tape.add(fs, gs);
            tape.backward(l).get(id).expect("grad").clone()
        };
        let grad_f = {
            let mut tape = Tape::new();
            let w = tape.param(&store, id);
            let f = tape.sigmoid(w);
            let l = tape.sum(f);
            tape.backward(l).get(id).expect("grad").clone()
        };
        let grad_g = {
            let mut tape = Tape::new();
            let w = tape.param(&store, id);
            let g = tape.tanh(w);
            let l = tape.sum(g);
            tape.backward(l).get(id).expect("grad").clone()
        };
        for i in 0..grad_combined.len() {
            let expect = grad_f.as_slice()[i] + grad_g.as_slice()[i];
            prop_assert!((grad_combined.as_slice()[i] - expect).abs() < 1e-5);
        }
    }

    /// concat_cols then column split recovers the operands (round trip).
    #[test]
    fn concat_roundtrip(a in arb_matrix(3, 2), b in arb_matrix(3, 4)) {
        let cat = concat_cols(&a, &b);
        prop_assert_eq!(cat.shape(), (3, 6));
        for r in 0..3 {
            prop_assert_eq!(&cat.row(r)[..2], a.row(r));
            prop_assert_eq!(&cat.row(r)[2..], b.row(r));
        }
    }

    /// Adam step with zero gradient leaves parameters unchanged.
    #[test]
    fn adam_ignores_untouched_params(w0 in arb_matrix(2, 2)) {
        let mut store = ParamStore::new();
        let id = store.create("w", w0.clone());
        let other = store.create("o", Matrix::zeros(1, 1));
        let mut tape = Tape::new();
        let o = tape.param(&store, other);
        let l = tape.sum(o);
        let grads = tape.backward(l);
        let mut opt = Adam::new(0.1);
        opt.step(&mut store, &grads);
        prop_assert_eq!(store.value(id), &w0);
    }

    /// Tiled/dispatched matmul variants match the scalar reference on
    /// randomized shapes large enough to take the packed path.
    #[test]
    fn tiled_matmul_matches_naive(
        dims in (1usize..40, 1usize..40, 1usize..40),
        scale in 0.5f32..2.0,
    ) {
        let (m, k, n) = dims;
        let a = Matrix::from_fn(m, k, |r, c| ((r * 31 + c * 7) % 23) as f32 * 0.1 * scale - 1.0);
        let b = Matrix::from_fn(k, n, |r, c| ((r * 13 + c * 5) % 19) as f32 * 0.1 * scale - 0.9);
        assert_close(&matmul_nn(&a, &b), &matmul_nn_naive(&a, &b), 1e-4);
        let bt = Matrix::from_fn(n, k, |r, c| ((r * 11 + c * 3) % 17) as f32 * 0.1 * scale - 0.8);
        assert_close(&matmul_nt(&a, &bt), &matmul_nt_naive(&a, &bt), 1e-4);
        let at = Matrix::from_fn(k, m, |r, c| ((r * 7 + c * 29) % 21) as f32 * 0.1 * scale - 0.7);
        assert_close(&matmul_tn(&at, &b), &matmul_tn_naive(&at, &b), 1e-4);
    }

    /// Vectorised softmax (fast_exp + lane sums) matches the scalar libm
    /// reference within float tolerance.
    #[test]
    fn fast_softmax_matches_naive(x in arb_matrix(5, 37), shift in -10.0f32..10.0) {
        let shifted = x.map(|v| v * 8.0 + shift);
        let fast = softmax_rows(&shifted);
        let naive = softmax_rows_naive(&shifted);
        assert_close(&fast, &naive, 1e-4);
    }

    /// Pooled `par_chunks_mut` computes the same rows as a serial run,
    /// for any row count and thread split.
    #[test]
    fn par_chunks_matches_serial(rows in 1usize..200, cols in 1usize..8, threads in 1usize..9) {
        let body = |r0: usize, chunk: &mut [f32]| {
            for (i, row) in chunk.chunks_mut(cols).enumerate() {
                for (j, v) in row.iter_mut().enumerate() {
                    *v = ((r0 + i) * 31 + j) as f32;
                }
            }
        };
        let mut serial = vec![0.0f32; rows * cols];
        body(0, &mut serial);
        let mut parallel = vec![0.0f32; rows * cols];
        {
            let _pin = ThreadPin::new(threads);
            par_chunks_mut(&mut parallel, cols, body);
        }
        prop_assert_eq!(serial, parallel);
    }

    /// The fused softmax-cross-entropy (per-row stats + backward
    /// recompute) reproduces the materialised reference **bit-for-bit**:
    /// same loss, same gradient, on random logits and sparse multi-target
    /// sets (including rows with no targets and repeated targets).
    #[test]
    fn fused_xent_matches_materialised(
        w0 in arb_matrix(6, 9),
        picks in proptest::collection::vec((0u32..6, 0u32..9, 0.25f32..2.0), 1..14),
        norm in 0.5f32..8.0,
    ) {
        let mut store = ParamStore::new();
        let id = store.create("w", w0);
        let targets = Rc::new(picks);
        let run = |materialise: bool| -> (f32, Matrix) {
            let mut tape = Tape::new();
            tape.set_materialise_xent(materialise);
            let w = tape.param(&store, id);
            let loss = tape.softmax_xent(w, targets.clone(), norm);
            let l = tape.value(loss).item();
            let g = tape.backward(loss).get(id).expect("grad").clone();
            (l, g)
        };
        let (loss_fused, grad_fused) = run(false);
        let (loss_mat, grad_mat) = run(true);
        prop_assert_eq!(loss_fused, loss_mat, "loss mismatch");
        prop_assert_eq!(grad_fused, grad_mat, "gradient mismatch");
    }

    /// Pooled `par_map` returns results in input order for any split.
    #[test]
    fn par_map_matches_serial(n in 0usize..300, threads in 1usize..9) {
        let expect: Vec<usize> = (0..n).map(|i| i.wrapping_mul(2654435761)).collect();
        let got = {
            let _pin = ThreadPin::new(threads);
            par_map(n, |i| i.wrapping_mul(2654435761))
        };
        prop_assert_eq!(expect, got);
    }
}

/// Order-preserving integer key for f32 so ULP distances are plain
/// integer differences (`-0.0` and `+0.0` map to the same key).
fn ulp_key(x: f32) -> i64 {
    let i = x.to_bits() as i32;
    if i < 0 {
        (i32::MIN as i64) - (i as i64)
    } else {
        i as i64
    }
}

/// Assert element-wise closeness in ULPs, with an absolute-tolerance
/// escape hatch for results near zero (where cancellation makes ULP
/// distance meaningless).
fn assert_ulp_close(a: &Matrix, b: &Matrix, max_ulp: i64, abs_tol: f32, ctx: &str) {
    assert_eq!(a.shape(), b.shape(), "{ctx}: shape mismatch");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        if (x - y).abs() <= abs_tol {
            continue;
        }
        let d = (ulp_key(*x) - ulp_key(*y)).abs();
        assert!(d <= max_ulp, "{ctx}: elem {i}: {x} vs {y} ({d} ULP)");
    }
}

/// Fringe shapes shared by the per-ISA parity tests: MR/NR remainder
/// tiles, KC block boundaries, NC (jc-slice) boundaries and remainders,
/// K=0, and the AVX-512 tile geometry (MR=8/NR=32) edges.
const PARITY_SHAPES: &[(usize, usize, usize)] = &[
    (4, 256, 16),  // exact portable MR/KC/NR tile boundaries
    (8, 256, 32),  // exact AVX-512 MR/NR tile boundaries
    (9, 257, 33),  // one past each AVX-512 boundary
    (7, 255, 31),  // one short of each AVX-512 boundary
    (5, 257, 17),  // one past each portable boundary
    (3, 255, 15),  // one short of each portable boundary
    (1, 4096, 16), // single output row, many KC blocks
    (2, 2048, 3),  // sub-NR panel width
    (64, 0, 64),   // K = 0: output must be exactly zero
    (6, 64, 512),  // exactly one NC slice
    (5, 100, 513), // NC remainder of one column
    (3, 70, 1025), // two NC slices + remainder
    (33, 100, 47), // nothing aligned
];

/// Forced-vs-portable microkernel parity on **integer-valued** operands:
/// every product and partial sum is exactly representable in f32, so FMA
/// contraction cannot change any rounding and every kernel must agree
/// **bitwise** with the portable tile — on every transpose variant,
/// every available ISA level, and across the fringe shapes above.
#[test]
fn simd_matmul_bitwise_on_integer_data() {
    for &(m, k, n) in PARITY_SHAPES {
        let a = Matrix::from_fn(m, k, |r, c| ((r * 3 + c * 11) % 7) as f32 - 3.0);
        let b = Matrix::from_fn(k, n, |r, c| ((r * 5 + c * 2) % 9) as f32 - 4.0);
        let bt = b.transpose();
        let at = a.transpose();
        let (p_nn, p_nt, p_tn) = {
            let _g = force_microkernel(MicrokernelKind::Portable);
            assert_eq!(active_microkernel(), MicrokernelKind::Portable);
            (matmul_nn(&a, &b), matmul_nt(&a, &bt), matmul_tn(&at, &b))
        };
        if k == 0 {
            assert!(p_nn.as_slice().iter().all(|&v| v == 0.0), "K=0 non-zero");
        }
        for kind in available_microkernels() {
            let _g = force_microkernel(kind);
            assert_eq!(active_microkernel(), kind);
            assert_eq!(p_nn, matmul_nn(&a, &b), "{kind:?} nn ({m},{k},{n})");
            assert_eq!(p_nt, matmul_nt(&a, &bt), "{kind:?} nt ({m},{k},{n})");
            assert_eq!(p_tn, matmul_tn(&at, &b), "{kind:?} tn ({m},{k},{n})");
        }
    }
}

/// Forced-vs-portable microkernel parity on fractional operands: FMA
/// keeps one rounding per multiply-add where the portable tile keeps
/// two, so results drift by a few ULP — bounded here by an accumulation-
/// length-scaled budget, for each available ISA level across the same
/// fringe shapes.
#[test]
fn simd_matmul_matches_portable_within_ulp() {
    for &(m, k, n) in PARITY_SHAPES {
        let a = Matrix::from_fn(m, k, |r, c| ((r * 31 + c * 7) % 23) as f32 * 0.093 - 1.0);
        let b = Matrix::from_fn(k, n, |r, c| ((r * 13 + c * 5) % 19) as f32 * 0.081 - 0.7);
        let bt = b.transpose();
        let at = a.transpose();
        let (p_nn, p_nt, p_tn) = {
            let _g = force_microkernel(MicrokernelKind::Portable);
            (matmul_nn(&a, &b), matmul_nt(&a, &bt), matmul_tn(&at, &b))
        };
        // error random-walks with accumulation length; 2*sqrt(k)+16 ULP is
        // a generous envelope (observed maxima are far below it)
        let budget = 2 * (k as f64).sqrt() as i64 + 16;
        let abs_tol = 1e-6 * (k as f32).sqrt();
        for kind in available_microkernels() {
            if kind == MicrokernelKind::Portable {
                continue; // comparing portable to itself proves nothing
            }
            let _g = force_microkernel(kind);
            let ctx = |op: &str| format!("{kind:?} {op} ({m},{k},{n})");
            assert_ulp_close(&p_nn, &matmul_nn(&a, &b), budget, abs_tol, &ctx("nn"));
            assert_ulp_close(&p_nt, &matmul_nt(&a, &bt), budget, abs_tol, &ctx("nt"));
            assert_ulp_close(&p_tn, &matmul_tn(&at, &b), budget, abs_tol, &ctx("tn"));
        }
    }
}

/// All FMA kernels (AVX2, AVX-512) must agree **bitwise with each other**
/// on arbitrary fractional data: both keep a single accumulator per
/// output element and contract every multiply-add in one rounding, in
/// the same ascending-k order, so the tile shape cannot change results.
#[test]
fn fma_kernels_agree_bitwise_across_isa_levels() {
    let fma: Vec<MicrokernelKind> = available_microkernels()
        .into_iter()
        .filter(|&k| k != MicrokernelKind::Portable)
        .collect();
    if fma.len() < 2 {
        return; // only one FMA level on this host: nothing to compare
    }
    for &(m, k, n) in PARITY_SHAPES {
        let a = Matrix::from_fn(m, k, |r, c| ((r * 31 + c * 7) % 23) as f32 * 0.093 - 1.0);
        let b = Matrix::from_fn(k, n, |r, c| ((r * 13 + c * 5) % 19) as f32 * 0.081 - 0.7);
        let reference = {
            let _g = force_microkernel(fma[0]);
            matmul_nn(&a, &b)
        };
        for &kind in &fma[1..] {
            let _g = force_microkernel(kind);
            assert_eq!(
                reference,
                matmul_nn(&a, &b),
                "{:?} vs {kind:?} ({m},{k},{n})",
                fma[0]
            );
        }
    }
}

/// The force guard restores the previous selection on drop, nests, and
/// stays scoped to its thread (concurrent tests cannot observe it).
#[test]
fn force_microkernel_guard_scopes_and_nests() {
    let detected = active_microkernel();
    {
        let _g = force_microkernel(MicrokernelKind::Portable);
        assert_eq!(active_microkernel(), MicrokernelKind::Portable);
        {
            let inner = *available_microkernels().first().unwrap();
            let _g2 = force_microkernel(inner);
            assert_eq!(active_microkernel(), inner);
        }
        assert_eq!(active_microkernel(), MicrokernelKind::Portable);
        // Another thread sees normal runtime detection while this
        // thread's override is in force.
        let other = std::thread::spawn(active_microkernel).join().unwrap();
        assert_eq!(other, detected);
    }
    assert_eq!(active_microkernel(), detected);
}

/// Scalar f64 reference for the segment-softmax backward formula.
fn segment_backward_reference(y: &Matrix, g: &Matrix, seg: &[u32], n_seg: usize) -> Vec<f32> {
    let mut dot = vec![0.0f64; n_seg];
    for (j, &s) in seg.iter().enumerate() {
        dot[s as usize] += g.as_slice()[j] as f64 * y.as_slice()[j] as f64;
    }
    seg.iter()
        .enumerate()
        .map(|(j, &s)| {
            let yj = y.as_slice()[j] as f64;
            (yj * (g.as_slice()[j] as f64 - dot[s as usize])) as f32
        })
        .collect()
}

/// Random segment layouts (sorted runs *and* shuffled assignments,
/// including empty segments) where the vectorised segment softmax and
/// its backward must match the scalar f64 reference implementations.
#[test]
fn segment_softmax_vectorised_matches_naive_on_random_layouts() {
    let mut state = 0xdead_beef_cafe_1234u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state
    };
    for case in 0..40 {
        let n_edges = 1 + (next() % 300) as usize;
        let n_seg = 1 + (next() % 24) as usize;
        let sorted = case % 2 == 0;
        let mut seg: Vec<u32> = (0..n_edges)
            .map(|_| (next() % n_seg as u64) as u32)
            .collect();
        if sorted {
            seg.sort_unstable();
        }
        let scores: Vec<f32> = (0..n_edges)
            .map(|_| ((next() % 2000) as f32 / 100.0) - 10.0)
            .collect();
        let m = Matrix::from_vec(n_edges, 1, scores);
        let fast = segment_softmax(&m, &seg, n_seg);
        let naive = segment_softmax_naive(&m, &seg, n_seg);
        assert_close(&fast, &naive, 1e-4);

        let g: Vec<f32> = (0..n_edges)
            .map(|_| ((next() % 400) as f32 / 100.0) - 2.0)
            .collect();
        let g = Matrix::from_vec(n_edges, 1, g);
        let back = segment_softmax_backward(&fast, &g, &seg, n_seg);
        let reference = segment_backward_reference(&fast, &g, &seg, n_seg);
        for (j, (&got, &want)) in back.as_slice().iter().zip(&reference).enumerate() {
            assert!(
                (got - want).abs() <= 1e-5 * (1.0 + want.abs()),
                "case {case} edge {j}: {got} vs {want}"
            );
        }
    }
}

/// Fixed-shape parity cases the random generator is unlikely to hit:
/// degenerate row/column vectors, empty matrices, and exact tile-boundary
/// shapes (multiples of MR/NR/KC).
#[test]
fn tiled_matmul_edge_shapes() {
    let shapes: &[(usize, usize, usize)] = &[
        (1, 64, 64), // single row
        (64, 64, 1), // single column
        (1, 1, 1),
        (0, 8, 8),    // empty output rows
        (8, 0, 8),    // empty inner dimension
        (8, 8, 0),    // empty output cols
        (4, 256, 16), // exact MR/KC/NR boundaries
        (5, 257, 17), // one past each boundary
        (3, 255, 15), // one short of each boundary
        (17, 31, 129),
    ];
    for &(m, k, n) in shapes {
        let a = Matrix::from_fn(m, k, |r, c| ((r * 3 + c * 11) % 7) as f32 - 3.0);
        let b = Matrix::from_fn(k, n, |r, c| ((r * 5 + c * 2) % 9) as f32 - 4.0);
        let tiled = matmul_nn(&a, &b);
        let naive = matmul_nn_naive(&a, &b);
        assert_eq!(tiled.shape(), (m, n));
        for (x, y) in tiled.as_slice().iter().zip(naive.as_slice()) {
            assert!(
                (x - y).abs() <= 1e-4 * (1.0 + x.abs().max(y.abs())),
                "({m},{k},{n}): {x} vs {y}"
            );
        }
        let bt = Matrix::from_fn(n, k, |r, c| ((r * 7 + c * 3) % 5) as f32 - 2.0);
        let tiled = matmul_nt(&a, &bt);
        let naive = matmul_nt_naive(&a, &bt);
        for (x, y) in tiled.as_slice().iter().zip(naive.as_slice()) {
            assert!(
                (x - y).abs() <= 1e-4 * (1.0 + x.abs().max(y.abs())),
                "nt ({m},{k},{n})"
            );
        }
        let at = Matrix::from_fn(k, m, |r, c| ((r * 2 + c * 13) % 11) as f32 - 5.0);
        let tiled = matmul_tn(&at, &b);
        let naive = matmul_tn_naive(&at, &b);
        for (x, y) in tiled.as_slice().iter().zip(naive.as_slice()) {
            assert!(
                (x - y).abs() <= 1e-4 * (1.0 + x.abs().max(y.abs())),
                "tn ({m},{k},{n})"
            );
        }
    }
}
