//! Weight initialisation and basic random sampling helpers.
//!
//! `rand 0.8` ships uniform sampling only; the Gaussian draws needed by
//! Xavier-normal init and the VAE reparameterisation trick are produced with
//! the Box–Muller transform so we avoid an extra dependency.

use crate::matrix::Matrix;
use rand::Rng;

/// One standard-normal draw via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    // u1 in (0,1] to keep ln() finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

/// Matrix of i.i.d. `N(0, std^2)` draws.
pub fn normal_matrix<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize, std: f32) -> Matrix {
    let mut data = Vec::with_capacity(rows * cols);
    for _ in 0..rows * cols {
        data.push(standard_normal(rng) * std);
    }
    Matrix::from_vec(rows, cols, data)
}

/// Xavier/Glorot uniform init: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize) -> Matrix {
    let a = (6.0 / (rows + cols) as f64).sqrt() as f32;
    let mut data = Vec::with_capacity(rows * cols);
    for _ in 0..rows * cols {
        data.push(rng.gen_range(-a..=a));
    }
    Matrix::from_vec(rows, cols, data)
}

/// Xavier/Glorot normal init: `N(0, 2/(fan_in+fan_out))`.
pub fn xavier_normal<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize) -> Matrix {
    let std = (2.0 / (rows + cols) as f64).sqrt() as f32;
    normal_matrix(rng, rows, cols, std)
}

/// Draw one index from an unnormalised non-negative weight vector.
///
/// Used by every categorical sampling step in the repo (initial-node
/// sampling, edge generation, baseline generators). Panics if all weights
/// are zero or any is negative.
pub fn sample_categorical<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    debug_assert!(weights.iter().all(|w| *w >= 0.0), "negative weight");
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "sample_categorical: all-zero weights");
    let mut u = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Sample `k` distinct indices without replacement from unnormalised
/// weights (sequential draw-and-zero). If fewer than `k` indices have
/// positive weight, returns all of them.
pub fn sample_categorical_without_replacement<R: Rng + ?Sized>(
    rng: &mut R,
    weights: &[f64],
    k: usize,
) -> Vec<usize> {
    let mut w = weights.to_vec();
    let mut out = Vec::with_capacity(k);
    for _ in 0..k {
        let total: f64 = w.iter().sum();
        if total <= 0.0 {
            break;
        }
        let i = sample_categorical(rng, &w);
        out.push(i);
        w[i] = 0.0;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn box_muller_moments() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 20000;
        let mut sum = 0.0f64;
        let mut sq = 0.0f64;
        for _ in 0..n {
            let x = standard_normal(&mut rng) as f64;
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn xavier_uniform_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        let m = xavier_uniform(&mut rng, 10, 30);
        let a = (6.0f64 / 40.0).sqrt() as f32;
        assert!(m.as_slice().iter().all(|v| v.abs() <= a + 1e-6));
    }

    #[test]
    fn categorical_respects_weights() {
        let mut rng = SmallRng::seed_from_u64(3);
        let w = vec![0.0, 9.0, 1.0];
        let mut counts = [0usize; 3];
        for _ in 0..5000 {
            counts[sample_categorical(&mut rng, &w)] += 1;
        }
        assert_eq!(counts[0], 0);
        assert!(counts[1] > 4 * counts[2], "{counts:?}");
    }

    #[test]
    fn without_replacement_distinct_and_bounded() {
        let mut rng = SmallRng::seed_from_u64(5);
        let w = vec![1.0; 6];
        let picks = sample_categorical_without_replacement(&mut rng, &w, 4);
        assert_eq!(picks.len(), 4);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "duplicates in {picks:?}");
        // requesting more than positive-weight entries truncates
        let w2 = vec![0.0, 1.0, 0.0, 2.0];
        let picks2 = sample_categorical_without_replacement(&mut rng, &w2, 10);
        assert_eq!(picks2.len(), 2);
    }

    #[test]
    #[should_panic(expected = "all-zero weights")]
    fn categorical_zero_weights_panics() {
        let mut rng = SmallRng::seed_from_u64(5);
        sample_categorical(&mut rng, &[0.0, 0.0]);
    }
}
