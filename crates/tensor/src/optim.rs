//! Optimizers: Adam (the paper's choice for TGAE-style models) and plain
//! SGD, plus global-norm gradient clipping.

use crate::matrix::Matrix;
use crate::params::{ParamId, ParamStore, Precision};
use crate::tape::Gradients;
use serde::{Deserialize, Serialize};

/// Adam optimizer state and hyper-parameters.
#[derive(Clone, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay (conventional 0.9).
    pub beta1: f32,
    /// Second-moment decay (conventional 0.999).
    pub beta2: f32,
    /// Denominator fuzz to avoid division by zero.
    pub eps: f32,
    /// Optional L2 weight decay (decoupled, AdamW-style).
    pub weight_decay: f32,
    t: u64,
    m: Vec<Option<Matrix>>,
    v: Vec<Option<Matrix>>,
}

impl Adam {
    /// Adam with the conventional defaults (`beta1=0.9, beta2=0.999`).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Number of steps taken.
    pub fn steps(&self) -> u64 {
        self.t
    }

    fn slot(&mut self, id: ParamId, shape: (usize, usize)) -> (&mut Matrix, &mut Matrix) {
        let i = id_index(id);
        if self.m.len() <= i {
            self.m.resize_with(i + 1, || None);
            self.v.resize_with(i + 1, || None);
        }
        if self.m[i].is_none() {
            self.m[i] = Some(Matrix::zeros(shape.0, shape.1));
            self.v[i] = Some(Matrix::zeros(shape.0, shape.1));
        }
        // Split borrows: m and v are distinct fields.
        let m = self.m[i].as_mut().expect("just initialised");
        let v = self.v[i].as_mut().expect("just initialised");
        (m, v)
    }

    /// Apply one update from `grads` into `store`.
    pub fn step(&mut self, store: &mut ParamStore, grads: &Gradients) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let (lr, b1, b2, eps, wd) = (self.lr, self.beta1, self.beta2, self.eps, self.weight_decay);
        for (id, g) in grads.iter() {
            let shape = store.shape(id);
            assert_eq!(
                g.shape(),
                shape,
                "gradient/param shape mismatch for {}",
                store.name(id)
            );
            let (m, v) = self.slot(id, shape);
            let md = m.as_mut_slice();
            let vd = v.as_mut_slice();
            let gd = g.as_slice();
            let mut update = |pd: &mut [f32]| {
                // weight decay hoisted out of the update loop so the fused
                // moment/update loop below stays branch-free and vectorises
                if wd > 0.0 {
                    for p in pd.iter_mut() {
                        *p -= lr * wd * *p;
                    }
                }
                for i in 0..pd.len() {
                    let gi = gd[i];
                    md[i] = b1 * md[i] + (1.0 - b1) * gi;
                    vd[i] = b2 * vd[i] + (1.0 - b2) * gi * gi;
                    let mhat = md[i] / bc1;
                    let vhat = vd[i] / bc2;
                    pd[i] -= lr * mhat / (vhat.sqrt() + eps);
                }
            };
            match store.precision(id) {
                Precision::F32 => update(store.value_mut(id).as_mut_slice()),
                // bf16 params update a decoded f32 working copy (moments
                // are f32 either way) and round back once per step.
                Precision::Bf16 => {
                    let mut p = store.decode_f32(id);
                    update(p.as_mut_slice());
                    store.encode_from_f32(id, &p);
                }
            }
        }
    }
}

/// Plain SGD with optional momentum (used by a couple of baselines).
#[derive(Clone, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 = plain gradient descent).
    pub momentum: f32,
    velocity: Vec<Option<Matrix>>,
}

impl Sgd {
    /// Momentum-free SGD.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with classical momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Apply one update from `grads` into `store`.
    pub fn step(&mut self, store: &mut ParamStore, grads: &Gradients) {
        for (id, g) in grads.iter() {
            let i = id_index(id);
            if self.velocity.len() <= i {
                self.velocity.resize_with(i + 1, || None);
            }
            // bf16 params update a decoded f32 working copy and round
            // back once per step; f32 params update in place.
            let mut decoded = match store.precision(id) {
                Precision::Bf16 => Some(store.decode_f32(id)),
                Precision::F32 => None,
            };
            let p = match decoded.as_mut() {
                Some(m) => m,
                None => store.value_mut(id),
            };
            if self.momentum > 0.0 {
                let vel = self.velocity[i].get_or_insert_with(|| Matrix::zeros(p.rows(), p.cols()));
                for (vv, &gg) in vel.as_mut_slice().iter_mut().zip(g.as_slice()) {
                    *vv = self.momentum * *vv + gg;
                }
                p.add_scaled(vel, -self.lr);
            } else {
                p.add_scaled(g, -self.lr);
            }
            if let Some(p) = decoded {
                store.encode_from_f32(id, &p);
            }
        }
    }
}

/// Clip gradients to a maximum global L2 norm; returns the pre-clip norm.
pub fn clip_global_norm(grads: &mut Gradients, max_norm: f64) -> f64 {
    let norm = grads.global_norm();
    if norm > max_norm && norm > 0.0 {
        grads.scale_all((max_norm / norm) as f32);
    }
    norm
}

fn id_index(id: ParamId) -> usize {
    id.index()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::tape::Tape;

    /// Minimise ||w - target||^2 with Adam; should converge quickly.
    #[test]
    fn adam_converges_on_quadratic() {
        let mut store = ParamStore::new();
        let id = store.create("w", Matrix::zeros(2, 2));
        let target = Matrix::from_vec(2, 2, vec![1.0, -2.0, 0.5, 3.0]);
        let mut opt = Adam::new(0.1);
        for _ in 0..300 {
            let mut tape = Tape::new();
            let w = tape.param(&store, id);
            let t = tape.input(target.clone());
            let d = tape.sub(w, t);
            let sq = tape.mul(d, d);
            let loss = tape.sum(sq);
            let grads = tape.backward(loss);
            opt.step(&mut store, &grads);
        }
        for (a, b) in store.value(id).as_slice().iter().zip(target.as_slice()) {
            assert!((a - b).abs() < 1e-2, "{a} vs {b}");
        }
        assert_eq!(opt.steps(), 300);
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut store = ParamStore::new();
        let id = store.create("w", Matrix::zeros(1, 3));
        let target = Matrix::from_vec(1, 3, vec![0.3, -0.7, 1.1]);
        let mut opt = Sgd::with_momentum(0.05, 0.5);
        for _ in 0..500 {
            let mut tape = Tape::new();
            let w = tape.param(&store, id);
            let t = tape.input(target.clone());
            let d = tape.sub(w, t);
            let sq = tape.mul(d, d);
            let loss = tape.sum(sq);
            let grads = tape.backward(loss);
            opt.step(&mut store, &grads);
        }
        for (a, b) in store.value(id).as_slice().iter().zip(target.as_slice()) {
            assert!((a - b).abs() < 1e-2, "{a} vs {b}");
        }
    }

    #[test]
    fn clipping_reduces_norm() {
        let mut store = ParamStore::new();
        let id = store.create("w", Matrix::full(10, 10, 5.0));
        let mut tape = Tape::new();
        let w = tape.param(&store, id);
        let s = tape.scale(w, 100.0);
        let loss = tape.sum(s);
        let mut grads = tape.backward(loss);
        let pre = clip_global_norm(&mut grads, 1.0);
        assert!(pre > 1.0);
        assert!((grads.global_norm() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let mut store = ParamStore::new();
        let id = store.create("w", Matrix::full(1, 1, 1.0));
        let mut opt = Adam::new(0.0); // lr 0: only decay acts
        opt.weight_decay = 0.1;
        // decay applies only when the param receives a gradient and lr>0;
        // with lr=0 nothing changes:
        let mut tape = Tape::new();
        let w = tape.param(&store, id);
        let loss = tape.sum(w);
        let grads = tape.backward(loss);
        opt.step(&mut store, &grads);
        assert_eq!(store.value(id).item(), 1.0);
        // with lr>0 decay shrinks towards zero
        let mut opt2 = Adam::new(0.01);
        opt2.weight_decay = 1.0;
        let mut tape2 = Tape::new();
        let w2 = tape2.param(&store, id);
        let loss2 = tape2.sum(w2);
        let grads2 = tape2.backward(loss2);
        opt2.step(&mut store, &grads2);
        assert!(store.value(id).item() < 1.0);
    }
}
