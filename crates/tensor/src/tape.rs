//! Reverse-mode automatic differentiation on a flat tape.
//!
//! A [`Tape`] records every operation of a forward pass as a node
//! holding its output [`Matrix`] and an op descriptor describing how to push
//! gradients to its inputs. [`Tape::backward`] walks the tape in reverse and
//! returns per-parameter gradients keyed by [`ParamId`].
//!
//! The op set is exactly what the TGAE encoder/decoder and the learned
//! baselines need: dense linear algebra, pointwise activations, row
//! gather/scatter, segment softmax (graph-attention edge softmax), and fused
//! losses (multi-target softmax cross-entropy, BCE-with-logits, Gaussian
//! KL). Fused losses keep the tape short and sidestep `log(0)`.

use crate::matrix::{
    concat_cols_into, fast_exp, gather_rows_into, matmul_nn_into, matmul_nt_into, matmul_tn_into,
    row_softmax_stats, rowwise_dot, scale_rows, scatter_add_rows_into, segment_softmax,
    segment_softmax_backward, softmax_rows_into, Matrix,
};
use crate::params::{ParamId, ParamStore};
use std::cell::RefCell;
use std::rc::Rc;

/// Handle to a node on the tape. Cheap to copy; only valid for the tape that
/// created it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(pub(crate) usize);

/// Sparse supervision target for [`Tape::softmax_xent`]: `(row, col, weight)`.
pub type SparseTarget = (u32, u32, f32);

enum Op {
    /// Constant input; gradients stop here.
    Input,
    /// Trainable leaf; gradients are collected into [`Gradients`].
    Param(ParamId),
    MatMul(Var, Var),
    /// `a @ b^T` without materialising the transpose.
    MatMulNT(Var, Var),
    Transpose(Var),
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    /// Broadcast-add a `1xC` bias row onto an `RxC` matrix.
    AddRow(Var, Var),
    Scale(Var, f32),
    LeakyRelu(Var, f32),
    Relu(Var),
    Sigmoid(Var),
    Tanh(Var),
    Exp(Var),
    ConcatCols(Var, Var),
    GatherRows(Var, Rc<Vec<u32>>),
    /// Fused embedding lookup straight from the parameter store (the
    /// reduced-precision path): forward decoded only the indexed rows to
    /// f32; backward scatter-adds the row gradients into a full-shape
    /// f32 gradient for the table.
    GatherParamRows {
        id: ParamId,
        idx: Rc<Vec<u32>>,
        /// Row count of the source table (gradient shape).
        table_rows: usize,
    },
    ScatterAddRows(Var, Rc<Vec<u32>>),
    SegmentSoftmax(Var, Rc<Vec<u32>>),
    ScaleRows(Var, Var),
    RowwiseDot(Var, Var),
    Sum(Var),
    Mean(Var),
    /// Fused softmax cross-entropy with flash-style recompute: only the
    /// per-row `(max, inv_denom)` statistics are retained; backward
    /// rebuilds probabilities from the logits node value row by row
    /// instead of reading an `O(rows × cols)` probs matrix.
    SoftmaxXent {
        logits: Var,
        targets: Rc<Vec<SparseTarget>>,
        norm: f32,
        /// `(max, inv_denom)` per logits row; only rows that carry at
        /// least one target are filled (others stay `(0, 0)` and are
        /// never read).
        stats: Vec<(f32, f32)>,
    },
    /// Reference softmax cross-entropy that materialises the full probs
    /// matrix (the pre-fusion implementation). Kept for the
    /// fused-vs-materialised parity tests and memory A/B benchmarks;
    /// selected via [`Tape::set_materialise_xent`].
    SoftmaxXentMaterialised {
        logits: Var,
        probs: Matrix,
        targets: Rc<Vec<SparseTarget>>,
        norm: f32,
    },
    BceWithLogits {
        logits: Var,
        targets: Rc<Matrix>,
    },
    KlNormal {
        mu: Var,
        logvar: Var,
        scale: f32,
    },
}

struct Node {
    value: Matrix,
    op: Op,
    needs_grad: bool,
}

/// Gradients of a scalar loss with respect to every parameter that was
/// touched on the tape. Indexed by [`ParamId`].
pub struct Gradients {
    grads: Vec<Option<Matrix>>,
}

impl Gradients {
    /// Gradient for a parameter, if it participated in the loss.
    pub fn get(&self, id: ParamId) -> Option<&Matrix> {
        self.grads.get(id.index()).and_then(|g| g.as_ref())
    }

    /// Iterate over `(ParamId, gradient)` pairs that are present.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Matrix)> {
        self.grads
            .iter()
            .enumerate()
            .filter_map(|(i, g)| g.as_ref().map(|m| (ParamId::from_index(i), m)))
    }

    /// Global L2 norm over all gradients (for clipping diagnostics).
    pub fn global_norm(&self) -> f64 {
        self.grads
            .iter()
            .flatten()
            .map(|g| {
                let n = g.frobenius_norm();
                n * n
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Scale every gradient in place (used for clipping).
    pub fn scale_all(&mut self, f: f32) {
        for g in self.grads.iter_mut().flatten() {
            g.map_inplace(|x| x * f);
        }
    }
}

/// Scratch buffers bucketed by **power-of-two size class**, with a hard
/// retention cap.
///
/// Sampled batches produce slightly different matrix shapes every step,
/// so exact-size bucketing almost never hits and the pool degenerates
/// into an unbounded graveyard (measured: step time tripled within four
/// steps from the growing RSS). Size classes make near-miss shapes share
/// buffers; the cap bounds worst-case retention.
struct ScratchPool {
    /// `buckets[c]` holds buffers whose capacity is in `[2^c, 2^(c+1))` —
    /// i.e. they can serve any request of up to `2^c` elements.
    buckets: std::collections::HashMap<u32, Vec<Vec<f32>>>,
    /// Total f32 elements currently retained across all buckets.
    retained: usize,
}

/// Retention cap: 16 Mi f32 = 64 MiB of scratch. Beyond this, released
/// buffers are simply freed.
const POOL_CAP_ELEMS: usize = 16 << 20;

impl ScratchPool {
    fn new() -> Self {
        ScratchPool {
            buckets: std::collections::HashMap::new(),
            retained: 0,
        }
    }

    /// Pop a buffer able to hold `need` elements, sized to exactly `need`,
    /// zero-filled.
    fn take_zeroed(&mut self, need: usize) -> Vec<f32> {
        let mut buf = self.take_full(need);
        buf.fill(0.0);
        buf
    }

    /// Pop a buffer able to hold `need` elements, sized to exactly `need`,
    /// with **arbitrary (stale but initialised) contents** — for callers
    /// that overwrite every element. Skipping the zero-fill here removes
    /// one full memset per intermediate matrix per step.
    fn take_full(&mut self, need: usize) -> Vec<f32> {
        let class = usize::BITS - need.next_power_of_two().leading_zeros() - 1;
        match self.buckets.get_mut(&class).and_then(Vec::pop) {
            Some(mut buf) => {
                self.retained -= buf.capacity();
                if buf.len() >= need {
                    buf.truncate(need);
                } else {
                    // extend only the (typically small) tail delta
                    buf.resize(need, 0.0);
                }
                buf
            }
            None => vec![0.0; need],
        }
    }

    /// Return a buffer to its size class, or free it when over the cap.
    fn put(&mut self, buf: Vec<f32>) {
        let cap = buf.capacity();
        if cap == 0 || self.retained + cap > POOL_CAP_ELEMS {
            return;
        }
        let class = usize::BITS - cap.leading_zeros() - 1;
        self.retained += cap;
        self.buckets.entry(class).or_default().push(buf);
    }
}

/// Records a forward pass and differentiates it.
///
/// The tape owns a **scratch pool** (`ScratchPool`) that node values and
/// backward intermediates are allocated from. Calling [`Tape::clear`]
/// between steps returns every node's buffer to the pool, so a training
/// loop that reuses one tape recycles its buffers step over step instead
/// of hammering the allocator (the seed implementation built a fresh
/// `Tape` — and reallocated every intermediate — per epoch).
pub struct Tape {
    nodes: Vec<Node>,
    n_params: usize,
    /// RefCell so `backward(&self)` can draw from the pool too.
    pool: RefCell<ScratchPool>,
    /// When set, [`Tape::softmax_xent`] records the materialised
    /// reference op instead of the fused one (parity tests / memory A/B).
    materialise_xent: bool,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

thread_local! {
    /// One persistent scratch tape per OS thread; see
    /// [`Tape::with_thread_local`].
    static THREAD_TAPE: RefCell<Tape> = RefCell::new(Tape::new());
}

impl Tape {
    /// Empty tape with a fresh scratch pool.
    pub fn new() -> Self {
        Tape {
            nodes: Vec::with_capacity(64),
            n_params: 0,
            pool: RefCell::new(ScratchPool::new()),
            materialise_xent: false,
        }
    }

    /// Run `f` with this thread's **persistent scratch tape**.
    ///
    /// The tape (and crucially its scratch pool, capped at 64 MiB) lives
    /// for the thread's lifetime, so forward passes executed on the
    /// persistent worker pool (`crate::parallel`) reuse their buffers
    /// across work items exactly like the training loop's single reused
    /// tape — this is what gives *generation* the trainer's scratch
    /// story. The tape is [`Tape::clear`]ed before `f` runs; `f` must not
    /// re-enter `with_thread_local` on the same thread (the `RefCell`
    /// would panic).
    pub fn with_thread_local<R>(f: impl FnOnce(&mut Tape) -> R) -> R {
        THREAD_TAPE.with(|t| {
            let mut tape = t.borrow_mut();
            tape.clear();
            let out = f(&mut tape);
            // Clear again on the way out: node buffers return to the
            // capped scratch pool instead of staying live on the tape, so
            // an idle worker retains at most the pool cap — not its last
            // forward pass's full activation set.
            tape.clear();
            out
        })
    }

    /// Select the softmax-cross-entropy implementation recorded by
    /// [`Tape::softmax_xent`]: `true` materialises the full probability
    /// matrix per call (the pre-fusion reference, `O(rows × cols)` extra
    /// memory), `false` (default) keeps only per-row statistics and
    /// recomputes probabilities during backward. The two are
    /// parity-equivalent; the flag exists for tests and benchmarks.
    pub fn set_materialise_xent(&mut self, on: bool) {
        self.materialise_xent = on;
    }

    /// Allocate a zero-filled matrix from the scratch pool.
    fn alloc(&self, rows: usize, cols: usize) -> Matrix {
        let buf = self.pool.borrow_mut().take_zeroed(rows * cols);
        Matrix::from_vec(rows, cols, buf)
    }

    /// Allocate a matrix whose every element the caller will overwrite;
    /// pooled buffers keep their stale contents (no memset).
    fn alloc_full(&self, rows: usize, cols: usize) -> Matrix {
        let buf = self.pool.borrow_mut().take_full(rows * cols);
        Matrix::from_vec(rows, cols, buf)
    }

    /// Drop all recorded nodes, returning their buffers to the scratch
    /// pool. The tape is ready to record a fresh forward pass.
    pub fn clear(&mut self) {
        let pool = self.pool.get_mut();
        for node in self.nodes.drain(..) {
            pool.put(node.value.into_vec());
            // the materialised-xent reference op privately holds the probs
            // matrix (the fused default does not); recycle it as well
            if let Op::SoftmaxXentMaterialised { probs, .. } = node.op {
                pool.put(probs.into_vec());
            }
        }
        self.n_params = 0;
    }

    /// Return consumed gradient buffers to the scratch pool (call after
    /// the optimizer step; the next backward reuses them).
    pub fn recycle(&self, grads: Gradients) {
        let mut pool = self.pool.borrow_mut();
        for g in grads.grads.into_iter().flatten() {
            pool.put(g.into_vec());
        }
    }

    fn push(&mut self, value: Matrix, op: Op, needs_grad: bool) -> Var {
        self.nodes.push(Node {
            value,
            op,
            needs_grad,
        });
        Var(self.nodes.len() - 1)
    }

    fn needs(&self, v: Var) -> bool {
        self.nodes[v.0].needs_grad
    }

    /// Value of a node (forward result).
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// Shape convenience.
    pub fn shape(&self, v: Var) -> (usize, usize) {
        self.nodes[v.0].value.shape()
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no operations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Insert a constant (non-differentiable) input.
    pub fn input(&mut self, m: Matrix) -> Var {
        self.push(m, Op::Input, false)
    }

    /// Insert a trainable parameter leaf, copying its current value from the
    /// store. Gradients flow into the returned slot of [`Gradients`].
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        self.n_params = self.n_params.max(id.index() + 1);
        let src = store.value(id);
        // copy via the scratch pool rather than `clone` — embedding tables
        // are the largest per-step allocations of the seed implementation
        let mut v = self.alloc_full(src.rows(), src.cols());
        v.as_mut_slice().copy_from_slice(src.as_slice());
        self.push(v, Op::Param(id), true)
    }

    /// Allocate-and-fill helper for element-wise unary ops.
    fn map_op(&mut self, x: Var, op: Op, f: impl Fn(f32) -> f32) -> Var {
        let (r, c) = self.shape(x);
        let mut v = self.alloc_full(r, c);
        self.value(x).map_into(f, &mut v);
        let ng = self.needs(x);
        self.push(v, op, ng)
    }

    /// Allocate-and-fill helper for element-wise binary ops.
    fn zip_op(&mut self, a: Var, b: Var, op: Op, f: impl Fn(f32, f32) -> f32) -> Var {
        let (r, c) = self.shape(a);
        let mut v = self.alloc_full(r, c);
        self.value(a).zip_into(self.value(b), f, &mut v);
        let ng = self.needs(a) || self.needs(b);
        self.push(v, op, ng)
    }

    /// `a @ b`
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let mut v = self.alloc_full(self.value(a).rows(), self.value(b).cols());
        matmul_nn_into(self.value(a), self.value(b), &mut v);
        let ng = self.needs(a) || self.needs(b);
        self.push(v, Op::MatMul(a, b), ng)
    }

    /// `a @ b^T` — scores every row of `a` against every row of `b`
    /// (candidate-set decoding uses this with `b` = gathered decoder rows).
    pub fn matmul_nt(&mut self, a: Var, b: Var) -> Var {
        let mut v = self.alloc_full(self.value(a).rows(), self.value(b).rows());
        matmul_nt_into(self.value(a), self.value(b), &mut v);
        let ng = self.needs(a) || self.needs(b);
        self.push(v, Op::MatMulNT(a, b), ng)
    }

    /// Transposed copy of `x`.
    pub fn transpose(&mut self, x: Var) -> Var {
        let (r, c) = self.shape(x);
        let mut v = self.alloc_full(c, r);
        let src = self.value(x);
        for i in 0..r {
            for (j, &s) in src.row(i).iter().enumerate() {
                v.set(j, i, s);
            }
        }
        let ng = self.needs(x);
        self.push(v, Op::Transpose(x), ng)
    }

    /// Element-wise `a + b` (same shape).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        assert_eq!(self.shape(a), self.shape(b), "add: shape mismatch");
        self.zip_op(a, b, Op::Add(a, b), |x, y| x + y)
    }

    /// Element-wise `a - b` (same shape).
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        assert_eq!(self.shape(a), self.shape(b), "sub: shape mismatch");
        self.zip_op(a, b, Op::Sub(a, b), |x, y| x - y)
    }

    /// Hadamard product `a * b` (same shape).
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        assert_eq!(self.shape(a), self.shape(b), "mul: shape mismatch");
        self.zip_op(a, b, Op::Mul(a, b), |x, y| x * y)
    }

    /// `x + bias` where `bias` is `1xC` broadcast over the rows of `x`.
    pub fn add_row(&mut self, x: Var, bias: Var) -> Var {
        let (xr, xc) = self.shape(x);
        assert_eq!(self.shape(bias), (1, xc), "add_row: bias must be 1x{xc}");
        let mut v = self.alloc_full(xr, xc);
        let x_val = self.value(x);
        let b_val = self.value(bias);
        for r in 0..xr {
            for ((o, &xv), &bv) in v.row_mut(r).iter_mut().zip(x_val.row(r)).zip(b_val.row(0)) {
                *o = xv + bv;
            }
        }
        let ng = self.needs(x) || self.needs(bias);
        self.push(v, Op::AddRow(x, bias), ng)
    }

    /// `c * x` for a compile-time constant scalar.
    pub fn scale(&mut self, x: Var, c: f32) -> Var {
        self.map_op(x, Op::Scale(x, c), |t| c * t)
    }

    /// LeakyReLU with negative slope `alpha` (paper uses 0.2 in Eq. 5).
    pub fn leaky_relu(&mut self, x: Var, alpha: f32) -> Var {
        self.map_op(x, Op::LeakyRelu(x, alpha), |t| {
            if t >= 0.0 {
                t
            } else {
                alpha * t
            }
        })
    }

    /// Element-wise `max(x, 0)`.
    pub fn relu(&mut self, x: Var) -> Var {
        self.map_op(x, Op::Relu(x), |t| t.max(0.0))
    }

    /// Element-wise logistic sigmoid (via [`fast_exp`]).
    pub fn sigmoid(&mut self, x: Var) -> Var {
        self.map_op(x, Op::Sigmoid(x), |t| 1.0 / (1.0 + fast_exp(-t)))
    }

    /// Element-wise hyperbolic tangent.
    pub fn tanh(&mut self, x: Var) -> Var {
        self.map_op(x, Op::Tanh(x), f32::tanh)
    }

    /// Element-wise `e^x` (via [`fast_exp`]; used by the VAE
    /// reparameterisation `σ = exp(logvar / 2)`).
    pub fn exp(&mut self, x: Var) -> Var {
        self.map_op(x, Op::Exp(x), fast_exp)
    }

    /// `[a | b]` column concatenation.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let (r, ac) = self.shape(a);
        let (br, bc) = self.shape(b);
        assert_eq!(r, br, "concat_cols: row mismatch");
        let mut v = self.alloc_full(r, ac + bc);
        concat_cols_into(self.value(a), self.value(b), &mut v);
        let ng = self.needs(a) || self.needs(b);
        self.push(v, Op::ConcatCols(a, b), ng)
    }

    /// `out[i,:] = x[idx[i],:]` (embedding lookup / neighbor gather).
    pub fn gather_rows(&mut self, x: Var, idx: Rc<Vec<u32>>) -> Var {
        let cols = self.value(x).cols();
        let mut v = self.alloc_full(idx.len(), cols);
        gather_rows_into(self.value(x), &idx, &mut v);
        let ng = self.needs(x);
        self.push(v, Op::GatherRows(x, idx), ng)
    }

    /// Fused embedding lookup `out[i,:] = table[idx[i],:]` reading the
    /// parameter store directly: only the indexed rows are decoded to
    /// f32 (accumulation stays f32 downstream), so a bf16-stored table
    /// is never materialised at full precision on the tape — the
    /// bandwidth saving that makes [`crate::params::Precision::Bf16`]
    /// storage worthwhile. Gradients scatter-add into the table's slot
    /// exactly as [`Tape::param`] + [`Tape::gather_rows`] would produce.
    pub fn gather_param_rows(&mut self, store: &ParamStore, id: ParamId, idx: Rc<Vec<u32>>) -> Var {
        self.n_params = self.n_params.max(id.index() + 1);
        let (table_rows, cols) = store.shape(id);
        let mut v = self.alloc_full(idx.len(), cols);
        store.gather_rows_f32(id, &idx, &mut v);
        self.push(
            v,
            Op::GatherParamRows {
                id,
                idx,
                table_rows,
            },
            true,
        )
    }

    /// `out[idx[i],:] += x[i,:]` into `out_rows` rows (message aggregation).
    pub fn scatter_add_rows(&mut self, x: Var, idx: Rc<Vec<u32>>, out_rows: usize) -> Var {
        let cols = self.value(x).cols();
        // scatter_add_rows_into zeroes the buffer before accumulating
        let mut v = self.alloc_full(out_rows, cols);
        scatter_add_rows_into(self.value(x), &idx, &mut v);
        let ng = self.needs(x);
        self.push(v, Op::ScatterAddRows(x, idx), ng)
    }

    /// Edge softmax: normalise the column vector `scores` within segments
    /// given by `seg` (destination node of each edge), `n_segments` total.
    pub fn segment_softmax(&mut self, scores: Var, seg: Rc<Vec<u32>>, n_segments: usize) -> Var {
        let v = segment_softmax(self.value(scores), &seg, n_segments);
        let ng = self.needs(scores);
        self.push(v, Op::SegmentSoftmax(scores, seg), ng)
    }

    /// Scale row `i` of `x` by scalar `s[i]` (`s` is `Ex1`).
    pub fn scale_rows(&mut self, x: Var, s: Var) -> Var {
        let v = scale_rows(self.value(x), self.value(s));
        let ng = self.needs(x) || self.needs(s);
        self.push(v, Op::ScaleRows(x, s), ng)
    }

    /// Row-wise dot product -> `Ex1` column.
    pub fn rowwise_dot(&mut self, a: Var, b: Var) -> Var {
        let v = rowwise_dot(self.value(a), self.value(b));
        let ng = self.needs(a) || self.needs(b);
        self.push(v, Op::RowwiseDot(a, b), ng)
    }

    /// Sum of all elements -> `1x1`.
    pub fn sum(&mut self, x: Var) -> Var {
        let v = Matrix::scalar(self.value(x).sum() as f32);
        let ng = self.needs(x);
        self.push(v, Op::Sum(x), ng)
    }

    /// Mean of all elements -> `1x1`.
    pub fn mean(&mut self, x: Var) -> Var {
        let v = Matrix::scalar(self.value(x).mean() as f32);
        let ng = self.needs(x);
        self.push(v, Op::Mean(x), ng)
    }

    /// Fused multi-target softmax cross-entropy (Eq. 6/7 reconstruction
    /// term): rows of `logits` are softmax-normalised and the loss is
    /// `-(1/norm) * sum_t w_t * log p[r_t, c_t]` over sparse targets.
    ///
    /// The probability matrix is **not** materialised: forward keeps only
    /// the per-row softmax statistics `(max, inv_denom)` for rows that
    /// carry targets, and backward recomputes probabilities from the
    /// logits node value (flash-attention-style recompute). This removes
    /// the `O(slots × candidates)` probs buffer per decoder level — the
    /// largest single term of peak training memory — at the cost of one
    /// extra `fast_exp` pass over target rows in backward. Gradients are
    /// bit-identical to the materialised reference (see
    /// [`Tape::set_materialise_xent`] and the parity proptests).
    pub fn softmax_xent(&mut self, logits: Var, targets: Rc<Vec<SparseTarget>>, norm: f32) -> Var {
        assert!(norm > 0.0, "softmax_xent: norm must be positive");
        if self.materialise_xent {
            return self.softmax_xent_materialised(logits, targets, norm);
        }
        let lv = self.value(logits);
        let rows = lv.rows();
        let mut has_target = vec![false; rows];
        for &(r, _, _) in targets.iter() {
            has_target[r as usize] = true;
        }
        let mut stats = vec![(0.0f32, 0.0f32); rows];
        for (r, s) in stats.iter_mut().enumerate() {
            if has_target[r] {
                *s = row_softmax_stats(lv.row(r));
            }
        }
        let mut loss = 0.0f64;
        for &(r, c, w) in targets.iter() {
            let (max, inv) = stats[r as usize];
            let p = (fast_exp(lv.get(r as usize, c as usize) - max) * inv).max(1e-12);
            loss -= (w as f64) * (p as f64).ln();
        }
        let v = Matrix::scalar((loss / norm as f64) as f32);
        let ng = self.needs(logits);
        self.push(
            v,
            Op::SoftmaxXent {
                logits,
                targets,
                norm,
                stats,
            },
            ng,
        )
    }

    /// The pre-fusion softmax cross-entropy: identical loss and gradients
    /// to [`Tape::softmax_xent`], but stores the full softmax of `logits`
    /// on the tape. Reference implementation for the parity tests and the
    /// peak-memory A/B in `perf_snapshot`.
    pub fn softmax_xent_materialised(
        &mut self,
        logits: Var,
        targets: Rc<Vec<SparseTarget>>,
        norm: f32,
    ) -> Var {
        assert!(norm > 0.0, "softmax_xent: norm must be positive");
        let lv = self.value(logits);
        let mut probs = self.alloc_full(lv.rows(), lv.cols());
        softmax_rows_into(self.value(logits), &mut probs);
        let mut loss = 0.0f64;
        for &(r, c, w) in targets.iter() {
            let p = probs.get(r as usize, c as usize).max(1e-12);
            loss -= (w as f64) * (p as f64).ln();
        }
        let v = Matrix::scalar((loss / norm as f64) as f32);
        let ng = self.needs(logits);
        self.push(
            v,
            Op::SoftmaxXentMaterialised {
                logits,
                probs,
                targets,
                norm,
            },
            ng,
        )
    }

    /// Fused mean binary cross-entropy with logits (VGAE-family losses).
    pub fn bce_with_logits(&mut self, logits: Var, targets: Rc<Matrix>) -> Var {
        assert_eq!(self.shape(logits), targets.shape(), "bce: shape mismatch");
        let lv = self.value(logits);
        let mut loss = 0.0f64;
        for (&z, &y) in lv.as_slice().iter().zip(targets.as_slice()) {
            // stable: max(z,0) - z*y + ln(1 + exp(-|z|))
            let zl = z as f64;
            loss += zl.max(0.0) - zl * y as f64 + (1.0 + (-zl.abs()).exp()).ln();
        }
        let n = lv.len().max(1) as f64;
        let v = Matrix::scalar((loss / n) as f32);
        let ng = self.needs(logits);
        self.push(v, Op::BceWithLogits { logits, targets }, ng)
    }

    /// Fused KL( N(mu, exp(logvar)) || N(0, 1) ), scaled by `scale`:
    /// `-scale/2 * sum(1 + logvar - mu^2 - exp(logvar))`.
    pub fn kl_normal(&mut self, mu: Var, logvar: Var, scale: f32) -> Var {
        assert_eq!(self.shape(mu), self.shape(logvar), "kl: shape mismatch");
        let m = self.value(mu);
        let lv = self.value(logvar);
        let mut acc = 0.0f64;
        for (&mv, &lvv) in m.as_slice().iter().zip(lv.as_slice()) {
            acc += 1.0 + lvv as f64 - (mv as f64) * (mv as f64) - (lvv as f64).exp();
        }
        let v = Matrix::scalar((-0.5 * scale as f64 * acc) as f32);
        let ng = self.needs(mu) || self.needs(logvar);
        self.push(v, Op::KlNormal { mu, logvar, scale }, ng)
    }

    /// Reverse pass from a scalar `loss` node. Returns gradients for every
    /// parameter leaf reachable from the loss.
    ///
    /// Intermediate gradients are reference-counted: pass-through ops
    /// (`Add`, `AddRow`, the lhs of `Sub`) forward the *same* buffer with
    /// an `Rc` bump instead of a deep copy, and accumulation into a shared
    /// buffer copies-on-write via [`Rc::make_mut`]. Gradients that an op
    /// fully consumes are recycled into the tape's scratch pool.
    pub fn backward(&self, loss: Var) -> Gradients {
        assert_eq!(self.shape(loss), (1, 1), "backward: loss must be scalar");
        let mut grads: Vec<Option<Rc<Matrix>>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[loss.0] = Some(Rc::new(Matrix::scalar(1.0)));
        let mut out = Gradients {
            grads: (0..self.n_params).map(|_| None).collect(),
        };

        // Accumulate an owned gradient into a node slot (in place when the
        // slot's buffer is unshared).
        let accum = |grads: &mut Vec<Option<Rc<Matrix>>>, v: Var, add: Matrix| match &mut grads[v.0]
        {
            Some(existing) => Rc::make_mut(existing).add_assign(&add),
            slot @ None => *slot = Some(Rc::new(add)),
        };
        // Forward a shared gradient unchanged (O(1) unless accumulating).
        let accum_shared =
            |grads: &mut Vec<Option<Rc<Matrix>>>, v: Var, add: Rc<Matrix>| match &mut grads[v.0] {
                Some(existing) => Rc::make_mut(existing).add_assign(&add),
                slot @ None => *slot = Some(add),
            };

        for i in (0..=loss.0).rev() {
            let g = match grads[i].take() {
                Some(g) => g,
                None => continue,
            };
            if !self.nodes[i].needs_grad {
                continue;
            }
            match &self.nodes[i].op {
                Op::Input => {}
                Op::Param(id) => {
                    let m = Rc::try_unwrap(g).unwrap_or_else(|rc| (*rc).clone());
                    match &mut out.grads[id.index()] {
                        Some(existing) => {
                            existing.add_assign(&m);
                            self.pool.borrow_mut().put(m.into_vec());
                        }
                        slot @ None => *slot = Some(m),
                    }
                    continue;
                }
                Op::MatMul(a, b) => {
                    if self.needs(*a) {
                        let mut ga = self.alloc_full(g.rows(), self.value(*b).rows());
                        matmul_nt_into(&g, self.value(*b), &mut ga);
                        accum(&mut grads, *a, ga);
                    }
                    if self.needs(*b) {
                        let mut gb = self.alloc_full(self.value(*a).cols(), g.cols());
                        matmul_tn_into(self.value(*a), &g, &mut gb);
                        accum(&mut grads, *b, gb);
                    }
                }
                Op::MatMulNT(a, b) => {
                    // y = a b^T: da = g b ; db = g^T a
                    if self.needs(*a) {
                        let mut ga = self.alloc_full(g.rows(), self.value(*b).cols());
                        matmul_nn_into(&g, self.value(*b), &mut ga);
                        accum(&mut grads, *a, ga);
                    }
                    if self.needs(*b) {
                        let mut gb = self.alloc_full(g.cols(), self.value(*a).cols());
                        matmul_tn_into(&g, self.value(*a), &mut gb);
                        accum(&mut grads, *b, gb);
                    }
                }
                Op::Transpose(x) => {
                    accum(&mut grads, *x, g.transpose());
                }
                Op::Add(a, b) => {
                    if self.needs(*a) {
                        accum_shared(&mut grads, *a, Rc::clone(&g));
                    }
                    if self.needs(*b) {
                        accum_shared(&mut grads, *b, Rc::clone(&g));
                    }
                }
                Op::Sub(a, b) => {
                    if self.needs(*b) {
                        let mut gb = self.alloc_full(g.rows(), g.cols());
                        g.map_into(|x| -x, &mut gb);
                        accum(&mut grads, *b, gb);
                    }
                    if self.needs(*a) {
                        accum_shared(&mut grads, *a, Rc::clone(&g));
                    }
                }
                Op::Mul(a, b) => {
                    if self.needs(*a) {
                        let mut ga = self.alloc_full(g.rows(), g.cols());
                        g.zip_into(self.value(*b), |x, y| x * y, &mut ga);
                        accum(&mut grads, *a, ga);
                    }
                    if self.needs(*b) {
                        let mut gb = self.alloc_full(g.rows(), g.cols());
                        g.zip_into(self.value(*a), |x, y| x * y, &mut gb);
                        accum(&mut grads, *b, gb);
                    }
                }
                Op::AddRow(x, bias) => {
                    if self.needs(*bias) {
                        let cols = g.cols();
                        let mut bg = self.alloc(1, cols);
                        for r in 0..g.rows() {
                            for (o, &v) in bg.row_mut(0).iter_mut().zip(g.row(r)) {
                                *o += v;
                            }
                        }
                        accum(&mut grads, *bias, bg);
                    }
                    if self.needs(*x) {
                        accum_shared(&mut grads, *x, Rc::clone(&g));
                    }
                }
                Op::Scale(x, c) => {
                    let c = *c;
                    let mut gx = self.alloc_full(g.rows(), g.cols());
                    g.map_into(|v| c * v, &mut gx);
                    accum(&mut grads, *x, gx);
                }
                Op::LeakyRelu(x, alpha) => {
                    let a = *alpha;
                    let mut gx = self.alloc_full(g.rows(), g.cols());
                    g.zip_into(
                        self.value(*x),
                        |gv, xv| if xv >= 0.0 { gv } else { a * gv },
                        &mut gx,
                    );
                    accum(&mut grads, *x, gx);
                }
                Op::Relu(x) => {
                    let mut gx = self.alloc_full(g.rows(), g.cols());
                    g.zip_into(
                        self.value(*x),
                        |gv, xv| if xv > 0.0 { gv } else { 0.0 },
                        &mut gx,
                    );
                    accum(&mut grads, *x, gx);
                }
                Op::Sigmoid(x) => {
                    let mut gx = self.alloc_full(g.rows(), g.cols());
                    g.zip_into(&self.nodes[i].value, |gv, yv| gv * yv * (1.0 - yv), &mut gx);
                    accum(&mut grads, *x, gx);
                }
                Op::Tanh(x) => {
                    let mut gx = self.alloc_full(g.rows(), g.cols());
                    g.zip_into(&self.nodes[i].value, |gv, yv| gv * (1.0 - yv * yv), &mut gx);
                    accum(&mut grads, *x, gx);
                }
                Op::Exp(x) => {
                    let mut gx = self.alloc_full(g.rows(), g.cols());
                    g.zip_into(&self.nodes[i].value, |gv, yv| gv * yv, &mut gx);
                    accum(&mut grads, *x, gx);
                }
                Op::ConcatCols(a, b) => {
                    let ac = self.value(*a).cols();
                    let bc = self.value(*b).cols();
                    if self.needs(*a) {
                        let mut ga = self.alloc_full(g.rows(), ac);
                        for r in 0..g.rows() {
                            ga.row_mut(r).copy_from_slice(&g.row(r)[..ac]);
                        }
                        accum(&mut grads, *a, ga);
                    }
                    if self.needs(*b) {
                        let mut gb = self.alloc_full(g.rows(), bc);
                        for r in 0..g.rows() {
                            gb.row_mut(r).copy_from_slice(&g.row(r)[ac..]);
                        }
                        accum(&mut grads, *b, gb);
                    }
                }
                Op::GatherRows(x, idx) => {
                    let rows = self.value(*x).rows();
                    let mut gx = self.alloc_full(rows, g.cols());
                    scatter_add_rows_into(&g, idx, &mut gx);
                    accum(&mut grads, *x, gx);
                }
                Op::ScatterAddRows(x, idx) => {
                    let mut gx = self.alloc_full(idx.len(), g.cols());
                    gather_rows_into(&g, idx, &mut gx);
                    accum(&mut grads, *x, gx);
                }
                Op::SegmentSoftmax(scores, seg) => {
                    // y_i = softmax within segment; dL/ds_i = y_i*(g_i -
                    // sum_j_in_seg g_j*y_j), via the blocked run-based
                    // kernel shared with the forward pass.
                    let y = &self.nodes[i].value;
                    let n_seg = seg.iter().map(|&s| s as usize + 1).max().unwrap_or(0);
                    let gx = segment_softmax_backward(y, &g, seg, n_seg);
                    accum(&mut grads, *scores, gx);
                }
                Op::GatherParamRows {
                    id,
                    idx,
                    table_rows,
                } => {
                    let mut gx = self.alloc_full(*table_rows, g.cols());
                    scatter_add_rows_into(&g, idx, &mut gx);
                    match &mut out.grads[id.index()] {
                        Some(existing) => {
                            existing.add_assign(&gx);
                            self.pool.borrow_mut().put(gx.into_vec());
                        }
                        slot @ None => *slot = Some(gx),
                    }
                }
                Op::ScaleRows(x, s) => {
                    if self.needs(*x) {
                        accum(&mut grads, *x, scale_rows(&g, self.value(*s)));
                    }
                    if self.needs(*s) {
                        accum(&mut grads, *s, rowwise_dot(&g, self.value(*x)));
                    }
                }
                Op::RowwiseDot(a, b) => {
                    if self.needs(*a) {
                        accum(&mut grads, *a, scale_rows(self.value(*b), &g));
                    }
                    if self.needs(*b) {
                        accum(&mut grads, *b, scale_rows(self.value(*a), &g));
                    }
                }
                Op::Sum(x) => {
                    let (r, c) = self.shape(*x);
                    let mut gx = self.alloc_full(r, c);
                    gx.as_mut_slice().fill(g.item());
                    accum(&mut grads, *x, gx);
                }
                Op::Mean(x) => {
                    let (r, c) = self.shape(*x);
                    let n = (r * c).max(1) as f32;
                    let mut gx = self.alloc_full(r, c);
                    gx.as_mut_slice().fill(g.item() / n);
                    accum(&mut grads, *x, gx);
                }
                Op::SoftmaxXent {
                    logits,
                    targets,
                    norm,
                    stats,
                } => {
                    // dL/dz[r, :] = go * (rw_r * softmax(z[r, :]) - onehot
                    // targets); probabilities are recomputed from the
                    // logits value and the stored (max, inv) row stats
                    // instead of a materialised probs matrix.
                    let go = g.item() / norm;
                    let lv = self.value(*logits);
                    let (r, c) = lv.shape();
                    let mut row_w = vec![0.0f32; r];
                    for &(rr, _, w) in targets.iter() {
                        row_w[rr as usize] += w;
                    }
                    let mut gx = self.alloc(r, c);
                    for (rr, &rw) in row_w.iter().enumerate() {
                        if rw == 0.0 {
                            continue;
                        }
                        let w = rw * go;
                        let (max, inv) = stats[rr];
                        for (o, &z) in gx.row_mut(rr).iter_mut().zip(lv.row(rr)) {
                            *o = w * (fast_exp(z - max) * inv);
                        }
                    }
                    for &(rr, cc, w) in targets.iter() {
                        let v = gx.get(rr as usize, cc as usize) - w * go;
                        gx.set(rr as usize, cc as usize, v);
                    }
                    accum(&mut grads, *logits, gx);
                }
                Op::SoftmaxXentMaterialised {
                    logits,
                    probs,
                    targets,
                    norm,
                } => {
                    let go = g.item() / norm;
                    let (r, c) = probs.shape();
                    let mut row_w = vec![0.0f32; r];
                    for &(rr, _, w) in targets.iter() {
                        row_w[rr as usize] += w;
                    }
                    let mut gx = self.alloc(r, c);
                    for (rr, &rw) in row_w.iter().enumerate() {
                        if rw == 0.0 {
                            continue;
                        }
                        let w = rw * go;
                        for (o, &p) in gx.row_mut(rr).iter_mut().zip(probs.row(rr)) {
                            *o = w * p;
                        }
                    }
                    for &(rr, cc, w) in targets.iter() {
                        let v = gx.get(rr as usize, cc as usize) - w * go;
                        gx.set(rr as usize, cc as usize, v);
                    }
                    accum(&mut grads, *logits, gx);
                }
                Op::BceWithLogits { logits, targets } => {
                    let lv = self.value(*logits);
                    let n = lv.len().max(1) as f32;
                    let go = g.item() / n;
                    let mut gx = self.alloc_full(lv.rows(), lv.cols());
                    lv.zip_into(targets, |z, y| go * (1.0 / (1.0 + (-z).exp()) - y), &mut gx);
                    accum(&mut grads, *logits, gx);
                }
                Op::KlNormal { mu, logvar, scale } => {
                    let go = g.item() * *scale;
                    if self.needs(*mu) {
                        let mv = self.value(*mu);
                        let mut gx = self.alloc_full(mv.rows(), mv.cols());
                        mv.map_into(|m| go * m, &mut gx);
                        accum(&mut grads, *mu, gx);
                    }
                    if self.needs(*logvar) {
                        let lvv = self.value(*logvar);
                        let mut gx = self.alloc_full(lvv.rows(), lvv.cols());
                        lvv.map_into(|l| 0.5 * go * (l.exp() - 1.0), &mut gx);
                        accum(&mut grads, *logvar, gx);
                    }
                }
            }
            // The gradient for node i has been fully consumed; if nothing
            // else holds the buffer, return it to the scratch pool.
            if let Ok(m) = Rc::try_unwrap(g) {
                self.pool.borrow_mut().put(m.into_vec());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamStore;

    /// Finite-difference check for a scalar-producing closure of one
    /// parameter matrix.
    fn grad_check(init: Matrix, f: impl Fn(&mut Tape, Var) -> Var) {
        let mut store = ParamStore::new();
        let id = store.create("w", init.clone());
        // analytic
        let mut tape = Tape::new();
        let w = tape.param(&store, id);
        let loss = f(&mut tape, w);
        let grads = tape.backward(loss);
        let g = grads.get(id).expect("param grad missing").clone();
        // numeric
        let eps = 1e-3f32;
        for i in 0..init.len() {
            let mut plus = init.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = init.clone();
            minus.as_mut_slice()[i] -= eps;
            let mut sp = ParamStore::new();
            let idp = sp.create("w", plus);
            let mut tp = Tape::new();
            let wp = tp.param(&sp, idp);
            let lp = f(&mut tp, wp);
            let mut sm = ParamStore::new();
            let idm = sm.create("w", minus);
            let mut tm = Tape::new();
            let wm = tm.param(&sm, idm);
            let lm = f(&mut tm, wm);
            let num = (tp.value(lp).item() - tm.value(lm).item()) / (2.0 * eps);
            let ana = g.as_slice()[i];
            assert!(
                (num - ana).abs() < 2e-2 * (1.0 + num.abs().max(ana.abs())),
                "element {i}: numeric {num} vs analytic {ana}"
            );
        }
    }

    fn test_matrix(rows: usize, cols: usize) -> Matrix {
        // Offset keeps values away from activation kinks (x = 0 exactly),
        // where one-sided numeric gradients disagree with the subgradient.
        Matrix::from_fn(rows, cols, |r, c| {
            ((r * cols + c) as f32 * 0.7 + 0.31).sin() * 0.5
        })
    }

    #[test]
    fn grad_matmul_sum() {
        grad_check(test_matrix(3, 4), |t, w| {
            let x = t.input(test_matrix(2, 3));
            let y = t.matmul(x, w);
            t.sum(y)
        });
    }

    #[test]
    fn grad_matmul_left_operand() {
        grad_check(test_matrix(2, 3), |t, w| {
            let x = t.input(test_matrix(3, 4));
            let y = t.matmul(w, x);
            let z = t.tanh(y);
            t.sum(z)
        });
    }

    #[test]
    fn grad_activations() {
        for act in 0..5 {
            grad_check(test_matrix(3, 3), move |t, w| {
                let y = match act {
                    0 => t.leaky_relu(w, 0.2),
                    1 => t.sigmoid(w),
                    2 => t.tanh(w),
                    3 => t.exp(w),
                    _ => t.relu(w),
                };
                t.mean(y)
            });
        }
    }

    #[test]
    fn grad_matmul_nt_both_operands() {
        grad_check(test_matrix(3, 4), |t, w| {
            let x = t.input(test_matrix(5, 4));
            let y = t.matmul_nt(w, x); // (3,5)
            let z = t.tanh(y);
            t.sum(z)
        });
        grad_check(test_matrix(5, 4), |t, w| {
            let x = t.input(test_matrix(3, 4));
            let y = t.matmul_nt(x, w);
            let z = t.sigmoid(y);
            t.sum(z)
        });
    }

    #[test]
    fn matmul_nt_value_matches_manual_transpose() {
        let mut tape = Tape::new();
        let a = tape.input(test_matrix(2, 3));
        let b = tape.input(test_matrix(4, 3));
        let y = tape.matmul_nt(a, b);
        let bt = tape.value(b).transpose();
        let expect = tape.value(a).matmul(&bt);
        assert_eq!(tape.value(y), &expect);
    }

    #[test]
    fn grad_transpose() {
        grad_check(test_matrix(2, 5), |t, w| {
            let y = t.transpose(w);
            let x = t.input(test_matrix(2, 5).transpose());
            let z = t.mul(y, x);
            t.sum(z)
        });
    }

    #[test]
    fn grad_add_row_bias() {
        grad_check(test_matrix(1, 4), |t, w| {
            let x = t.input(test_matrix(3, 4));
            let y = t.add_row(x, w);
            let z = t.sigmoid(y);
            t.sum(z)
        });
    }

    #[test]
    fn grad_hadamard_and_sub() {
        grad_check(test_matrix(2, 2), |t, w| {
            let x = t.input(test_matrix(2, 2));
            let p = t.mul(w, x);
            let q = t.sub(p, w);
            t.sum(q)
        });
    }

    #[test]
    fn grad_concat() {
        grad_check(test_matrix(2, 3), |t, w| {
            let x = t.input(test_matrix(2, 2));
            let y = t.concat_cols(w, x);
            let z = t.tanh(y);
            t.sum(z)
        });
    }

    #[test]
    fn grad_gather_scatter() {
        grad_check(test_matrix(4, 3), |t, w| {
            let idx = Rc::new(vec![1u32, 3, 1, 0]);
            let g = t.gather_rows(w, idx.clone());
            let s = t.scatter_add_rows(g, Rc::new(vec![0u32, 0, 1, 2]), 3);
            let z = t.sigmoid(s);
            t.sum(z)
        });
    }

    #[test]
    fn grad_segment_softmax_pipeline() {
        grad_check(test_matrix(5, 1), |t, w| {
            let seg = Rc::new(vec![0u32, 0, 1, 1, 1]);
            let a = t.segment_softmax(w, seg, 2);
            let x = t.input(test_matrix(5, 2));
            let weighted = t.scale_rows(x, a);
            let z = t.tanh(weighted);
            t.sum(z)
        });
    }

    #[test]
    fn grad_rowwise_dot() {
        grad_check(test_matrix(3, 4), |t, w| {
            let x = t.input(test_matrix(3, 4));
            let d = t.rowwise_dot(w, x);
            let z = t.sigmoid(d);
            t.sum(z)
        });
    }

    #[test]
    fn grad_softmax_xent() {
        grad_check(test_matrix(3, 5), |t, w| {
            let targets = Rc::new(vec![
                (0u32, 1u32, 1.0f32),
                (1, 4, 2.0),
                (2, 0, 1.0),
                (0, 3, 0.5),
            ]);
            t.softmax_xent(w, targets, 3.0)
        });
    }

    #[test]
    fn grad_bce_with_logits() {
        grad_check(test_matrix(3, 3), |t, w| {
            let y = Rc::new(Matrix::from_fn(3, 3, |r, c| ((r + c) % 2) as f32));
            t.bce_with_logits(w, y)
        });
    }

    #[test]
    fn grad_kl_normal_mu() {
        grad_check(test_matrix(3, 2), |t, w| {
            let lv = t.input(test_matrix(3, 2));
            t.kl_normal(w, lv, 0.1)
        });
    }

    #[test]
    fn grad_kl_normal_logvar() {
        grad_check(test_matrix(3, 2), |t, w| {
            let mu = t.input(test_matrix(3, 2));
            t.kl_normal(mu, w, 0.1)
        });
    }

    #[test]
    fn grad_through_two_params_accumulates() {
        // loss = sum((w@x) * (w@x)) touches w twice; check vs numeric.
        grad_check(test_matrix(2, 2), |t, w| {
            let x = t.input(test_matrix(2, 2));
            let y = t.matmul(w, x);
            let z = t.mul(y, y);
            t.sum(z)
        });
    }

    #[test]
    fn constant_inputs_get_no_grad() {
        let mut store = ParamStore::new();
        let id = store.create("w", test_matrix(2, 2));
        let mut tape = Tape::new();
        let w = tape.param(&store, id);
        let x = tape.input(test_matrix(2, 2));
        let y = tape.matmul(x, w);
        let l = tape.sum(y);
        let grads = tape.backward(l);
        assert!(grads.get(id).is_some());
        assert_eq!(grads.iter().count(), 1);
    }

    #[test]
    fn kl_zero_at_standard_normal() {
        let mut tape = Tape::new();
        let mu = tape.input(Matrix::zeros(4, 4));
        let lv = tape.input(Matrix::zeros(4, 4));
        let kl = tape.kl_normal(mu, lv, 1.0);
        assert!(tape.value(kl).item().abs() < 1e-9);
    }

    #[test]
    fn softmax_xent_matches_manual_single_target() {
        let mut tape = Tape::new();
        let logits = tape.input(Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]));
        let loss = tape.softmax_xent(logits, Rc::new(vec![(0, 2, 1.0)]), 1.0);
        let z: Vec<f64> = vec![1.0, 2.0, 3.0];
        let denom: f64 = z.iter().map(|v| v.exp()).sum();
        let expect = -(z[2].exp() / denom).ln();
        assert!((tape.value(loss).item() as f64 - expect).abs() < 1e-5);
    }

    #[test]
    fn gradients_global_norm_and_scale() {
        let mut store = ParamStore::new();
        let id = store.create("w", Matrix::full(2, 2, 1.0));
        let mut tape = Tape::new();
        let w = tape.param(&store, id);
        let l = tape.sum(w);
        let mut grads = tape.backward(l);
        assert!((grads.global_norm() - 2.0).abs() < 1e-6); // sqrt(4 * 1^2)
        grads.scale_all(0.5);
        assert!((grads.global_norm() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn thread_local_tape_is_cleared_and_matches_fresh_tape() {
        let run = |tape: &mut Tape| -> f32 {
            let a = tape.input(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
            let b = tape.input(Matrix::from_vec(2, 2, vec![0.5, 0.5, 0.5, 0.5]));
            let c = tape.matmul(a, b);
            let s = tape.sum(c);
            tape.value(s).item()
        };
        let fresh = run(&mut Tape::new());
        // two back-to-back thread-local uses: second must see a cleared
        // tape whose pooled (stale) buffers do not change the result
        let first = Tape::with_thread_local(|t| run(t));
        let second = Tape::with_thread_local(|t| {
            assert!(t.is_empty(), "thread-local tape not cleared");
            run(t)
        });
        assert_eq!(first, fresh);
        assert_eq!(second, fresh);
    }

    #[test]
    fn thread_local_tapes_are_per_worker_on_the_pool() {
        // every pool task gets *a* tape; distinct threads get distinct
        // tapes, so concurrent use never aliases
        let results = crate::parallel::par_map(16, |i| {
            Tape::with_thread_local(|tape| {
                let x = tape.input(Matrix::full(1, 1, i as f32));
                let y = tape.scale(x, 2.0);
                tape.value(y).item()
            })
        });
        for (i, r) in results.iter().enumerate() {
            assert_eq!(*r, 2.0 * i as f32);
        }
    }
}
