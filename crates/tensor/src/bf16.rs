//! bfloat16 encode/decode for reduced-precision parameter storage.
//!
//! bf16 is the upper 16 bits of an IEEE-754 f32: same 8-bit exponent
//! (so the full f32 dynamic range survives), 7 mantissa bits instead of
//! 23. Encoding rounds to nearest-even, which bounds the relative error
//! of any finite value at `2^-8` (one half-ULP of a 7-bit mantissa) —
//! the "documented quality bound" the embedding-table storage relies
//! on. Decoding is exact: every bf16 value is an f32.
//!
//! The tables that use this ([`crate::params::Precision::Bf16`]) keep
//! all *arithmetic* in f32 — values are decoded before any FMA and
//! gradients/optimizer moments stay f32 — so bf16 here is purely a
//! storage/bandwidth format, the same contract as mixed-precision
//! embedding training on GPU.

/// Encode an `f32` as bf16 with round-to-nearest-even.
///
/// NaN maps to a quiet NaN (the truncated payload could be all-zero
/// mantissa, which would read back as infinity); ±0 and ±inf are exact.
#[inline]
pub fn bf16_encode(x: f32) -> u16 {
    let b = x.to_bits();
    if x.is_nan() {
        // Preserve sign, force a quiet-NaN mantissa bit.
        return ((b >> 16) as u16) | 0x0040;
    }
    // Round-to-nearest-even on the truncated 16 bits: add 0x7FFF plus
    // the current LSB of the surviving mantissa, then shift.
    let rounded = b.wrapping_add(0x7FFF + ((b >> 16) & 1));
    (rounded >> 16) as u16
}

/// Decode a bf16 value back to the `f32` it denotes (exact).
#[inline]
pub fn bf16_decode(h: u16) -> f32 {
    f32::from_bits((h as u32) << 16)
}

/// Encode a slice (`dst.len() == src.len()`).
pub fn bf16_encode_slice(src: &[f32], dst: &mut [u16]) {
    assert_eq!(src.len(), dst.len());
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = bf16_encode(s);
    }
}

/// Decode a slice (`dst.len() == src.len()`).
pub fn bf16_decode_slice(src: &[u16], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len());
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = bf16_decode(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_round_trip() {
        for &x in &[
            0.0f32,
            -0.0,
            1.0,
            -1.0,
            0.5,
            2.0,
            -3.0,
            256.0,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::MIN_POSITIVE, // smallest normal: exponent survives
        ] {
            let y = bf16_decode(bf16_encode(x));
            assert_eq!(x.to_bits(), y.to_bits(), "{x} -> {y}");
        }
    }

    #[test]
    fn nan_stays_nan() {
        assert!(bf16_decode(bf16_encode(f32::NAN)).is_nan());
        assert!(bf16_decode(bf16_encode(-f32::NAN)).is_nan());
        // A NaN whose payload lives entirely in the truncated bits must
        // not decode as infinity.
        let sneaky = f32::from_bits(0x7F80_0001);
        assert!(sneaky.is_nan());
        assert!(bf16_decode(bf16_encode(sneaky)).is_nan());
    }

    #[test]
    fn relative_error_within_2_pow_neg_8() {
        // Deterministic LCG sweep over a wide magnitude range.
        let mut state = 0x1234_5678_9abc_def0u64;
        for _ in 0..20_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let mant = ((state >> 40) as f32) / (1u64 << 24) as f32; // [0,1)
            let exp = ((state >> 8) % 61) as i32 - 30; // 2^-30 .. 2^30
            let x = (1.0 + mant) * (exp as f32).exp2() * if state & 1 == 0 { 1.0 } else { -1.0 };
            let y = bf16_decode(bf16_encode(x));
            let rel = ((y - x) / x).abs();
            assert!(rel <= 1.0 / 256.0, "x={x} y={y} rel={rel}");
        }
    }

    #[test]
    fn rounds_to_nearest_even() {
        // 1 + 2^-8 sits exactly between bf16(1.0) and bf16(1 + 2^-7);
        // nearest-even picks the even mantissa (1.0).
        let halfway = f32::from_bits(0x3F80_8000);
        assert_eq!(bf16_decode(bf16_encode(halfway)), 1.0);
        // One ULP above the halfway point must round up.
        let above = f32::from_bits(0x3F80_8001);
        assert_eq!(
            bf16_decode(bf16_encode(above)).to_bits(),
            f32::from_bits(0x3F81_0000).to_bits()
        );
    }

    #[test]
    fn slice_helpers_match_scalar() {
        let src = [1.5f32, -2.25, 1e-20, 3e20, 0.1];
        let mut enc = [0u16; 5];
        bf16_encode_slice(&src, &mut enc);
        let mut dec = [0f32; 5];
        bf16_decode_slice(&enc, &mut dec);
        for (i, &x) in src.iter().enumerate() {
            assert_eq!(dec[i].to_bits(), bf16_decode(bf16_encode(x)).to_bits());
        }
    }
}
