//! Chunked CPU parallelism on a **persistent worker pool**.
//!
//! The seed implementation spawned and joined fresh OS threads through
//! `crossbeam::scope` on every kernel call, which put a thread create +
//! destroy on every large matmul — tens of microseconds of overhead paid
//! thousands of times per training run. This module replaces that with a
//! lazily-initialised, process-wide pool:
//!
//! - **One queue, N workers.** Workers are spawned once (at first parallel
//!   call), sized to `available_parallelism() - 1`, and park on a condvar
//!   between calls. Tasks are type-erased `FnOnce` boxes on a shared FIFO.
//! - **Caller helps.** The thread that submits a batch of tasks does not
//!   block idle: it pops tasks from the same queue until the batch's latch
//!   reaches zero. This both saves a context switch for the common case
//!   and makes *nested* parallel sections deadlock-free — a worker that
//!   submits a sub-batch keeps executing queued tasks while it waits.
//! - **Scoped borrows.** [`par_chunks_mut`]/[`par_map`] accept closures
//!   borrowing stack data. Internally the closure lifetime is erased to
//!   `'static`; soundness comes from the submit call blocking until every
//!   task of its batch has completed (panics included — completion is
//!   signalled from a drop guard), so borrows outlive all task runs.
//! - **Thread-count override.** [`set_num_threads`] pins the *split
//!   factor* (how many chunks a kernel fans out into); the pool itself
//!   keeps its size. `set_num_threads(1)` therefore gives bit-exact serial
//!   execution on the calling thread. Tests use the [`ThreadPin`] RAII
//!   guard, which also serialises against other threads touching the
//!   override (the process-global is otherwise racy across tests).
//!
//! Worker panics are caught, forwarded to the submitting thread, and
//! re-raised there as `"parallel worker panicked"` — same contract as the
//! old scoped implementation.
//!
//! Because workers are **persistent**, `thread_local!` state observed by
//! tasks survives across batches: a task that draws from a thread-local
//! scratch structure (e.g. [`crate::tape::Tape::with_thread_local`])
//! amortises its allocations over every future task that lands on the
//! same worker. The generation path leans on this for per-worker tape
//! reuse; anything correctness-critical must therefore *not* depend on
//! thread-local state, since task→worker assignment is scheduling-
//! dependent.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};

/// Work sizes below this many fused multiply-adds stay single-threaded;
/// queue hand-off overhead dominates under it.
pub const PAR_THRESHOLD: usize = 1 << 18;

static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Number of chunks parallel kernels split into.
///
/// Defaults to the machine's available parallelism; can be pinned (e.g. to 1
/// for deterministic benchmarking of the paper's "one CPU core" setting) via
/// [`set_num_threads`] or, preferably, a scoped [`ThreadPin`].
pub fn num_threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Pin the split factor (0 restores the default).
///
/// This is a process-wide setting; concurrent callers race. Prefer
/// [`ThreadPin`] where the pin should be temporary (tests, benchmarks).
pub fn set_num_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

static PIN_LOCK: Mutex<()> = Mutex::new(());

/// RAII pin of the thread count: holds a process-global lock so concurrent
/// pins (e.g. parallel tests) serialise instead of clobbering each other,
/// and restores the previous value on drop.
pub struct ThreadPin {
    prev: usize,
    _lock: std::sync::MutexGuard<'static, ()>,
}

impl ThreadPin {
    /// Pin the split factor to `n` until the guard drops (0 = default).
    pub fn new(n: usize) -> Self {
        let lock = PIN_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let prev = THREAD_OVERRIDE.swap(n, Ordering::Relaxed);
        ThreadPin { prev, _lock: lock }
    }
}

impl Drop for ThreadPin {
    fn drop(&mut self) {
        THREAD_OVERRIDE.store(self.prev, Ordering::Relaxed);
    }
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: VecDeque<Job>,
}

struct Pool {
    state: Mutex<PoolState>,
    work_ready: Condvar,
}

impl Pool {
    fn push_jobs(&self, jobs: impl IntoIterator<Item = Job>) {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let mut n = 0usize;
        for j in jobs {
            st.queue.push_back(j);
            n += 1;
        }
        drop(st);
        if n == 1 {
            self.work_ready.notify_one();
        } else if n > 1 {
            self.work_ready.notify_all();
        }
    }

    fn try_pop(&self) -> Option<Job> {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .queue
            .pop_front()
    }
}

static POOL: OnceLock<Arc<Pool>> = OnceLock::new();

fn pool() -> &'static Arc<Pool> {
    POOL.get_or_init(|| {
        let pool = Arc::new(Pool {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
            }),
            work_ready: Condvar::new(),
        });
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .saturating_sub(1);
        for i in 0..workers {
            let pool = Arc::clone(&pool);
            std::thread::Builder::new()
                .name(format!("tg-tensor-worker-{i}"))
                .spawn(move || worker_loop(&pool))
                .expect("failed to spawn pool worker");
        }
        pool
    })
}

fn worker_loop(pool: &Pool) {
    loop {
        let job = {
            let mut st = pool.state.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(job) = st.queue.pop_front() {
                    break job;
                }
                st = pool
                    .work_ready
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        job();
    }
}

/// Completion latch for one submitted batch. Tasks signal through a drop
/// guard so a panicking task still counts down; the panic flag is
/// re-raised on the submitting thread.
struct Latch {
    remaining: AtomicUsize,
    panicked: AtomicBool,
}

struct LatchGuard<'a>(&'a Latch);

impl Drop for LatchGuard<'_> {
    fn drop(&mut self) {
        self.0.remaining.fetch_sub(1, Ordering::Release);
    }
}

/// Run a set of scoped tasks on the pool, blocking (and helping) until all
/// complete. The `'scope` lifetime is erased; safety rests on this
/// function not returning until every task has finished running.
fn run_scoped<'scope>(tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
    if tasks.is_empty() {
        return;
    }
    let latch = Arc::new(Latch {
        remaining: AtomicUsize::new(tasks.len()),
        panicked: AtomicBool::new(false),
    });
    let pool = pool();
    let jobs: Vec<Job> = tasks
        .into_iter()
        .map(|task| {
            // SAFETY: erase 'scope to 'static. run_scoped blocks until the
            // latch hits zero, and the latch is decremented from a drop
            // guard that runs after (or during unwind of) the task body,
            // so no task can touch its borrows after run_scoped returns.
            let task: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(task) };
            let latch = Arc::clone(&latch);
            Box::new(move || {
                let _guard = LatchGuard(&latch);
                if catch_unwind(AssertUnwindSafe(task)).is_err() {
                    latch.panicked.store(true, Ordering::Release);
                }
            }) as Job
        })
        .collect();
    pool.push_jobs(jobs);

    // Help: drain tasks (ours or anyone's) while waiting. Spin briefly
    // when the queue is empty but our batch is still in flight on workers,
    // then back off to short sleeps to avoid burning a core.
    let mut idle_spins = 0u32;
    while latch.remaining.load(Ordering::Acquire) > 0 {
        match pool.try_pop() {
            Some(job) => {
                idle_spins = 0;
                job();
            }
            None if idle_spins < 128 => {
                idle_spins += 1;
                std::thread::yield_now();
            }
            None => std::thread::sleep(std::time::Duration::from_micros(50)),
        }
    }
    if latch.panicked.load(Ordering::Acquire) {
        panic!("parallel worker panicked");
    }
}

/// Split `data` into contiguous chunks whose lengths are multiples of
/// `row_len` and invoke `f(start_row, chunk)` for each, in parallel.
///
/// `f` receives the index of the first *row* of its chunk so kernels can
/// locate themselves in the full matrix.
pub fn par_chunks_mut<F>(data: &mut [f32], row_len: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert!(
        row_len > 0 && data.len().is_multiple_of(row_len),
        "par_chunks_mut: ragged rows"
    );
    let n_rows = data.len() / row_len;
    let threads = num_threads().min(n_rows).max(1);
    if threads == 1 {
        f(0, data);
        return;
    }
    let rows_per = n_rows.div_ceil(threads);
    let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(threads);
    let mut rest = data;
    let mut row0 = 0usize;
    while !rest.is_empty() {
        let take = (rows_per * row_len).min(rest.len());
        let (chunk, tail) = rest.split_at_mut(take);
        rest = tail;
        let fr = &f;
        let r0 = row0;
        tasks.push(Box::new(move || fr(r0, chunk)));
        row0 += take / row_len;
    }
    run_scoped(tasks);
}

/// Run `f(i)` for each `i in 0..n` in parallel, collecting results in order.
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = num_threads().min(n).max(1);
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let per = n.div_ceil(threads);
    let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(threads);
    let mut rest = out.as_mut_slice();
    let mut start = 0usize;
    while !rest.is_empty() {
        let take = per.min(rest.len());
        let (chunk, tail) = rest.split_at_mut(take);
        rest = tail;
        let fr = &f;
        let s0 = start;
        tasks.push(Box::new(move || {
            for (j, slot) in chunk.iter_mut().enumerate() {
                *slot = Some(fr(s0 + j));
            }
        }));
        start += take;
    }
    run_scoped(tasks);
    out.into_iter()
        .map(|x| x.expect("par_map slot unfilled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_chunks_covers_all_rows_once() {
        let rows = 37;
        let cols = 5;
        let mut buf = vec![0.0f32; rows * cols];
        par_chunks_mut(&mut buf, cols, |r0, chunk| {
            for (i, row) in chunk.chunks_mut(cols).enumerate() {
                for v in row.iter_mut() {
                    *v += (r0 + i) as f32;
                }
            }
        });
        for r in 0..rows {
            for c in 0..cols {
                assert_eq!(buf[r * cols + c], r as f32, "row {r} col {c}");
            }
        }
    }

    #[test]
    fn par_map_preserves_order() {
        let v = par_map(100, |i| i * i);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i * i);
        }
    }

    #[test]
    fn thread_pin_is_scoped_and_serialised() {
        {
            let _pin = ThreadPin::new(3);
            assert_eq!(num_threads(), 3);
            {
                // nested pins from the same thread would deadlock on the
                // global lock, so nesting uses set_num_threads directly
                set_num_threads(2);
                assert_eq!(num_threads(), 2);
                set_num_threads(3);
            }
            assert_eq!(num_threads(), 3);
        }
        assert!(num_threads() >= 1);
    }

    #[test]
    fn par_map_empty() {
        let v: Vec<usize> = par_map(0, |i| i);
        assert!(v.is_empty());
    }

    #[test]
    fn pool_survives_many_batches() {
        // Regression for the per-call spawn/join design: submit many small
        // batches back to back; the pool must stay healthy throughout.
        for round in 0..200 {
            let v = par_map(8, move |i| i + round);
            assert_eq!(v[0], round);
        }
    }

    #[test]
    fn nested_parallel_sections_complete() {
        // A task that itself fans out must not deadlock the pool (caller
        // helps drain the queue while waiting).
        let outer = par_map(4, |i| {
            let inner = par_map(4, move |j| i * 10 + j);
            inner.into_iter().sum::<usize>()
        });
        assert_eq!(outer.len(), 4);
        for (i, s) in outer.iter().enumerate() {
            assert_eq!(*s, i * 40 + 6);
        }
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            par_map(8, |i| {
                if i == 5 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(result.is_err(), "panic must propagate to the submitter");
        // pool must still work afterwards
        let v = par_map(4, |i| i * 2);
        assert_eq!(v, vec![0, 2, 4, 6]);
    }

    #[test]
    fn serial_pin_matches_parallel_result() {
        let parallel = par_map(64, |i| (i as f32).sqrt());
        let serial = {
            let _pin = ThreadPin::new(1);
            par_map(64, |i| (i as f32).sqrt())
        };
        assert_eq!(parallel, serial);
    }
}
