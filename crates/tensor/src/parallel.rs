//! Chunked CPU parallelism helpers built on `crossbeam::scope`.
//!
//! The paper trains TGAE with GPU-batched kernels; this reproduction runs
//! the same batched computation graphs on CPU threads. The helpers here are
//! deliberately tiny: split a mutable buffer into row-aligned chunks and run
//! a closure per chunk on a scoped thread.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Work sizes below this many fused multiply-adds stay single-threaded;
/// thread spawn/join overhead dominates under it.
pub const PAR_THRESHOLD: usize = 1 << 18;

static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Number of worker threads used by the parallel kernels.
///
/// Defaults to the machine's available parallelism; can be pinned (e.g. to 1
/// for deterministic benchmarking of the paper's "one CPU core" setting) via
/// [`set_num_threads`].
pub fn num_threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Pin the worker-thread count (0 restores the default).
pub fn set_num_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Split `data` into contiguous chunks whose lengths are multiples of
/// `row_len` and invoke `f(start_row, chunk)` for each, in parallel.
///
/// `f` receives the index of the first *row* of its chunk so kernels can
/// locate themselves in the full matrix.
pub fn par_chunks_mut<F>(data: &mut [f32], row_len: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert!(row_len > 0 && data.len().is_multiple_of(row_len), "par_chunks_mut: ragged rows");
    let n_rows = data.len() / row_len;
    let threads = num_threads().min(n_rows).max(1);
    if threads == 1 {
        f(0, data);
        return;
    }
    let rows_per = n_rows.div_ceil(threads);
    crossbeam::scope(|s| {
        let mut rest = data;
        let mut row0 = 0usize;
        while !rest.is_empty() {
            let take = (rows_per * row_len).min(rest.len());
            let (chunk, tail) = rest.split_at_mut(take);
            rest = tail;
            let fr = &f;
            let r0 = row0;
            s.spawn(move |_| fr(r0, chunk));
            row0 += take / row_len;
        }
    })
    .expect("parallel worker panicked");
}

/// Run `f(i)` for each `i in 0..n` in parallel, collecting results in order.
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = num_threads().min(n).max(1);
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let per = n.div_ceil(threads);
    crossbeam::scope(|s| {
        let mut rest = out.as_mut_slice();
        let mut start = 0usize;
        while !rest.is_empty() {
            let take = per.min(rest.len());
            let (chunk, tail) = rest.split_at_mut(take);
            rest = tail;
            let fr = &f;
            s.spawn(move |_| {
                for (j, slot) in chunk.iter_mut().enumerate() {
                    *slot = Some(fr(start + j));
                }
            });
            start += take;
        }
    })
    .expect("parallel worker panicked");
    out.into_iter().map(|x| x.expect("par_map slot unfilled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_chunks_covers_all_rows_once() {
        let rows = 37;
        let cols = 5;
        let mut buf = vec![0.0f32; rows * cols];
        par_chunks_mut(&mut buf, cols, |r0, chunk| {
            for (i, row) in chunk.chunks_mut(cols).enumerate() {
                for v in row.iter_mut() {
                    *v += (r0 + i) as f32;
                }
            }
        });
        for r in 0..rows {
            for c in 0..cols {
                assert_eq!(buf[r * cols + c], r as f32, "row {r} col {c}");
            }
        }
    }

    #[test]
    fn par_map_preserves_order() {
        let v = par_map(100, |i| i * i);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i * i);
        }
    }

    #[test]
    fn thread_override_roundtrip() {
        set_num_threads(3);
        assert_eq!(num_threads(), 3);
        set_num_threads(0);
        assert!(num_threads() >= 1);
    }

    #[test]
    fn par_map_empty() {
        let v: Vec<usize> = par_map(0, |i| i);
        assert!(v.is_empty());
    }
}
