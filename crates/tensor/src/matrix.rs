//! Dense row-major `f32` matrix with the raw kernels used by the autodiff
//! tape: matmul (all transpose variants), broadcasting adds, element-wise
//! maps, and segment (scatter/gather) operations for graph attention.
//!
//! All shapes are `(rows, cols)`.
//!
//! # Matmul design
//!
//! The three matmul variants (`nn`, `nt`, `tn`) share one cache-blocked
//! GEBP-style implementation (the private `gemm` driver), blocked for
//! the whole cache hierarchy:
//!
//! 1. **`jc`/[`NC`] column blocking.** The outermost loop walks B in
//!    slices of `NC` columns so the packed KC×NC slice stays
//!    L2-resident — without it the full packed B (4 MB at 1024²) is
//!    re-streamed per row block and throughput falls off past the L2
//!    size. `NC` is a multiple of every kernel's panel width.
//! 2. **Pack the B slice.** The slice is repacked into column panels of
//!    the active kernel's `NR`: `bpack[panel][kk][nr]`. Each of the
//!    three variants only differs in its packing loop, which absorbs
//!    the transpose — the hot loop never sees a stride.
//! 3. **[`KC`] k-blocking + row-split in parallel.** Within each KC
//!    slice the output rows are split across the persistent worker pool
//!    ([`crate::parallel::par_chunks_mut`]); the packed B is shared
//!    read-only by all workers.
//! 4. **Microkernel.** Each worker walks its rows in blocks of the
//!    kernel's `MR`, packs the corresponding A block (`apack[kk][mr]`,
//!    again absorbing the `tn` transpose), and computes an `MR`×`NR`
//!    register tile per B panel. Fringes are handled by zero-padding
//!    the packs and masking the write-back (the AVX-512 kernel masks
//!    loads/stores on C directly).
//!
//! # Microkernel dispatch
//!
//! The inner tile has three implementations behind one contract
//! (`acc += Ablock @ Bpanel` over packed operands), listed by
//! [`available_microkernels`] fastest-first and selected at runtime
//! with `is_x86_feature_detected!`:
//!
//! - **AVX-512** ([`MicrokernelKind::Avx512`]): 8×32 tile in 16 ZMM
//!   accumulators, masked loads/stores for row/column fringes.
//! - **AVX2+FMA** ([`MicrokernelKind::Avx2Fma`]): the 4×16 tile held in
//!   8 YMM accumulators, one broadcast + two FMAs per row per `kk`
//!   step, and software prefetch of the B panel.
//! - **Portable** ([`MicrokernelKind::Portable`]): `MR*NR` scalar
//!   accumulators that the auto-vectoriser keeps in vector registers.
//!   Always available.
//!
//! [`active_microkernel`] reports the calling thread's pick, and
//! [`force_microkernel`] returns an RAII guard pinning the thread to
//! any level (parity tests and A/B benchmarks).
//!
//! Every kernel accumulates each output element in a single register in
//! ascending-k order, so the two FMA kernels agree **bitwise** with
//! each other on any data; against portable they differ by at most the
//! FMA contraction (one rounding instead of two per multiply-add), so
//! results agree bitwise on integer data and to ~`sqrt(k)` ULP on
//! fractional data; see the `simd_matmul_matches_portable*` and
//! `fma_kernels_agree_*` parity tests.
//!
//! Packing scratch lives in thread-locals, so steady-state training does
//! not allocate per matmul call. Small products (`m*k*n < `[`TILE_THRESHOLD`])
//! skip packing entirely and use the naive ikj loops (`matmul_*_naive`),
//! which are also kept public as the reference implementation for the
//! parity property tests and as the benchmark baseline.

use crate::parallel::{par_chunks_mut, PAR_THRESHOLD};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::fmt;

/// Dense row-major matrix of `f32`.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 64 {
            for r in 0..self.rows {
                write!(f, "\n  {:?}", &self.row(r))?;
            }
        }
        Ok(())
    }
}

impl Matrix {
    /// All-zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled with a constant.
    pub fn full(rows: usize, cols: usize, v: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![v; rows * cols],
        }
    }

    /// Build from a flat row-major buffer. Panics if the length mismatches.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "from_vec: shape/buffer mismatch");
        Matrix { rows, cols, data }
    }

    /// Build from a closure evaluated at each `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// A 1x1 matrix holding a scalar.
    pub fn scalar(v: f32) -> Self {
        Matrix::from_vec(1, 1, vec![v])
    }

    /// Identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major view of the data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major view of the data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at `(r, c)` (bounds-checked in debug builds only).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Overwrite the element at `(r, c)` (bounds-checked in debug builds
    /// only).
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow one row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow one row as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The value of a 1x1 matrix.
    pub fn item(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "item() on non-scalar matrix");
        self.data[0]
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// In-place element-wise map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise combine with another matrix of identical shape.
    pub fn zip(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "zip: shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Element-wise map written into a pre-shaped output (scratch reuse).
    pub fn map_into(&self, f: impl Fn(f32) -> f32, out: &mut Matrix) {
        assert_eq!(self.shape(), out.shape(), "map_into: shape mismatch");
        for (o, &x) in out.data.iter_mut().zip(&self.data) {
            *o = f(x);
        }
    }

    /// Element-wise combine written into a pre-shaped output (scratch reuse).
    pub fn zip_into(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32, out: &mut Matrix) {
        assert_eq!(self.shape(), other.shape(), "zip_into: shape mismatch");
        assert_eq!(self.shape(), out.shape(), "zip_into: bad output shape");
        for ((o, &a), &b) in out.data.iter_mut().zip(&self.data).zip(&other.data) {
            *o = f(a, b);
        }
    }

    /// `self += other` element-wise.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += *b;
        }
    }

    /// `self += alpha * other` element-wise (axpy).
    pub fn add_scaled(&mut self, other: &Matrix, alpha: f32) {
        assert_eq!(self.shape(), other.shape(), "add_scaled: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * *b;
        }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Sum of all elements (accumulated in f64 for stability).
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&x| x as f64).sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data
            .iter()
            .map(|&x| (x as f64) * (x as f64))
            .sum::<f64>()
            .sqrt()
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// `C = A @ B` (no transposes).
    pub fn matmul(&self, b: &Matrix) -> Matrix {
        matmul_nn(self, b)
    }
}

/// Register-tile height of the portable and AVX2 tiles: rows of A per
/// microkernel invocation. The AVX-512 tile is deeper (see
/// [`MicrokernelKind::geometry`]).
pub const MR: usize = 4;
/// Register-tile width of the portable and AVX2 tiles: columns of B per
/// packed panel. The AVX-512 tile is wider (see
/// [`MicrokernelKind::geometry`]).
pub const NR: usize = 16;
/// Largest register-tile height across all microkernels (the AVX-512
/// tile is `8`×`32`); driver-side scratch is sized for this.
pub const MR_MAX: usize = 8;
/// Largest register-tile width across all microkernels.
pub const NR_MAX: usize = 32;
/// K-dimension block: the `KC`×`NR` B panel slice (16–32 KiB) and the
/// `KC`×`MR` A block (4–8 KiB) stay L1-resident inside the microkernel.
pub const KC: usize = 256;
/// N-dimension block (the GEBP `jc` loop): the driver walks the packed B
/// columns in `NC`-wide slices so one `KC`×`NC` slice (512 KiB at f32)
/// stays L2-resident while every row block of A streams against it.
/// Without this loop the whole packed B (4 MB at 1024²) is re-pulled from
/// L3 per `MR`-row block, which is exactly the ~60 → ~35 GFLOP/s falloff
/// the ROADMAP's "kernel ceiling" item describes. `NC` is a multiple of
/// every kernel's panel width, so panel boundaries never straddle a slice.
pub const NC: usize = 512;
/// Products with fewer than this many fused multiply-adds use the naive
/// loops; below it, packing costs more than it saves.
pub const TILE_THRESHOLD: usize = 16 * 16 * 16;

thread_local! {
    /// Per-thread scratch for the packed B panels (caller side).
    static PACK_B: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    /// Per-thread scratch for the packed A block (worker side).
    static PACK_A: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Take a thread-local scratch buffer. Take/put (instead of holding a
/// borrow across the computation) keeps this safe under the pool's
/// caller-helps policy, where a thread waiting in one gemm can execute an
/// unrelated task that itself enters gemm: the nested call simply finds an
/// empty buffer and allocates its own.
fn take_scratch(cell: &'static std::thread::LocalKey<RefCell<Vec<f32>>>) -> Vec<f32> {
    cell.with(|c| c.take())
}

fn put_scratch(cell: &'static std::thread::LocalKey<RefCell<Vec<f32>>>, buf: Vec<f32>) {
    cell.with(|c| {
        let mut slot = c.borrow_mut();
        if slot.capacity() < buf.capacity() {
            *slot = buf;
        }
    });
}

/// Which operand layout [`gemm`] reads its inputs in. `B` is always packed
/// by panel before the parallel region; `A` is packed per row-block inside
/// the microkernel driver, so the transpose variants differ only in their
/// packing loops.
#[derive(Clone, Copy)]
enum Layout {
    /// Operand is stored row-major in its mathematical orientation.
    RowMajor,
    /// Operand is stored transposed (`nt` for B, `tn` for A).
    Transposed,
}

/// Pack the B operand into `nr`-wide column panels (the active kernel's
/// panel width), zero-padding the last panel:
/// `bpack[p * k * nr + kk * nr + j] = B[kk, p*nr + j]`.
fn pack_b(b: &[f32], k: usize, n: usize, layout: Layout, nr: usize, out: &mut Vec<f32>) {
    let panels = n.div_ceil(nr);
    out.clear();
    out.resize(panels * k * nr, 0.0);
    match layout {
        Layout::RowMajor => {
            // b is (k, n) row-major
            for kk in 0..k {
                let src = &b[kk * n..(kk + 1) * n];
                for p in 0..panels {
                    let j0 = p * nr;
                    let width = nr.min(n - j0);
                    let dst = &mut out[p * k * nr + kk * nr..p * k * nr + kk * nr + width];
                    dst.copy_from_slice(&src[j0..j0 + width]);
                }
            }
        }
        Layout::Transposed => {
            // b is (n, k) row-major; output column j is b row j
            for p in 0..panels {
                let j0 = p * nr;
                let width = nr.min(n - j0);
                let panel = &mut out[p * k * nr..(p + 1) * k * nr];
                for j in 0..width {
                    let src = &b[(j0 + j) * k..(j0 + j + 1) * k];
                    for (kk, &v) in src.iter().enumerate() {
                        panel[kk * nr + j] = v;
                    }
                }
            }
        }
    }
}

/// Pack an `mr`-row block of A (rows `r0..r0+rows`, inner indices
/// `k0..k0+klen`) for the active kernel's tile height, zero-padding to
/// `mr`: `apack[kk * mr + i] = A[r0 + i, k0 + kk]`.
///
/// `lead` is the leading dimension of the stored buffer: for `RowMajor`
/// (A is `(m, k)`) it is `k`; for `Transposed` (A stored `(k, m)`) it is
/// `m`.
#[inline]
#[allow(clippy::too_many_arguments)]
fn pack_a_block(
    a: &[f32],
    r0: usize,
    rows: usize,
    k0: usize,
    klen: usize,
    lead: usize,
    layout: Layout,
    mr: usize,
    out: &mut [f32],
) {
    debug_assert!(rows <= mr && out.len() >= klen * mr);
    match layout {
        Layout::RowMajor => {
            for i in 0..mr {
                if i < rows {
                    let src = &a[(r0 + i) * lead + k0..(r0 + i) * lead + k0 + klen];
                    for (kk, &v) in src.iter().enumerate() {
                        out[kk * mr + i] = v;
                    }
                } else {
                    for kk in 0..klen {
                        out[kk * mr + i] = 0.0;
                    }
                }
            }
        }
        Layout::Transposed => {
            // a stored (k, m): row kk holds A[kk, :]; the mr block is a
            // contiguous slice of each stored row.
            for kk in 0..klen {
                let src = &a[(k0 + kk) * lead + r0..(k0 + kk) * lead + r0 + rows];
                let dst = &mut out[kk * mr..kk * mr + mr];
                dst[..rows].copy_from_slice(src);
                dst[rows..].fill(0.0);
            }
        }
    }
}

/// The portable `MR`×`NR` register-tile microkernel: `acc += Ablock @
/// Bpanel` over the full `k` extent. With `MR`/`NR` constant the compiler
/// unrolls the inner pair of loops into vector code with `acc` held in
/// registers. This is the reference tile the SIMD path is parity-tested
/// against, and the fallback wherever AVX2+FMA is unavailable.
#[inline(always)]
pub fn microkernel(k: usize, apack: &[f32], bpanel: &[f32], acc: &mut [[f32; NR]; MR]) {
    debug_assert!(apack.len() >= k * MR && bpanel.len() >= k * NR);
    for kk in 0..k {
        let a = &apack[kk * MR..kk * MR + MR];
        let b = &bpanel[kk * NR..kk * NR + NR];
        for mr in 0..MR {
            let av = a[mr];
            for nr in 0..NR {
                acc[mr][nr] += av * b[nr];
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! Explicit AVX2+FMA implementation of the GEBP inner tile.
    //!
    //! The register layout is fixed to the crate's `MR = 4` × `NR = 16`
    //! packing (compile-time asserted below): 8 YMM accumulators (4 rows ×
    //! 2 halves of 8 `f32` lanes), 2 B-row loads and 4 A broadcasts per
    //! `kk` step. That is 11 live YMM registers, comfortably inside the 16
    //! architectural ones, and the 8 FMAs per step keep both FMA ports
    //! busy once the loop is warm.

    use super::{MR, NR};
    use std::arch::x86_64::*;

    // The unrolled body below is written for exactly this tile shape.
    const _: () = assert!(MR == 4 && NR == 16, "avx2 microkernel is 4x16");

    /// Software-prefetch distance in `kk` steps: 8 steps × 64 B per packed
    /// B row = 8 cache lines ahead of the load stream.
    const PREFETCH_K: usize = 8;

    /// AVX2+FMA microkernel; same contract as the portable
    /// [`super::microkernel`]. FMA contracts each multiply-add to a single
    /// rounding, so outputs may differ from the portable tile by a few ULP
    /// (bounded by the accumulation length; see the parity proptests).
    ///
    /// # Safety
    /// The caller must have verified `avx2` and `fma` CPU support, and
    /// guarantee `apack.len() >= k * MR` and `bpanel.len() >= k * NR`.
    // SAFETY: only reachable through the `MicrokernelKind` dispatch in
    // `gemm`, whose `Avx2Fma` arm exists iff `is_x86_feature_detected!`
    // confirmed avx2+fma; slice bounds are the packer's invariant,
    // re-checked by the debug_assert below.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn microkernel(k: usize, apack: &[f32], bpanel: &[f32], acc: &mut [[f32; NR]; MR]) {
        debug_assert!(apack.len() >= k * MR && bpanel.len() >= k * NR);
        let a = apack.as_ptr();
        let b = bpanel.as_ptr();
        let mut c00 = _mm256_loadu_ps(acc[0].as_ptr());
        let mut c01 = _mm256_loadu_ps(acc[0].as_ptr().add(8));
        let mut c10 = _mm256_loadu_ps(acc[1].as_ptr());
        let mut c11 = _mm256_loadu_ps(acc[1].as_ptr().add(8));
        let mut c20 = _mm256_loadu_ps(acc[2].as_ptr());
        let mut c21 = _mm256_loadu_ps(acc[2].as_ptr().add(8));
        let mut c30 = _mm256_loadu_ps(acc[3].as_ptr());
        let mut c31 = _mm256_loadu_ps(acc[3].as_ptr().add(8));
        let mut kk = 0usize;
        while kk + 2 <= k {
            // Prefetching past the end of the panel is harmless at the
            // hardware level; wrapping_add keeps the address computation
            // itself free of out-of-bounds-pointer UB.
            _mm_prefetch(
                b.wrapping_add((kk + PREFETCH_K) * NR) as *const i8,
                _MM_HINT_T0,
            );
            let b0 = _mm256_loadu_ps(b.add(kk * NR));
            let b1 = _mm256_loadu_ps(b.add(kk * NR + 8));
            let a0 = _mm256_broadcast_ss(&*a.add(kk * MR));
            c00 = _mm256_fmadd_ps(a0, b0, c00);
            c01 = _mm256_fmadd_ps(a0, b1, c01);
            let a1 = _mm256_broadcast_ss(&*a.add(kk * MR + 1));
            c10 = _mm256_fmadd_ps(a1, b0, c10);
            c11 = _mm256_fmadd_ps(a1, b1, c11);
            let a2 = _mm256_broadcast_ss(&*a.add(kk * MR + 2));
            c20 = _mm256_fmadd_ps(a2, b0, c20);
            c21 = _mm256_fmadd_ps(a2, b1, c21);
            let a3 = _mm256_broadcast_ss(&*a.add(kk * MR + 3));
            c30 = _mm256_fmadd_ps(a3, b0, c30);
            c31 = _mm256_fmadd_ps(a3, b1, c31);
            let b0 = _mm256_loadu_ps(b.add((kk + 1) * NR));
            let b1 = _mm256_loadu_ps(b.add((kk + 1) * NR + 8));
            let a0 = _mm256_broadcast_ss(&*a.add((kk + 1) * MR));
            c00 = _mm256_fmadd_ps(a0, b0, c00);
            c01 = _mm256_fmadd_ps(a0, b1, c01);
            let a1 = _mm256_broadcast_ss(&*a.add((kk + 1) * MR + 1));
            c10 = _mm256_fmadd_ps(a1, b0, c10);
            c11 = _mm256_fmadd_ps(a1, b1, c11);
            let a2 = _mm256_broadcast_ss(&*a.add((kk + 1) * MR + 2));
            c20 = _mm256_fmadd_ps(a2, b0, c20);
            c21 = _mm256_fmadd_ps(a2, b1, c21);
            let a3 = _mm256_broadcast_ss(&*a.add((kk + 1) * MR + 3));
            c30 = _mm256_fmadd_ps(a3, b0, c30);
            c31 = _mm256_fmadd_ps(a3, b1, c31);
            kk += 2;
        }
        if kk < k {
            let b0 = _mm256_loadu_ps(b.add(kk * NR));
            let b1 = _mm256_loadu_ps(b.add(kk * NR + 8));
            let a0 = _mm256_broadcast_ss(&*a.add(kk * MR));
            c00 = _mm256_fmadd_ps(a0, b0, c00);
            c01 = _mm256_fmadd_ps(a0, b1, c01);
            let a1 = _mm256_broadcast_ss(&*a.add(kk * MR + 1));
            c10 = _mm256_fmadd_ps(a1, b0, c10);
            c11 = _mm256_fmadd_ps(a1, b1, c11);
            let a2 = _mm256_broadcast_ss(&*a.add(kk * MR + 2));
            c20 = _mm256_fmadd_ps(a2, b0, c20);
            c21 = _mm256_fmadd_ps(a2, b1, c21);
            let a3 = _mm256_broadcast_ss(&*a.add(kk * MR + 3));
            c30 = _mm256_fmadd_ps(a3, b0, c30);
            c31 = _mm256_fmadd_ps(a3, b1, c31);
        }
        _mm256_storeu_ps(acc[0].as_mut_ptr(), c00);
        _mm256_storeu_ps(acc[0].as_mut_ptr().add(8), c01);
        _mm256_storeu_ps(acc[1].as_mut_ptr(), c10);
        _mm256_storeu_ps(acc[1].as_mut_ptr().add(8), c11);
        _mm256_storeu_ps(acc[2].as_mut_ptr(), c20);
        _mm256_storeu_ps(acc[2].as_mut_ptr().add(8), c21);
        _mm256_storeu_ps(acc[3].as_mut_ptr(), c30);
        _mm256_storeu_ps(acc[3].as_mut_ptr().add(8), c31);
    }
}

#[cfg(target_arch = "x86_64")]
mod avx512 {
    //! Explicit AVX-512F implementation of the GEBP inner tile.
    //!
    //! The tile is `8`×`32`: 16 ZMM accumulators (8 rows × 2 vectors of
    //! 16 `f32` lanes), 2 B-row loads and 8 A broadcasts per `kk` step —
    //! 19 live ZMM registers of the 32 architectural ones. Unlike the
    //! AVX2 path (which accumulates into a caller-held scratch tile),
    //! this kernel reads and writes the output tile directly with
    //! **masked** loads/stores, so row and column fringes never take a
    //! scalar copy loop: a `width`-column fringe is two `__mmask16`
    //! masks, a `rows`-row fringe just skips the trailing row transfers
    //! (padded A rows still compute, against zeros).
    //!
    //! Per output element the accumulation is one FMA per `kk` in
    //! ascending order — the **same** single-rounding sequence as the
    //! AVX2 kernel — so for identical blocking the two produce
    //! bit-identical results (asserted by the cross-ISA proptests).

    use super::{MR_MAX, NR_MAX};
    use std::arch::x86_64::*;

    // The body below is written for exactly this tile shape.
    const _: () = assert!(MR_MAX == 8 && NR_MAX == 32, "avx512 microkernel is 8x32");

    /// Software-prefetch distance in `kk` steps (128 B of packed B per
    /// step = 2 cache lines, so this runs 16 lines ahead).
    const PREFETCH_K: usize = 8;

    /// Compute one `rows`×`width` output tile: `C[.., ..] += Ablock @
    /// Bpanel` over `k` inner steps, where `c` points at the tile's
    /// top-left element inside a row-major buffer with leading dimension
    /// `ldc`. When `first_k` is set the accumulators start at zero
    /// instead of loading `C` (the `k0 == 0` block of the driver).
    ///
    /// # Safety
    /// The caller must have verified `avx512f` CPU support and guarantee
    /// `apack.len() >= k * MR_MAX`, `bpanel.len() >= k * NR_MAX`, and
    /// that `c` addresses `rows` rows of at least `width` valid elements
    /// at stride `ldc`.
    // SAFETY: only reachable through the `MicrokernelKind` dispatch in
    // `gemm`, whose `Avx512` arm exists iff `is_x86_feature_detected!`
    // confirmed avx512f; the pack/tile geometry the pointer math relies
    // on is established by the blocked driver around the call.
    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn run_tile(
        k: usize,
        apack: &[f32],
        bpanel: &[f32],
        c: *mut f32,
        ldc: usize,
        rows: usize,
        width: usize,
        first_k: bool,
    ) {
        debug_assert!(apack.len() >= k * MR_MAX && bpanel.len() >= k * NR_MAX);
        debug_assert!(rows <= MR_MAX && width <= NR_MAX);
        let m0: __mmask16 = ((1u32 << width.min(16)) - 1) as __mmask16;
        let m1: __mmask16 = if width > 16 {
            ((1u32 << (width - 16)) - 1) as __mmask16
        } else {
            0
        };
        let zero = _mm512_setzero_ps();
        let mut acc = [[zero; 2]; MR_MAX];
        if !first_k {
            for (r, acc_row) in acc.iter_mut().enumerate().take(rows) {
                acc_row[0] = _mm512_maskz_loadu_ps(m0, c.add(r * ldc));
                acc_row[1] = _mm512_maskz_loadu_ps(m1, c.add(r * ldc + 16));
            }
        }
        let a = apack.as_ptr();
        let b = bpanel.as_ptr();
        for kk in 0..k {
            // Prefetching past the end of the panel is harmless at the
            // hardware level; wrapping_add keeps the address computation
            // itself free of out-of-bounds-pointer UB.
            _mm_prefetch(
                b.wrapping_add((kk + PREFETCH_K) * NR_MAX) as *const i8,
                _MM_HINT_T0,
            );
            let b0 = _mm512_loadu_ps(b.add(kk * NR_MAX));
            let b1 = _mm512_loadu_ps(b.add(kk * NR_MAX + 16));
            for (r, acc_row) in acc.iter_mut().enumerate() {
                let ar = _mm512_set1_ps(*a.add(kk * MR_MAX + r));
                acc_row[0] = _mm512_fmadd_ps(ar, b0, acc_row[0]);
                acc_row[1] = _mm512_fmadd_ps(ar, b1, acc_row[1]);
            }
        }
        for (r, acc_row) in acc.iter().enumerate().take(rows) {
            _mm512_mask_storeu_ps(c.add(r * ldc), m0, acc_row[0]);
            _mm512_mask_storeu_ps(c.add(r * ldc + 16), m1, acc_row[1]);
        }
    }
}

/// Microkernel implementations the GEBP driver can dispatch to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MicrokernelKind {
    /// The auto-vectorised scalar tile ([`microkernel`]). Always available
    /// and the only option off `x86_64`.
    Portable,
    /// Explicit AVX2+FMA intrinsics (4×16 tile) with software prefetch;
    /// selected at runtime when the CPU reports both features.
    Avx2Fma,
    /// Explicit AVX-512F intrinsics (8×32 tile, masked fringes); preferred
    /// over AVX2 when the CPU reports `avx512f`.
    Avx512,
}

impl MicrokernelKind {
    /// Short stable name for logs and bench snapshots.
    pub fn name(self) -> &'static str {
        match self {
            MicrokernelKind::Portable => "portable",
            MicrokernelKind::Avx2Fma => "avx2_fma",
            MicrokernelKind::Avx512 => "avx512",
        }
    }

    /// Register-tile geometry `(mr, nr)` of this kernel: A rows per
    /// microkernel invocation × packed-B panel width. The driver packs
    /// both operands to match the **active** kernel's geometry.
    pub fn geometry(self) -> (usize, usize) {
        match self {
            MicrokernelKind::Portable | MicrokernelKind::Avx2Fma => (MR, NR),
            MicrokernelKind::Avx512 => (MR_MAX, NR_MAX),
        }
    }

    /// Whether the running CPU can execute this kernel.
    pub fn is_available(self) -> bool {
        match self {
            MicrokernelKind::Portable => true,
            #[cfg(target_arch = "x86_64")]
            MicrokernelKind::Avx2Fma => {
                is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
            }
            #[cfg(target_arch = "x86_64")]
            MicrokernelKind::Avx512 => is_x86_feature_detected!("avx512f"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }
}

/// Every microkernel the running CPU can execute, fastest first — the
/// order [`active_microkernel`] prefers them in. The list always ends
/// with [`MicrokernelKind::Portable`], so a per-ISA parity sweep over it
/// (the CI bench-smoke does one) necessarily exercises the portable
/// fallback path.
pub fn available_microkernels() -> Vec<MicrokernelKind> {
    let mut kinds = Vec::with_capacity(3);
    if MicrokernelKind::Avx512.is_available() {
        kinds.push(MicrokernelKind::Avx512);
    }
    if MicrokernelKind::Avx2Fma.is_available() {
        kinds.push(MicrokernelKind::Avx2Fma);
    }
    kinds.push(MicrokernelKind::Portable);
    kinds
}

thread_local! {
    /// Per-thread dispatch override installed by [`force_microkernel`].
    static FORCED_KERNEL: std::cell::Cell<Option<MicrokernelKind>> =
        const { std::cell::Cell::new(None) };
}

/// Which microkernel [`matmul_nn`]/[`matmul_nt`]/[`matmul_tn`] dispatch
/// to on **this thread** right now: a [`force_microkernel`] override if
/// one is in scope, else the best kernel the CPU supports. Feature
/// detection is cached by the standard library, so this is cheap enough
/// to consult per `gemm` call.
///
/// `gemm` resolves the kernel once on the calling thread and the pool
/// workers inherit that choice, so a thread-local override covers the
/// whole parallel computation it scopes.
pub fn active_microkernel() -> MicrokernelKind {
    if let Some(kind) = FORCED_KERNEL.with(|c| c.get()) {
        return kind;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if MicrokernelKind::Avx512.is_available() {
            return MicrokernelKind::Avx512;
        }
        if MicrokernelKind::Avx2Fma.is_available() {
            return MicrokernelKind::Avx2Fma;
        }
    }
    MicrokernelKind::Portable
}

/// Scoped dispatch override for A/B benchmarking and the kernel-parity
/// tests: while the returned guard lives, [`active_microkernel`] on this
/// thread reports `kind`; dropping the guard restores whatever was in
/// effect before (guards nest). The override is **thread-local**, so a
/// parity test pinning the portable kernel cannot leak its choice into
/// concurrently running tests — the leak the old process-global
/// set/unset hook permitted.
///
/// Panics if `kind` is not executable on this CPU
/// ([`MicrokernelKind::is_available`]); probe before forcing when
/// sweeping ISA levels.
#[must_use = "the override ends when the guard is dropped"]
pub fn force_microkernel(kind: MicrokernelKind) -> ForceMicrokernelGuard {
    assert!(
        kind.is_available(),
        "cannot force the {} microkernel: this CPU does not support it",
        kind.name()
    );
    let prev = FORCED_KERNEL.with(|c| c.replace(Some(kind)));
    ForceMicrokernelGuard {
        prev,
        _not_send: std::marker::PhantomData,
    }
}

/// RAII guard of a [`force_microkernel`] override; restores the previous
/// dispatch state (panic-safe) when dropped.
#[derive(Debug)]
pub struct ForceMicrokernelGuard {
    prev: Option<MicrokernelKind>,
    /// `!Send`: the override lives in this thread's slot; restoring it
    /// from another thread would unwind the wrong state.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for ForceMicrokernelGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        FORCED_KERNEL.with(|c| c.set(prev));
    }
}

/// Shared tiled GEMM driver: `out = opA(A) @ opB(B)` with `out` of shape
/// `(m, n)` and inner dimension `k`. Packs B once in the active kernel's
/// panel geometry, then splits output rows across the worker pool; each
/// worker walks the full GEBP loop nest `jc (NC) → k0 (KC) → row block
/// (mr) → panel (nr)` over its rows.
///
/// Per output element the accumulation order is: ascending `k0` blocks,
/// one `f32` store/reload of the partial between blocks, one FMA (or
/// mul+add on the portable tile) per `kk` inside a block. That order is
/// invariant under the `jc`/`NC` blocking — elements are independent and
/// each still sees exactly the same arithmetic sequence — so adding the
/// NC loop changed no bits of any result (parity-proptested).
#[allow(clippy::too_many_arguments)]
fn gemm(
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    a_layout: Layout,
    b: &[f32],
    b_layout: Layout,
) {
    if m == 0 || n == 0 {
        return;
    }
    let a_lead = match a_layout {
        Layout::RowMajor => k,
        Layout::Transposed => m,
    };
    // Resolve the microkernel once per call; the workers inherit the copy
    // (so a thread-local force_microkernel override on the caller covers
    // the whole parallel region), and the packing matches its geometry.
    let kernel = active_microkernel();
    let (mr, nr) = kernel.geometry();
    let mut pb = take_scratch(&PACK_B);
    pack_b(b, k, n, b_layout, nr, &mut pb);
    let bpack: &[f32] = &pb;
    let body = |r0: usize, chunk: &mut [f32]| {
        let rows_here = chunk.len() / n;
        let mut pa = take_scratch(&PACK_A);
        pa.clear();
        pa.resize(KC.min(k) * mr, 0.0);
        // jc/NC outer loop: one KC×NC slice of packed B (512 KiB) stays
        // L2-resident while every row block below streams against it.
        // The A block is repacked once per (jc, k0) pass — O(m·k·n/NC)
        // extra packing work, noise against the O(m·k·n) FMAs it buys
        // L2-resident B for.
        let mut jc = 0usize;
        while jc < n {
            let jcw = NC.min(n - jc);
            let mut k0 = 0usize;
            while k0 < k {
                let klen = KC.min(k - k0);
                let mut i0 = 0usize;
                while i0 < rows_here {
                    let rows = mr.min(rows_here - i0);
                    pack_a_block(a, r0 + i0, rows, k0, klen, a_lead, a_layout, mr, &mut pa);
                    let mut j0 = jc;
                    while j0 < jc + jcw {
                        let width = nr.min(n - j0);
                        // jc is NC-aligned and NC % nr == 0, so panel
                        // boundaries never straddle a jc slice.
                        let p = j0 / nr;
                        let bpanel = &bpack[p * k * nr + k0 * nr..p * k * nr + (k0 + klen) * nr];
                        match kernel {
                            #[cfg(target_arch = "x86_64")]
                            // SAFETY: Avx512 is only dispatched after
                            // runtime detection of avx512f; the tile
                            // pointer addresses `rows` rows of `width`
                            // valid elements at stride n, and the pack
                            // lengths are maintained above.
                            MicrokernelKind::Avx512 => unsafe {
                                avx512::run_tile(
                                    klen,
                                    &pa,
                                    bpanel,
                                    chunk[i0 * n + j0..].as_mut_ptr(),
                                    n,
                                    rows,
                                    width,
                                    k0 == 0,
                                )
                            },
                            _ => {
                                let mut acc = [[0.0f32; NR]; MR];
                                if k0 > 0 {
                                    for r in 0..rows {
                                        let src =
                                            &chunk[(i0 + r) * n + j0..(i0 + r) * n + j0 + width];
                                        acc[r][..width].copy_from_slice(src);
                                    }
                                }
                                match kernel {
                                    #[cfg(target_arch = "x86_64")]
                                    // SAFETY: Avx2Fma is only dispatched
                                    // after runtime detection of avx2+fma;
                                    // pack lengths are maintained above.
                                    MicrokernelKind::Avx2Fma => unsafe {
                                        avx2::microkernel(klen, &pa, bpanel, &mut acc)
                                    },
                                    _ => microkernel(klen, &pa, bpanel, &mut acc),
                                }
                                for r in 0..rows {
                                    let dst =
                                        &mut chunk[(i0 + r) * n + j0..(i0 + r) * n + j0 + width];
                                    dst.copy_from_slice(&acc[r][..width]);
                                }
                            }
                        }
                        j0 += nr;
                    }
                    i0 += rows;
                }
                k0 += klen;
            }
            jc += jcw;
        }
        put_scratch(&PACK_A, pa);
    };
    if m * k * n >= PAR_THRESHOLD {
        par_chunks_mut(out, n, body);
    } else {
        body(0, out);
    }
    put_scratch(&PACK_B, pb);
}

/// Naive ikj-ordered `C = A @ B` — reference kernel for the parity tests
/// and the baseline the tiled path is benchmarked against.
pub fn matmul_nn_naive(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows, b.cols);
    matmul_nn_naive_into(a, b, &mut out.data);
    out
}

fn matmul_nn_naive_into(a: &Matrix, b: &Matrix, out: &mut [f32]) {
    let (m, k, n) = (a.rows, a.cols, b.cols);
    out.fill(0.0);
    for r in 0..m {
        let out_row = &mut out[r * n..(r + 1) * n];
        let a_row = &a.data[r * k..(r + 1) * k];
        for (kk, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b.data[kk * n..(kk + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// Naive dot-product `C = A @ B^T` — reference kernel for the parity tests.
pub fn matmul_nt_naive(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows, b.rows);
    matmul_nt_naive_into(a, b, &mut out.data);
    out
}

fn matmul_nt_naive_into(a: &Matrix, b: &Matrix, out: &mut [f32]) {
    let (m, k, n) = (a.rows, a.cols, b.rows);
    for r in 0..m {
        let a_row = &a.data[r * k..(r + 1) * k];
        let out_row = &mut out[r * n..(r + 1) * n];
        for (c, o) in out_row.iter_mut().enumerate() {
            let b_row = &b.data[c * k..(c + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            *o = acc;
        }
    }
}

/// Naive k-outer `C = A^T @ B` — reference kernel for the parity tests.
pub fn matmul_tn_naive(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.cols, b.cols);
    matmul_tn_naive_into(a, b, &mut out.data);
    out
}

fn matmul_tn_naive_into(a: &Matrix, b: &Matrix, out: &mut [f32]) {
    let (k, m, n) = (a.rows, a.cols, b.cols);
    out.fill(0.0);
    // out[r, c] = sum_k a[k, r] * b[k, c]; iterate k outer for contiguity.
    for kk in 0..k {
        let a_row = &a.data[kk * m..(kk + 1) * m];
        let b_row = &b.data[kk * n..(kk + 1) * n];
        for (r, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let out_row = &mut out[r * n..(r + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// `C = A @ B`. Shapes: `(m,k) @ (k,n) -> (m,n)`.
pub fn matmul_nn(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows, b.cols);
    matmul_nn_into(a, b, &mut out);
    out
}

/// `C = A @ B` into a pre-shaped output (scratch-reuse path).
pub fn matmul_nn_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(
        a.cols,
        b.rows,
        "matmul_nn: inner dim mismatch {:?} @ {:?}",
        a.shape(),
        b.shape()
    );
    assert_eq!(
        out.shape(),
        (a.rows, b.cols),
        "matmul_nn_into: bad output shape"
    );
    let (m, k, n) = (a.rows, a.cols, b.cols);
    if m * k * n < TILE_THRESHOLD {
        matmul_nn_naive_into(a, b, &mut out.data);
    } else {
        gemm(
            &mut out.data,
            m,
            k,
            n,
            &a.data,
            Layout::RowMajor,
            &b.data,
            Layout::RowMajor,
        );
    }
}

/// `C = A @ B^T`. Shapes: `(m,k) @ (n,k)^T -> (m,n)`.
pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows, b.rows);
    matmul_nt_into(a, b, &mut out);
    out
}

/// `C = A @ B^T` into a pre-shaped output (scratch-reuse path).
pub fn matmul_nt_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(
        a.cols,
        b.cols,
        "matmul_nt: inner dim mismatch {:?} @ {:?}^T",
        a.shape(),
        b.shape()
    );
    assert_eq!(
        out.shape(),
        (a.rows, b.rows),
        "matmul_nt_into: bad output shape"
    );
    let (m, k, n) = (a.rows, a.cols, b.rows);
    if m * k * n < TILE_THRESHOLD {
        matmul_nt_naive_into(a, b, &mut out.data);
    } else {
        gemm(
            &mut out.data,
            m,
            k,
            n,
            &a.data,
            Layout::RowMajor,
            &b.data,
            Layout::Transposed,
        );
    }
}

/// `C = A^T @ B`. Shapes: `(k,m)^T @ (k,n) -> (m,n)`.
pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.cols, b.cols);
    matmul_tn_into(a, b, &mut out);
    out
}

/// `C = A^T @ B` into a pre-shaped output (scratch-reuse path).
pub fn matmul_tn_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(
        a.rows,
        b.rows,
        "matmul_tn: inner dim mismatch {:?}^T @ {:?}",
        a.shape(),
        b.shape()
    );
    assert_eq!(
        out.shape(),
        (a.cols, b.cols),
        "matmul_tn_into: bad output shape"
    );
    let (k, m, n) = (a.rows, a.cols, b.cols);
    if m * k * n < TILE_THRESHOLD {
        matmul_tn_naive_into(a, b, &mut out.data);
    } else {
        gemm(
            &mut out.data,
            m,
            k,
            n,
            &a.data,
            Layout::Transposed,
            &b.data,
            Layout::RowMajor,
        );
    }
}

/// Row-gather: `out[i, :] = x[idx[i], :]`.
pub fn gather_rows(x: &Matrix, idx: &[u32]) -> Matrix {
    let mut out = Matrix::zeros(idx.len(), x.cols);
    gather_rows_into(x, idx, &mut out);
    out
}

/// [`gather_rows`] into a pre-shaped output (scratch-reuse path). Every
/// output element is overwritten.
pub fn gather_rows_into(x: &Matrix, idx: &[u32], out: &mut Matrix) {
    let cols = x.cols;
    assert_eq!(
        out.shape(),
        (idx.len(), cols),
        "gather_rows_into: bad output shape"
    );
    for (i, &r) in idx.iter().enumerate() {
        let r = r as usize;
        debug_assert!(
            r < x.rows,
            "gather_rows: index {} out of {} rows",
            r,
            x.rows
        );
        out.data[i * cols..(i + 1) * cols].copy_from_slice(&x.data[r * cols..(r + 1) * cols]);
    }
}

/// Row-scatter-add: `out[idx[i], :] += x[i, :]` into a zero matrix with
/// `out_rows` rows. Inverse (adjoint) of [`gather_rows`].
pub fn scatter_add_rows(x: &Matrix, idx: &[u32], out_rows: usize) -> Matrix {
    let mut out = Matrix::zeros(out_rows, x.cols);
    scatter_add_rows_into(x, idx, &mut out);
    out
}

/// [`scatter_add_rows`] into a pre-shaped output (scratch-reuse path).
/// Zeroes `out` before accumulating.
pub fn scatter_add_rows_into(x: &Matrix, idx: &[u32], out: &mut Matrix) {
    assert_eq!(x.rows, idx.len(), "scatter_add_rows: row/index mismatch");
    let cols = x.cols;
    assert_eq!(out.cols, cols, "scatter_add_rows_into: col mismatch");
    out.data.fill(0.0);
    let out_rows = out.rows;
    for (i, &r) in idx.iter().enumerate() {
        let r = r as usize;
        debug_assert!(r < out_rows);
        let dst = &mut out.data[r * cols..(r + 1) * cols];
        let src = &x.data[i * cols..(i + 1) * cols];
        for (d, s) in dst.iter_mut().zip(src) {
            *d += *s;
        }
    }
}

/// Fast `e^x` for `f32`: range-reduced `2^z` with a degree-7 polynomial
/// for the fraction, evaluated in FMAs that the compiler auto-vectorises
/// (unlike libm's `expf`, which is an opaque scalar call in every softmax
/// inner loop). Relative error is ≤ ~2e-6 over the clamped domain
/// `[-87.3, 88.7]`; inputs outside saturate to 0 / f32::MAX-ish rather
/// than overflowing the bit trick. NaN inputs produce unspecified finite
/// garbage (softmax on NaN logits is already meaningless; callers guard
/// with `has_non_finite`).
#[inline(always)]
pub fn fast_exp(x: f32) -> f32 {
    const LOG2_E: f32 = std::f32::consts::LOG2_E;
    // ln(2)^k / k! for the Taylor expansion of 2^f = e^(f ln 2)
    const C1: f32 = std::f32::consts::LN_2;
    #[allow(clippy::excessive_precision)]
    const C2: f32 = 0.240_226_506_9;
    const C3: f32 = 0.055_504_11;
    const C4: f32 = 0.009_618_13;
    #[allow(clippy::excessive_precision)]
    const C5: f32 = 0.001_333_355_8;
    #[allow(clippy::excessive_precision)]
    const C6: f32 = 0.000_154_035_3;
    #[allow(clippy::excessive_precision)]
    const C7: f32 = 0.000_015_252_73;
    let x = x.clamp(-87.3, 88.7);
    let z = x * LOG2_E;
    let zf = z.floor();
    let f = z - zf;
    let p = 1.0 + f * (C1 + f * (C2 + f * (C3 + f * (C4 + f * (C5 + f * (C6 + f * C7))))));
    let scale = f32::from_bits((((zf as i32) + 127) << 23) as u32);
    scale * p
}

/// Scalar reference implementation of [`segment_softmax`]: per-edge
/// segment-indexed passes with f64 denominators. Kept as the parity
/// baseline for the vectorised path (same role
/// [`softmax_rows_naive`] plays for [`softmax_rows`]); the proptests
/// assert the two agree within tolerance over random segment layouts.
pub fn segment_softmax_naive(scores: &Matrix, seg: &[u32], n_segments: usize) -> Matrix {
    assert_eq!(scores.cols, 1, "segment_softmax expects a column vector");
    assert_eq!(scores.rows, seg.len());
    let mut max = vec![f32::NEG_INFINITY; n_segments];
    for (i, &s) in seg.iter().enumerate() {
        let v = scores.data[i];
        let m = &mut max[s as usize];
        if v > *m {
            *m = v;
        }
    }
    let mut out = Matrix::zeros(scores.rows, 1);
    let mut denom = vec![0.0f64; n_segments];
    for (i, &s) in seg.iter().enumerate() {
        let e = fast_exp(scores.data[i] - max[s as usize]);
        out.data[i] = e;
        denom[s as usize] += e as f64;
    }
    for (i, &s) in seg.iter().enumerate() {
        let d = denom[s as usize];
        out.data[i] = if d > 0.0 {
            (out.data[i] as f64 / d) as f32
        } else {
            0.0
        };
    }
    out
}

/// True if `seg` is non-decreasing, i.e. already in sort-by-segment
/// layout. The attention encoder's destination segments are emitted
/// grouped per target, so the hot path takes the no-permutation branch.
fn seg_is_sorted(seg: &[u32]) -> bool {
    seg.windows(2).all(|w| w[0] <= w[1])
}

/// Unsorted-layout softmax via per-segment accumulators. Permuting the
/// edge arrays into sort-by-segment order was measured slower than the
/// scalar reference at 2×10⁶ edges — the counting-sort gathers and
/// scatters are random accesses over *edge*-sized arrays — so instead
/// the edge arrays stream sequentially three times and only the
/// `n_segments`-sized max/sum accumulators (typically orders of
/// magnitude smaller and cache-resident) take random hits: a max fold,
/// a [`fast_exp`] pass accumulating the f64 denominator, and a
/// normalising pass through precomputed inverses.
fn softmax_accum(x: &[f32], seg: &[u32], n_segments: usize, out: &mut [f32]) {
    let mut maxs = vec![f32::NEG_INFINITY; n_segments];
    for (&v, &s) in x.iter().zip(seg) {
        let m = &mut maxs[s as usize];
        if v > *m {
            *m = v;
        }
    }
    let mut sums = vec![0.0f64; n_segments];
    for (o, (&v, &s)) in out.iter_mut().zip(x.iter().zip(seg)) {
        let e = fast_exp(v - maxs[s as usize]);
        *o = e;
        sums[s as usize] += e as f64;
    }
    let invs: Vec<f32> = sums
        .iter()
        .map(|&d| if d > 0.0 { (1.0 / d) as f32 } else { 0.0 })
        .collect();
    for (o, &s) in out.iter_mut().zip(seg) {
        *o *= invs[s as usize];
    }
}

/// Blocked per-run softmax over values already in sort-by-segment
/// layout: for each contiguous run of one segment, a max fold, a
/// [`fast_exp`] pass, and a [`lane_sum`] denominator — the same three
/// vectorisable passes as [`softmax_rows`], applied to variable-length
/// runs instead of fixed-width rows.
fn softmax_runs_inplace(vals: &mut [f32], seg: &[u32]) {
    let n = vals.len();
    let mut lo = 0usize;
    while lo < n {
        let s = seg[lo];
        let mut hi = lo + 1;
        while hi < n && seg[hi] == s {
            hi += 1;
        }
        let run = &mut vals[lo..hi];
        let max = run.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        for v in run.iter_mut() {
            *v = fast_exp(*v - max);
        }
        let denom = lane_sum(run);
        if denom > 0.0 {
            let inv = (1.0 / denom) as f32;
            for v in run.iter_mut() {
                *v *= inv;
            }
        } else {
            run.fill(0.0);
        }
        lo = hi;
    }
}

/// Softmax within segments. `scores` is a column vector (Ex1); `seg[i]`
/// names the segment of row `i`. Rows of the same segment are normalised
/// together with the max-subtraction trick. Returns a column vector.
///
/// This is the edge-softmax of graph attention: segments are destination
/// nodes, rows are incoming edges. Already-sorted segments (the encoder
/// emits them grouped by target) are processed as contiguous runs with
/// blocked max/exp/sum passes; unsorted layouts take the streaming
/// accumulator fallback (`softmax_accum`). Agrees with the scalar
/// [`segment_softmax_naive`] within a few ULP (the denominator is
/// lane-summed and applied as one `f32` inverse, the trade
/// [`softmax_rows`] already makes).
pub fn segment_softmax(scores: &Matrix, seg: &[u32], n_segments: usize) -> Matrix {
    assert_eq!(scores.cols, 1, "segment_softmax expects a column vector");
    assert_eq!(scores.rows, seg.len());
    let mut out = Matrix::zeros(scores.rows, 1);
    if seg_is_sorted(seg) {
        out.data.copy_from_slice(&scores.data);
        softmax_runs_inplace(&mut out.data, seg);
    } else {
        softmax_accum(&scores.data, seg, n_segments, &mut out.data);
    }
    out
}

/// 8-lane partial dot product (f32 lanes, f64 total) — [`lane_sum`]'s
/// summation order applied to an elementwise product.
#[inline]
fn lane_dot(a: &[f32], b: &[f32]) -> f64 {
    let mut lanes = [0.0f32; 8];
    let mut ac = a.chunks_exact(8);
    let mut bc = b.chunks_exact(8);
    for (ca, cb) in (&mut ac).zip(&mut bc) {
        for ((l, &x), &y) in lanes.iter_mut().zip(ca).zip(cb) {
            *l += x * y;
        }
    }
    lanes.iter().map(|&l| l as f64).sum::<f64>()
        + ac.remainder()
            .iter()
            .zip(bc.remainder())
            .map(|(&x, &y)| (x * y) as f64)
            .sum::<f64>()
}

/// Per-run backward pass over sort-by-segment layouts:
/// `out[j] = y[j] * (g[j] - dot_run)` with the run dot lane-summed.
fn segment_softmax_backward_runs(y: &[f32], g: &[f32], seg: &[u32], out: &mut [f32]) {
    let n = y.len();
    let mut lo = 0usize;
    while lo < n {
        let s = seg[lo];
        let mut hi = lo + 1;
        while hi < n && seg[hi] == s {
            hi += 1;
        }
        let dot = lane_dot(&g[lo..hi], &y[lo..hi]) as f32;
        for j in lo..hi {
            out[j] = y[j] * (g[j] - dot);
        }
        lo = hi;
    }
}

/// Backward of [`segment_softmax`]: given the forward output `y` and the
/// upstream gradient `g` (both Ex1 over the same `seg` layout), returns
/// `gx[j] = y[j] * (g[j] - Σ_{i∈seg(j)} g[i]·y[i])`.
///
/// Vectorised exactly like the forward: contiguous runs with
/// `lane_dot`-ordered per-segment dot products for sorted segments,
/// streaming f64 dot accumulators per segment otherwise. The tape's
/// `SegmentSoftmax` backward dispatches here.
pub fn segment_softmax_backward(y: &Matrix, g: &Matrix, seg: &[u32], n_segments: usize) -> Matrix {
    assert_eq!(y.cols, 1, "segment_softmax_backward expects column vectors");
    assert_eq!(y.shape(), g.shape());
    assert_eq!(y.rows, seg.len());
    let mut out = Matrix::zeros(y.rows, 1);
    if seg_is_sorted(seg) {
        segment_softmax_backward_runs(&y.data, &g.data, seg, &mut out.data);
    } else {
        let mut dots = vec![0.0f64; n_segments];
        for ((&yv, &gv), &s) in y.data.iter().zip(&g.data).zip(seg) {
            dots[s as usize] += (yv * gv) as f64;
        }
        for ((o, (&yv, &gv)), &s) in out.data.iter_mut().zip(y.data.iter().zip(&g.data)).zip(seg) {
            *o = yv * (gv - dots[s as usize] as f32);
        }
    }
    out
}

/// Scale each row `i` of `x` by the scalar `s[i]` (s is Ex1).
pub fn scale_rows(x: &Matrix, s: &Matrix) -> Matrix {
    assert_eq!(s.cols, 1);
    assert_eq!(x.rows, s.rows);
    let mut out = x.clone();
    for r in 0..x.rows {
        let f = s.data[r];
        for v in out.row_mut(r) {
            *v *= f;
        }
    }
    out
}

/// Row-wise dot product of two same-shape matrices: returns Ex1 column.
pub fn rowwise_dot(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.shape(), b.shape());
    let mut out = Matrix::zeros(a.rows, 1);
    for r in 0..a.rows {
        let mut acc = 0.0f32;
        for (&x, &y) in a.row(r).iter().zip(b.row(r)) {
            acc += x * y;
        }
        out.data[r] = acc;
    }
    out
}

/// Horizontally concatenate two matrices with equal row counts.
pub fn concat_cols(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows, a.cols + b.cols);
    concat_cols_into(a, b, &mut out);
    out
}

/// [`concat_cols`] into a pre-shaped output (scratch-reuse path). Every
/// output element is overwritten.
pub fn concat_cols_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(a.rows, b.rows, "concat_cols: row mismatch");
    assert_eq!(
        out.shape(),
        (a.rows, a.cols + b.cols),
        "concat_cols_into: bad output shape"
    );
    for r in 0..a.rows {
        out.data[r * (a.cols + b.cols)..r * (a.cols + b.cols) + a.cols].copy_from_slice(a.row(r));
        out.data[r * (a.cols + b.cols) + a.cols..(r + 1) * (a.cols + b.cols)]
            .copy_from_slice(b.row(r));
    }
}

/// Vertically stack matrices with equal column counts.
pub fn concat_rows(mats: &[&Matrix]) -> Matrix {
    assert!(!mats.is_empty());
    let cols = mats[0].cols;
    let rows: usize = mats.iter().map(|m| m.rows).sum();
    let mut data = Vec::with_capacity(rows * cols);
    for m in mats {
        assert_eq!(m.cols, cols, "concat_rows: col mismatch");
        data.extend_from_slice(&m.data);
    }
    Matrix { rows, cols, data }
}

/// Scalar reference row-softmax (libm `exp`, f64 normalisation) — kept as
/// the parity baseline for [`softmax_rows`], which replaces it on the hot
/// path with vectorised [`fast_exp`] passes.
pub fn softmax_rows_naive(x: &Matrix) -> Matrix {
    let mut out = x.clone();
    for r in 0..x.rows {
        let row = out.row_mut(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f64;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            denom += *v as f64;
        }
        if denom > 0.0 {
            for v in row.iter_mut() {
                *v = (*v as f64 / denom) as f32;
            }
        }
    }
    out
}

/// Row-wise softmax (used by decoders over candidate sets).
pub fn softmax_rows(x: &Matrix) -> Matrix {
    let mut out = x.clone();
    softmax_rows_inplace(&mut out);
    out
}

/// [`softmax_rows`] into a pre-shaped output (scratch-reuse path).
pub fn softmax_rows_into(x: &Matrix, out: &mut Matrix) {
    assert_eq!(
        x.shape(),
        out.shape(),
        "softmax_rows_into: bad output shape"
    );
    out.data.copy_from_slice(&x.data);
    softmax_rows_inplace(out);
}

fn softmax_rows_inplace(out: &mut Matrix) {
    for r in 0..out.rows {
        let row = out.row_mut(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        // three separate passes so the exp and scale loops auto-vectorise
        // (a fused f64 accumulator in the exp loop forces scalar code)
        for v in row.iter_mut() {
            *v = fast_exp(*v - max);
        }
        let denom = lane_sum(row);
        if denom > 0.0 {
            let inv = (1.0 / denom) as f32;
            for v in row.iter_mut() {
                *v *= inv;
            }
        }
    }
}

/// 8-lane partial-sum reduction (f32 lanes, f64 total) — the exact
/// summation order [`softmax_rows`] normalises with; mirrored by
/// [`row_softmax_stats`] so its denominators match bit-for-bit.
#[inline]
fn lane_sum(vals: &[f32]) -> f64 {
    let mut lanes = [0.0f32; 8];
    let mut chunks = vals.chunks_exact(8);
    for ch in &mut chunks {
        for (l, &v) in lanes.iter_mut().zip(ch) {
            *l += v;
        }
    }
    lanes.iter().map(|&l| l as f64).sum::<f64>()
        + chunks.remainder().iter().map(|&v| v as f64).sum::<f64>()
}

/// Softmax statistics of one logit row: `(max, inv_denom)` such that
/// `p[j] = fast_exp(row[j] - max) * inv_denom` reproduces the
/// corresponding [`softmax_rows`] output bit-for-bit (same `fast_exp`,
/// same 8-lane summation order, same single `f32` rounding of the
/// inverse). `inv_denom` falls back to `1.0` when the denominator is not
/// positive (empty row), mirroring `softmax_rows` leaving such rows
/// unscaled.
///
/// This is the recompute primitive of the fused softmax-cross-entropy
/// backward ([`crate::tape::Tape::softmax_xent`]): storing `(max, inv)`
/// per row is `O(rows)`, versus `O(rows × cols)` for a materialised
/// probability matrix.
pub fn row_softmax_stats(row: &[f32]) -> (f32, f32) {
    let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    // Stream 8-wide blocks through a stack buffer: the exp block stays
    // vectorisable and the lane accumulation order is exactly
    // [`lane_sum`]'s, without materialising the exponentials.
    let mut lanes = [0.0f32; 8];
    let mut chunks = row.chunks_exact(8);
    for ch in &mut chunks {
        let mut e = [0.0f32; 8];
        for (o, &v) in e.iter_mut().zip(ch) {
            *o = fast_exp(v - max);
        }
        for (l, &v) in lanes.iter_mut().zip(&e) {
            *l += v;
        }
    }
    let denom = lanes.iter().map(|&l| l as f64).sum::<f64>()
        + chunks
            .remainder()
            .iter()
            .map(|&v| fast_exp(v - max) as f64)
            .sum::<f64>();
    if denom > 0.0 {
        (max, (1.0 / denom) as f32)
    } else {
        (max, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn matmul_small_known() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul_nn(&a, &b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        let i = Matrix::eye(4);
        assert_eq!(matmul_nn(&a, &i), a);
        assert_eq!(matmul_nn(&i, &a), a);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Matrix::from_fn(3, 5, |r, c| (r + 2 * c) as f32 * 0.5);
        let b = Matrix::from_fn(4, 5, |r, c| (2 * r + c) as f32 * 0.25);
        let direct = matmul_nt(&a, &b);
        let explicit = matmul_nn(&a, &b.transpose());
        for (x, y) in direct.as_slice().iter().zip(explicit.as_slice()) {
            assert!(approx(*x, *y));
        }
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Matrix::from_fn(5, 3, |r, c| (r + c) as f32 * 0.3);
        let b = Matrix::from_fn(5, 4, |r, c| (r * 2 + c) as f32 * 0.1);
        let direct = matmul_tn(&a, &b);
        let explicit = matmul_nn(&a.transpose(), &b);
        for (x, y) in direct.as_slice().iter().zip(explicit.as_slice()) {
            assert!(approx(*x, *y));
        }
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 7, |r, c| (r * 13 + c) as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn gather_scatter_are_adjoint() {
        // <gather(x, idx), y> == <x, scatter(y, idx)>
        let x = Matrix::from_fn(5, 3, |r, c| (r * 3 + c) as f32);
        let idx = vec![4u32, 0, 0, 2];
        let y = Matrix::from_fn(4, 3, |r, c| (r + c) as f32 * 0.5);
        let g = gather_rows(&x, &idx);
        let s = scatter_add_rows(&y, &idx, 5);
        let lhs: f64 = g
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .map(|(&a, &b)| (a * b) as f64)
            .sum();
        let rhs: f64 = x
            .as_slice()
            .iter()
            .zip(s.as_slice())
            .map(|(&a, &b)| (a * b) as f64)
            .sum();
        assert!((lhs - rhs).abs() < 1e-6);
    }

    #[test]
    fn segment_softmax_sums_to_one_per_segment() {
        let scores = Matrix::from_vec(5, 1, vec![1.0, 2.0, 3.0, -1.0, 0.5]);
        let seg = vec![0u32, 0, 1, 1, 1];
        let sm = segment_softmax(&scores, &seg, 2);
        let s0: f32 = sm.as_slice()[..2].iter().sum();
        let s1: f32 = sm.as_slice()[2..].iter().sum();
        assert!(approx(s0, 1.0));
        assert!(approx(s1, 1.0));
        // within a segment larger scores get larger mass
        assert!(sm.get(1, 0) > sm.get(0, 0));
        assert!(sm.get(2, 0) > sm.get(4, 0));
    }

    #[test]
    fn segment_softmax_is_shift_invariant() {
        let scores = Matrix::from_vec(4, 1, vec![100.0, 101.0, 102.0, 99.0]);
        let shifted = scores.map(|v| v - 100.0);
        let seg = vec![0u32, 0, 0, 0];
        let a = segment_softmax(&scores, &seg, 1);
        let b = segment_softmax(&shifted, &seg, 1);
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!(approx(*x, *y));
        }
    }

    #[test]
    fn softmax_rows_normalises() {
        let x = Matrix::from_fn(3, 4, |r, c| (r * c) as f32);
        let p = softmax_rows(&x);
        for r in 0..3 {
            let s: f32 = p.row(r).iter().sum();
            assert!(approx(s, 1.0));
        }
    }

    #[test]
    fn concat_shapes() {
        let a = Matrix::zeros(3, 2);
        let b = Matrix::full(3, 4, 1.0);
        let c = concat_cols(&a, &b);
        assert_eq!(c.shape(), (3, 6));
        assert_eq!(c.get(1, 0), 0.0);
        assert_eq!(c.get(1, 5), 1.0);
        let d = concat_rows(&[&a, &Matrix::full(2, 2, 3.0)]);
        assert_eq!(d.shape(), (5, 2));
        assert_eq!(d.get(4, 1), 3.0);
    }

    #[test]
    fn scale_rows_and_rowwise_dot() {
        let x = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let s = Matrix::from_vec(2, 1, vec![2., -1.]);
        let y = scale_rows(&x, &s);
        assert_eq!(y.as_slice(), &[2., 4., -3., -4.]);
        let d = rowwise_dot(&x, &y);
        assert_eq!(d.as_slice(), &[2. + 8., -9. - 16.]);
    }

    #[test]
    fn sum_mean_norm() {
        let x = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        assert_eq!(x.sum(), 10.0);
        assert_eq!(x.mean(), 2.5);
        assert!((x.frobenius_norm() - 30.0f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "inner dim mismatch")]
    fn matmul_shape_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = matmul_nn(&a, &b);
    }

    #[test]
    fn big_matmul_parallel_path_matches_serial() {
        // Force the parallel path and compare with a trivially computed cell.
        let n = 64;
        let a = Matrix::from_fn(n, n, |r, c| ((r * 31 + c * 7) % 5) as f32 - 2.0);
        let b = Matrix::from_fn(n, n, |r, c| ((r * 13 + c * 3) % 7) as f32 - 3.0);
        let c = matmul_nn(&a, &b);
        // verify a few cells against the definition
        for &(r, cc) in &[(0usize, 0usize), (5, 9), (63, 63), (31, 2)] {
            let mut acc = 0.0f32;
            for k in 0..n {
                acc += a.get(r, k) * b.get(k, cc);
            }
            assert!(approx(c.get(r, cc), acc), "cell ({r},{cc})");
        }
    }
}
