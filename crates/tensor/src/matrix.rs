//! Dense row-major `f32` matrix with the raw kernels used by the autodiff
//! tape: matmul (all transpose variants), broadcasting adds, element-wise
//! maps, and segment (scatter/gather) operations for graph attention.
//!
//! All shapes are `(rows, cols)`. Kernels are written with contiguous inner
//! loops (ikj ordering for matmul) so the compiler can vectorise them; large
//! matmuls are split across threads by `crate::parallel::par_chunks_mut`.

use crate::parallel::{par_chunks_mut, PAR_THRESHOLD};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense row-major matrix of `f32`.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 64 {
            for r in 0..self.rows {
                write!(f, "\n  {:?}", &self.row(r))?;
            }
        }
        Ok(())
    }
}

impl Matrix {
    /// All-zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Matrix filled with a constant.
    pub fn full(rows: usize, cols: usize, v: f32) -> Self {
        Matrix { rows, cols, data: vec![v; rows * cols] }
    }

    /// Build from a flat row-major buffer. Panics if the length mismatches.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "from_vec: shape/buffer mismatch");
        Matrix { rows, cols, data }
    }

    /// Build from a closure evaluated at each `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// A 1x1 matrix holding a scalar.
    pub fn scalar(v: f32) -> Self {
        Matrix::from_vec(1, 1, vec![v])
    }

    /// Identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major view of the data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major view of the data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow one row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow one row as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The value of a 1x1 matrix.
    pub fn item(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "item() on non-scalar matrix");
        self.data[0]
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// In-place element-wise map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise combine with another matrix of identical shape.
    pub fn zip(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "zip: shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// `self += other` element-wise.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += *b;
        }
    }

    /// `self += alpha * other` element-wise (axpy).
    pub fn add_scaled(&mut self, other: &Matrix, alpha: f32) {
        assert_eq!(self.shape(), other.shape(), "add_scaled: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * *b;
        }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Sum of all elements (accumulated in f64 for stability).
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&x| x as f64).sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>().sqrt()
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// `C = A @ B` (no transposes).
    pub fn matmul(&self, b: &Matrix) -> Matrix {
        matmul_nn(self, b)
    }
}

/// `C = A @ B`. Shapes: `(m,k) @ (k,n) -> (m,n)`.
pub fn matmul_nn(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols, b.rows, "matmul_nn: inner dim mismatch {:?} @ {:?}", a.shape(), b.shape());
    let (m, k, n) = (a.rows, a.cols, b.cols);
    let mut out = Matrix::zeros(m, n);
    let body = |r0: usize, chunk: &mut [f32]| {
        let rows_here = chunk.len() / n;
        for ri in 0..rows_here {
            let r = r0 + ri;
            let out_row = &mut chunk[ri * n..(ri + 1) * n];
            let a_row = &a.data[r * k..(r + 1) * k];
            for (kk, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let b_row = &b.data[kk * n..(kk + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
    };
    if m * k * n >= PAR_THRESHOLD {
        par_chunks_mut(&mut out.data, n, body);
    } else {
        body(0, &mut out.data);
    }
    out
}

/// `C = A @ B^T`. Shapes: `(m,k) @ (n,k)^T -> (m,n)`.
pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols, b.cols, "matmul_nt: inner dim mismatch {:?} @ {:?}^T", a.shape(), b.shape());
    let (m, k, n) = (a.rows, a.cols, b.rows);
    let mut out = Matrix::zeros(m, n);
    let body = |r0: usize, chunk: &mut [f32]| {
        let rows_here = chunk.len() / n;
        for ri in 0..rows_here {
            let r = r0 + ri;
            let a_row = &a.data[r * k..(r + 1) * k];
            let out_row = &mut chunk[ri * n..(ri + 1) * n];
            for (c, o) in out_row.iter_mut().enumerate() {
                let b_row = &b.data[c * k..(c + 1) * k];
                let mut acc = 0.0f32;
                for (&x, &y) in a_row.iter().zip(b_row) {
                    acc += x * y;
                }
                *o = acc;
            }
        }
    };
    if m * k * n >= PAR_THRESHOLD {
        par_chunks_mut(&mut out.data, n, body);
    } else {
        body(0, &mut out.data);
    }
    out
}

/// `C = A^T @ B`. Shapes: `(k,m)^T @ (k,n) -> (m,n)`.
pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows, b.rows, "matmul_tn: inner dim mismatch {:?}^T @ {:?}", a.shape(), b.shape());
    let (k, m, n) = (a.rows, a.cols, b.cols);
    let mut out = Matrix::zeros(m, n);
    // out[r, c] = sum_k a[k, r] * b[k, c]; iterate k outer for contiguity.
    for kk in 0..k {
        let a_row = &a.data[kk * m..(kk + 1) * m];
        let b_row = &b.data[kk * n..(kk + 1) * n];
        for (r, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let out_row = &mut out.data[r * n..(r + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
    out
}

/// Row-gather: `out[i, :] = x[idx[i], :]`.
pub fn gather_rows(x: &Matrix, idx: &[u32]) -> Matrix {
    let cols = x.cols;
    let mut out = Matrix::zeros(idx.len(), cols);
    for (i, &r) in idx.iter().enumerate() {
        let r = r as usize;
        debug_assert!(r < x.rows, "gather_rows: index {} out of {} rows", r, x.rows);
        out.data[i * cols..(i + 1) * cols].copy_from_slice(&x.data[r * cols..(r + 1) * cols]);
    }
    out
}

/// Row-scatter-add: `out[idx[i], :] += x[i, :]` into a zero matrix with
/// `out_rows` rows. Inverse (adjoint) of [`gather_rows`].
pub fn scatter_add_rows(x: &Matrix, idx: &[u32], out_rows: usize) -> Matrix {
    assert_eq!(x.rows, idx.len(), "scatter_add_rows: row/index mismatch");
    let cols = x.cols;
    let mut out = Matrix::zeros(out_rows, cols);
    for (i, &r) in idx.iter().enumerate() {
        let r = r as usize;
        debug_assert!(r < out_rows);
        let dst = &mut out.data[r * cols..(r + 1) * cols];
        let src = &x.data[i * cols..(i + 1) * cols];
        for (d, s) in dst.iter_mut().zip(src) {
            *d += *s;
        }
    }
    out
}

/// Softmax within segments. `scores` is a column vector (Ex1); `seg[i]`
/// names the segment of row `i`. Rows of the same segment are normalised
/// together with the max-subtraction trick. Returns a column vector.
///
/// This is the edge-softmax of graph attention: segments are destination
/// nodes, rows are incoming edges.
pub fn segment_softmax(scores: &Matrix, seg: &[u32], n_segments: usize) -> Matrix {
    assert_eq!(scores.cols, 1, "segment_softmax expects a column vector");
    assert_eq!(scores.rows, seg.len());
    let mut max = vec![f32::NEG_INFINITY; n_segments];
    for (i, &s) in seg.iter().enumerate() {
        let v = scores.data[i];
        let m = &mut max[s as usize];
        if v > *m {
            *m = v;
        }
    }
    let mut out = Matrix::zeros(scores.rows, 1);
    let mut denom = vec![0.0f64; n_segments];
    for (i, &s) in seg.iter().enumerate() {
        let e = (scores.data[i] - max[s as usize]).exp();
        out.data[i] = e;
        denom[s as usize] += e as f64;
    }
    for (i, &s) in seg.iter().enumerate() {
        let d = denom[s as usize];
        out.data[i] = if d > 0.0 { (out.data[i] as f64 / d) as f32 } else { 0.0 };
    }
    out
}

/// Scale each row `i` of `x` by the scalar `s[i]` (s is Ex1).
pub fn scale_rows(x: &Matrix, s: &Matrix) -> Matrix {
    assert_eq!(s.cols, 1);
    assert_eq!(x.rows, s.rows);
    let mut out = x.clone();
    for r in 0..x.rows {
        let f = s.data[r];
        for v in out.row_mut(r) {
            *v *= f;
        }
    }
    out
}

/// Row-wise dot product of two same-shape matrices: returns Ex1 column.
pub fn rowwise_dot(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.shape(), b.shape());
    let mut out = Matrix::zeros(a.rows, 1);
    for r in 0..a.rows {
        let mut acc = 0.0f32;
        for (&x, &y) in a.row(r).iter().zip(b.row(r)) {
            acc += x * y;
        }
        out.data[r] = acc;
    }
    out
}

/// Horizontally concatenate two matrices with equal row counts.
pub fn concat_cols(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows, b.rows, "concat_cols: row mismatch");
    let mut out = Matrix::zeros(a.rows, a.cols + b.cols);
    for r in 0..a.rows {
        out.data[r * (a.cols + b.cols)..r * (a.cols + b.cols) + a.cols].copy_from_slice(a.row(r));
        out.data[r * (a.cols + b.cols) + a.cols..(r + 1) * (a.cols + b.cols)]
            .copy_from_slice(b.row(r));
    }
    out
}

/// Vertically stack matrices with equal column counts.
pub fn concat_rows(mats: &[&Matrix]) -> Matrix {
    assert!(!mats.is_empty());
    let cols = mats[0].cols;
    let rows: usize = mats.iter().map(|m| m.rows).sum();
    let mut data = Vec::with_capacity(rows * cols);
    for m in mats {
        assert_eq!(m.cols, cols, "concat_rows: col mismatch");
        data.extend_from_slice(&m.data);
    }
    Matrix { rows, cols, data }
}

/// Row-wise softmax (used by decoders over candidate sets).
pub fn softmax_rows(x: &Matrix) -> Matrix {
    let mut out = x.clone();
    for r in 0..x.rows {
        let row = out.row_mut(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f64;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            denom += *v as f64;
        }
        if denom > 0.0 {
            for v in row.iter_mut() {
                *v = (*v as f64 / denom) as f32;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn matmul_small_known() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul_nn(&a, &b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        let i = Matrix::eye(4);
        assert_eq!(matmul_nn(&a, &i), a);
        assert_eq!(matmul_nn(&i, &a), a);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Matrix::from_fn(3, 5, |r, c| (r + 2 * c) as f32 * 0.5);
        let b = Matrix::from_fn(4, 5, |r, c| (2 * r + c) as f32 * 0.25);
        let direct = matmul_nt(&a, &b);
        let explicit = matmul_nn(&a, &b.transpose());
        for (x, y) in direct.as_slice().iter().zip(explicit.as_slice()) {
            assert!(approx(*x, *y));
        }
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Matrix::from_fn(5, 3, |r, c| (r + c) as f32 * 0.3);
        let b = Matrix::from_fn(5, 4, |r, c| (r * 2 + c) as f32 * 0.1);
        let direct = matmul_tn(&a, &b);
        let explicit = matmul_nn(&a.transpose(), &b);
        for (x, y) in direct.as_slice().iter().zip(explicit.as_slice()) {
            assert!(approx(*x, *y));
        }
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 7, |r, c| (r * 13 + c) as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn gather_scatter_are_adjoint() {
        // <gather(x, idx), y> == <x, scatter(y, idx)>
        let x = Matrix::from_fn(5, 3, |r, c| (r * 3 + c) as f32);
        let idx = vec![4u32, 0, 0, 2];
        let y = Matrix::from_fn(4, 3, |r, c| (r + c) as f32 * 0.5);
        let g = gather_rows(&x, &idx);
        let s = scatter_add_rows(&y, &idx, 5);
        let lhs: f64 = g.as_slice().iter().zip(y.as_slice()).map(|(&a, &b)| (a * b) as f64).sum();
        let rhs: f64 = x.as_slice().iter().zip(s.as_slice()).map(|(&a, &b)| (a * b) as f64).sum();
        assert!((lhs - rhs).abs() < 1e-6);
    }

    #[test]
    fn segment_softmax_sums_to_one_per_segment() {
        let scores = Matrix::from_vec(5, 1, vec![1.0, 2.0, 3.0, -1.0, 0.5]);
        let seg = vec![0u32, 0, 1, 1, 1];
        let sm = segment_softmax(&scores, &seg, 2);
        let s0: f32 = sm.as_slice()[..2].iter().sum();
        let s1: f32 = sm.as_slice()[2..].iter().sum();
        assert!(approx(s0, 1.0));
        assert!(approx(s1, 1.0));
        // within a segment larger scores get larger mass
        assert!(sm.get(1, 0) > sm.get(0, 0));
        assert!(sm.get(2, 0) > sm.get(4, 0));
    }

    #[test]
    fn segment_softmax_is_shift_invariant() {
        let scores = Matrix::from_vec(4, 1, vec![100.0, 101.0, 102.0, 99.0]);
        let shifted = scores.map(|v| v - 100.0);
        let seg = vec![0u32, 0, 0, 0];
        let a = segment_softmax(&scores, &seg, 1);
        let b = segment_softmax(&shifted, &seg, 1);
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!(approx(*x, *y));
        }
    }

    #[test]
    fn softmax_rows_normalises() {
        let x = Matrix::from_fn(3, 4, |r, c| (r * c) as f32);
        let p = softmax_rows(&x);
        for r in 0..3 {
            let s: f32 = p.row(r).iter().sum();
            assert!(approx(s, 1.0));
        }
    }

    #[test]
    fn concat_shapes() {
        let a = Matrix::zeros(3, 2);
        let b = Matrix::full(3, 4, 1.0);
        let c = concat_cols(&a, &b);
        assert_eq!(c.shape(), (3, 6));
        assert_eq!(c.get(1, 0), 0.0);
        assert_eq!(c.get(1, 5), 1.0);
        let d = concat_rows(&[&a, &Matrix::full(2, 2, 3.0)]);
        assert_eq!(d.shape(), (5, 2));
        assert_eq!(d.get(4, 1), 3.0);
    }

    #[test]
    fn scale_rows_and_rowwise_dot() {
        let x = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let s = Matrix::from_vec(2, 1, vec![2., -1.]);
        let y = scale_rows(&x, &s);
        assert_eq!(y.as_slice(), &[2., 4., -3., -4.]);
        let d = rowwise_dot(&x, &y);
        assert_eq!(d.as_slice(), &[2. + 8., -9. - 16.]);
    }

    #[test]
    fn sum_mean_norm() {
        let x = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        assert_eq!(x.sum(), 10.0);
        assert_eq!(x.mean(), 2.5);
        assert!((x.frobenius_norm() - 30.0f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "inner dim mismatch")]
    fn matmul_shape_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = matmul_nn(&a, &b);
    }

    #[test]
    fn big_matmul_parallel_path_matches_serial() {
        // Force the parallel path and compare with a trivially computed cell.
        let n = 64;
        let a = Matrix::from_fn(n, n, |r, c| ((r * 31 + c * 7) % 5) as f32 - 2.0);
        let b = Matrix::from_fn(n, n, |r, c| ((r * 13 + c * 3) % 7) as f32 - 3.0);
        let c = matmul_nn(&a, &b);
        // verify a few cells against the definition
        for &(r, cc) in &[(0usize, 0usize), (5, 9), (63, 63), (31, 2)] {
            let mut acc = 0.0f32;
            for k in 0..n {
                acc += a.get(r, k) * b.get(k, cc);
            }
            assert!(approx(c.get(r, cc), acc), "cell ({r},{cc})");
        }
    }
}
